//! Building custom adversaries against the simulator's trait interfaces.
//!
//! The paper's guarantees are universally quantified over schedulers,
//! motion adversaries and crash patterns. This example implements three
//! hostile adversaries from scratch — a laziest-mover scheduler, a
//! leader-assassin crash plan, and the group-serialising scheduler that
//! realises the bivalent impossibility (Lemma 5.2) — and runs
//! WAIT-FREE-GATHER against all of them.
//!
//! ```sh
//! cargo run --example adversarial_scheduler
//! ```

use gather_config::{classify, Class, Configuration};
use gather_geom::Tol;
use gather_sim::prelude::*;
use gather_workloads as workloads;
use gathering::WaitFreeGather;

fn main() {
    laziest_mover();
    leader_assassin();
    bivalent_trap();
}

/// Adversary 1: activate exactly one robot per round, round-robin — the
/// slowest fair schedule. Gathering must still complete.
fn laziest_mover() {
    println!("— laziest-mover scheduler (one robot per round) —");
    let pts = workloads::asymmetric(8, 5);
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .scheduler(SequentialSingle::new())
        .motion(AlwaysDelta) // and every move is cut to the minimum step
        .delta(0.2)
        .build();
    let outcome = engine.run(100_000);
    println!("  outcome: {outcome:?}");
    assert!(outcome.gathered());
    println!();
}

/// Adversary 2: whenever the configuration elects a target location, crash
/// a robot standing on it (budget n − 1). The rally keeps dying; the
/// algorithm keeps re-electing and still finishes.
fn leader_assassin() {
    println!("— leader-assassin crash plan —");
    let pts = workloads::random_scatter(9, 10.0, 77);
    let n = pts.len();
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .crash_plan(TargetedCrashes::new(
            "assassin",
            n - 1,
            |round, config: &Configuration, alive: &[bool]| {
                if round % 3 != 0 {
                    return Vec::new();
                }
                let analysis = classify(config, Tol::default());
                let Some(target) = analysis.target else {
                    return Vec::new();
                };
                config
                    .points()
                    .iter()
                    .enumerate()
                    .filter(|(i, p)| alive[*i] && p.within(target, 1e-6))
                    .map(|(i, _)| i)
                    .take(1)
                    .collect()
            },
        ))
        .scheduler(RoundRobin::new(2))
        .build();
    let outcome = engine.run(60_000);
    println!(
        "  outcome: {outcome:?} (survivors: {}/{})",
        engine.live_count(),
        n
    );
    assert!(outcome.gathered());
    println!();
}

/// Adversary 3: the bivalent trap. From an exactly even two-point split the
/// adversary activates only one group per round; whatever common point the
/// algorithm chooses, the groups land on it one at a time and the even
/// split survives forever (Lemma 5.2 — this is why class B is excluded).
fn bivalent_trap() {
    println!("— bivalent trap (group-serialising scheduler) —");
    let pts = workloads::bivalent(8, 16.0);
    let half = pts.len() / 2;
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .scheduler(FnScheduler::new(
            "serialise-groups",
            move |round, alive: &[bool]| {
                let range = if round % 2 == 0 {
                    0..half
                } else {
                    half..alive.len()
                };
                range.filter(|i| alive[*i]).collect()
            },
        ))
        .frames(FramePolicy::GlobalFrame)
        .check_invariants(false)
        .build();
    for round in 0..14 {
        engine.step();
        let config = engine.configuration();
        let class = classify(&config, Tol::default()).class;
        let d = config.distinct_points();
        let sep = if d.len() == 2 { d[0].dist(d[1]) } else { 0.0 };
        if round % 4 == 3 {
            println!("  round {round:>2}: class {class}, separation {sep:.5}");
        }
        assert_eq!(class, Class::Bivalent, "the trap must hold");
    }
    println!(
        "  the split survives every round; the separation only converges \
         geometrically — gathering never happens in finite time."
    );
}
