//! Trajectory gallery: render one execution per configuration class.
//!
//! Writes `out/trajectory_<class>.svg` (the whole run, crash sites marked)
//! and `out/snapshot_<class>.svg` (the initial configuration with its
//! classification artefacts) for each of the five gatherable classes plus
//! the bivalent trap.
//!
//! ```sh
//! cargo run --example trajectory_gallery
//! ```

use gather_config::{Class, Configuration};
use gather_geom::Tol;
use gather_sim::prelude::*;
use gather_viz::{render_configuration, render_trajectories, SnapshotStyle, TrajectoryStyle};
use gather_workloads as workloads;
use gathering::WaitFreeGather;

fn main() {
    std::fs::create_dir_all("out").expect("create out/");
    for class in [
        Class::Multiple,
        Class::Collinear1W,
        Class::Collinear2W,
        Class::QuasiRegular,
        Class::Asymmetric,
    ] {
        render_class(class);
    }
    render_bivalent_trap();
    println!("gallery written to out/");
}

fn render_class(class: Class) {
    let pts = workloads::of_class(class, 9, 5);
    let n = pts.len();
    let snapshot_svg = render_configuration(
        &Configuration::canonical(pts.clone(), Tol::default()),
        Tol::default(),
        SnapshotStyle::default(),
    );
    std::fs::write(
        format!("out/snapshot_{}.svg", class.short_name()),
        snapshot_svg,
    )
    .expect("write snapshot");

    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .scheduler(RoundRobin::new(3))
        .motion(RandomStops::new(0.4, 11))
        .crash_plan(RandomCrashes::new(n / 3, 0.08, 13))
        .record_positions(true)
        .build();
    let outcome = engine.run(30_000);
    assert!(outcome.gathered(), "class {class}: {outcome:?}");

    let crashes: Vec<(usize, u64)> = engine
        .trace()
        .records()
        .iter()
        .flat_map(|r| r.crashed.iter().map(move |i| (*i, r.round)))
        .collect();
    let svg = render_trajectories(engine.position_log(), &crashes, TrajectoryStyle::default());
    std::fs::write(format!("out/trajectory_{}.svg", class.short_name()), svg)
        .expect("write trajectory");
    println!(
        "class {:<3}: gathered in {:>3} rounds with {} crashes — out/trajectory_{}.svg",
        class.short_name(),
        outcome.rounds(),
        crashes.len(),
        class.short_name(),
    );
}

fn render_bivalent_trap() {
    let pts = workloads::bivalent(8, 10.0);
    let half = pts.len() / 2;
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .scheduler(FnScheduler::new(
            "serialise-groups",
            move |round, alive: &[bool]| {
                let range = if round % 2 == 0 {
                    0..half
                } else {
                    half..alive.len()
                };
                range.filter(|i| alive[*i]).collect()
            },
        ))
        .frames(FramePolicy::GlobalFrame)
        .record_positions(true)
        .check_invariants(false)
        .build();
    for _ in 0..12 {
        engine.step();
    }
    let svg = render_trajectories(engine.position_log(), &[], TrajectoryStyle::default());
    std::fs::write("out/trajectory_B.svg", svg).expect("write trajectory");
    println!("class B  : the trap — groups converge but never merge — out/trajectory_B.svg");
}
