//! Quickstart: gather seven robots, three of which crash along the way.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use gather_geom::Point;
use gather_sim::prelude::*;
use gathering::WaitFreeGather;

fn main() {
    // Seven robots scattered on the plane — two of them already share a
    // location (arbitrary initial configurations are fine).
    let initial = vec![
        Point::new(0.0, 0.0),
        Point::new(0.0, 0.0),
        Point::new(6.0, 1.0),
        Point::new(2.0, 5.0),
        Point::new(-3.0, 4.0),
        Point::new(-1.0, -4.0),
        Point::new(4.0, -2.0),
    ];

    let mut engine = Engine::builder(initial)
        .algorithm(WaitFreeGather::default())
        // Robots 1 and 3 crash at rounds 2 and 5; robot 5 never even starts.
        .crash_plan(CrashAtRounds::new(vec![(0, 5), (2, 1), (5, 3)]))
        // A random fair scheduler and adversarial movement interruptions.
        .scheduler(RandomSubsets::new(0.6, 30, 42))
        .motion(RandomStops::new(0.5, 42))
        .build();

    let outcome = engine.run(10_000);

    match outcome {
        RunOutcome::Gathered { round, point } => {
            println!("gathered at {point} in {round} rounds");
        }
        RunOutcome::RoundLimit { rounds } => {
            println!("did not gather within {rounds} rounds");
        }
    }

    println!(
        "classes visited: {:?}",
        engine
            .trace()
            .class_sequence()
            .iter()
            .map(|c| c.short_name())
            .collect::<Vec<_>>()
    );
    println!(
        "total distance travelled: {:.2}",
        engine.trace().total_travel()
    );
    println!(
        "live robots at the end: {}/{}",
        engine.live_count(),
        engine.positions().len()
    );
    assert!(outcome.gathered(), "WAIT-FREE-GATHER must gather here");
    assert!(engine.violations().is_empty());
}
