//! Search-and-rescue rendezvous: a robot team regrouping under attrition.
//!
//! The motivating scenario of the paper's introduction: robots deployed in
//! an area inaccessible to humans must regroup at a single point, but any
//! number of them may fail in the field. This example sweeps the number of
//! crash faults `f` from `0` to `n − 1` on the same seeded deployment and
//! reports gathering success and cost, comparing the paper's wait-free
//! algorithm with the classic non-wait-free "ordered march".
//!
//! ```sh
//! cargo run --example search_and_rescue
//! ```

use gather_sim::prelude::*;
use gather_workloads as workloads;
use gathering::{OrderedMarch, WaitFreeGather};

const N: usize = 12;
const MAX_ROUNDS: u64 = 40_000;

fn run(algorithm: Box<dyn Algorithm>, f: usize, seed: u64) -> (bool, u64, f64) {
    // The same deployment for every f: robots scattered over the area.
    let area = workloads::random_scatter(N, 25.0, 1234);
    let is_wait_free = algorithm.name() == "wait-free-gather";
    let mut engine = Engine::builder(area)
        .algorithm(algorithm)
        .crash_plan(RandomCrashes::new(f, 0.03, seed))
        .scheduler(RandomSubsets::new(0.5, 60, seed))
        .motion(RandomStops::new(0.4, seed))
        .delta(0.1)
        .check_invariants(is_wait_free)
        .build();
    let outcome = engine.run(MAX_ROUNDS);
    (
        outcome.gathered(),
        outcome.rounds(),
        engine.trace().total_travel(),
    )
}

fn main() {
    println!("search-and-rescue rendezvous: n = {N} robots, seeded deployment");
    println!();
    println!(
        "{:>4} | {:^28} | {:^28}",
        "", "WAIT-FREE-GATHER", "ordered march (classic)"
    );
    println!(
        "{:>4} | {:>9} {:>8} {:>9} | {:>9} {:>8} {:>9}",
        "f", "gathered", "rounds", "travel", "gathered", "rounds", "travel"
    );
    println!("{}", "-".repeat(66));

    for f in [0usize, 1, 2, 4, 6, 8, 11] {
        let (g1, r1, t1) = run(Box::new(WaitFreeGather::default()), f, 7 + f as u64);
        let (g2, r2, t2) = run(Box::new(OrderedMarch::default()), f, 7 + f as u64);
        println!(
            "{f:>4} | {:>9} {r1:>8} {t1:>9.1} | {:>9} {r2:>8} {t2:>9.1}",
            if g1 { "yes" } else { "NO" },
            if g2 { "yes" } else { "NO" },
        );
        assert!(g1, "the wait-free algorithm must survive f = {f}");
    }

    println!();
    println!(
        "the classic algorithm moves one designated robot at a time; once a \
         crash hits the designated walker the mission freezes, while the \
         paper's wait-free algorithm always instructs every robot to move \
         and finishes regardless of which {max} of {N} robots fail.",
        max = N - 1
    );
}
