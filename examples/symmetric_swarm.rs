//! Symmetric swarms and the quasi-regularity pipeline.
//!
//! Symmetric configurations are the hard case for leader election — every
//! robot looks the same — and the paper's answer is the Weber point of
//! quasi-regular configurations (Section III). This example starts from
//! perfectly symmetric, biangular and centre-occupied swarms, prints the
//! classification artefacts (symmetry, regularity period, Weber point) and
//! then watches WAIT-FREE-GATHER drive each one to a rendezvous while the
//! motion adversary keeps interrupting moves.
//!
//! ```sh
//! cargo run --example symmetric_swarm
//! ```

use gather_config::{classify, detect_quasi_regularity, rotational_symmetry, Configuration};
use gather_geom::{Point, Tol};
use gather_sim::prelude::*;
use gather_workloads as workloads;
use gathering::WaitFreeGather;

fn inspect(name: &str, pts: Vec<Point>) {
    let tol = Tol::default();
    let config = Configuration::canonical(pts.clone(), tol);
    let analysis = classify(&config, tol);
    let sym = rotational_symmetry(&config, tol);
    print!(
        "{name:<22} n={:<3} class={:<3} sym={sym:<2}",
        config.len(),
        analysis.class.short_name(),
    );
    if let Some(qr) = detect_quasi_regularity(&config, tol) {
        print!(
            " qreg={:<2} weber=({:.3}, {:.3}) center_occupied={}",
            qr.m, qr.center.x, qr.center.y, qr.center_occupied
        );
    }
    println!();

    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .scheduler(RoundRobin::new(3))
        .motion(RandomStops::new(0.3, 99))
        .crash_plan(RandomCrashes::new(config.len() / 3, 0.05, 17))
        .build();
    let outcome = engine.run(30_000);
    let classes: Vec<&str> = engine
        .trace()
        .class_sequence()
        .iter()
        .map(|c| c.short_name())
        .collect();
    match outcome {
        RunOutcome::Gathered { round, point } => println!(
            "{:<22} gathered in {round} rounds at ({:.3}, {:.3}); classes {}",
            "",
            point.x,
            point.y,
            classes.join("→")
        ),
        RunOutcome::RoundLimit { rounds } => {
            println!("{:<22} FAILED to gather in {rounds} rounds", "")
        }
    }
    assert!(outcome.gathered());
    println!();
}

fn main() {
    println!("symmetric and quasi-regular swarms under WAIT-FREE-GATHER\n");

    inspect("pentagon", workloads::regular_polygon(5, 4.0, 0.2));
    inspect("hexagon + centre", workloads::ring_with_center(6, 1, 5.0));
    inspect("biangular (k=4)", workloads::biangular(4, 0.45, 2.0, 5.0));
    inspect("two nested squares", {
        let mut pts = workloads::regular_polygon(4, 5.0, 0.0);
        pts.extend(workloads::regular_polygon(4, 2.0, 0.6));
        pts
    });
    inspect("partially converged", workloads::quasi_regular(5, 2, 31));
    inspect("square grid", workloads::grid(4, 4, 2.0));

    println!(
        "in every case the swarm's symmetry prevents electing a leader \
         robot, yet the string-of-angles periodicity pins the Weber point, \
         which stays invariant while robots move toward it — even when a \
         third of them crash en route."
    );
}
