//! Microbenchmarks of the geometry substrate: the primitives on the hot
//! path of every robot activation (smallest enclosing circle, convex hull,
//! Weiszfeld iteration, medians).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gather_geom::{
    convex_hull, smallest_enclosing_circle, weber::median_interval_on_line, weber_point_weiszfeld,
    Tol,
};
use gather_workloads as workloads;
use std::hint::black_box;

fn bench_sec(c: &mut Criterion) {
    let mut group = c.benchmark_group("smallest_enclosing_circle");
    for n in [8usize, 32, 128, 512] {
        let pts = workloads::random_scatter(n, 10.0, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| smallest_enclosing_circle(black_box(pts)));
        });
    }
    group.finish();
}

fn bench_hull(c: &mut Criterion) {
    let mut group = c.benchmark_group("convex_hull");
    for n in [8usize, 32, 128, 512] {
        let pts = workloads::random_scatter(n, 10.0, 11);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| convex_hull(black_box(pts)));
        });
    }
    group.finish();
}

fn bench_weiszfeld(c: &mut Criterion) {
    let mut group = c.benchmark_group("weber_weiszfeld");
    let tol = Tol::default();
    for n in [8usize, 32, 128] {
        let pts = workloads::random_scatter(n, 10.0, 13);
        group.bench_with_input(BenchmarkId::new("scatter", n), &pts, |b, pts| {
            b.iter(|| weber_point_weiszfeld(black_box(pts), tol));
        });
        // Symmetric inputs converge differently (centre capture path).
        let ring = workloads::regular_polygon(n, 5.0, 0.3);
        group.bench_with_input(BenchmarkId::new("ring", n), &ring, |b, pts| {
            b.iter(|| weber_point_weiszfeld(black_box(pts), tol));
        });
    }
    group.finish();
}

fn bench_median(c: &mut Criterion) {
    let mut group = c.benchmark_group("collinear_median");
    let tol = Tol::default();
    for n in [9usize, 65, 257] {
        let pts = workloads::collinear_1w(n, 17);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| median_interval_on_line(black_box(pts), tol));
        });
    }
    group.finish();
}

/// Criterion configuration tuned so the whole suite runs in minutes: the
/// measured functions are deterministic and microsecond-scale, so small
/// samples already give stable medians.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {name = benches; config = quick(); targets = bench_sec, bench_hull, bench_weiszfeld, bench_median}
criterion_main!(benches);
