//! Microbenchmarks of the configuration-analysis layer: classification is
//! executed by every robot on every activation, so its cost dominates the
//! COMPUTE phase of the model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gather_config::{
    classify, detect_quasi_regularity, quasi_regular_with_center, rotational_symmetry,
    string_of_angles, view_of, Class, Configuration,
};
use gather_geom::{Point, Tol};
use gather_workloads as workloads;
use std::hint::black_box;

fn tol() -> Tol {
    Tol::default()
}

fn bench_classify(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify");
    for class in [
        Class::Multiple,
        Class::Collinear1W,
        Class::Collinear2W,
        Class::QuasiRegular,
        Class::Asymmetric,
    ] {
        for n in [8usize, 16, 32] {
            let config = Configuration::canonical(workloads::of_class(class, n, 3), tol());
            group.bench_with_input(
                BenchmarkId::new(class.short_name(), n),
                &config,
                |b, config| {
                    b.iter(|| classify(black_box(config), tol()));
                },
            );
        }
    }
    group.finish();
}

fn bench_views(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_of");
    for n in [8usize, 32, 128] {
        let config = Configuration::canonical(workloads::random_scatter(n, 8.0, 5), tol());
        let p = config.distinct_points()[0];
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(config, p),
            |b, (config, p)| {
                b.iter(|| view_of(black_box(config), *p, tol()));
            },
        );
    }
    group.finish();
}

fn bench_symmetry(c: &mut Criterion) {
    let mut group = c.benchmark_group("rotational_symmetry");
    for n in [8usize, 16, 32] {
        let config = Configuration::canonical(workloads::regular_polygon(n, 4.0, 0.2), tol());
        group.bench_with_input(BenchmarkId::new("ring", n), &config, |b, config| {
            b.iter(|| rotational_symmetry(black_box(config), tol()));
        });
    }
    group.finish();
}

fn bench_string_of_angles(c: &mut Criterion) {
    let mut group = c.benchmark_group("string_of_angles");
    for n in [8usize, 64, 256] {
        let config = Configuration::canonical(workloads::random_scatter(n, 8.0, 9), tol());
        group.bench_with_input(BenchmarkId::from_parameter(n), &config, |b, config| {
            b.iter(|| string_of_angles(black_box(config), Point::ORIGIN, tol()).periodicity());
        });
    }
    group.finish();
}

fn bench_qr_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("quasi_regularity");
    for n in [8usize, 16, 32, 64] {
        let positive = Configuration::canonical(workloads::regular_polygon(n, 4.0, 0.1), tol());
        group.bench_with_input(BenchmarkId::new("ring", n), &positive, |b, config| {
            b.iter(|| detect_quasi_regularity(black_box(config), tol()));
        });
        let negative = Configuration::canonical(workloads::asymmetric(n, 5), tol());
        group.bench_with_input(BenchmarkId::new("asymmetric", n), &negative, |b, config| {
            b.iter(|| detect_quasi_regularity(black_box(config), tol()));
        });
    }
    // The Lemma 3.4 occupied-centre test in isolation.
    for n in [8usize, 32] {
        let config = Configuration::canonical(workloads::ring_with_center(n - 1, 1, 4.0), tol());
        group.bench_with_input(BenchmarkId::new("lemma34", n), &config, |b, config| {
            b.iter(|| quasi_regular_with_center(black_box(config), Point::ORIGIN, tol()));
        });
    }
    group.finish();
}

/// Criterion configuration tuned so the whole suite runs in minutes: the
/// measured functions are deterministic and microsecond-scale, so small
/// samples already give stable medians.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {name = benches; config = quick(); targets = bench_classify, bench_views, bench_symmetry, bench_string_of_angles, bench_qr_detection}
criterion_main!(benches);
