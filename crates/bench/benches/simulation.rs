//! Benchmarks of the simulation engine: cost of one ATOM round and of a
//! complete gathering, per algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gather_bench::factory;
use gather_sim::prelude::*;
use gather_workloads as workloads;
use std::hint::black_box;

fn engine_for(n: usize, algorithm: &str, seed: u64) -> Engine {
    Engine::builder(workloads::random_scatter(n, 8.0, seed))
        .algorithm(factory::algorithm(algorithm))
        .scheduler(RoundRobin::new(2.max(n / 4)))
        .motion(RandomStops::new(0.4, seed))
        .check_invariants(false)
        .build()
}

fn bench_single_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_round");
    for n in [8usize, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::new("wait-free-gather", n), &n, |b, &n| {
            b.iter_batched(
                || engine_for(n, "wait-free-gather", 3),
                |mut engine| {
                    black_box(engine.step());
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_full_gather(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_gather");
    group.sample_size(20);
    for algorithm in ["wait-free-gather", "center-of-gravity", "weber-oracle"] {
        for n in [8usize, 16] {
            group.bench_with_input(
                BenchmarkId::new(algorithm, n),
                &(algorithm, n),
                |b, &(algorithm, n)| {
                    b.iter_batched(
                        || engine_for(n, algorithm, 5),
                        |mut engine| {
                            black_box(engine.run(100_000));
                        },
                        criterion::BatchSize::SmallInput,
                    );
                },
            );
        }
    }
    group.finish();
}

fn bench_invariant_audit_overhead(c: &mut Criterion) {
    // Ablation: cost of the per-round Lemma 5.1 monitor.
    let mut group = c.benchmark_group("audit_overhead");
    for audit in [false, true] {
        group.bench_with_input(BenchmarkId::new("round_n16", audit), &audit, |b, &audit| {
            b.iter_batched(
                || {
                    Engine::builder(workloads::random_scatter(16, 8.0, 7))
                        .algorithm(factory::algorithm("wait-free-gather"))
                        .check_invariants(audit)
                        .build()
                },
                |mut engine| {
                    black_box(engine.step());
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// Criterion configuration tuned so the whole suite runs in minutes: the
/// measured functions are deterministic and microsecond-scale, so small
/// samples already give stable medians.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {name = benches; config = quick(); targets = bench_single_round, bench_full_gather, bench_invariant_audit_overhead}
criterion_main!(benches);
