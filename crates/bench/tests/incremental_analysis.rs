//! The incremental-analysis bit-identity contract: an engine built with
//! `incremental(true)` — dirty-tracked canonicalisation, patched distinct
//! multisets, dirty-skipped static rounds — must produce byte-for-byte the
//! same positions, `RunMetrics`, violations and outcome as the
//! full-recompute reference path, for every configuration class,
//! scheduler, motion floor and crash count.
//!
//! The one allowed difference is the `dirty_skips` counter itself: it
//! reports how many memo hits the incremental path *proved* with an empty
//! dirty set, and is always zero on the reference path. Everything else —
//! including `computed` and `hits`, whose drift would be the first symptom
//! of the dirty set desynchronising from the cache memo — must match
//! exactly (same convention as `tests/batch_identity.rs`).

use gather_bench::runner::Scenario;
use gather_bench::sweep::lane_spec;
use gather_config::Class;
use gather_geom::Point;
use gather_sim::prelude::*;
use gather_workloads as workloads;

/// Every configuration class of the paper's taxonomy, crossed with all
/// four schedulers, two motion floors, and crash counts {0, 3}, under the
/// stingy `random` motion adversary — the `tests/batch_identity.rs` grid.
/// Randomised move/crash/wait sequences fall out of the seeded `random`
/// scheduler + motion + crash plan combination.
fn all_class_grid(audit: bool) -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    for class in Class::all() {
        for (t, &sched) in ["full", "round-robin", "single", "random"]
            .iter()
            .enumerate()
        {
            let initial = workloads::of_class(class, 8, t as u64);
            for delta in [0.05, 0.2] {
                for faults in [0usize, 3] {
                    let mut s = Scenario::new(initial.clone(), t as u64);
                    s.scheduler = sched;
                    s.motion = "random";
                    s.delta = delta;
                    s.faults = faults;
                    s.max_rounds = 60;
                    s.audit = audit;
                    scenarios.push(s);
                }
            }
        }
    }
    scenarios
}

/// Runs one spec on a width-1 batch engine (the batch lane shares the
/// sequential engine's `StepCore` verbatim, and `LaneResult` carries
/// positions, metrics and violations in one comparable value).
fn run_lane(spec: LaneSpec) -> LaneResult {
    BatchEngine::new(1, EngineParts::default())
        .run(vec![spec])
        .pop()
        .expect("one spec, one result")
}

/// Masks the incremental-only `dirty_skips` counter so the two modes can
/// be compared for full equality.
fn masked(mut r: LaneResult) -> LaneResult {
    if let Some(cs) = r.metrics.analysis_cache.as_mut() {
        cs.dirty_skips = 0;
    }
    r
}

#[test]
fn incremental_matches_full_recompute_across_the_class_grid() {
    for audit in [true, false] {
        for (k, s) in all_class_grid(audit).iter().enumerate() {
            let reference = run_lane(lane_spec(s));
            let mut inc = lane_spec(s);
            inc.incremental = true;
            let incremental = run_lane(inc);
            let stats = incremental
                .metrics
                .analysis_cache
                .expect("lanes attach cache stats");
            let ref_stats = reference.metrics.analysis_cache.expect("stats");
            assert_eq!(ref_stats.dirty_skips, 0, "reference never dirty-skips");
            assert!(
                stats.dirty_skips <= stats.hits,
                "dirty skips are a subset of hits"
            );
            assert_eq!(
                masked(incremental),
                masked(reference),
                "scenario #{k} ({} / {} / audit={audit}) diverged",
                s.scheduler,
                s.faults,
            );
        }
    }
}

/// Never moves: every round is static, so the incremental path must serve
/// every round's shared analysis from the empty dirty set.
struct Stay;
impl Algorithm for Stay {
    fn name(&self) -> &'static str {
        "stay"
    }
    fn destination(&self, snap: &Snapshot) -> Point {
        snap.me()
    }
}

#[test]
fn all_static_rounds_dirty_skip_and_stay_identical() {
    let initial = workloads::random_scatter(12, 6.0, 5);
    let mk = |incremental: bool| {
        let mut s = LaneSpec::new(initial.clone(), Box::new(Stay));
        s.check_invariants = false; // Stay violates wait-freeness by design
        s.max_rounds = 50;
        s.incremental = incremental;
        s
    };
    let reference = run_lane(mk(false));
    let incremental = run_lane(mk(true));
    let stats = incremental.metrics.analysis_cache.expect("stats");
    assert_eq!(
        stats.dirty_skips, 50,
        "every static round must be a dirty skip"
    );
    assert_eq!(masked(incremental), masked(reference));
}

#[test]
fn all_robots_moving_every_round_stay_identical() {
    // Full sync + full motion, audits off: every live robot moves every
    // round, so the shared analysis goes through the patch path (non-empty
    // dirty set) essentially always — the all-dirty edge of the contract.
    let mut s = Scenario::new(workloads::of_class(Class::Asymmetric, 10, 7), 7);
    s.max_rounds = 120;
    s.audit = false;
    let reference = run_lane(lane_spec(&s));
    let mut inc = lane_spec(&s);
    inc.incremental = true;
    let incremental = run_lane(inc);
    let stats = incremental.metrics.analysis_cache.expect("stats");
    assert!(
        stats.computed > incremental.metrics.rounds / 2,
        "moving rounds must take the patch path (computed {} over {} rounds)",
        stats.computed,
        incremental.metrics.rounds,
    );
    assert_eq!(masked(incremental), masked(reference));
}
