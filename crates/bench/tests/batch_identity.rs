//! The mega-sweep bit-identity contract: [`run_batched_on`] must produce
//! byte-for-byte the same `RunMetrics` as the sequential
//! [`Scenario::run`] path, for every configuration class, batch width, and
//! pool size.
//!
//! This is the hard contract behind the B10 benchmark and the `sweep`
//! phase-cartography driver (DESIGN.md §14): the lockstep [`BatchEngine`]
//! shares its stage code (`StepCore`) with the per-scenario `Engine`, so
//! batching may only ever change *throughput*, never a single counter —
//! including the observability-ish ones (`weiszfeld_iters`,
//! `classifications`, `cache_hits`) that would drift first if the batch
//! path reordered or deduplicated per-round work it must not.

use gather_bench::pool::WorkerPool;
use gather_bench::runner::Scenario;
use gather_bench::sweep::{run_batched_on, CHUNK};
use gather_config::Class;
use gather_sim::metrics::RunMetrics;
use gather_workloads as workloads;

/// Every configuration class of the paper's taxonomy, crossed with all
/// four schedulers, two motion floors, and crash counts {0, 3}, under the
/// stingy `random` motion adversary. `max_rounds` is tight enough that
/// slow corners hit the round limit, so lane retirement and compaction are
/// exercised alongside normal gathering.
fn all_class_grid(audit: bool) -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    for class in Class::all() {
        for (t, &sched) in ["full", "round-robin", "single", "random"]
            .iter()
            .enumerate()
        {
            let initial = workloads::of_class(class, 8, t as u64);
            for delta in [0.05, 0.2] {
                for faults in [0usize, 3] {
                    let mut s = Scenario::new(initial.clone(), t as u64);
                    s.scheduler = sched;
                    s.motion = "random";
                    s.delta = delta;
                    s.faults = faults;
                    s.max_rounds = 60;
                    s.audit = audit;
                    scenarios.push(s);
                }
            }
        }
    }
    scenarios
}

fn run_sequential(scenarios: &[Scenario]) -> Vec<RunMetrics> {
    scenarios.iter().map(Scenario::run).collect()
}

#[test]
fn batched_execution_is_bit_identical_across_widths() {
    let scenarios = all_class_grid(true);
    let reference = run_sequential(&scenarios);
    let pool = WorkerPool::new(2);
    for width in [1usize, 3, 16] {
        let batched = run_batched_on(&pool, &scenarios, width);
        assert_eq!(
            batched, reference,
            "batched sweep at width {width} diverged from sequential"
        );
    }
}

#[test]
fn batched_execution_is_bit_identical_across_pool_sizes() {
    let scenarios = all_class_grid(true);
    let reference = run_sequential(&scenarios);
    for threads in [1usize, 2, 8] {
        let pool = WorkerPool::new(threads);
        let batched = run_batched_on(&pool, &scenarios, 16);
        assert_eq!(
            batched, reference,
            "batched sweep at {threads} threads diverged from sequential"
        );
    }
}

#[test]
fn audit_off_grid_matches_too() {
    // The sweep drivers run with audits off; the identity must not depend
    // on the invariant monitors being wired in.
    let scenarios = all_class_grid(false);
    let reference = run_sequential(&scenarios);
    let pool = WorkerPool::new(2);
    let batched = run_batched_on(&pool, &scenarios, 8);
    assert_eq!(batched, reference, "audit-off grid diverged");
}

#[test]
fn grids_longer_than_one_chunk_stay_in_input_order() {
    // Force multiple pool jobs (scenario count > CHUNK) by repeating the
    // grid; results must come back flattened in input order regardless of
    // which worker drained which chunk.
    let mut scenarios = Vec::new();
    while scenarios.len() <= CHUNK {
        scenarios.extend(all_class_grid(true));
    }
    let reference = run_sequential(&scenarios);
    let pool = WorkerPool::new(2);
    let batched = run_batched_on(&pool, &scenarios, 16);
    assert_eq!(batched, reference, "multi-chunk sweep diverged");
}

#[test]
fn interleaving_batched_and_sequential_runs_on_one_pool_is_stable() {
    // Both paths recycle the same per-worker `EngineParts` slot; alternating
    // them on one pool must not let state leak across the boundary.
    let scenarios = all_class_grid(true);
    let pool = WorkerPool::new(2);
    let first = run_batched_on(&pool, &scenarios, 16);
    for round in 1..4 {
        let sequential = pool.map(&scenarios, Scenario::run);
        let batched = run_batched_on(&pool, &scenarios, 16);
        assert_eq!(batched, sequential, "paths diverged at round {round}");
        assert_eq!(batched, first, "batched results drifted at round {round}");
    }
}
