//! Shutdown-under-load behaviour of the persistent [`WorkerPool`].
//!
//! The serving layer (`gather-serve`) shuts the pool down while requests
//! may still be in flight; these tests pin the contract it relies on:
//!
//! * an in-flight batch drains completely — its `run_batch` caller
//!   returns normally and every index ran exactly once;
//! * panics raised by jobs during the drain still propagate;
//! * a batch submitted after `shutdown()` panics instead of hanging;
//! * workers join cleanly on drop with no leaked threads.

use gather_bench::pool::WorkerPool;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Thread count of this process as reported by the kernel, when the
/// platform exposes it (`None` elsewhere — the leak check then degrades to
/// "drop did not hang", which the test exercises anyway by returning).
fn os_thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

#[test]
fn shutdown_mid_flight_drains_the_batch_and_joins_cleanly() {
    let threads_before = os_thread_count();
    let pool = Arc::new(WorkerPool::new(2));
    let counts: Arc<Vec<AtomicUsize>> = Arc::new((0..32).map(|_| AtomicUsize::new(0)).collect());
    let submitter = {
        let pool = Arc::clone(&pool);
        let counts = Arc::clone(&counts);
        std::thread::spawn(move || {
            pool.run_batch(counts.len(), &|i| {
                // Slow jobs keep the batch in flight while the main thread
                // calls `shutdown` (32 × 5 ms over 2 workers ≈ 80 ms).
                std::thread::sleep(Duration::from_millis(5));
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
        })
    };
    std::thread::sleep(Duration::from_millis(20));
    pool.shutdown();
    pool.shutdown(); // idempotent
    assert!(pool.is_shut_down());

    // The submitter must return normally: shutdown drains in-flight work.
    submitter.join().expect("run_batch must survive shutdown");
    for (i, c) in counts.iter().enumerate() {
        assert_eq!(c.load(Ordering::Relaxed), 1, "index {i} ran != 1 times");
    }

    // New work after shutdown is refused loudly (a silent hang would
    // deadlock the serving layer's drain path).
    let refused = catch_unwind(AssertUnwindSafe(|| pool.run_batch(1, &|_| {})));
    assert!(refused.is_err(), "run_batch after shutdown must panic");

    // Dropping the last handle joins the workers; if any worker leaked the
    // kernel thread count would stay elevated.
    let pool = Arc::try_unwrap(pool).ok().expect("last Arc");
    drop(pool);
    if let (Some(before), Some(after)) = (threads_before, os_thread_count()) {
        assert!(
            after <= before,
            "worker threads leaked: {after} alive after drop vs {before} before spawn"
        );
    }
}

#[test]
fn panics_still_propagate_when_shutdown_races_the_batch() {
    let pool = Arc::new(WorkerPool::new(2));
    let submitter = {
        let pool = Arc::clone(&pool);
        std::thread::spawn(move || {
            catch_unwind(AssertUnwindSafe(|| {
                pool.run_batch(16, &|i| {
                    std::thread::sleep(Duration::from_millis(5));
                    assert!(i != 9, "boom at nine");
                });
            }))
        })
    };
    std::thread::sleep(Duration::from_millis(10));
    pool.shutdown();
    let result = submitter.join().expect("submitter thread must not die");
    assert!(
        result.is_err(),
        "the job panic must reach the run_batch caller even during shutdown"
    );
}

#[test]
fn shutdown_with_idle_pool_is_immediate() {
    let pool = WorkerPool::new(3);
    let out = pool.map(&[1u64, 2, 3], |x| x * 2);
    assert_eq!(out, vec![2, 4, 6]);
    pool.shutdown();
    drop(pool); // joins without hanging
}
