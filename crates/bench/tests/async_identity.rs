//! The ASYNC degeneracy contract, end to end: with zero phase durations
//! (atomic LCM cycles), lockstep pacing, every robot activated and rigid
//! motion, the event-heap engine **is** the FSYNC round engine — same
//! `RunOutcome`, same positions, same per-round trace bytes, same
//! analysis-cache counters — for every configuration class and under
//! crashes. And away from the degenerate corner, an ASYNC run is a pure
//! function of its seed: the same spec yields byte-identical NDJSON
//! regardless of how many pool workers execute around it.

use gather_bench::pool::WorkerPool;
use gather_bench::runner::Scenario;
use gather_bench::sweep::run_batched_on;
use gather_config::Class;
use gather_geom::Point;
use gather_sim::prelude::*;
use gather_workloads::of_class;
use gathering::WaitFreeGather;

/// Builds the FSYNC and degenerate-ASYNC twins of one scenario: same
/// algorithm, same derived seeds, same crash plan, same frame policy.
fn twins(initial: Vec<Point>, seed: u64, faults: usize) -> (Engine, AsyncEngine) {
    let n = initial.len();
    let sync = Engine::builder(initial.clone())
        .algorithm(WaitFreeGather::default())
        .crash_plan(RandomCrashes::new(faults, 0.05, seed.wrapping_add(2)))
        .frames(FramePolicy::RandomPerActivation {
            seed: seed.wrapping_add(3),
        })
        .check_invariants(true)
        .build();
    let async_eng = AsyncEngine::builder(initial)
        .algorithm(WaitFreeGather::default())
        .crash_plan(RandomCrashes::new(
            faults.min(n - 1),
            0.05,
            seed.wrapping_add(2),
        ))
        .frames(FramePolicy::RandomPerActivation {
            seed: seed.wrapping_add(3),
        })
        .check_invariants(true)
        .build();
    (sync, async_eng)
}

#[test]
fn degenerate_async_is_bit_identical_to_fsync_for_all_six_classes() {
    for class in Class::all() {
        for faults in [0usize, 2] {
            let initial = of_class(class, 8, 17);
            let (mut sync, mut async_eng) = twins(initial, 900, faults);
            let a = sync.run(4_000);
            let b = async_eng.run(4_000);
            let tag = format!("class {} faults {faults}", class.short_name());
            assert_eq!(a, b, "{tag}: outcomes diverged");
            assert_eq!(sync.positions(), async_eng.positions(), "{tag}: positions");
            assert_eq!(sync.alive(), async_eng.alive(), "{tag}: liveness");
            assert_eq!(
                sync.trace().to_jsonl(),
                async_eng.trace().to_jsonl(),
                "{tag}: trace bytes"
            );
            assert_eq!(
                sync.violations(),
                async_eng.violations(),
                "{tag}: audit verdicts"
            );
            assert_eq!(
                sync.analysis_cache_stats(),
                async_eng.analysis_cache_stats(),
                "{tag}: cache counters"
            );
        }
    }
}

fn async_grid() -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    for (ci, class) in [Class::Multiple, Class::Asymmetric, Class::QuasiRegular]
        .into_iter()
        .enumerate()
    {
        let initial = of_class(class, 8, 50 + ci as u64);
        for (rigid, skew) in [(true, 0.0), (false, 0.5)] {
            let mut s = Scenario::new(initial.clone(), 7_000 + ci as u64);
            s.scheduler = "async";
            s.audit = false;
            s.rigid = rigid;
            s.speed_skew = skew;
            s.faults = ci % 3;
            s.max_rounds = 60_000;
            scenarios.push(s);
        }
    }
    scenarios
}

#[test]
fn same_seed_async_ndjson_is_identical_across_pool_sizes() {
    let scenarios = async_grid();
    let render = |metrics: &[gather_sim::metrics::RunMetrics]| -> String {
        metrics
            .iter()
            .map(|m| format!("{}\n", m.to_jsonl()))
            .collect()
    };
    let sequential = render(&scenarios.iter().map(|s| s.run()).collect::<Vec<_>>());
    for threads in [1usize, 2, 8] {
        let pool = WorkerPool::new(threads);
        let batched = render(&run_batched_on(&pool, &scenarios, 4));
        assert_eq!(
            batched, sequential,
            "pool of {threads} changed the served bytes"
        );
    }
}

#[test]
fn same_seed_async_trace_bytes_are_reproducible() {
    for s in async_grid() {
        let (m1, t1) = s.run_traced();
        let (m2, t2) = s.run_traced();
        assert_eq!(m1, m2);
        assert_eq!(t1, t2, "trace bytes must be a pure function of the spec");
        assert!(!t1.is_empty());
    }
}
