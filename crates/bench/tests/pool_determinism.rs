//! Worker-pool determinism: a sweep executed through [`WorkerPool::map`]
//! must yield bit-identical `RunMetrics`, in input order, for every thread
//! count — and must match a plain sequential loop over the same scenarios.
//!
//! This pins the DESIGN.md §10 contract: per-thread engine recycling
//! (`EngineParts` + `AnalysisCache::reset`) is observationally invisible,
//! and results never depend on which worker ran which scenario or how
//! indices interleaved.

use gather_bench::pool::WorkerPool;
use gather_bench::runner::Scenario;
use gather_sim::metrics::RunMetrics;
use gather_workloads as workloads;

/// A small but class-diverse sweep (every paper class × 2 seeds, n = 8,
/// with a couple of fault/scheduler variations mixed in).
fn sweep() -> Vec<Scenario> {
    workloads::class_sweep(8, 2)
        .into_iter()
        .enumerate()
        .map(|(i, (_class, seed, initial))| {
            let mut s = Scenario::new(initial, seed);
            s.max_rounds = 400;
            if i % 3 == 1 {
                s.faults = 1;
            }
            if i % 4 == 2 {
                s.scheduler = "round-robin";
            }
            s
        })
        .collect()
}

fn run_sequential(scenarios: &[Scenario]) -> Vec<RunMetrics> {
    scenarios.iter().map(Scenario::run).collect()
}

#[test]
fn pool_results_are_bit_identical_across_thread_counts() {
    let scenarios = sweep();
    let reference = run_sequential(&scenarios);
    for threads in [1, 2, 8] {
        let pool = WorkerPool::new(threads);
        let pooled = pool.map(&scenarios, Scenario::run);
        assert_eq!(
            pooled, reference,
            "pooled sweep at {threads} threads diverged from sequential"
        );
    }
}

#[test]
fn repeated_pooled_sweeps_on_one_pool_are_stable() {
    // Recycled engine parts accumulate across batches on the same workers;
    // results must not drift from the first batch to the fifth.
    let scenarios = sweep();
    let pool = WorkerPool::new(2);
    let first = pool.map(&scenarios, Scenario::run);
    for round in 1..5 {
        let again = pool.map(&scenarios, Scenario::run);
        assert_eq!(again, first, "pooled sweep drifted at round {round}");
    }
}
