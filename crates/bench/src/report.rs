//! Shared record/gate plumbing for the `bX_*` benchmark binaries.
//!
//! Every performance benchmark (B1, B7, B8, B9, B10) follows the same
//! contract: full runs overwrite the committed `BENCH_<name>.json` at the
//! repo root, while `--quick` and `--baseline` runs write their (reduced or
//! comparison) record to the `--out` directory and leave the committed file
//! untouched; accumulated gate failures print as `BX FAILURES:` and fail
//! the process. This module is that contract, written once — the binaries
//! keep only what is genuinely theirs (the sweeps and the gates).

use std::path::{Path, PathBuf};

/// Routes a benchmark's JSON record to the right file and announces it.
///
/// * full mode (`!quick`, no baseline) → `BENCH_<name>.json` at the repo
///   root: the committed record;
/// * `--quick` → `<out_dir>/<name>.json`, noting the committed record was
///   left untouched (a reduced sweep must never become the record);
/// * `--baseline` (regression check) → `<out_dir>/<name>.json`.
///
/// Returns the path written.
pub fn emit_record(
    name: &str,
    json: &str,
    out_dir: &Path,
    quick: bool,
    regression_check: bool,
) -> PathBuf {
    if regression_check || quick {
        std::fs::create_dir_all(out_dir).expect("create out dir");
        let fresh = out_dir.join(format!("{name}.json"));
        std::fs::write(&fresh, json).expect("write fresh JSON");
        if quick && !regression_check {
            println!(
                "wrote {} (quick run; BENCH_{name}.json left untouched)",
                fresh.display()
            );
        } else {
            println!("wrote {}", fresh.display());
        }
        fresh
    } else {
        let bench_out = PathBuf::from(format!("BENCH_{name}.json"));
        std::fs::write(&bench_out, json).expect("write BENCH json");
        println!("wrote {}", bench_out.display());
        bench_out
    }
}

/// Prints accumulated gate failures under a `LABEL FAILURES:` banner and
/// exits with status 1; a no-op when the list is empty.
pub fn fail_if_any(label: &str, failures: &[String]) {
    if failures.is_empty() {
        return;
    }
    eprintln!("\n{label} FAILURES:");
    for failure in failures {
        eprintln!("  {failure}");
    }
    std::process::exit(1);
}

/// Reads a committed baseline record, panicking with the path on failure.
pub fn read_baseline(path: &Path) -> String {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read baseline {}: {e}", path.display()))
}

/// Extracts the number following `key` on `line` — enough JSON structure
/// for the line-per-row records the benchmarks themselves write, with no
/// JSON dependency.
pub fn extract_number(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let rest = line[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `(key1, key2)` number pairs from lines that carry both keys.
pub fn parse_pairs(text: &str, key1: &str, key2: &str) -> Vec<(f64, f64)> {
    text.lines()
        .filter_map(|line| extract_number(line, key1).zip(extract_number(line, key2)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_number_handles_row_shapes() {
        assert_eq!(extract_number("{\"n\": 8, \"x\": 1}", "\"n\":"), Some(8.0));
        assert_eq!(
            extract_number("  {\"rps\": 1234.5e2},", "\"rps\":"),
            Some(123450.0)
        );
        assert_eq!(extract_number("{\"n\": -3}", "\"n\":"), Some(-3.0));
        assert_eq!(extract_number("{\"m\": 8}", "\"n\":"), None);
    }

    #[test]
    fn parse_pairs_requires_both_keys_on_one_line() {
        let text = "{\"a\": 1, \"b\": 2}\n{\"a\": 3}\n{\"b\": 4}\n{\"a\": 5, \"b\": 6}";
        assert_eq!(
            parse_pairs(text, "\"a\":", "\"b\":"),
            vec![(1.0, 2.0), (5.0, 6.0)]
        );
    }

    #[test]
    fn emit_record_routes_by_mode() {
        let dir = std::env::temp_dir().join(format!("report_emit_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.join("out");

        let quick = emit_record("report_selftest", "{\"q\":1}\n", &out, true, false);
        assert_eq!(quick, out.join("report_selftest.json"));
        assert_eq!(std::fs::read_to_string(&quick).unwrap(), "{\"q\":1}\n");

        let check = emit_record("report_selftest", "{\"c\":1}\n", &out, false, true);
        assert_eq!(check, out.join("report_selftest.json"));
        assert_eq!(std::fs::read_to_string(&check).unwrap(), "{\"c\":1}\n");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fail_if_any_is_quiet_on_success() {
        fail_if_any("BX", &[]);
    }
}
