//! Name-indexed construction of algorithms, schedulers and adversaries, so
//! experiment sweeps are plain data.

use gather_sim::prelude::*;
use gathering::{
    AgmonPelegStyle, CenterOfGravity, GridMarch, OrderedMarch, WaitFreeGather, WeberOracle,
};

/// All algorithm names, the paper's algorithm first. `grid-march` is the
/// grid-model rule (Bose et al.): non-equivariant by design, so the
/// harness pins it to the global frame (see `Scenario::frame_policy`).
pub const ALGORITHMS: [&str; 6] = [
    "wait-free-gather",
    "ordered-march",
    "agmon-peleg",
    "center-of-gravity",
    "weber-oracle",
    "grid-march",
];

/// All scheduler names.
pub const SCHEDULERS: [&str; 4] = ["full", "round-robin", "single", "random"];

/// All motion-adversary names.
pub const MOTIONS: [&str; 3] = ["full", "delta", "random"];

/// Builds an algorithm by name.
///
/// # Panics
///
/// Panics on an unknown name (see [`ALGORITHMS`]).
pub fn algorithm(name: &str) -> Box<dyn Algorithm> {
    match name {
        "wait-free-gather" => Box::new(WaitFreeGather::default()),
        "ordered-march" => Box::new(OrderedMarch::default()),
        "agmon-peleg" => Box::new(AgmonPelegStyle::default()),
        "center-of-gravity" => Box::new(CenterOfGravity::new()),
        "weber-oracle" => Box::new(WeberOracle::default()),
        "grid-march" => Box::new(GridMarch::new()),
        other => panic!("unknown algorithm {other}"),
    }
}

/// Builds a scheduler by name (`n` sizes the starvation cap of the random
/// scheduler).
///
/// # Panics
///
/// Panics on an unknown name (see [`SCHEDULERS`]).
pub fn scheduler(name: &str, n: usize, seed: u64) -> Box<dyn Scheduler> {
    match name {
        "full" => Box::new(EveryRobot),
        "round-robin" => Box::new(RoundRobin::new(2.max(n / 4))),
        "single" => Box::new(SequentialSingle::new()),
        "random" => Box::new(RandomSubsets::new(0.4, 6 * n as u64, seed)),
        other => panic!("unknown scheduler {other}"),
    }
}

/// Builds a motion adversary by name.
///
/// # Panics
///
/// Panics on an unknown name (see [`MOTIONS`]).
pub fn motion(name: &str, seed: u64) -> Box<dyn MotionAdversary> {
    match name {
        "full" => Box::new(FullMotion),
        "delta" => Box::new(AlwaysDelta),
        "random" => Box::new(RandomStops::new(0.4, seed)),
        other => panic!("unknown motion adversary {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_name_constructs() {
        for name in ALGORITHMS {
            assert_eq!(algorithm(name).name(), name);
        }
        for name in SCHEDULERS {
            assert_eq!(scheduler(name, 8, 0).name(), name);
        }
        for name in MOTIONS {
            assert_eq!(motion(name, 0).name(), name);
        }
    }

    #[test]
    #[should_panic(expected = "unknown algorithm")]
    fn unknown_algorithm_panics() {
        let _ = algorithm("nope");
    }
}
