//! T4 — Theorem 3.1: quasi-regularity detection and Weber-point output.
//!
//! Generates labelled configurations — quasi-regular families (regular
//! polygons, biangular, radially-converged symmetric, occupied-centre) and
//! non-quasi-regular controls (asymmetric with vertex Weber points,
//! random scatters of n ≥ 5) — and measures detection rate, Weber-point
//! error against the ground-truth centre, and detection latency.
//!
//! Expected shape: ~100% detection on every positive family with Weber
//! error at numeric-noise level (≤ 1e-5 of the configuration radius);
//! ~0% false positives on the asymmetric control (random scatters of
//! small n are legitimately quasi-regular — see DESIGN.md on Fermat
//! points — so the control uses vertex-Weber constructions).

use gather_bench::runner::{mean, parallel_map};
use gather_bench::table::{f, pct, Table};
use gather_bench::Args;
use gather_config::{detect_quasi_regularity, Configuration};
use gather_geom::{Point, Tol};
use gather_workloads as workloads;
use std::time::Instant;

struct Family {
    name: &'static str,
    expect_qr: bool,
    /// Ground-truth centre when known.
    center: Option<Point>,
    generate: fn(usize, u64) -> Vec<Point>,
}

fn main() {
    let args = Args::parse();
    let families = [
        Family {
            name: "regular-polygon",
            expect_qr: true,
            center: Some(Point::ORIGIN),
            generate: |n, seed| workloads::regular_polygon(n, 3.0, seed as f64 * 0.21),
        },
        Family {
            name: "biangular",
            expect_qr: true,
            center: Some(Point::ORIGIN),
            generate: |n, _seed| {
                let k = (n / 2).max(2);
                workloads::biangular(k, std::f64::consts::TAU / (2.3 * k as f64), 2.0, 4.5)
            },
        },
        Family {
            name: "radially-converged",
            expect_qr: true,
            center: Some(Point::ORIGIN),
            generate: |n, seed| workloads::quasi_regular((n / 2).max(2), 2, seed),
        },
        Family {
            name: "occupied-centre",
            expect_qr: true,
            center: Some(Point::ORIGIN),
            generate: |n, _seed| workloads::ring_with_center(n.saturating_sub(1).max(3), 1, 3.0),
        },
        Family {
            name: "asymmetric-control",
            expect_qr: false,
            center: None,
            generate: |n, seed| workloads::asymmetric(n.max(4), seed),
        },
    ];
    let sizes: &[usize] = if args.quick {
        &[6, 12]
    } else {
        &[4, 6, 8, 12, 16, 24, 32]
    };
    let tol = Tol::default();

    let mut table = Table::new(&[
        "family",
        "n",
        "trials",
        "detected",
        "correct",
        "weber err(mean)",
        "latency µs(mean)",
    ]);

    for fam in &families {
        for &n in sizes {
            let inputs: Vec<Vec<Point>> = (0..args.trials as u64)
                .map(|seed| (fam.generate)(n, seed))
                .collect();
            let results = parallel_map(inputs, |pts| {
                let config = Configuration::canonical(pts.clone(), tol);
                let start = Instant::now();
                let qr = detect_quasi_regularity(&config, tol);
                let micros = start.elapsed().as_secs_f64() * 1e6;
                (qr.map(|q| q.center), micros)
            });
            let detected = results.iter().filter(|(c, _)| c.is_some()).count();
            let correct = results
                .iter()
                .filter(|(c, _)| c.is_some() == fam.expect_qr)
                .count();
            let errors: Vec<f64> = results
                .iter()
                .filter_map(|(c, _)| match (c, fam.center) {
                    (Some(found), Some(truth)) => Some(found.dist(truth)),
                    _ => None,
                })
                .collect();
            let latency: Vec<f64> = results.iter().map(|(_, us)| *us).collect();
            table.push(vec![
                fam.name.into(),
                n.to_string(),
                args.trials.to_string(),
                pct(detected, args.trials),
                pct(correct, args.trials),
                if errors.is_empty() {
                    "-".into()
                } else {
                    format!("{:.2e}", mean(&errors))
                },
                f(mean(&latency), 1),
            ]);
        }
    }

    println!("T4 — Theorem 3.1: quasi-regularity detection quality and latency\n");
    table.print();
    let out = args.out_dir.join("t4_qr_detection.csv");
    table.write_csv(&out).expect("write CSV");
    println!("\nwrote {}", out.display());
}
