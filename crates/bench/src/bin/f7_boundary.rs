//! F7 — boundary maps for the related-work scenario families on the
//! event-heap ASYNC engine: where does gathering succeed *under the
//! stronger model predicate*, and where does it fail once the execution
//! leaves the paper's model?
//!
//! Two families, each a `f × rigidity × speed-skew` grid with several
//! seeds per cell (DESIGN.md §17, EXPERIMENTS.md):
//!
//! * **Grid-constrained gathering** (Bose et al., arXiv:1709.00877) —
//!   robots on ℤ² under the grid rule with the grid model's common
//!   compass. Success is `GATHERED` *and* zero resting-off-lattice
//!   violations over the whole execution
//!   ([`gather_workloads::checkers::grid_resting_violations`], sampled
//!   every tick against the engine's flight state; crashed robots are
//!   exempt — a casualty strands wherever it died). The expected
//!   boundary: rigid columns are clean, non-rigid columns fail — the
//!   adversary stops robots mid-edge, and a robot *resting* between
//!   lattice points is exactly the state the grid model forbids.
//! * **Stand-up indulgent gathering** (Bramas et al., arXiv:2302.03466) —
//!   robot 0 is the designated casualty, crashed at tick 0 (extra `f-1`
//!   crashes hit the next-lowest indices). Success is
//!   [`gather_workloads::checkers::standup_success`]: every correct robot
//!   co-located with the *casualty*, not merely with each other. Two
//!   placements map the boundary: `at-weber` seats the casualty on the
//!   Weber point of a ring (the paper's algorithm gathers there, so it
//!   stands up "by accident"), `scattered` places it randomly — the
//!   Weber-seeking algorithm then gathers *away* from the casualty and
//!   fails the predicate even though plain `GATHERED` holds. That failure
//!   regime is the point: crash-tolerant gathering à la Bouzid-Das-Tixeuil
//!   does not solve stand-up indulgent gathering.
//!
//! Full runs commit `results/grid_boundary.{json,svg}` and
//! `results/standup_boundary.{json,svg}`; `--quick` writes reduced
//! `*_quick.*` grids into `--out` and leaves the committed maps untouched.

use gather_bench::table::{f as fmt_f, Table};
use gather_bench::Args;
use gather_geom::{Point, Tol};
use gather_sim::prelude::*;
use gather_viz::{render_heatmap_sheet, HeatmapPanel, HeatmapStyle};
use gather_workloads::checkers;
use gather_workloads::{lattice_scatter, random_scatter, ring_with_center};
use gathering::{GridMarch, WaitFreeGather};

/// Tick budget per run (a tick is one event batch, ~one robot phase).
const MAX_TICKS: u64 = 60_000;
/// Speed-skew axis: uniform, mild spread, severe spread.
const SKEWS: [f64; 3] = [0.0, 0.5, 2.0];

#[derive(Clone, Copy, PartialEq)]
enum Rig {
    Rigid,
    NonRigid,
}

impl Rig {
    fn label(self) -> &'static str {
        match self {
            Rig::Rigid => "rigid",
            Rig::NonRigid => "non-rigid",
        }
    }
    fn to_engine(self, seed: u64) -> Rigidity {
        match self {
            Rig::Rigid => Rigidity::Rigid,
            Rig::NonRigid => Rigidity::NonRigid {
                stop_prob: 0.25,
                seed: seed.wrapping_add(6),
            },
        }
    }
}

const RIGS: [Rig; 2] = [Rig::Rigid, Rig::NonRigid];

struct AsyncSpec<'a> {
    initial: &'a [Point],
    seed: u64,
    rig: Rig,
    skew: f64,
}

fn phased_builder(spec: &AsyncSpec, frames: FramePolicy) -> AsyncEngineBuilder {
    let mut b = AsyncEngine::builder(spec.initial.to_vec())
        .timing(Timing::Phased {
            compute_time: 0.25,
            speed: 1.0,
        })
        .pacing(Pacing::Exponential {
            rate: 1.0,
            seed: spec.seed.wrapping_add(4),
        })
        .rigidity(spec.rig.to_engine(spec.seed))
        .frames(frames)
        .check_invariants(false);
    if spec.skew > 0.0 {
        b = b.speed_skew(spec.skew, spec.seed.wrapping_add(5));
    }
    b
}

/// One grid-family run: `GATHERED` plus a per-tick audit that no *live*
/// robot ever rests off the lattice. Returns `(success, violations)`.
fn run_grid(spec: &AsyncSpec, faults: usize) -> (bool, u64) {
    let n = spec.initial.len();
    let mut engine = phased_builder(spec, FramePolicy::GlobalFrame)
        .algorithm(GridMarch::new())
        .crash_plan(RandomCrashes::new(
            faults.min(n - 1),
            0.05,
            spec.seed.wrapping_add(2),
        ))
        .build();
    let tol = Tol::default();
    let mut violations = 0u64;
    let mut gathered = false;
    let mut at_rest = vec![false; n];
    for _ in 0..MAX_TICKS {
        if engine.is_gathered() {
            gathered = true;
            break;
        }
        if engine.step().is_none() {
            break;
        }
        for (i, rest) in at_rest.iter_mut().enumerate() {
            // Crashed robots are excused: a casualty rests wherever it
            // died, which may legitimately be mid-edge.
            *rest = engine.alive()[i] && engine.at_rest(i);
        }
        violations +=
            checkers::grid_resting_violations(engine.positions(), &at_rest, tol).len() as u64;
    }
    (gathered && violations == 0, violations)
}

/// One stand-up run: robot 0 (and the next `f-1` indices) crash at tick 0;
/// success is every correct robot standing at robot 0's position.
fn run_standup(spec: &AsyncSpec, faults: usize) -> bool {
    let crash_at = spec.initial[0];
    let mut engine = phased_builder(
        spec,
        FramePolicy::RandomPerActivation {
            seed: spec.seed.wrapping_add(3),
        },
    )
    .algorithm(WaitFreeGather::default())
    .crash_plan(CrashAtRounds::at_start(0..faults))
    .build();
    let outcome = engine.run(MAX_TICKS);
    outcome.gathered()
        && checkers::standup_success(engine.positions(), engine.alive(), crash_at, Tol::default())
}

/// `cells[rigidity][f-index]` success fractions for one panel.
type Panel = Vec<Vec<Option<f64>>>;

fn main() {
    let args = Args::parse();
    let seeds: u64 = if args.quick { 1 } else { 3 };

    // --- Grid family -----------------------------------------------------
    let grid_n = 12;
    let grid_faults: Vec<usize> = if args.quick {
        vec![0, 4]
    } else {
        vec![0, 2, 4, 6]
    };
    let mut grid_panels: Vec<HeatmapPanel> = Vec::new();
    let mut grid_rows = Vec::new();
    for &skew in &SKEWS {
        let mut cells: Panel = Vec::new();
        for &rig in &RIGS {
            let mut row = Vec::new();
            for &faults in &grid_faults {
                let mut ok = 0u64;
                let mut viol = 0u64;
                for seed in 0..seeds {
                    // Casualty index 0 is the "ring with centre" centre in
                    // the stand-up family; here seeds just vary the lattice.
                    let initial = lattice_scatter(grid_n, 10, 100 + seed);
                    let spec = AsyncSpec {
                        initial: &initial,
                        seed: 40 + seed,
                        rig,
                        skew,
                    };
                    let (success, violations) = run_grid(&spec, faults);
                    ok += success as u64;
                    viol += violations;
                }
                let frac = ok as f64 / seeds as f64;
                grid_rows.push((skew, rig, faults, frac, viol));
                row.push(Some(frac));
            }
            cells.push(row);
        }
        grid_panels.push(HeatmapPanel {
            title: format!("skew={skew}"),
            cells,
        });
    }

    // --- Stand-up family -------------------------------------------------
    let standup_faults: Vec<usize> = if args.quick {
        vec![1, 3]
    } else {
        vec![1, 2, 3, 4]
    };
    let placements: [&str; 2] = ["at-weber", "scattered"];
    let standup_initial = |placement: &str, seed: u64| -> Vec<Point> {
        match placement {
            // Casualty on the Weber point of a 7-ring: `ring_with_center`
            // appends the centre robot last, so rotate it to index 0 (the
            // designated casualty slot).
            "at-weber" => {
                let mut pts = ring_with_center(7, 1, 5.0);
                pts.rotate_right(1);
                pts
            }
            _ => random_scatter(8, 10.0, 200 + seed),
        }
    };
    let mut standup_panels: Vec<HeatmapPanel> = Vec::new();
    let mut standup_rows = Vec::new();
    for placement in placements {
        for &skew in &SKEWS {
            let mut cells: Panel = Vec::new();
            for &rig in &RIGS {
                let mut row = Vec::new();
                for &faults in &standup_faults {
                    let mut ok = 0u64;
                    for seed in 0..seeds {
                        let initial = standup_initial(placement, seed);
                        let spec = AsyncSpec {
                            initial: &initial,
                            seed: 70 + seed,
                            rig,
                            skew,
                        };
                        ok += run_standup(&spec, faults) as u64;
                    }
                    let frac = ok as f64 / seeds as f64;
                    standup_rows.push((placement, skew, rig, faults, frac));
                    row.push(Some(frac));
                }
                cells.push(row);
            }
            standup_panels.push(HeatmapPanel {
                title: format!("{placement} skew={skew}"),
                cells,
            });
        }
    }

    // --- Console digest --------------------------------------------------
    let mut t = Table::new(&["family", "cell", "success"]);
    for (skew, rig, faults, frac, viol) in &grid_rows {
        t.push(vec![
            "grid".into(),
            format!("f={faults} {} skew={skew} (viol {viol})", rig.label()),
            fmt_f(*frac, 2),
        ]);
    }
    for (placement, skew, rig, faults, frac) in &standup_rows {
        t.push(vec![
            "standup".into(),
            format!("f={faults} {} skew={skew} {placement}", rig.label()),
            fmt_f(*frac, 2),
        ]);
    }
    println!("F7 — related-work family boundary maps (async engine)\n");
    t.print();

    // --- Emit ------------------------------------------------------------
    let y_ticks: Vec<String> = RIGS.iter().map(|r| r.label().to_string()).collect();
    let style = |label: &str, columns: usize| HeatmapStyle {
        columns,
        range: Some((0.0, 1.0)),
        scale_label: label.into(),
        ..HeatmapStyle::default()
    };

    let grid_x: Vec<String> = grid_faults.iter().map(|f| format!("f={f}")).collect();
    let grid_svg = render_heatmap_sheet(
        &grid_panels,
        &grid_x,
        &y_ticks,
        &style(
            "grid-model success fraction (gathered, never resting off-lattice)",
            3,
        ),
    );
    let mut grid_json = format!(
        "{{\n  \"experiment\": \"grid_boundary\",\n  \"model\": \"Bose et al. 1709.00877 (Z^2, axis moves)\",\n  \"n\": {grid_n},\n  \"seeds\": {seeds},\n  \"max_ticks\": {MAX_TICKS},\n  \"cells\": [\n"
    );
    for (i, (skew, rig, faults, frac, viol)) in grid_rows.iter().enumerate() {
        grid_json.push_str(&format!(
            "    {{\"f\": {faults}, \"rigidity\": \"{}\", \"speed_skew\": {skew}, \"success\": {frac:.3}, \"resting_violations\": {viol}}}{}\n",
            rig.label(),
            if i + 1 < grid_rows.len() { "," } else { "" }
        ));
    }
    grid_json.push_str("  ]\n}\n");

    let standup_x: Vec<String> = standup_faults.iter().map(|f| format!("f={f}")).collect();
    let standup_svg = render_heatmap_sheet(
        &standup_panels,
        &standup_x,
        &y_ticks,
        &style(
            "stand-up success fraction (all correct robots at the casualty)",
            3,
        ),
    );
    let mut standup_json = format!(
        "{{\n  \"experiment\": \"standup_boundary\",\n  \"model\": \"Bramas et al. 2302.03466 (stand-up indulgent)\",\n  \"n\": 8,\n  \"seeds\": {seeds},\n  \"max_ticks\": {MAX_TICKS},\n  \"cells\": [\n"
    );
    for (i, (placement, skew, rig, faults, frac)) in standup_rows.iter().enumerate() {
        standup_json.push_str(&format!(
            "    {{\"placement\": \"{placement}\", \"f\": {faults}, \"rigidity\": \"{}\", \"speed_skew\": {skew}, \"success\": {frac:.3}}}{}\n",
            rig.label(),
            if i + 1 < standup_rows.len() { "," } else { "" }
        ));
    }
    standup_json.push_str("  ]\n}\n");

    let (dir, suffix) = if args.quick {
        (args.out_dir.clone(), "_quick")
    } else {
        (std::path::PathBuf::from("results"), "")
    };
    std::fs::create_dir_all(&dir).expect("create output dir");
    for (base, json, svg) in [
        ("grid_boundary", &grid_json, &grid_svg),
        ("standup_boundary", &standup_json, &standup_svg),
    ] {
        let json_path = dir.join(format!("{base}{suffix}.json"));
        std::fs::write(&json_path, json).expect("write boundary JSON");
        let svg_path = dir.join(format!("{base}{suffix}.svg"));
        std::fs::write(&svg_path, svg).expect("write boundary SVG");
        println!("wrote {}", json_path.display());
        println!("wrote {}", svg_path.display());
    }
    if args.quick {
        println!("(quick run; committed results/*_boundary.* left untouched)");
    }

    // The maps only earn their keep if they show a boundary: the grid
    // family must have a clean rigid regime AND a failing non-rigid one,
    // and the stand-up family must fail for scattered casualties while
    // succeeding for a casualty on the Weber point.
    let grid_clean = grid_rows
        .iter()
        .any(|(_, rig, _, frac, _)| *rig == Rig::Rigid && *frac >= 1.0);
    let grid_broken = grid_rows
        .iter()
        .any(|(_, rig, _, frac, _)| *rig == Rig::NonRigid && *frac < 1.0);
    let standup_ok = standup_rows
        .iter()
        .any(|(p, _, _, _, frac)| *p == "at-weber" && *frac >= 1.0);
    let standup_fail = standup_rows
        .iter()
        .any(|(p, _, _, _, frac)| *p == "scattered" && *frac < 1.0);
    let mut failures = Vec::new();
    if !grid_clean {
        failures.push(
            "grid family: no clean rigid cell (expected the paper's regime to hold)".to_string(),
        );
    }
    if !grid_broken {
        failures.push("grid family: no failing non-rigid cell (expected mid-edge stops to break the lattice invariant)".to_string());
    }
    if !standup_ok {
        failures.push("stand-up family: no succeeding at-weber cell".to_string());
    }
    if !standup_fail {
        failures.push("stand-up family: no failing scattered cell (expected Weber-seeking to gather away from the casualty)".to_string());
    }
    gather_bench::report::fail_if_any("F7", &failures);
}
