//! B12 — event-heap ASYNC engine: correctness gates and throughput against
//! the round-based SSYNC path.
//!
//! Two machine-independent gates anchor the record (they compare the
//! engine against itself and against the round engine, never against the
//! clock):
//!
//! * **degeneracy** — with atomic LCM cycles, lockstep pacing and rigid
//!   motion the async engine must produce bit-identical traces to the
//!   FSYNC `Engine` for every configuration class (the contract of
//!   `tests/async_identity.rs`, re-verified here before any timing);
//! * **determinism** — the same phased/non-rigid/skewed spec must yield
//!   byte-identical summary JSONL on repeated runs.
//!
//! The sweep then measures, per team size, activations-to-gather for the
//! synchronous engine (rounds, all robots per round) and for the async
//! engine (ticks — event batches, typically one robot's phase each) plus
//! the async engine's event throughput (events/second, min-over-trials
//! wall clock). Rounds and ticks count *different* things — the point of
//! the columns is the ratio's scale (a tick is ~`1/n` of a round's work),
//! not a like-for-like race.
//!
//! With `--baseline PATH` the fresh events/s are regression-checked
//! against the committed record on machines with >= 2 cores; starved
//! runners record an explicit skip reason instead of flaking (B7/B11
//! cores policy).
//!
//! Writes `BENCH_b12_async.json` — unless `--quick` or `--baseline` is
//! given, in which case the JSON goes to `--out` and the committed record
//! stays untouched.

use gather_bench::report::{self, parse_pairs};
use gather_bench::table::{f, Table};
use gather_bench::Args;
use gather_config::Class;
use gather_geom::Point;
use gather_sim::prelude::*;
use gather_workloads::{of_class, random_scatter};
use gathering::WaitFreeGather;
use std::time::Instant;

/// Tick budget per async run: a tick is one event batch (usually a single
/// robot's phase), so the budget scales with team size.
fn tick_cap(n: usize) -> u64 {
    (n as u64) * 20_000
}

/// The degeneracy gate: for every class, the async engine in its
/// degenerate corner must *be* the round engine, byte for byte.
fn degeneracy_gate(failures: &mut Vec<String>) {
    for class in Class::all() {
        let initial = of_class(class, 8, 23);
        let build_sync = || {
            Engine::builder(initial.clone())
                .algorithm(WaitFreeGather::default())
                .crash_plan(RandomCrashes::new(1, 0.05, 25))
                .frames(FramePolicy::RandomPerActivation { seed: 26 })
                .check_invariants(false)
                .build()
        };
        let mut sync = build_sync();
        let mut async_eng = AsyncEngine::builder(initial.clone())
            .algorithm(WaitFreeGather::default())
            .crash_plan(RandomCrashes::new(1, 0.05, 25))
            .frames(FramePolicy::RandomPerActivation { seed: 26 })
            .check_invariants(false)
            .build();
        let a = sync.run(3_000);
        let b = async_eng.run(3_000);
        if a != b || sync.trace().to_jsonl() != async_eng.trace().to_jsonl() {
            failures.push(format!(
                "class {}: degenerate async diverged from the round engine \
                 (outcomes {a:?} vs {b:?})",
                class.short_name()
            ));
        }
    }
}

/// One async run: phased timing, exponential pacing, mild speed skew —
/// the regime the engine exists for.
fn build_async(initial: &[Point], seed: u64) -> AsyncEngine {
    AsyncEngine::builder(initial.to_vec())
        .algorithm(WaitFreeGather::default())
        .timing(Timing::Phased {
            compute_time: 0.25,
            speed: 1.0,
        })
        .pacing(Pacing::Exponential {
            rate: 1.0,
            seed: seed.wrapping_add(4),
        })
        .speed_skew(0.5, seed.wrapping_add(5))
        .frames(FramePolicy::RandomPerActivation {
            seed: seed.wrapping_add(3),
        })
        .check_invariants(false)
        .build()
}

/// The determinism gate: one full-knob run, repeated, must not move a bit.
fn determinism_gate(failures: &mut Vec<String>) {
    let initial = random_scatter(16, 10.0, 31);
    let run = || {
        let mut e = AsyncEngine::builder(initial.clone())
            .algorithm(WaitFreeGather::default())
            .timing(Timing::Phased {
                compute_time: 0.25,
                speed: 1.0,
            })
            .pacing(Pacing::Exponential {
                rate: 1.0,
                seed: 35,
            })
            .rigidity(Rigidity::NonRigid {
                stop_prob: 0.25,
                seed: 37,
            })
            .speed_skew(0.5, 36)
            .check_invariants(false)
            .build();
        let outcome = e.run(tick_cap(16));
        (outcome, e.trace().to_jsonl(), e.events_processed())
    };
    let first = run();
    let second = run();
    if first != second {
        failures.push(format!(
            "same-seed async runs diverged: {:?}/{} events vs {:?}/{} events",
            first.0, first.2, second.0, second.2
        ));
    }
}

struct Row {
    n: usize,
    sync_rounds: u64,
    sync_gathered: bool,
    async_ticks: u64,
    async_gathered: bool,
    events: u64,
    events_per_sec: f64,
}

fn measure(n: usize, trials: usize) -> Row {
    let initial = random_scatter(n, 10.0, n as u64);
    // SSYNC proper: random fair subsets per round, not every robot — the
    // regime whose rounds column the async ticks are compared against.
    let mut sync = Engine::builder(initial.clone())
        .algorithm(WaitFreeGather::default())
        .scheduler(gather_bench::factory::scheduler("random", n, 2))
        .frames(FramePolicy::RandomPerActivation { seed: 3 })
        .check_invariants(false)
        .build();
    let sync_outcome = sync.run(60_000);
    let mut best_secs = f64::INFINITY;
    let mut async_ticks = 0;
    let mut async_gathered = false;
    let mut events = 0;
    for _ in 0..trials {
        let mut e = build_async(&initial, 0);
        let start = Instant::now();
        let outcome = e.run(tick_cap(n));
        best_secs = best_secs.min(start.elapsed().as_secs_f64());
        async_ticks = e.round();
        async_gathered = outcome.gathered();
        events = e.events_processed();
    }
    Row {
        n,
        sync_rounds: sync.round(),
        sync_gathered: sync_outcome.gathered(),
        async_ticks,
        async_gathered,
        events,
        events_per_sec: events as f64 / best_secs,
    }
}

fn main() {
    let args = Args::parse();
    let mut failures: Vec<String> = Vec::new();

    degeneracy_gate(&mut failures);
    determinism_gate(&mut failures);
    println!(
        "gates: degeneracy {}, determinism {}",
        if failures.iter().any(|f| f.contains("degenerate")) {
            "FAILED"
        } else {
            "ok"
        },
        if failures.iter().any(|f| f.contains("same-seed")) {
            "FAILED"
        } else {
            "ok"
        },
    );

    let sizes: &[usize] = if args.quick { &[8, 64] } else { &[8, 64, 512] };
    let trials = if args.quick { 2 } else { 3 };
    let rows: Vec<Row> = sizes.iter().map(|&n| measure(n, trials)).collect();

    let mut t = Table::new(&[
        "n",
        "sync rounds",
        "sync gathered",
        "async ticks",
        "async gathered",
        "events",
        "events/s",
    ]);
    for row in &rows {
        t.push(vec![
            row.n.to_string(),
            row.sync_rounds.to_string(),
            row.sync_gathered.to_string(),
            row.async_ticks.to_string(),
            row.async_gathered.to_string(),
            row.events.to_string(),
            f(row.events_per_sec, 0),
        ]);
    }
    println!("\nB12 — ASYNC event-heap engine vs SSYNC rounds\n");
    t.print();

    // Gathering itself is part of the record: every row must finish.
    for row in &rows {
        if !row.sync_gathered || !row.async_gathered {
            failures.push(format!(
                "n={}: run did not gather (sync {}, async {})",
                row.n, row.sync_gathered, row.async_gathered
            ));
        }
    }

    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut json =
        format!("{{\n  \"bench\": \"b12_async\",\n  \"cores\": {cores},\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"sync_rounds\": {}, \"async_ticks\": {}, \
             \"async_events\": {}, \"async_events_per_sec\": {:.0}}}{}\n",
            row.n,
            row.sync_rounds,
            row.async_ticks,
            row.events,
            row.events_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let mut csv = Table::new(&["n", "sync_rounds", "async_ticks", "async_events_per_sec"]);
    for row in &rows {
        csv.push(vec![
            row.n.to_string(),
            row.sync_rounds.to_string(),
            row.async_ticks.to_string(),
            f(row.events_per_sec, 0),
        ]);
    }
    let out = args.out_dir.join("b12_async.csv");
    csv.write_csv(&out).expect("write CSV");
    println!("wrote {}", out.display());

    if let Some(baseline_path) = &args.baseline {
        if cores < 2 {
            println!(
                "baseline gate skipped: {cores} core(s) available (< 2); \
                 absolute events/s on a starved runner is not comparable"
            );
        } else {
            let text = report::read_baseline(baseline_path);
            let base = parse_pairs(&text, "\"n\":", "\"async_events_per_sec\":");
            assert!(
                !base.is_empty(),
                "baseline {} contains no rows",
                baseline_path.display()
            );
            for row in &rows {
                if let Some(&(_, base_eps)) = base.iter().find(|(bn, _)| *bn == row.n as f64) {
                    if row.events_per_sec < 0.7 * base_eps {
                        failures.push(format!(
                            "n={}: async events/s regressed >30% \
                             ({:.0} vs baseline {base_eps:.0})",
                            row.n, row.events_per_sec
                        ));
                    } else {
                        println!(
                            "baseline n={}: {:.0} events/s vs committed {base_eps:.0} — ok",
                            row.n, row.events_per_sec
                        );
                    }
                }
            }
        }
    }
    report::emit_record(
        "b12_async",
        &json,
        &args.out_dir,
        args.quick,
        args.baseline.is_some(),
    );
    report::fail_if_any("B12", &failures);
}
