//! B9 — Observability overhead and schema stability.
//!
//! Three checks backing the DESIGN.md §12 observability contract:
//!
//! * **overhead** — the same class × seed sweep run three ways, interleaved
//!   within every trial: *absent* (no [`EngineObs`] attached), *disabled*
//!   (a [`EngineObs::disabled`] handle carried through the round loop but
//!   never reading the clock) and *enabled* (full phase spans into a
//!   per-run ring). The acceptance gate requires disabled-mode overhead of
//!   at most 2 % versus absent (median-of-samples); enabled-mode overhead is
//!   reported but not gated.
//! * **schema** — one traced run per configuration class; every NDJSON
//!   line's top-level keys must match the pinned [`TRACE_SCHEMA`] order
//!   (the same contract `crates/sim/tests/trace_schema.rs` pins in-tree
//!   and `GET /v1/trace` serves over the wire).
//! * **determinism** — absent, disabled and enabled runs must produce
//!   bit-identical [`RunMetrics`] once the timing columns are stripped.
//!
//! The pool section runs the sweep on an instrumented [`WorkerPool`]
//! ([`PoolObs`]) and reports queue-wait and run-time quantiles from the
//! log-bucketed histograms.
//!
//! Writes `BENCH_b9_obs.json` — unless `--baseline PATH` or `--quick` is
//! given, in which case the JSON goes to `--out` instead (a reduced or
//! regression-check run never overwrites the committed record). With
//! `--baseline` the committed record's `trace_schema` must match the
//! pinned one (schema drift fails the run); the absent-mode throughput
//! regression check runs only in full mode, since quick reduces the sweep.

use gather_bench::pool::{self, PoolObs, WorkerPool};
use gather_bench::report;
use gather_bench::runner::{self, Scenario};
use gather_bench::table::{f, Table};
use gather_bench::Args;
use gather_obs::{EngineObs, Phase, PhaseNanos};
use gather_sim::prelude::{EngineParts, RunMetrics};
use gather_workloads as workloads;
use std::sync::Arc;
use std::time::Instant;

/// Pinned top-level key order of one `RoundRecord` NDJSON line. Must match
/// `crates/sim/tests/trace_schema.rs` and DESIGN.md §12.
const TRACE_SCHEMA: [&str; 10] = [
    "round",
    "class",
    "distinct",
    "max_mult",
    "activated",
    "crashed",
    "travel",
    "classifications",
    "cache_hits",
    "weiszfeld_iters",
];

#[derive(Clone, Copy, PartialEq)]
enum Variant {
    Absent,
    Disabled,
    Enabled,
}

impl Variant {
    const ALL: [Variant; 3] = [Variant::Absent, Variant::Disabled, Variant::Enabled];

    fn name(self) -> &'static str {
        match self {
            Variant::Absent => "absent",
            Variant::Disabled => "disabled",
            Variant::Enabled => "enabled",
        }
    }
}

/// The sweep every variant executes: full class × seed cross product under
/// the *random-subset* scheduler and *random-stop* motion adversary, so
/// runs last dozens of rounds instead of converging in one synchronous
/// step — the overhead gate needs sweeps that are milliseconds, not
/// microseconds. `--quick` shrinks it (so the throughput-vs-baseline
/// comparison is skipped there, but the overhead gate — a ratio within one
/// run — still holds).
fn sweep(quick: bool) -> Vec<Scenario> {
    let (n, seeds, rounds) = if quick {
        (12, 1, 1_500)
    } else {
        (14, 2, 3_000)
    };
    let mut out: Vec<Scenario> = workloads::class_sweep(n, seeds)
        .into_iter()
        .map(|(_class, seed, initial)| {
            let mut s = Scenario::new(initial, seed);
            s.scheduler = "random";
            s.motion = "random";
            s.faults = 1;
            s.max_rounds = rounds;
            s
        })
        .collect();
    // One B1-style warm-start workload — quasi-regular rings with an
    // unoccupied centre under δ-creep — so the numeric Weber solver runs
    // and the weiszfeld span is exercised (the class sweep's runs resolve
    // their targets analytically).
    let qr: Vec<_> = workloads::quasi_regular(4, n / 4, 11)
        .into_iter()
        .map(|p| gather_geom::Point::new(p.x * 5.0, p.y * 5.0))
        .collect();
    let mut s = Scenario::new(qr, 11);
    s.scheduler = "round-robin";
    s.motion = "delta";
    s.delta = 0.01;
    // Kept short: with invariant monitors on, each δ-creep round costs an
    // order of magnitude more than a class-sweep round, and this scenario
    // must not dominate the timed pass.
    s.max_rounds = if quick { 40 } else { 60 };
    out.push(s);
    out
}

/// Runs the whole sweep `reps` times under one variant, returning elapsed
/// seconds, the final repetition's per-scenario metrics (phase columns
/// stripped so the determinism cross-check compares like with like) and
/// the phase totals accumulated across every repetition for the enabled
/// variant. The timed samples use `reps == 1` (a single sweep is already
/// milliseconds, far above timer resolution); warm-up uses more.
fn run_sweep(
    scenarios: &[Scenario],
    variant: Variant,
    reps: usize,
) -> (f64, Vec<RunMetrics>, PhaseNanos) {
    let mut phases = PhaseNanos::default();
    let mut metrics = Vec::new();
    let start = Instant::now();
    for _ in 0..reps {
        metrics = scenarios
            .iter()
            .map(|s| match variant {
                Variant::Absent => s.run_with(EngineParts::default()).0,
                Variant::Disabled => s.run_observed(EngineObs::disabled()).0,
                Variant::Enabled => {
                    let (mut m, obs) = s.run_observed(EngineObs::new(s.max_rounds as usize));
                    phases.accumulate(obs.totals());
                    m.phase_ns = None;
                    m
                }
            })
            .collect();
    }
    (start.elapsed().as_secs_f64(), metrics, phases)
}

/// Top-level JSON object keys of one NDJSON line, in order of appearance.
/// Dependency-free by the same hand-rolled-scan policy as every other
/// baseline check in this crate.
fn json_keys(line: &str) -> Vec<String> {
    let bytes = line.as_bytes();
    let mut keys = Vec::new();
    let mut depth = 0i32;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth -= 1,
            b'"' if depth == 1 => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if bytes.get(j + 1) == Some(&b':') {
                    keys.push(line[start..j].to_string());
                }
                i = j;
            }
            _ => {}
        }
        i += 1;
    }
    keys
}

fn main() {
    let args = Args::parse();
    let mut failures: Vec<String> = Vec::new();
    let samples = if args.quick { 48 } else { 80 };
    let scenarios = sweep(args.quick);
    let runs_per_pass = scenarios.len() as f64;

    // --- Overhead: absent vs disabled vs enabled, interleaved ----------
    // Warm-up passes so code and data are hot before timing. The timed
    // statistic is the *median* over many short samples rather than the
    // minimum over a few long ones: a single sweep takes low milliseconds
    // (well above timer resolution) and the median is immune to the
    // scheduling spikes and frequency drift that can push a best-of-N
    // comparison past a 2 % budget on a shared box.
    for variant in Variant::ALL {
        run_sweep(&scenarios, variant, 8);
    }
    let mut times: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut results: [Option<Vec<RunMetrics>>; 3] = [None, None, None];
    let mut phase_totals = PhaseNanos::default();
    for trial in 0..samples {
        // Rotate the variant order every sample so slow drift charges
        // each variant equally instead of always hitting the same slot.
        for k in 0..Variant::ALL.len() {
            let slot = (trial + k) % Variant::ALL.len();
            let variant = Variant::ALL[slot];
            let (secs, metrics, phases) = run_sweep(&scenarios, variant, 1);
            times[slot].push(secs);
            results[slot] = Some(metrics);
            if variant == Variant::Enabled {
                phase_totals = phases;
            }
        }
    }
    let med = [
        runner::median(&times[0]),
        runner::median(&times[1]),
        runner::median(&times[2]),
    ];
    let absent = med[0];
    let overhead_pct = |variant_med: f64| -> f64 { (variant_med - absent) / absent * 100.0 };
    let disabled_pct = overhead_pct(med[1]);
    let enabled_pct = overhead_pct(med[2]);

    let mut vt = Table::new(&["variant", "sweep s (median)", "runs/s", "overhead %"]);
    for (slot, variant) in Variant::ALL.into_iter().enumerate() {
        vt.push(vec![
            variant.name().to_string(),
            f(med[slot], 5),
            f(runs_per_pass / med[slot], 1),
            f(overhead_pct(med[slot]), 2),
        ]);
    }
    println!(
        "B9 — observability overhead ({} scenarios/sweep, median of {samples} interleaved \
         samples)\n",
        scenarios.len()
    );
    vt.print();

    let overhead_gate = if disabled_pct > 2.0 {
        failures.push(format!(
            "disabled-mode overhead {disabled_pct:.2}% exceeds the 2% budget"
        ));
        format!("\"enforced: disabled +{disabled_pct:.2}% (> 2% budget) — FAILED\"")
    } else {
        format!("\"enforced: disabled {disabled_pct:+.2}% vs absent (budget 2%)\"")
    };
    println!("\noverhead gate: {overhead_gate}");

    // --- Determinism across variants -----------------------------------
    let absent_metrics = results[0].take().expect("absent trial ran");
    let identical = results[1..]
        .iter()
        .all(|r| r.as_ref().expect("trial ran") == &absent_metrics);
    if !identical {
        failures.push(
            "instrumented runs diverged from uninstrumented ones (observability must not \
             change the run)"
                .to_string(),
        );
    }
    println!("bit-identical metrics across variants: {identical}");

    // --- Phase attribution (enabled variant, last trial) ----------------
    let mut pt = Table::new(&["phase", "total ms", "share %"]);
    let total = phase_totals.total().max(1);
    for phase in Phase::all() {
        let ns = phase_totals.get(phase);
        pt.push(vec![
            phase.name().to_string(),
            f(ns as f64 / 1e6, 2),
            f(ns as f64 / total as f64 * 100.0, 1),
        ]);
    }
    println!("\nper-phase attribution (enabled sweep)\n");
    pt.print();

    // --- Trace schema ---------------------------------------------------
    let mut schema_ok = true;
    let mut traced_lines = 0u64;
    for scenario in &scenarios[..gather_config::Class::all().len().min(scenarios.len())] {
        let (metrics, jsonl) = scenario.run_traced();
        assert_eq!(jsonl.lines().count() as u64, metrics.rounds);
        traced_lines += metrics.rounds;
        for line in jsonl.lines() {
            if json_keys(line) != TRACE_SCHEMA {
                schema_ok = false;
                failures.push(format!(
                    "trace schema drift: keys {:?} != pinned {:?}",
                    json_keys(line),
                    TRACE_SCHEMA
                ));
                break;
            }
        }
        if !schema_ok {
            break;
        }
    }
    println!(
        "\ntrace schema: {} NDJSON lines checked, pinned order held: {schema_ok}",
        traced_lines
    );

    // --- Instrumented worker pool ---------------------------------------
    let pool_obs = Arc::new(PoolObs::default());
    let ipool = WorkerPool::new_instrumented(pool::default_threads(), Arc::clone(&pool_obs));
    let _ = ipool.map(&scenarios, Scenario::run);
    let jobs = pool_obs.queue_wait.count();
    if jobs != scenarios.len() as u64 || pool_obs.run_time.count() != jobs {
        failures.push(format!(
            "pool histograms recorded {jobs} waits / {} runs for {} jobs",
            pool_obs.run_time.count(),
            scenarios.len()
        ));
    }
    let mut ht = Table::new(&["histogram", "count", "p50 us", "p99 us", "max us"]);
    for (name, h) in [
        ("queue_wait", &pool_obs.queue_wait),
        ("run_time", &pool_obs.run_time),
    ] {
        ht.push(vec![
            name.to_string(),
            h.count().to_string(),
            f(h.quantile(0.5) as f64 / 1e3, 1),
            f(h.quantile(0.99) as f64 / 1e3, 1),
            f(h.max() as f64 / 1e3, 1),
        ]);
    }
    println!(
        "\ninstrumented pool ({} workers)\n",
        pool::default_threads()
    );
    ht.print();

    // --- JSON record -----------------------------------------------------
    let schema_list = TRACE_SCHEMA
        .iter()
        .map(|k| format!("\"{k}\""))
        .collect::<Vec<_>>()
        .join(", ");
    let mut json = format!(
        "{{\n  \"bench\": \"b9_obs\",\n  \"scenarios\": {},\n  \"samples\": {samples},\n  \
         \"overhead_gate\": {overhead_gate},\n  \"disabled_overhead_pct\": {disabled_pct:.2},\n  \
         \"enabled_overhead_pct\": {enabled_pct:.2},\n  \
         \"bit_identical_across_variants\": {identical},\n  \
         \"trace_schema_ok\": {schema_ok},\n  \"trace_schema\": [{schema_list}],\n  \
         \"variants\": [\n",
        scenarios.len()
    );
    for (slot, variant) in Variant::ALL.into_iter().enumerate() {
        json.push_str(&format!(
            "    {{\"variant\": \"{}\", \"sweep_seconds\": {:.5}, \"runs_per_sec\": {:.1}}}{}\n",
            variant.name(),
            med[slot],
            runs_per_pass / med[slot],
            if slot + 1 < Variant::ALL.len() {
                ","
            } else {
                ""
            }
        ));
    }
    json.push_str("  ],\n  \"phase_ns\": ");
    let mut phase_json = String::new();
    phase_totals.write_json(&mut phase_json);
    json.push_str(&phase_json);
    json.push_str(",\n  \"pool\": [\n");
    for (i, (name, h)) in [
        ("queue_wait", &pool_obs.queue_wait),
        ("run_time", &pool_obs.run_time),
    ]
    .into_iter()
    .enumerate()
    {
        json.push_str(&format!(
            "    {{\"histogram\": \"{name}\", \"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"max_ns\": {}}}{}\n",
            h.count(),
            h.quantile(0.5),
            h.quantile(0.99),
            h.max(),
            if i == 0 { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let mut csv = Table::new(&["variant", "sweep_seconds", "runs_per_sec"]);
    for (slot, variant) in Variant::ALL.into_iter().enumerate() {
        csv.push(vec![
            variant.name().to_string(),
            f(med[slot], 4),
            f(runs_per_pass / med[slot], 1),
        ]);
    }
    let out = args.out_dir.join("b9_obs.csv");
    csv.write_csv(&out).expect("write CSV");
    println!("\nwrote {}", out.display());

    if let Some(baseline_path) = &args.baseline {
        // Regression-check mode: the committed record stays untouched,
        // fresh JSON goes to the out dir. Schema drift against the
        // committed record always fails; throughput comparison only runs
        // in full mode (quick shrinks the sweep, so runs/s are not
        // comparable to the committed full-size record).
        let text = report::read_baseline(baseline_path);
        let base_schema_line = text
            .lines()
            .find(|l| l.contains("\"trace_schema\":"))
            .unwrap_or_else(|| panic!("baseline {} has no trace_schema", baseline_path.display()));
        let base_keys: Vec<String> = base_schema_line
            .split('[')
            .nth(1)
            .and_then(|rest| rest.split(']').next())
            .map(|inner| {
                inner
                    .split(',')
                    .map(|k| k.trim().trim_matches('"').to_string())
                    .collect()
            })
            .unwrap_or_default();
        if base_keys != TRACE_SCHEMA {
            failures.push(format!(
                "trace schema drifted from committed baseline: {base_keys:?} != {TRACE_SCHEMA:?}"
            ));
        } else {
            println!("baseline trace schema matches the pinned order — ok");
        }
        let throughput_gate = if args.quick {
            "skipped: quick mode shrinks the sweep; runs/s not comparable to the committed \
             full-size record"
                .to_string()
        } else {
            let base_absent = text
                .lines()
                .find(|l| l.contains("\"absent\""))
                .and_then(|l| report::extract_number(l, "\"runs_per_sec\":"))
                .unwrap_or_else(|| {
                    panic!("baseline {} has no absent row", baseline_path.display())
                });
            let fresh = runs_per_pass / absent;
            if fresh < 0.7 * base_absent {
                failures.push(format!(
                    "absent-mode throughput regressed >30% ({fresh:.1} vs baseline \
                     {base_absent:.1} runs/s)"
                ));
            }
            format!("enforced: {fresh:.1} vs committed {base_absent:.1} runs/s")
        };
        println!("throughput gate: \"{throughput_gate}\"");
    }
    report::emit_record(
        "b9_obs",
        &json,
        &args.out_dir,
        args.quick,
        args.baseline.is_some(),
    );
    report::fail_if_any("B9", &failures);
}
