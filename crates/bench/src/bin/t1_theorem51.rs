//! T1 — Theorem 5.1: WAIT-FREE-GATHER gathers all correct robots from
//! every non-bivalent class, for any `f ≤ n − 1`, under every scheduler
//! and motion adversary sampled.
//!
//! Expected shape: the `gathered` column is 100% in every row; rounds grow
//! with serialisation (scheduler `single`) and with the stingy motion
//! adversary, but success never drops.

use gather_bench::runner::{mean, parallel_map, Scenario};
use gather_bench::table::{f, pct, Table};
use gather_bench::Args;
use gather_config::Class;
use gather_workloads as workloads;

fn main() {
    let args = Args::parse();
    let n = 8usize;
    let classes = [
        Class::Multiple,
        Class::Collinear1W,
        Class::Collinear2W,
        Class::QuasiRegular,
        Class::Asymmetric,
    ];
    let fault_levels = [0usize, 1, n / 2, n - 1];
    let schedulers: &[&'static str] = if args.quick {
        &["full", "round-robin"]
    } else {
        &["full", "round-robin", "single", "random"]
    };

    let mut scenarios: Vec<(Class, usize, &'static str, Scenario)> = Vec::new();
    for &class in &classes {
        for &faults in &fault_levels {
            for &sched in schedulers {
                for trial in 0..args.trials as u64 {
                    let mut s = Scenario::new(workloads::of_class(class, n, trial), trial);
                    s.scheduler = sched;
                    s.motion = "random";
                    s.faults = faults;
                    s.max_rounds = 200_000;
                    scenarios.push((class, faults, sched, s));
                }
            }
        }
    }

    let metrics = parallel_map(scenarios, |(_, _, _, s)| s.run());

    let mut table = Table::new(&[
        "class",
        "n",
        "f",
        "scheduler",
        "trials",
        "gathered",
        "rounds(mean)",
        "travel(mean)",
    ]);
    let mut idx = 0;
    for &class in &classes {
        for &faults in &fault_levels {
            for &sched in schedulers {
                let cell: Vec<_> = (0..args.trials).map(|k| &metrics[idx + k]).collect();
                idx += args.trials;
                let gathered = cell.iter().filter(|m| m.gathered).count();
                let rounds: Vec<f64> = cell.iter().map(|m| m.rounds as f64).collect();
                let travel: Vec<f64> = cell.iter().map(|m| m.total_travel).collect();
                table.push(vec![
                    class.short_name().into(),
                    n.to_string(),
                    faults.to_string(),
                    sched.into(),
                    args.trials.to_string(),
                    pct(gathered, args.trials),
                    f(mean(&rounds), 1),
                    f(mean(&travel), 1),
                ]);
            }
        }
    }

    println!("T1 — Theorem 5.1: gathering success across classes, faults, schedulers\n");
    table.print();
    let out = args.out_dir.join("t1_theorem51.csv");
    table.write_csv(&out).expect("write CSV");
    println!("\nwrote {}", out.display());
}
