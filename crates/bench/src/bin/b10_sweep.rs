//! B10 — mega-sweep engine: lockstep batched execution vs the
//! engine-per-scenario `WorkerPool::map` path.
//!
//! The sweep driver (`sweep` binary) covers parameter space with tens of
//! thousands of *short* scenarios, so per-scenario fixed overhead — engine
//! assembly, the cold admission classification, trace bookkeeping, pool
//! dispatch — dominates over per-round simulation work. The
//! [`gather_bench::sweep`] path amortises all of it: chunks of consecutive
//! scenarios advance in lockstep inside one [`BatchEngine`] per worker,
//! recycling lane slabs on retirement and deduplicating the admission
//! analysis across grid cells that share an initial configuration.
//!
//! This benchmark drives both paths over the same probe grid (the sweep
//! driver's cell shape at reduced density, audits off) and enforces:
//!
//! * **identity** — batched [`RunMetrics`] are bit-identical to the
//!   sequential path at every pool size (always enforced; this is the
//!   b10 correctness contract);
//! * **speedup** — the batched path clears 2x scenarios/sec over the
//!   map path at equal thread count (1 worker, so the gate is fair on
//!   any machine);
//! * multi-worker rows are reported for texture but only gated on
//!   machines with enough cores (b7 convention: auto-skip with reason).
//!
//! Writes `BENCH_b10_sweep.json` — unless `--baseline PATH` or `--quick`
//! is given, in which case the fresh JSON goes to the `--out` dir and the
//! committed record is left untouched. With `--baseline` the fresh
//! 1-worker batch throughput must stay within 30 % of the committed
//! record. The probe grid is identical in quick mode (only the timing
//! trial count shrinks) so the baseline gate stays comparable.

use gather_bench::pool::WorkerPool;
use gather_bench::report::{self, parse_pairs};
use gather_bench::runner::Scenario;
use gather_bench::sweep::run_batched_on;
use gather_bench::table::{f, Table};
use gather_bench::Args;
use gather_config::Class;
use gather_sim::metrics::RunMetrics;
use gather_workloads as workloads;
use std::time::Instant;

/// Lockstep lanes per in-flight batch. Wide enough to amortise the arena
/// walk, narrow enough that retirement refills matter on short grids.
const WIDTH: usize = 16;

/// The timed probe grid: the sweep driver's cell shape (class × n ×
/// scheduler × faults) concentrated on the expensive-classification
/// classes `QR` and `A`, where the cold admission analysis (quasi-
/// regularity detection plus the cold Weiszfeld run) dominates short
/// scenarios — the regime a dense phase-diagram sweep multiplies fastest.
/// Classes whose classification short-circuits early (`B`, `M`, `L`) run
/// at parity on the batch path (never slower; see the identity grid and
/// `tests/batch_identity.rs` for full-mix coverage). Audits are off on
/// both paths — the sweep measures raw scenario throughput and the b10
/// contract compares equal configurations. Cell ordering keeps scenarios
/// sharing an initial configuration consecutive, which is what the batch
/// admission memo exploits (and what the real sweep driver emits).
fn grid() -> Vec<Scenario> {
    let classes = [Class::QuasiRegular, Class::Asymmetric];
    let mut scenarios = Vec::new();
    for &class in &classes {
        for n in [8usize, 12, 16] {
            for trial in 0..4u64 {
                let initial = workloads::of_class(class, n, trial);
                for sched in ["full", "round-robin"] {
                    for faults in [0usize, 1, n / 4, n / 2] {
                        let mut s = Scenario::new(initial.clone(), trial);
                        s.scheduler = sched;
                        s.faults = faults;
                        s.max_rounds = 5_000;
                        s.audit = false;
                        scenarios.push(s);
                    }
                }
            }
        }
    }
    scenarios
}

/// The identity grid: every configuration class (including bivalent
/// round-limit lanes), audited wait-free runs, the stingy motion
/// adversary, and every scheduler — one untimed pass per pool size that
/// must come back bit-identical between the two paths.
fn identity_grid() -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    for class in Class::all() {
        for (t, &sched) in ["full", "round-robin", "single", "random"]
            .iter()
            .enumerate()
        {
            let initial = workloads::of_class(class, 8, t as u64);
            for delta in [0.05, 0.2] {
                for faults in [0usize, 3] {
                    let mut s = Scenario::new(initial.clone(), t as u64);
                    s.scheduler = sched;
                    s.motion = "random";
                    s.delta = delta;
                    s.faults = faults;
                    s.max_rounds = 60;
                    scenarios.push(s);
                }
            }
        }
    }
    scenarios
}

/// Min-of-trials wall-clock for one full pass over the grid, plus the
/// last pass's results (identical across passes — the engine is
/// deterministic, which the caller re-checks anyway).
fn timed<F: FnMut() -> Vec<RunMetrics>>(trials: usize, mut run: F) -> (f64, Vec<RunMetrics>) {
    let mut best = f64::INFINITY;
    let mut last = Vec::new();
    for _ in 0..trials {
        let start = Instant::now();
        last = run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, last)
}

struct Row {
    threads: usize,
    map_scn_per_sec: f64,
    batch_scn_per_sec: f64,
    identical: bool,
}

fn main() {
    let args = Args::parse();
    let mut failures: Vec<String> = Vec::new();

    let scenarios = grid();
    let trials = if args.quick { 6 } else { 20 };
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let identity = identity_grid();
    let mut rows: Vec<Row> = Vec::new();
    for threads in [1usize, 2, 4] {
        let pool = WorkerPool::new(threads);
        let (map_s, map_results) = timed(trials, || pool.map(&scenarios, |s| s.run()));
        let (batch_s, batch_results) = timed(trials, || run_batched_on(&pool, &scenarios, WIDTH));
        let mut identical = map_results == batch_results;
        // Full-mix identity pass: all six classes, audits on, stingy
        // motion, every scheduler, round-limit lanes included.
        identical &= pool.map(&identity, |s| s.run()) == run_batched_on(&pool, &identity, WIDTH);
        if !identical {
            failures.push(format!(
                "batched metrics diverged from the sequential path at {threads} worker(s) \
                 (bit-identity contract)"
            ));
        }
        rows.push(Row {
            threads,
            map_scn_per_sec: scenarios.len() as f64 / map_s,
            batch_scn_per_sec: scenarios.len() as f64 / batch_s,
            identical,
        });
    }

    let mut table = Table::new(&[
        "threads",
        "map scn/s",
        "batch scn/s",
        "speedup",
        "identical",
    ]);
    for row in &rows {
        table.push(vec![
            row.threads.to_string(),
            f(row.map_scn_per_sec, 1),
            f(row.batch_scn_per_sec, 1),
            f(row.batch_scn_per_sec / row.map_scn_per_sec, 2),
            row.identical.to_string(),
        ]);
    }
    let total_rounds: u64 = {
        let pool = WorkerPool::new(1);
        pool.map(&scenarios, |s| s.run())
            .iter()
            .map(|m| m.rounds)
            .sum()
    };
    println!(
        "B10 — batched mega-sweep vs engine-per-scenario map ({} scenarios, {total_rounds} total rounds, width {WIDTH}, \
         min over {trials} trial(s))\n",
        scenarios.len()
    );
    table.print();

    // --- 2x-at-equal-threads gate --------------------------------------
    let single = &rows[0];
    let speedup1 = single.batch_scn_per_sec / single.map_scn_per_sec;
    let speedup_gate = if speedup1 < 2.0 {
        failures.push(format!(
            "batched sweep at 1 worker: {speedup1:.2}x over the map path (< 2x contract)"
        ));
        format!("\"enforced: {speedup1:.2}x at 1 worker (< 2x) — FAILED\"")
    } else {
        format!("\"enforced: {speedup1:.2}x at 1 worker (contract: >= 2x)\"")
    };
    let multi_gate = if cores >= 4 {
        let at4 = rows
            .iter()
            .find(|r| r.threads == 4)
            .map(|r| r.batch_scn_per_sec / single.batch_scn_per_sec)
            .unwrap_or(0.0);
        // Texture only — short grids saturate before 4 workers; the hard
        // scaling gate lives in B7.
        format!("\"informational: {at4:.2}x batch throughput at 4 workers on {cores} cores\"")
    } else {
        format!(
            "\"skipped: {cores} core(s) available (< 4); multi-worker rows are oversubscribed\""
        )
    };
    println!("\ncores: {cores}; speedup gate: {speedup_gate}; multi-worker: {multi_gate}");

    // --- JSON record ----------------------------------------------------
    let identity = rows.iter().all(|r| r.identical);
    let mut json = format!(
        "{{\n  \"bench\": \"b10_sweep\",\n  \"cores\": {cores},\n  \"scenarios\": {},\n  \"batch_width\": {WIDTH},\n  \"bit_identical_to_sequential\": {identity},\n  \"speedup_gate\": {speedup_gate},\n  \"multi_worker\": {multi_gate},\n  \"throughput\": [\n",
        scenarios.len()
    );
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"map_scn_per_sec\": {:.1}, \"batch_scn_per_sec\": {:.1}, \"speedup\": {:.2}}}{}\n",
            row.threads,
            row.map_scn_per_sec,
            row.batch_scn_per_sec,
            row.batch_scn_per_sec / row.map_scn_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let mut csv = Table::new(&["threads", "map_scn_per_sec", "batch_scn_per_sec"]);
    for row in &rows {
        csv.push(vec![
            row.threads.to_string(),
            f(row.map_scn_per_sec, 1),
            f(row.batch_scn_per_sec, 1),
        ]);
    }
    let out = args.out_dir.join("b10_sweep.csv");
    std::fs::create_dir_all(&args.out_dir).expect("create out dir");
    csv.write_csv(&out).expect("write CSV");
    println!("wrote {}", out.display());

    if let Some(baseline_path) = &args.baseline {
        // Regression-check mode: the committed record stays untouched and
        // the fresh 1-worker batch throughput must be within 30 % of it
        // (the probe grid is identical in quick mode, so the comparison
        // holds there too; 30 % absorbs container scheduling noise on the
        // short timed passes, mirroring B7).
        let text = report::read_baseline(baseline_path);
        let base = parse_pairs(&text, "\"threads\":", "\"batch_scn_per_sec\":");
        assert!(
            !base.is_empty(),
            "baseline {} contains no throughput rows",
            baseline_path.display()
        );
        if let Some(&(_, base_single)) = base.iter().find(|(t, _)| *t == 1.0) {
            let fresh = single.batch_scn_per_sec;
            if fresh < 0.7 * base_single {
                failures.push(format!(
                    "1-worker batched throughput regressed >30% ({fresh:.1} vs baseline \
                     {base_single:.1} scn/s)"
                ));
            } else {
                println!("baseline 1 worker: {fresh:.1} scn/s vs committed {base_single:.1} — ok");
            }
        }
    }
    report::emit_record(
        "b10_sweep",
        &json,
        &args.out_dir,
        args.quick,
        args.baseline.is_some(),
    );
    report::fail_if_any("B10", &failures);
}
