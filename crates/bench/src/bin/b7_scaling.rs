//! B7 — Data-oriented kernels and worker-pool scaling.
//!
//! Two measurements backing the DESIGN.md §10 performance claims:
//!
//! * **kernel ablation** — the chunked structure-of-arrays Weiszfeld
//!   kernel (`gather_geom::soa::weiszfeld_sums`) against its scalar
//!   array-of-structs reference (`soa::reference`), per team size: ns per
//!   call (minimum over trials) and the SoA/AoS speedup. The acceptance
//!   gate requires SoA to be at least as fast as AoS for every `n >= 32`.
//! * **thread scaling** — a full class × seed sweep of scenarios executed
//!   through persistent [`WorkerPool`]s of 1, 2, 4 and all-cores workers:
//!   runs/second per pool size, plus an in-run determinism cross-check
//!   (every pool size must produce bit-identical `RunMetrics`).
//!
//! The 3× speedup gate at 4 threads is enforced only when the machine
//! actually has ≥ 4 cores; otherwise the JSON records an explicit skip
//! reason instead of silently passing (or failing) on a small box. The
//! same policy applies per row: pool sizes that oversubscribe the
//! machine (`threads > cores`) run only the determinism cross-check —
//! their timed trials are skipped and the JSON row carries the core
//! count plus a skip reason, so a baseline captured on a starved runner
//! never records thrash as throughput.
//!
//! Writes `BENCH_b7_scaling.json` — unless `--baseline PATH` or `--quick`
//! is given, in which case the JSON goes to `--out` instead (a reduced or
//! regression-check run never overwrites the committed record). With
//! `--baseline` the fresh numbers are additionally checked against the
//! committed record (mirroring the B1 gate): >20 % regression of
//! single-worker runs/sec or a SoA kernel that fell behind AoS at
//! `n >= 32` fails the run.
//!
//! `GATHER_THREADS` caps the "all cores" pool like every other runner.

use gather_bench::pool::{self, WorkerPool};
use gather_bench::report::{self, parse_pairs};
use gather_bench::runner::Scenario;
use gather_bench::table::{f, Table};
use gather_bench::Args;
use gather_geom::soa::{self, reference, PointBuffer};
use gather_sim::metrics::RunMetrics;
use gather_workloads as workloads;
use std::hint::black_box;
use std::time::Instant;

/// Team sizes for the kernel ablation.
const KERNEL_SIZES: [usize; 6] = [8, 16, 32, 64, 128, 256];

struct KernelRow {
    n: usize,
    soa_ns: f64,
    aos_ns: f64,
}

struct ThreadRow {
    threads: usize,
    /// `None` when the pool is oversubscribed (`threads > cores`): a timed
    /// row there measures scheduler thrash, not scaling, and a baseline
    /// captured on a wide machine would flake forever on a starved runner.
    /// The determinism cross-check still runs for the skipped sizes.
    runs_per_sec: Option<f64>,
}

/// Minimum ns/call over `trials` timed loops of `reps` calls each.
fn time_kernel(reps: u64, trials: usize, mut call: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let start = Instant::now();
        for _ in 0..reps {
            call();
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e9 / reps as f64);
    }
    best
}

fn kernel_ablation(quick: bool) -> Vec<KernelRow> {
    let trials = if quick { 3 } else { 5 };
    KERNEL_SIZES
        .iter()
        .map(|&n| {
            let pts = workloads::random_scatter(n, 10.0, 42);
            let buf = PointBuffer::from_points(&pts);
            let q = reference::centroid(&pts);
            // Scale repetitions inversely with n so every row measures a
            // similar wall-clock slice.
            let reps = (if quick { 400_000 } else { 4_000_000 } / n as u64).max(1_000);
            let soa_ns = time_kernel(reps, trials, || {
                black_box(soa::weiszfeld_sums(black_box(&buf), black_box(q), 1e-9));
            });
            let aos_ns = time_kernel(reps, trials, || {
                black_box(reference::weiszfeld_sums(
                    black_box(&pts),
                    black_box(q),
                    1e-9,
                ));
            });
            KernelRow { n, soa_ns, aos_ns }
        })
        .collect()
}

/// The sweep every pool size executes: full class × seed cross product.
///
/// Deliberately identical in `--quick` and full mode (quick only reduces
/// trial counts): the baseline gate compares runs/sec against the
/// committed record, which is only meaningful over the same scenario set.
fn sweep() -> Vec<Scenario> {
    let (n, seeds, rounds) = (14, 3, 600);
    workloads::class_sweep(n, seeds)
        .into_iter()
        .map(|(_class, seed, initial)| {
            let mut s = Scenario::new(initial, seed);
            s.max_rounds = rounds;
            s
        })
        .collect()
}

fn thread_scaling(
    scenarios: &[Scenario],
    trials: usize,
    cores: usize,
) -> (Vec<ThreadRow>, Vec<Vec<RunMetrics>>) {
    let mut counts = vec![1usize, 2, 4, pool::default_threads()];
    counts.sort_unstable();
    counts.dedup();
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for &threads in &counts {
        let pool = WorkerPool::new(threads);
        // Warm-up pass: populates each worker's recycled engine parts so
        // the timed passes measure the steady state. It doubles as the
        // determinism sample for oversubscribed pool sizes, whose timed
        // trials are skipped (see [`ThreadRow::runs_per_sec`]).
        let mut metrics = pool.map(scenarios, Scenario::run);
        let runs_per_sec = (threads <= cores).then(|| {
            let mut best = f64::INFINITY;
            for _ in 0..trials {
                let start = Instant::now();
                metrics = pool.map(scenarios, Scenario::run);
                best = best.min(start.elapsed().as_secs_f64());
            }
            scenarios.len() as f64 / best
        });
        rows.push(ThreadRow {
            threads,
            runs_per_sec,
        });
        results.push(metrics);
    }
    (rows, results)
}

fn main() {
    let args = Args::parse();
    let mut failures: Vec<String> = Vec::new();

    // --- Kernel ablation ---------------------------------------------
    let kernels = kernel_ablation(args.quick);
    let mut kt = Table::new(&["n", "soa ns/call", "aos ns/call", "speedup"]);
    for row in &kernels {
        let speedup = row.aos_ns / row.soa_ns;
        kt.push(vec![
            row.n.to_string(),
            f(row.soa_ns, 1),
            f(row.aos_ns, 1),
            f(speedup, 2),
        ]);
        if row.n >= 32 && speedup < 1.0 {
            failures.push(format!(
                "kernel n={}: SoA weiszfeld_sums slower than AoS reference ({:.1} vs {:.1} ns)",
                row.n, row.soa_ns, row.aos_ns
            ));
        }
    }
    println!("B7 — SoA vs AoS Weiszfeld kernel (min over trials)\n");
    kt.print();

    // --- Thread scaling ----------------------------------------------
    // The timed pass is milliseconds long, so extra trials are nearly free
    // and the min-of-trials needs them to be noise-resistant — keep the
    // trial count identical in quick mode for a comparable baseline gate.
    let scenarios = sweep();
    let trials = 6;
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let (threads_rows, pooled_results) = thread_scaling(&scenarios, trials, cores);
    let sequential: Vec<RunMetrics> = scenarios.iter().map(Scenario::run).collect();
    let deterministic = pooled_results.iter().all(|r| *r == sequential);
    if !deterministic {
        failures.push(
            "pooled sweep results diverged across thread counts (determinism contract)".to_string(),
        );
    }
    // The 1-worker row is always timed (1 <= cores on any machine), so the
    // baseline gate and the speedup column have their anchor everywhere.
    let single = threads_rows
        .iter()
        .find(|r| r.threads == 1)
        .expect("1-worker row")
        .runs_per_sec
        .expect("1 worker is never oversubscribed");
    let mut tt = Table::new(&["threads", "runs/s", "speedup vs 1"]);
    for row in &threads_rows {
        match row.runs_per_sec {
            Some(rps) => tt.push(vec![row.threads.to_string(), f(rps, 1), f(rps / single, 2)]),
            None => tt.push(vec![row.threads.to_string(), "skipped".into(), "-".into()]),
        }
    }
    println!(
        "\nsweep throughput vs pool size ({} scenarios, deterministic: {})\n",
        scenarios.len(),
        deterministic
    );
    tt.print();

    // --- 3x-at-4-threads gate ----------------------------------------
    let gate = if cores >= 4 {
        let at4 = threads_rows
            .iter()
            .find(|r| r.threads == 4)
            .and_then(|r| r.runs_per_sec)
            .map(|rps| rps / single)
            .unwrap_or(0.0);
        if at4 < 3.0 {
            failures.push(format!(
                "thread scaling: {at4:.2}x at 4 workers (< 3x) on a {cores}-core machine"
            ));
        }
        format!("\"enforced: {at4:.2}x at 4 workers on {cores} cores\"")
    } else {
        format!(
            "\"skipped: {cores} core(s) available (< 4); the 3x-at-4-workers gate needs >= 4 cores\""
        )
    };
    println!("\ncores: {cores}; speedup gate: {gate}");

    // --- JSON record ---------------------------------------------------
    let mut json = format!(
        "{{\n  \"bench\": \"b7_scaling\",\n  \"cores\": {cores},\n  \"deterministic_across_thread_counts\": {deterministic},\n  \"speedup_gate\": {gate},\n  \"kernel_ablation\": [\n"
    );
    for (i, row) in kernels.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"soa_ns_per_call\": {:.1}, \"aos_ns_per_call\": {:.1}, \"speedup\": {:.2}}}{}\n",
            row.n,
            row.soa_ns,
            row.aos_ns,
            row.aos_ns / row.soa_ns,
            if i + 1 < kernels.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"thread_scaling\": [\n");
    for (i, row) in threads_rows.iter().enumerate() {
        // Every row records the core count it was measured under, so a
        // baseline captured on a wide machine is self-describing when a
        // narrow runner reads it back. Oversubscribed rows carry a skip
        // reason instead of a number: `parse_pairs` drops non-numeric
        // rows, so skipped sizes can never pollute a future baseline
        // comparison.
        let measurement = match row.runs_per_sec {
            Some(rps) => format!(
                "\"runs_per_sec\": {rps:.1}, \"speedup_vs_1\": {:.2}",
                rps / single
            ),
            None => format!(
                "\"runs_per_sec\": \"skipped: {} workers oversubscribe {cores} core(s)\"",
                row.threads
            ),
        };
        json.push_str(&format!(
            "    {{\"threads\": {}, \"cores\": {cores}, {measurement}}}{}\n",
            row.threads,
            if i + 1 < threads_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let mut csv = Table::new(&["threads", "runs_per_sec"]);
    for row in &threads_rows {
        let rps = match row.runs_per_sec {
            Some(rps) => f(rps, 1),
            None => "skipped".into(),
        };
        csv.push(vec![row.threads.to_string(), rps]);
    }
    let out = args.out_dir.join("b7_scaling.csv");
    csv.write_csv(&out).expect("write CSV");
    println!("wrote {}", out.display());

    if let Some(baseline_path) = &args.baseline {
        // Regression-check mode, mirroring B1: the committed record stays
        // untouched, fresh JSON goes to the out dir, and the run fails on
        // a >20 % single-worker throughput regression or a kernel that
        // fell behind its scalar reference.
        let text = report::read_baseline(baseline_path);
        let base_threads = parse_pairs(&text, "\"threads\":", "\"runs_per_sec\":");
        assert!(
            !base_threads.is_empty(),
            "baseline {} contains no thread-scaling rows",
            baseline_path.display()
        );
        // 30% tolerance rather than B1's 20%: the sweep's timed pass is
        // milliseconds long, so container scheduling noise is proportionally
        // larger here than on B1's much longer round loops.
        if let Some(&(_, base_single)) = base_threads.iter().find(|(t, _)| *t == 1.0) {
            if single < 0.7 * base_single {
                failures.push(format!(
                    "1-worker sweep throughput regressed >30% ({single:.1} vs baseline {base_single:.1} runs/s)"
                ));
            } else {
                println!(
                    "baseline 1 worker: {single:.1} runs/s vs committed {base_single:.1} — ok"
                );
            }
        }
    }
    report::emit_record(
        "b7_scaling",
        &json,
        &args.out_dir,
        args.quick,
        args.baseline.is_some(),
    );
    report::fail_if_any("B7", &failures);
}
