//! `simulate` — drive one gathering execution from the command line.
//!
//! ```text
//! cargo run -p gather-bench --bin simulate -- \
//!     --workload asymmetric --n 9 --seed 7 \
//!     --algorithm wait-free-gather --scheduler random --motion random \
//!     --crashes 3 --delta 0.05 --rounds 30000 \
//!     --svg out/run.svg --verbose
//! ```
//!
//! Prints a per-round narration (with `--verbose`), the outcome, summary
//! metrics, and optionally writes an SVG of the trajectories.

use gather_bench::factory;
use gather_config::Class;
use gather_sim::metrics::summarize;
use gather_sim::prelude::*;
use gather_workloads as workloads;

struct Options {
    workload: String,
    n: usize,
    seed: u64,
    algorithm: String,
    scheduler: String,
    motion: String,
    crashes: usize,
    delta: f64,
    rounds: u64,
    svg: Option<std::path::PathBuf>,
    verbose: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            workload: "scatter".into(),
            n: 8,
            seed: 1,
            algorithm: "wait-free-gather".into(),
            scheduler: "random".into(),
            motion: "random".into(),
            crashes: 0,
            delta: 0.05,
            rounds: 60_000,
            svg: None,
            verbose: false,
        }
    }
}

const USAGE: &str = "usage: simulate [--workload scatter|clusters|grid|M|L1W|L2W|QR|A|bivalent]
                [--n N] [--seed S] [--algorithm NAME] [--scheduler NAME]
                [--motion NAME] [--crashes F] [--delta D] [--rounds R]
                [--svg PATH] [--verbose]";

fn parse() -> Options {
    let mut o = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value\n{USAGE}"))
        };
        match a.as_str() {
            "--workload" => o.workload = value("--workload"),
            "--n" => o.n = value("--n").parse().expect("--n integer"),
            "--seed" => o.seed = value("--seed").parse().expect("--seed integer"),
            "--algorithm" => o.algorithm = value("--algorithm"),
            "--scheduler" => o.scheduler = value("--scheduler"),
            "--motion" => o.motion = value("--motion"),
            "--crashes" => o.crashes = value("--crashes").parse().expect("--crashes integer"),
            "--delta" => o.delta = value("--delta").parse().expect("--delta float"),
            "--rounds" => o.rounds = value("--rounds").parse().expect("--rounds integer"),
            "--svg" => o.svg = Some(value("--svg").into()),
            "--verbose" => o.verbose = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => panic!("unknown argument {other}\n{USAGE}"),
        }
    }
    o
}

fn workload(name: &str, n: usize, seed: u64) -> Vec<gather_geom::Point> {
    match name {
        "scatter" => workloads::random_scatter(n, 10.0, seed),
        "clusters" => workloads::clusters(n, (n / 3).max(2), seed),
        "grid" => {
            let side = (n as f64).sqrt().ceil() as usize;
            workloads::grid(side, side, 2.0)
        }
        "bivalent" | "B" => workloads::bivalent(n - n % 2, 8.0),
        "M" => workloads::of_class(Class::Multiple, n, seed),
        "L1W" => workloads::of_class(Class::Collinear1W, n, seed),
        "L2W" => workloads::of_class(Class::Collinear2W, n, seed),
        "QR" => workloads::of_class(Class::QuasiRegular, n, seed),
        "A" => workloads::of_class(Class::Asymmetric, n, seed),
        other => panic!("unknown workload {other}\n{USAGE}"),
    }
}

fn main() {
    let o = parse();
    let initial = workload(&o.workload, o.n, o.seed);
    let n = initial.len();
    println!(
        "simulate: {} robots ({}), algorithm {}, scheduler {}, motion {}, f = {}, δ = {}",
        n, o.workload, o.algorithm, o.scheduler, o.motion, o.crashes, o.delta
    );

    let mut engine = Engine::builder(initial)
        .algorithm(factory::algorithm(&o.algorithm))
        .scheduler(factory::scheduler(&o.scheduler, n, o.seed))
        .motion(factory::motion(&o.motion, o.seed + 1))
        .crash_plan(RandomCrashes::new(
            o.crashes.min(n.saturating_sub(1)),
            0.05,
            o.seed + 2,
        ))
        .delta(o.delta)
        .record_positions(o.svg.is_some())
        .check_invariants(o.algorithm == "wait-free-gather")
        .build();

    let outcome = loop {
        if engine.is_gathered() {
            break RunOutcome::Gathered {
                round: engine.round(),
                point: engine.positions()[0],
            };
        }
        if engine.round() >= o.rounds {
            break RunOutcome::RoundLimit {
                rounds: engine.round(),
            };
        }
        let record = engine.step();
        if o.verbose {
            println!(
                "round {:>5}: class {:<3} distinct {:>3} max-mult {:>3} activated {:>3} crashed {:?} travel {:.3}",
                record.round,
                record.class.short_name(),
                record.distinct,
                record.max_mult,
                record.activated.len(),
                record.crashed,
                record.travel,
            );
        }
    };

    match outcome {
        RunOutcome::Gathered { round, point } => {
            println!("GATHERED at {point} after {round} rounds");
        }
        RunOutcome::RoundLimit { rounds } => println!("NOT gathered within {rounds} rounds"),
    }
    let metrics = summarize(outcome, engine.trace());
    println!("{metrics}");
    println!(
        "correct robots: {}/{}; violations: {}",
        engine.correct_count(),
        n,
        engine.violations().len()
    );
    for v in engine.violations() {
        println!("  VIOLATION: {v}");
    }

    if let Some(path) = &o.svg {
        let crashes: Vec<(usize, u64)> = engine
            .trace()
            .records()
            .iter()
            .flat_map(|r| r.crashed.iter().map(move |i| (*i, r.round)))
            .collect();
        let svg = gather_viz::render_trajectories(
            engine.position_log(),
            &crashes,
            gather_viz::TrajectoryStyle::default(),
        );
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
        std::fs::write(path, svg).expect("write SVG");
        println!("wrote {}", path.display());
    }
}
