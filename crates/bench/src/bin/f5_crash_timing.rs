//! F5 — Crash-timing sensitivity: does *when and whom* the adversary
//! crashes matter?
//!
//! Strategies compared on the same workloads: crashes at start, randomly
//! timed crashes, the leader-assassin (always kill a robot standing on the
//! current target) and the endpoint-killer (crash the extremes of
//! collinear configurations — the adversary of Lemma 5.9's contradiction).
//!
//! Expected shape: 100% gathering under every strategy; targeted
//! strategies cost somewhat more rounds than random ones.

use gather_bench::table::{f, pct, Table};
use gather_bench::Args;
use gather_config::{classify, Class, Configuration};
use gather_geom::Tol;
use gather_sim::prelude::*;
use gather_workloads as workloads;
use gathering::WaitFreeGather;

fn crash_plan(strategy: &str, fbudget: usize, seed: u64) -> Box<dyn CrashPlan> {
    match strategy {
        "at-start" => Box::new(CrashAtRounds::new((0..fbudget).map(|i| (0, i)).collect())),
        "random" => Box::new(RandomCrashes::new(fbudget, 0.05, seed)),
        "leader" => Box::new(TargetedCrashes::new(
            "leader",
            fbudget,
            |round, config: &Configuration, alive: &[bool]| {
                if round % 3 != 0 {
                    return Vec::new();
                }
                let Some(target) = classify(config, Tol::default()).target else {
                    return Vec::new();
                };
                config
                    .points()
                    .iter()
                    .enumerate()
                    .filter(|(i, p)| alive[*i] && p.within(target, 1e-6))
                    .map(|(i, _)| i)
                    .take(1)
                    .collect()
            },
        )),
        "endpoints" => Box::new(TargetedCrashes::new(
            "endpoints",
            fbudget,
            |round, config: &Configuration, alive: &[bool]| {
                if round != 0 {
                    return Vec::new();
                }
                let tol = Tol::default();
                if classify(config, tol).class != Class::Collinear2W {
                    return Vec::new();
                }
                let frame = gathering::rules::collinear2w::line_frame(config);
                config
                    .points()
                    .iter()
                    .enumerate()
                    .filter(|(i, p)| {
                        alive[*i] && (p.within(frame.lo, tol.snap) || p.within(frame.hi, tol.snap))
                    })
                    .map(|(i, _)| i)
                    .collect()
            },
        )),
        other => panic!("unknown strategy {other}"),
    }
}

fn main() {
    let args = Args::parse();
    let strategies = ["at-start", "random", "leader", "endpoints"];
    let classes = [
        Class::Multiple,
        Class::Collinear2W,
        Class::QuasiRegular,
        Class::Asymmetric,
    ];
    let n = 9usize;
    let fbudget = 4usize;

    let mut table = Table::new(&[
        "strategy",
        "class",
        "trials",
        "gathered",
        "rounds(mean)",
        "crashed(mean)",
    ]);
    for &strategy in &strategies {
        for &class in &classes {
            let mut ok = 0usize;
            let mut rounds = Vec::new();
            let mut crashed = Vec::new();
            for seed in 0..args.trials as u64 {
                let pts = workloads::of_class(class, n, seed);
                let n_actual = pts.len();
                let mut engine = Engine::builder(pts)
                    .algorithm(WaitFreeGather::default())
                    .scheduler(RoundRobin::new(3))
                    .motion(RandomStops::new(0.4, seed))
                    .crash_plan(crash_plan(strategy, fbudget.min(n_actual - 1), seed))
                    .build();
                let outcome = engine.run(200_000);
                if outcome.gathered() {
                    ok += 1;
                    rounds.push(outcome.rounds() as f64);
                }
                crashed.push((n_actual - engine.live_count()) as f64);
                assert!(
                    engine.violations().is_empty(),
                    "{strategy}/{class}: {:?}",
                    engine.violations()
                );
            }
            table.push(vec![
                strategy.into(),
                class.short_name().into(),
                args.trials.to_string(),
                pct(ok, args.trials),
                f(gather_bench::runner::mean(&rounds), 1),
                f(gather_bench::runner::mean(&crashed), 1),
            ]);
        }
    }

    println!("F5 — crash-timing strategies vs WAIT-FREE-GATHER (n = {n}, f ≤ {fbudget})\n");
    table.print();
    let out = args.out_dir.join("f5_crash_timing.csv");
    table.write_csv(&out).expect("write CSV");
    println!("\nwrote {}", out.display());
}
