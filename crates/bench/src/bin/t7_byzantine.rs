//! T7 — Beyond the paper: byzantine faults.
//!
//! The paper proves crash tolerance and cites Agmon & Peleg for the
//! byzantine side: one byzantine robot defeats gathering of `n = 3`
//! robots. This experiment charts where WAIT-FREE-GATHER stands between
//! the two fault models: byzantine robots that merely stop (statue) or
//! inject noise (wanderer, fugitive) are handled like crashes, while the
//! targeted stack-stalker degrades small teams — the measured frontier of
//! crash-tolerance.
//!
//! Expected shape: statue = 100% (it *is* a crash); the mobile policies
//! also measure ≈ 100% under fair schedulers — a lone byzantine robot
//! cannot outweigh the multiplicity the correct robots form, and the
//! known n = 3 impossibility needs a byzantine strategy *coordinated with
//! the scheduler*, which is outside this policy family (see
//! EXPERIMENTS.md §T7 for the honest discussion).

use gather_bench::runner::mean;
use gather_bench::table::{f, pct, Table};
use gather_bench::Args;
use gather_sim::prelude::*;
use gather_sim::prelude::{ByzantinePolicy, Fugitive, StackStalker, Statue, Wanderer};
use gather_workloads as workloads;
use gathering::WaitFreeGather;

fn policy(name: &str, seed: u64) -> Box<dyn ByzantinePolicy> {
    match name {
        "statue" => Box::new(Statue),
        "wanderer" => Box::new(Wanderer::new(6.0, seed)),
        "fugitive" => Box::new(Fugitive),
        "stack-stalker" => Box::new(StackStalker),
        other => panic!("unknown policy {other}"),
    }
}

fn main() {
    let args = Args::parse();
    let policies = ["statue", "wanderer", "fugitive", "stack-stalker"];
    let sizes: &[usize] = if args.quick {
        &[4, 8]
    } else {
        &[3, 4, 6, 8, 12, 16]
    };
    let byz_counts = [1usize, 2];

    let mut table = Table::new(&[
        "policy",
        "n",
        "byzantine",
        "trials",
        "gathered",
        "rounds(mean)",
    ]);
    for &pol in &policies {
        for &n in sizes {
            for &b in &byz_counts {
                if b >= n {
                    continue;
                }
                let mut ok = 0usize;
                let mut rounds = Vec::new();
                for seed in 0..args.trials as u64 {
                    let pts = workloads::random_scatter(n, 8.0, seed * 13 + 1);
                    let mut builder = Engine::builder(pts)
                        .algorithm(WaitFreeGather::default())
                        .scheduler(RoundRobin::new(2.max(n / 4)))
                        .motion(RandomStops::new(0.4, seed))
                        .check_invariants(false);
                    for k in 0..b {
                        builder = builder.byzantine(k, policy(pol, seed + k as u64));
                    }
                    let mut engine = builder.build();
                    let outcome = engine.run(3_000);
                    if outcome.gathered() {
                        ok += 1;
                        rounds.push(outcome.rounds() as f64);
                    }
                }
                table.push(vec![
                    pol.into(),
                    n.to_string(),
                    b.to_string(),
                    args.trials.to_string(),
                    pct(ok, args.trials),
                    f(mean(&rounds), 1),
                ]);
            }
        }
    }

    println!("T7 — byzantine policies vs WAIT-FREE-GATHER (round budget 3000)\n");
    table.print();
    println!(
        "\nbyzantine faults are outside the paper's positive result; the rows \
         chart how far crash-tolerance stretches (statue = crash; targeted \
         adversaries require the byzantine-specific algorithms the paper \
         cites)."
    );
    let out = args.out_dir.join("t7_byzantine.csv");
    table.write_csv(&out).expect("write CSV");
    println!("wrote {}", out.display());
}
