//! T6 — Section IV: the classification partition and safe points.
//!
//! Three measurements:
//!
//! 1. generator agreement — every per-class generator's output classifies
//!    as intended (exercising the decision procedure's boundaries);
//! 2. the class distribution of random configurations by team size — shows
//!    why class `A` only becomes generic for n ≥ 5 (small configurations
//!    have Weber points with periodic direction structure);
//! 3. Lemmas 4.2/4.3 — safe points exist exactly outside `B ∪ L2W` among
//!    the sampled configurations.
//!
//! Expected shape: 100% generator agreement; random scatters are QR for
//! n ∈ {3, 4} and overwhelmingly A for n ≥ 5; zero safe-point lemma
//! violations.

use gather_bench::table::{pct, Table};
use gather_bench::Args;
use gather_config::{classify, safe_points, Class, Configuration};
use gather_geom::Tol;
use gather_workloads as workloads;
use std::collections::BTreeMap;

fn main() {
    let args = Args::parse();
    let tol = Tol::default();
    let trials = args.trials.max(5);

    // 1. Generator agreement.
    let mut agree = Table::new(&["class", "n", "trials", "agreement"]);
    for class in Class::all() {
        for n in [4usize, 6, 9, 12] {
            let hits = (0..trials as u64)
                .filter(|seed| {
                    let pts = workloads::of_class(class, n, *seed);
                    classify(&Configuration::canonical(pts, tol), tol).class == class
                })
                .count();
            agree.push(vec![
                class.short_name().into(),
                n.to_string(),
                trials.to_string(),
                pct(hits, trials),
            ]);
        }
    }
    println!("T6a — generator/classifier agreement\n");
    agree.print();
    agree
        .write_csv(&args.out_dir.join("t6a_agreement.csv"))
        .expect("write CSV");

    // 2. Class distribution of random configurations.
    let mut dist = Table::new(&["n", "samples", "B", "M", "L1W", "L2W", "QR", "A"]);
    for n in [3usize, 4, 5, 6, 8, 12] {
        let samples = trials * 10;
        let mut hist: BTreeMap<Class, usize> = BTreeMap::new();
        for seed in 0..samples as u64 {
            let pts =
                workloads::random_scatter(n, 8.0, seed.wrapping_mul(31).wrapping_add(n as u64));
            let class = classify(&Configuration::canonical(pts, tol), tol).class;
            *hist.entry(class).or_insert(0) += 1;
        }
        let cell = |c: Class| pct(hist.get(&c).copied().unwrap_or(0), samples);
        dist.push(vec![
            n.to_string(),
            samples.to_string(),
            cell(Class::Bivalent),
            cell(Class::Multiple),
            cell(Class::Collinear1W),
            cell(Class::Collinear2W),
            cell(Class::QuasiRegular),
            cell(Class::Asymmetric),
        ]);
    }
    println!("\nT6b — class distribution of uniform random configurations\n");
    dist.print();
    dist.write_csv(&args.out_dir.join("t6b_distribution.csv"))
        .expect("write CSV");

    // 3. Safe-point lemmas.
    let mut safe = Table::new(&["class", "configs", "lemma", "violations"]);
    let mut by_class: BTreeMap<Class, (usize, usize)> = BTreeMap::new();
    for class in Class::all() {
        for seed in 0..trials as u64 {
            for n in [4usize, 7, 10] {
                let pts = workloads::of_class(class, n, seed);
                let config = Configuration::canonical(pts, tol);
                let has_safe = !safe_points(&config, tol).is_empty();
                let violated = match classify(&config, tol).class {
                    // Lemma 4.3: B and L2W have no safe point.
                    Class::Bivalent | Class::Collinear2W => has_safe,
                    // Lemma 4.2: non-linear configurations have one.
                    c if !config.is_linear(tol) => {
                        let _ = c;
                        !has_safe
                    }
                    _ => false,
                };
                let entry = by_class.entry(class).or_insert((0, 0));
                entry.0 += 1;
                if violated {
                    entry.1 += 1;
                }
            }
        }
    }
    for (class, (configs, violations)) in &by_class {
        safe.push(vec![
            class.short_name().into(),
            configs.to_string(),
            match class {
                Class::Bivalent | Class::Collinear2W => "4.3 (none exist)",
                _ => "4.2 (exists if non-linear)",
            }
            .into(),
            violations.to_string(),
        ]);
    }
    println!("\nT6c — safe-point lemmas 4.2/4.3\n");
    safe.print();
    safe.write_csv(&args.out_dir.join("t6c_safe_points.csv"))
        .expect("write CSV");

    // 4. Axial symmetry: mirror-symmetric configurations carry a
    // detectable axis yet classify as A — the paper's chirality argument.
    let mut axial = Table::new(&["pairs", "on-axis", "trials", "axis found", "class A"]);
    for (pairs, on_axis) in [(2usize, 1usize), (3, 0), (3, 1), (4, 2)] {
        let mut axes = 0usize;
        let mut class_a = 0usize;
        for seed in 0..trials as u64 {
            let pts = workloads::axially_symmetric(pairs, on_axis, seed);
            let config = Configuration::canonical(pts, tol);
            if gather_config::detect_mirror_axis(&config, tol).is_some() {
                axes += 1;
            }
            if classify(&config, tol).class == Class::Asymmetric {
                class_a += 1;
            }
        }
        axial.push(vec![
            pairs.to_string(),
            on_axis.to_string(),
            trials.to_string(),
            pct(axes, trials),
            pct(class_a, trials),
        ]);
    }
    println!("\nT6d — axial symmetry: mirror axes broken by chirality\n");
    axial.print();
    axial
        .write_csv(&args.out_dir.join("t6d_axial.csv"))
        .expect("write CSV");
    println!("\nwrote CSVs under {}", args.out_dir.display());
}
