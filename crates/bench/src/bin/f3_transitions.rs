//! F3 — The class-transition graph (claims C1 of Lemmas 5.3–5.9).
//!
//! Aggregates class transitions over many executions and compares them
//! against the edges the proofs allow: `M` is absorbing, `L1W → M`,
//! `QR → {M, L1W}`, `A → {M, L1W, QR}`, `L2W → anything but B`, and no
//! edge enters `B`.
//!
//! Expected shape: every observed edge is allowed; `illegal` = 0.

use gather_bench::table::Table;
use gather_bench::Args;
use gather_config::Class;
use gather_sim::metrics::summarize;
use gather_sim::prelude::*;
use gather_workloads as workloads;
use gathering::WaitFreeGather;
use std::collections::BTreeMap;

fn allowed(from: Class, to: Class) -> bool {
    use Class::*;
    match from {
        Multiple => false,
        Collinear1W => matches!(to, Multiple),
        QuasiRegular => matches!(to, Multiple | Collinear1W),
        Asymmetric => matches!(to, Multiple | Collinear1W | QuasiRegular),
        Collinear2W => to != Bivalent,
        Bivalent => to != Bivalent,
    }
}

fn main() {
    let args = Args::parse();
    let classes = [
        Class::Multiple,
        Class::Collinear1W,
        Class::Collinear2W,
        Class::QuasiRegular,
        Class::Asymmetric,
    ];

    let mut edges: BTreeMap<(Class, Class), u64> = BTreeMap::new();
    let mut runs = 0usize;
    let mut gathered = 0usize;
    for &class in &classes {
        for n in [5usize, 8, 12] {
            for seed in 0..args.trials as u64 {
                let pts = workloads::of_class(class, n, seed);
                let mut engine = Engine::builder(pts)
                    .algorithm(WaitFreeGather::default())
                    .scheduler(RandomSubsets::new(0.4, 6 * n as u64, seed))
                    .motion(RandomStops::new(0.3, seed + 1))
                    .crash_plan(RandomCrashes::new(n / 2, 0.05, seed + 2))
                    .build();
                let outcome = engine.run(200_000);
                let m = summarize(outcome, engine.trace());
                runs += 1;
                if m.gathered {
                    gathered += 1;
                }
                for (edge, count) in m.transitions {
                    *edges.entry(edge).or_insert(0) += count;
                }
            }
        }
    }

    let mut table = Table::new(&["from", "to", "count", "allowed by lemmas"]);
    let mut illegal = 0u64;
    for ((from, to), count) in &edges {
        let ok = allowed(*from, *to);
        if !ok {
            illegal += count;
        }
        table.push(vec![
            from.short_name().into(),
            to.short_name().into(),
            count.to_string(),
            if ok { "yes" } else { "NO" }.into(),
        ]);
    }

    println!("F3 — observed class transitions over {runs} executions ({gathered} gathered)\n");
    table.print();
    println!("\nillegal transitions: {illegal} (the lemmas predict 0)");
    let out = args.out_dir.join("f3_transitions.csv");
    table.write_csv(&out).expect("write CSV");
    println!("wrote {}", out.display());
    assert_eq!(illegal, 0, "lemma-violating transition observed");
}
