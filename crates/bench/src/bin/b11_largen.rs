//! B11 — large-`n` round throughput: incremental dirty-tracked analysis
//! against the full-recompute reference.
//!
//! The incremental engine path (`EngineBuilder::incremental`) maintains the
//! canonical configuration, the distinct-location multiset and the shared
//! round analysis by patching only the robots that moved, instead of
//! re-sorting and re-classifying all `n` robots every round. This bench
//! measures what that buys on the workload the optimisation targets: a
//! large class-`M` configuration under the sequential scheduler, where one
//! robot moves per round and the dirty set has size 1 while the reference
//! path still pays `O(n log n)` per round.
//!
//! Per team size the bench reports ns/robot/round and rounds/second for
//! both modes, the incremental/full speedup, and — for every row where the
//! reference ran — an in-run bit-identity check: final positions and the
//! cache's `computed`/`hits` counters must match exactly (the contract of
//! `tests/incremental_analysis.rs`, re-verified here at scale). Full
//! recompute is capped at `n <= 16384`; larger rows record an explicit
//! skip reason instead of an hour-long reference run.
//!
//! Gates (always enforced, they compare the two modes against each other
//! and are machine-independent):
//!
//! * bit-identity on every referenced row;
//! * incremental at least 3x the reference rounds/s on some `n >= 4096`
//!   row (the ISSUE acceptance bar).
//!
//! With `--baseline PATH` the fresh incremental rounds/s are additionally
//! regression-checked against the committed record — but only on machines
//! with >= 2 cores; a starved single-core runner records an explicit skip
//! reason instead of flaking (same policy as B7's thread-scaling gate).
//!
//! Writes `BENCH_b11_largen.json` — unless `--quick` or `--baseline` is
//! given, in which case the JSON goes to `--out` and the committed record
//! stays untouched.

use gather_bench::factory;
use gather_bench::report::{self, parse_pairs};
use gather_bench::table::{f, Table};
use gather_bench::Args;
use gather_geom::Point;
use gather_prng::Rng;
use gather_sim::prelude::*;
use std::time::Instant;

/// Stack size of the class-`M` workload. A power of two keeps every
/// intermediate centroid arithmetic bitwise-exact, so the identity check
/// never has to reason about rounding.
const STACK: usize = 4;

/// Largest `n` for which the full-recompute reference runs. Above this the
/// reference's per-round re-sort makes the row take minutes for no extra
/// information — the speedup trend is established well before.
const REFERENCE_CAP: usize = 16_384;

/// Untimed steps per fresh engine before the timed loop, so the timed
/// rounds measure the steady state (warm caches, first classification
/// done).
const WARMUP: u64 = 2;

/// Class-`M` at scale: a stack of [`STACK`] robots at an off-grid anchor
/// plus jittered-grid satellites, one per unit cell.
///
/// `workloads::multiple` rejection-samples a fixed 20x20 box with a 0.5
/// minimum separation, which caps out near a thousand satellites and never
/// terminates beyond that; this generator is `O(n)` at any `n`. Jitter
/// inside `(0.1, 0.9)` of each cell keeps satellites pairwise distinct by
/// construction, and the anchor sits outside the grid, so the stack is the
/// unique maximum multiplicity — class `M` by definition.
fn largen_multiple(n: usize, seed: u64) -> Vec<Point> {
    assert!(n > STACK, "need more robots than the stack");
    let mut rng = Rng::seed_from_u64(seed);
    let side = ((n - STACK) as f64).sqrt().ceil() as usize;
    let mut pts = vec![Point::new(-2.0, -3.0); STACK];
    'fill: for gy in 0..side {
        for gx in 0..side {
            if pts.len() == n {
                break 'fill;
            }
            pts.push(Point::new(
                gx as f64 + rng.random_range(0.1..0.9),
                gy as f64 + rng.random_range(0.1..0.9),
            ));
        }
    }
    pts
}

/// Builds the engine both modes share: the paper's algorithm under the
/// sequential scheduler and the `δ`-stingy motion adversary, audits off
/// (B9 showed they dominate round time and both modes would just measure
/// the audit), global frame so the snapshots carry no per-robot rotation
/// work.
fn build(initial: &[Point], incremental: bool) -> Engine {
    let n = initial.len();
    Engine::builder(initial.to_vec())
        .algorithm(factory::algorithm("wait-free-gather"))
        .scheduler(factory::scheduler("single", n, 11))
        .motion(factory::motion("delta", 12))
        .frames(FramePolicy::GlobalFrame)
        .delta(0.05)
        .check_invariants(false)
        .shared_analysis(true)
        .warm_start(true)
        .incremental(incremental)
        .build()
}

/// Timed rounds per team size: a similar wall-clock slice per row, floored
/// so even the biggest teams measure several full rounds.
fn rounds_for(n: usize) -> u64 {
    ((1 << 17) as u64 / n as u64).clamp(8, 128)
}

struct ModeResult {
    best_secs: f64,
    positions: Vec<Point>,
    computed: u64,
    hits: u64,
}

/// Min-over-trials timing of `rounds` engine steps in one mode, plus the
/// final positions and cache counters for the identity check. Every trial
/// drives a fresh engine over the same deterministic schedule, so the
/// positions are trial-invariant.
fn time_mode(initial: &[Point], incremental: bool, rounds: u64, trials: usize) -> ModeResult {
    let mut best = f64::INFINITY;
    let mut positions = Vec::new();
    let mut counters = (0u64, 0u64);
    for _ in 0..trials {
        let mut engine = build(initial, incremental);
        for _ in 0..WARMUP {
            engine.step();
        }
        let start = Instant::now();
        for _ in 0..rounds {
            engine.step();
        }
        best = best.min(start.elapsed().as_secs_f64());
        positions = engine.positions().to_vec();
        let (computed, hits, _dirty_skips) = engine.analysis_cache_stats();
        counters = (computed, hits);
    }
    ModeResult {
        best_secs: best,
        positions,
        computed: counters.0,
        hits: counters.1,
    }
}

struct Row {
    n: usize,
    rounds: u64,
    inc_ns: f64,
    inc_rps: f64,
    /// `(full ns/robot/round, full rounds/s, bit-identical)` when the
    /// reference ran for this row.
    full: Option<(f64, f64, bool)>,
}

fn main() {
    let args = Args::parse();
    let mut failures: Vec<String> = Vec::new();

    let sizes: &[usize] = if args.quick {
        &[1024, 4096]
    } else {
        &[1024, 4096, 16_384, 65_536, 100_000]
    };
    let trials = if args.quick { 2 } else { 3 };

    let mut rows = Vec::new();
    for &n in sizes {
        let initial = largen_multiple(n, n as u64);
        let rounds = rounds_for(n);
        let inc = time_mode(&initial, true, rounds, trials);
        let per = |r: &ModeResult| {
            (
                r.best_secs * 1e9 / (rounds as f64 * n as f64),
                rounds as f64 / r.best_secs,
            )
        };
        let (inc_ns, inc_rps) = per(&inc);
        let full = (n <= REFERENCE_CAP).then(|| {
            let full = time_mode(&initial, false, rounds, trials);
            let identical = full.positions == inc.positions
                && full.computed == inc.computed
                && full.hits == inc.hits;
            if !identical {
                failures.push(format!(
                    "n={n}: incremental diverged from full recompute \
                     (positions equal: {}, computed {} vs {}, hits {} vs {})",
                    full.positions == inc.positions,
                    inc.computed,
                    full.computed,
                    inc.hits,
                    full.hits
                ));
            }
            let (full_ns, full_rps) = per(&full);
            (full_ns, full_rps, identical)
        });
        rows.push(Row {
            n,
            rounds,
            inc_ns,
            inc_rps,
            full,
        });
    }

    // --- Table ---------------------------------------------------------
    let mut t = Table::new(&[
        "n",
        "rounds",
        "inc ns/robot/round",
        "inc rounds/s",
        "full rounds/s",
        "speedup",
        "identical",
    ]);
    for row in &rows {
        let (full_rps, speedup, identical) = match row.full {
            Some((_, rps, id)) => (f(rps, 2), f(row.inc_rps / rps, 2), id.to_string()),
            None => ("skipped".into(), "-".into(), "-".into()),
        };
        t.push(vec![
            row.n.to_string(),
            row.rounds.to_string(),
            f(row.inc_ns, 1),
            f(row.inc_rps, 2),
            full_rps,
            speedup,
            identical,
        ]);
    }
    println!("B11 — incremental vs full-recompute analysis at large n\n");
    t.print();

    // --- 3x-speedup gate (machine-independent: same box, same rounds) --
    let best_gain = rows
        .iter()
        .filter(|r| r.n >= 4096)
        .filter_map(|r| r.full.map(|(_, rps, _)| r.inc_rps / rps))
        .fold(0.0_f64, f64::max);
    if best_gain < 3.0 {
        failures.push(format!(
            "incremental speedup {best_gain:.2}x at n >= 4096 (< 3x acceptance bar)"
        ));
    }
    println!("\nbest incremental speedup at n >= 4096: {best_gain:.2}x");

    // --- JSON record ---------------------------------------------------
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut json = format!(
        "{{\n  \"bench\": \"b11_largen\",\n  \"cores\": {cores},\n  \"best_speedup_at_4096_plus\": {best_gain:.2},\n  \"rows\": [\n"
    );
    for (i, row) in rows.iter().enumerate() {
        let full_cols = match row.full {
            Some((ns, rps, identical)) => format!(
                "\"full_ns_per_robot_round\": {ns:.1}, \"full_rounds_per_sec\": {rps:.2}, \
                 \"speedup\": {:.2}, \"identical\": {identical}",
                row.inc_rps / rps
            ),
            None => format!(
                "\"full_rounds_per_sec\": \"skipped: full-recompute reference capped at n <= {REFERENCE_CAP}\""
            ),
        };
        json.push_str(&format!(
            "    {{\"n\": {}, \"rounds\": {}, \"inc_ns_per_robot_round\": {:.1}, \"inc_rounds_per_sec\": {:.2}, {}}}{}\n",
            row.n,
            row.rounds,
            row.inc_ns,
            row.inc_rps,
            full_cols,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let mut csv = Table::new(&["n", "inc_rounds_per_sec", "full_rounds_per_sec", "speedup"]);
    for row in &rows {
        let (full_rps, speedup) = match row.full {
            Some((_, rps, _)) => (f(rps, 2), f(row.inc_rps / rps, 2)),
            None => ("".into(), "".into()),
        };
        csv.push(vec![
            row.n.to_string(),
            f(row.inc_rps, 2),
            full_rps,
            speedup,
        ]);
    }
    let out = args.out_dir.join("b11_largen.csv");
    csv.write_csv(&out).expect("write CSV");
    println!("wrote {}", out.display());

    if let Some(baseline_path) = &args.baseline {
        // Absolute-throughput regression gate against the committed
        // record. Wall-clock rounds/s on a starved or single-core runner
        // is noise, not signal — record why the gate was skipped instead
        // of silently passing (B7's cores policy).
        if cores < 2 {
            println!(
                "baseline gate skipped: {cores} core(s) available (< 2); \
                 absolute rounds/s on a starved runner is not comparable"
            );
        } else {
            let text = report::read_baseline(baseline_path);
            let base = parse_pairs(&text, "\"n\":", "\"inc_rounds_per_sec\":");
            assert!(
                !base.is_empty(),
                "baseline {} contains no rows",
                baseline_path.display()
            );
            for row in &rows {
                if let Some(&(_, base_rps)) = base.iter().find(|(bn, _)| *bn == row.n as f64) {
                    if row.inc_rps < 0.7 * base_rps {
                        failures.push(format!(
                            "n={}: incremental rounds/s regressed >30% \
                             ({:.2} vs baseline {base_rps:.2})",
                            row.n, row.inc_rps
                        ));
                    } else {
                        println!(
                            "baseline n={}: {:.2} rounds/s vs committed {base_rps:.2} — ok",
                            row.n, row.inc_rps
                        );
                    }
                }
            }
        }
    }
    report::emit_record(
        "b11_largen",
        &json,
        &args.out_dir,
        args.quick,
        args.baseline.is_some(),
    );
    report::fail_if_any("B11", &failures);
}
