//! T5 — Lemma 5.1: the wait-freeness necessary condition.
//!
//! For every sampled configuration of every class, count how many occupied
//! locations WAIT-FREE-GATHER instructs to stay. Crash tolerance for
//! `f = n − 1` requires at most one. The baselines are measured too, which
//! shows exactly *why* they fail: `ordered-march` leaves all but one
//! location waiting.
//!
//! Expected shape: `max staying` ≤ 1 for wait-free-gather and agmon-peleg
//! and the convergence rules; `ordered-march` has `max staying` close to
//! the number of distinct locations.

use gather_bench::factory::{algorithm, ALGORITHMS};
use gather_bench::table::{f as fmt, Table};
use gather_bench::Args;
use gather_config::{Class, Configuration};
use gather_geom::Tol;
use gather_sim::prelude::Snapshot;
use gather_workloads as workloads;

fn main() {
    let args = Args::parse();
    let classes = [
        Class::Multiple,
        Class::Collinear1W,
        Class::Collinear2W,
        Class::QuasiRegular,
        Class::Asymmetric,
    ];
    let tol = Tol::default();

    let mut table = Table::new(&[
        "algorithm",
        "class",
        "configs",
        "max staying",
        "mean staying",
        "wait-free",
    ]);

    for &alg_name in &ALGORITHMS {
        let alg = algorithm(alg_name);
        for &class in &classes {
            let mut max_staying = 0usize;
            let mut total = 0usize;
            let mut configs = 0usize;
            for seed in 0..args.trials as u64 {
                for n in [5usize, 8, 11] {
                    let pts = workloads::of_class(class, n, seed);
                    let config = Configuration::canonical(pts, tol);
                    if config.is_gathered() {
                        continue;
                    }
                    let mut staying = 0usize;
                    for p in config.distinct_points() {
                        let d = alg.destination(&Snapshot::new(config.clone(), p));
                        if d.within(p, tol.abs) {
                            staying += 1;
                        }
                    }
                    max_staying = max_staying.max(staying);
                    total += staying;
                    configs += 1;
                }
            }
            table.push(vec![
                alg_name.into(),
                class.short_name().into(),
                configs.to_string(),
                max_staying.to_string(),
                fmt(total as f64 / configs.max(1) as f64, 2),
                if max_staying <= 1 { "yes" } else { "NO" }.into(),
            ]);
        }
    }

    println!("T5 — Lemma 5.1: locations instructed to stay, per algorithm and class\n");
    table.print();
    println!(
        "\na crash-tolerant algorithm for f ≤ n−1 must keep 'max staying' ≤ 1 \
         (Lemma 5.1); 'ordered-march' fails exactly this condition."
    );
    let out = args.out_dir.join("t5_waitfree.csv");
    table.write_csv(&out).expect("write CSV");
    println!("wrote {}", out.display());
}
