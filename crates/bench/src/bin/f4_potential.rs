//! F4 — The potential function of class `A` (Lemma 5.6, Claim C2).
//!
//! Records the time series of `φ = (max multiplicity of the elected point,
//! Σ distances to it)` along asymmetric-phase executions and verifies the
//! lexicographic improvement whenever the configuration changes.
//!
//! Expected shape: `mult` is non-decreasing; within equal-`mult` stretches
//! the distance sum is non-increasing; `violations` = 0.

use gather_bench::table::{f, Table};
use gather_bench::Args;
use gather_config::{classify, Class, Configuration};
use gather_geom::Tol;
use gather_sim::prelude::*;
use gather_workloads as workloads;
use gathering::{rules, WaitFreeGather};

fn main() {
    let args = Args::parse();
    let tol = Tol::default();

    // One detailed time series (figure data)…
    let pts = workloads::asymmetric(10, 2);
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .scheduler(RoundRobin::new(3))
        .motion(RandomStops::new(0.3, 5))
        .build();
    let mut series = Table::new(&["round", "class", "elected mult", "sum dist", "weiszfeld"]);
    for round in 0..10_000u64 {
        let config = engine.configuration();
        let analysis = classify(&config, tol);
        if analysis.class != Class::Asymmetric {
            break;
        }
        let elected = rules::asymmetric::elected_point(&config, tol);
        let mult = config.mult(elected, tol);
        let sum = config.sum_of_distances(elected);
        if engine.is_gathered() {
            break;
        }
        // Step first so the row can report the solver cost of the round it
        // describes: φ is evaluated on the start-of-round configuration,
        // the Weiszfeld count is what this round's (warm-started)
        // classification spent on it.
        let weiszfeld = engine.step().weiszfeld_iters;
        series.push(vec![
            round.to_string(),
            analysis.class.short_name().into(),
            mult.to_string(),
            f(sum, 4),
            weiszfeld.to_string(),
        ]);
    }
    println!("F4 — φ time series in class A (single seeded run)\n");
    series.print();
    series
        .write_csv(&args.out_dir.join("f4_potential_series.csv"))
        .expect("write CSV");

    // …and a violation count across many runs (table data).
    let mut runs = 0usize;
    let mut violations = 0usize;
    for seed in 0..(args.trials as u64 * 4) {
        let n = 6 + (seed as usize % 7);
        let pts = workloads::asymmetric(n, seed);
        let mut engine = Engine::builder(pts)
            .algorithm(WaitFreeGather::default())
            .scheduler(RandomSubsets::new(0.4, 6 * n as u64, seed))
            .motion(RandomStops::new(0.3, seed + 9))
            .crash_plan(RandomCrashes::new(n / 3, 0.05, seed + 17))
            .build();
        runs += 1;
        let mut prev: Option<(usize, f64, Configuration)> = None;
        for _ in 0..20_000 {
            let config = engine.configuration();
            if classify(&config, tol).class != Class::Asymmetric {
                break;
            }
            let elected = rules::asymmetric::elected_point(&config, tol);
            let mult = config.mult(elected, tol);
            let sum = config.sum_of_distances(elected);
            if let Some((pm, ps, pc)) = &prev {
                let changed = *pc != config;
                let improved = mult > *pm || (mult == *pm && sum < *ps + 1e-9);
                if changed && !improved {
                    violations += 1;
                }
            }
            prev = Some((mult, sum, config));
            if engine.is_gathered() {
                break;
            }
            engine.step();
        }
    }
    println!(
        "\nφ-monotonicity audit: {runs} asymmetric runs, {violations} violations (expected 0)"
    );
    assert_eq!(violations, 0);
    println!(
        "wrote {}",
        args.out_dir.join("f4_potential_series.csv").display()
    );
}
