//! T2 — Baseline comparison: the paper's algorithm vs the prior art its
//! introduction discusses, across fault levels and initial-configuration
//! families (including the multi-multiplicity starts that are outside the
//! classic algorithms' contracts).
//!
//! Expected shape: `wait-free-gather` is 100% everywhere; `ordered-march`
//! collapses as soon as `f ≥ 1` can hit the designated walker;
//! `agmon-peleg` style survives small `f` on distinct starts but is
//! unreliable on multiplicity starts; `center-of-gravity` "succeeds" only
//! because float convergence eventually crosses the snap radius, paying a
//! large round count under the stingy motion adversary.

use gather_bench::factory::ALGORITHMS;
use gather_bench::runner::{mean, median, parallel_map, Scenario};
use gather_bench::table::{f, pct, Table};
use gather_bench::Args;
use gather_geom::Point;
use gather_workloads as workloads;

fn workload(name: &str, seed: u64) -> Vec<Point> {
    match name {
        "scatter" => workloads::random_scatter(8, 8.0, seed),
        "stacks" => workloads::clusters(9, 3, seed),
        "line" => workloads::collinear_1w(9, seed),
        "ring" => workloads::regular_polygon(8, 4.0, seed as f64 * 0.1),
        other => panic!("unknown workload {other}"),
    }
}

fn main() {
    let args = Args::parse();
    let workload_names = ["scatter", "stacks", "line", "ring"];
    let fault_levels = [0usize, 1, 2, 4];

    let mut scenarios = Vec::new();
    for &alg in &ALGORITHMS {
        for &w in &workload_names {
            for &faults in &fault_levels {
                for trial in 0..args.trials as u64 {
                    let mut s = Scenario::new(workload(w, trial), trial * 7 + 1);
                    s.algorithm = alg;
                    s.scheduler = "random";
                    s.motion = "random";
                    s.faults = faults;
                    s.max_rounds = 50_000;
                    scenarios.push(s);
                }
            }
        }
    }

    let metrics = parallel_map(scenarios, |s| s.run());

    let mut table = Table::new(&[
        "algorithm",
        "workload",
        "f",
        "gathered",
        "rounds(median)",
        "rounds(mean)",
    ]);
    let mut idx = 0;
    for &alg in &ALGORITHMS {
        for &w in &workload_names {
            for &faults in &fault_levels {
                let cell: Vec<_> = (0..args.trials).map(|k| &metrics[idx + k]).collect();
                idx += args.trials;
                let ok = cell.iter().filter(|m| m.gathered).count();
                let rounds: Vec<f64> = cell
                    .iter()
                    .filter(|m| m.gathered)
                    .map(|m| m.rounds as f64)
                    .collect();
                table.push(vec![
                    alg.into(),
                    w.into(),
                    faults.to_string(),
                    pct(ok, args.trials),
                    f(median(&rounds), 1),
                    f(mean(&rounds), 1),
                ]);
            }
        }
    }

    println!("T2 — baselines vs WAIT-FREE-GATHER (round stats over gathered runs only)\n");
    table.print();
    let out = args.out_dir.join("t2_baselines.csv");
    table.write_csv(&out).expect("write CSV");
    println!("\nwrote {}", out.display());
}
