//! SWEEP — parameter-space cartography on the columnar mega-sweep engine.
//!
//! T1 samples Theorem 5.1's claim at 800 cells; this driver maps the
//! whole phase space at an order of magnitude more: every scenario family
//! (the six configuration classes plus the grid-constrained and stand-up
//! related-work families) × team size × scheduler × motion floor `δ` ×
//! *every* crash count `f ∈ 0..n-1`, several trials each — tens of
//! thousands of scenarios, executed by
//! [`gather_bench::sweep::run_batched_on`] (lockstep batches, one recycled
//! arena per worker, admission memoisation across the grid cells that
//! share an initial configuration; bit-identical to the sequential path,
//! see B10). The `async` scheduler column rides the same driver:
//! `run_batched_on` routes those scenarios to the event-heap engine with
//! a tick budget in place of the round budget (a tick is one event batch,
//! ~`1/n` of a round's work).
//!
//! Outputs, committed in full mode:
//!
//! * `results/sweep_phase.json` — one aggregate row per grid cell
//!   (gathered fraction, mean rounds, mean travel over trials);
//! * `results/sweep_phase.svg` — a heatmap sheet (family × scheduler
//!   panels; `δ` × crash-fraction cells; colour = log₁₀(1 + mean rounds
//!   to gather)), the phase diagram's visual: gathering everywhere
//!   (Theorem 5.1 for the non-bivalent classes; the bivalent class also
//!   converges here because Lemma 5.2's impossibility needs the
//!   group-serialising adversary, which none of the sampled schedulers
//!   is — see T3 for that adversary), with cost growing toward the
//!   single-activation scheduler and the stingy motion floor, and the
//!   async column visibly hotter (tick counts, not round counts).
//!
//! `--quick` runs a reduced grid into `--out` and leaves the committed
//! artefacts untouched. Audits are off ([`Scenario::audit`]): the sweep
//! measures outcomes, not monitors, and B10 pins batch ≡ sequential.

use gather_bench::pool;
use gather_bench::runner::Scenario;
use gather_bench::sweep::run_batched_on;
use gather_bench::table::{f, pct, Table};
use gather_bench::Args;
use gather_config::Class;
use gather_geom::Point;
use gather_viz::{render_heatmap_sheet, HeatmapPanel, HeatmapStyle};
use gather_workloads as workloads;
use std::collections::BTreeMap;

/// Lockstep lanes per in-flight batch (matches B10).
const WIDTH: usize = 16;
/// Round budget: two orders of magnitude above the typical gathering run
/// in the grid, so round-limit cells mark genuinely slow corners of the
/// phase space (deep serialisation × stingy motion), not noise.
const MAX_ROUNDS: u64 = 2_000;
/// Tick budget for the async column. A tick is one event batch — usually
/// one robot's phase — so the budget is `MAX_ROUNDS` scaled by a typical
/// team size rather than the round budget verbatim.
const MAX_TICKS: u64 = 40_000;

const SCHEDULERS: [&str; 5] = ["full", "round-robin", "single", "random", "async"];
const DELTAS: [f64; 4] = [0.01, 0.05, 0.2, 0.5];
/// Crash-fraction buckets for the heatmap's x axis (`f / (n-1)`).
const FRAC_BINS: usize = 8;

/// One row-group of the sweep: the six configuration classes of the paper
/// plus the two related-work scenario families.
#[derive(Clone, Copy)]
struct Family {
    name: &'static str,
    /// `None` for the two non-class families.
    class: Option<Class>,
    algorithm: &'static str,
}

fn families() -> Vec<Family> {
    let mut out: Vec<Family> = Class::all()
        .iter()
        .map(|&c| Family {
            name: c.short_name(),
            class: Some(c),
            algorithm: "wait-free-gather",
        })
        .collect();
    // Grid-constrained gathering (Bose et al., arXiv:1709.00877): robots
    // on ℤ², the grid rule, the grid model's common compass (pinned by
    // `Scenario::frame_policy`).
    out.push(Family {
        name: "grid",
        class: None,
        algorithm: "grid-march",
    });
    // Stand-up indulgent gathering (Bramas et al., arXiv:2302.03466):
    // scattered teams under the paper's algorithm; the strengthened
    // gather-at-the-casualty predicate is mapped by `f7_boundary`, the
    // sweep charts the plain-gathering cost of the same scenarios.
    out.push(Family {
        name: "standup",
        class: None,
        algorithm: "wait-free-gather",
    });
    out
}

fn family_initial(fam: &Family, n: usize, trial: u64) -> Vec<Point> {
    match (fam.name, fam.class) {
        (_, Some(class)) => workloads::of_class(class, n, trial),
        ("grid", None) => {
            let extent = 10.max((n as f64).sqrt().ceil() as i64);
            workloads::lattice_scatter(n, extent, trial)
        }
        _ => workloads::random_scatter(n, 10.0, trial),
    }
}

struct Dims {
    ns: Vec<usize>,
    schedulers: Vec<&'static str>,
    deltas: Vec<f64>,
    trials: u64,
}

impl Dims {
    fn new(quick: bool) -> Self {
        if quick {
            Dims {
                ns: vec![8],
                schedulers: vec!["full", "round-robin", "async"],
                deltas: vec![0.05, 0.5],
                trials: 1,
            }
        } else {
            Dims {
                ns: vec![8, 12, 16, 20],
                schedulers: SCHEDULERS.to_vec(),
                deltas: DELTAS.to_vec(),
                trials: 2,
            }
        }
    }
}

/// One aggregate cell of the phase diagram.
#[derive(Default)]
struct CellAgg {
    runs: u64,
    gathered: u64,
    rounds: f64,
    travel: f64,
}

type CellKey = (usize, usize, usize, usize, usize); // family, n, sched, delta, f

fn main() {
    let args = Args::parse();
    let dims = Dims::new(args.quick);
    let families = families();

    // Scenario order keeps every cell sharing an initial configuration
    // consecutive (scheduler × δ × f inside one (family, n, trial)), which
    // is the layout the batch admission memo deduplicates.
    let mut scenarios: Vec<(CellKey, Scenario)> = Vec::new();
    for (ci, fam) in families.iter().enumerate() {
        for (ni, &n) in dims.ns.iter().enumerate() {
            for trial in 0..dims.trials {
                let initial = family_initial(fam, n, trial);
                for (si, &sched) in dims.schedulers.iter().enumerate() {
                    for (di, &delta) in dims.deltas.iter().enumerate() {
                        for faults in 0..n {
                            let mut s = Scenario::new(initial.clone(), trial);
                            s.algorithm = fam.algorithm;
                            s.scheduler = sched;
                            s.motion = "random";
                            s.delta = delta;
                            s.faults = faults;
                            s.max_rounds = if s.is_async() { MAX_TICKS } else { MAX_ROUNDS };
                            s.audit = false;
                            scenarios.push(((ci, ni, si, di, faults), s));
                        }
                    }
                }
            }
        }
    }
    let specs: Vec<Scenario> = scenarios.iter().map(|(_, s)| s.clone()).collect();

    let pool = pool::global();
    println!(
        "SWEEP — phase cartography: {} scenarios ({} families × n {:?} × {} schedulers × {} δ × f 0..n-1 × {} trial(s)), {} worker(s), batch width {WIDTH}",
        specs.len(),
        families.len(),
        dims.ns,
        dims.schedulers.len(),
        dims.deltas.len(),
        dims.trials,
        pool.threads()
    );
    let start = std::time::Instant::now();
    let results = run_batched_on(pool, &specs, WIDTH);
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "executed in {elapsed:.1}s ({:.0} scenarios/sec)",
        specs.len() as f64 / elapsed
    );

    // --- Aggregate per grid cell ---------------------------------------
    let mut cells: BTreeMap<CellKey, CellAgg> = BTreeMap::new();
    for ((key, _), m) in scenarios.iter().zip(&results) {
        let agg = cells.entry(*key).or_default();
        agg.runs += 1;
        agg.gathered += m.gathered as u64;
        agg.rounds += m.rounds as f64;
        agg.travel += m.total_travel;
    }

    // --- Console digest: family × scheduler -----------------------------
    let mut digest = Table::new(&["family", "scheduler", "gathered", "mean rounds"]);
    for (ci, fam) in families.iter().enumerate() {
        for (si, &sched) in dims.schedulers.iter().enumerate() {
            let (mut runs, mut gathered, mut rounds) = (0u64, 0u64, 0.0f64);
            for (key, agg) in &cells {
                if key.0 == ci && key.2 == si {
                    runs += agg.runs;
                    gathered += agg.gathered;
                    rounds += agg.rounds;
                }
            }
            digest.push(vec![
                fam.name.to_string(),
                sched.to_string(),
                pct(gathered as usize, runs as usize),
                f(rounds / runs as f64, 1),
            ]);
        }
    }
    println!();
    digest.print();

    // --- JSON record -----------------------------------------------------
    let mut json = format!(
        "{{\n  \"sweep\": \"phase_cartography\",\n  \"scenarios\": {},\n  \"trials\": {},\n  \"max_rounds\": {MAX_ROUNDS},\n  \"batch_width\": {WIDTH},\n  \"motion\": \"random\",\n  \"cells\": [\n",
        specs.len(),
        dims.trials
    );
    let mut first = true;
    for (key, agg) in &cells {
        let (ci, ni, si, di, faults) = *key;
        if !first {
            json.push_str(",\n");
        }
        first = false;
        json.push_str(&format!(
            "    {{\"family\": \"{}\", \"n\": {}, \"scheduler\": \"{}\", \"delta\": {}, \"f\": {}, \"gathered\": {:.3}, \"mean_rounds\": {:.1}, \"mean_travel\": {:.2}}}",
            families[ci].name,
            dims.ns[ni],
            dims.schedulers[si],
            dims.deltas[di],
            faults,
            agg.gathered as f64 / agg.runs as f64,
            agg.rounds / agg.runs as f64,
            agg.travel / agg.runs as f64,
        ));
    }
    json.push_str("\n  ]\n}\n");

    // --- Heatmap sheet: family × scheduler panels -----------------------
    // x: crash fraction f/(n-1) bucketed; y: δ; colour: log10(1 + mean
    // rounds), one shared scale across panels (the async column reads
    // hotter by construction: its unit is ticks, not rounds).
    let mut panels = Vec::new();
    for (ci, fam) in families.iter().enumerate() {
        for (si, &sched) in dims.schedulers.iter().enumerate() {
            let mut sums = vec![vec![(0.0f64, 0u64); FRAC_BINS]; dims.deltas.len()];
            for (key, agg) in &cells {
                if key.0 != ci || key.2 != si {
                    continue;
                }
                let n = dims.ns[key.1];
                let frac = if n > 1 {
                    key.4 as f64 / (n - 1) as f64
                } else {
                    0.0
                };
                let bin = ((frac * FRAC_BINS as f64) as usize).min(FRAC_BINS - 1);
                let slot = &mut sums[key.3][bin];
                slot.0 += agg.rounds;
                slot.1 += agg.runs;
            }
            panels.push(HeatmapPanel {
                title: format!("{} / {}", fam.name, sched),
                cells: sums
                    .iter()
                    .map(|row| {
                        row.iter()
                            .map(|(rounds, runs)| {
                                (*runs > 0).then(|| (1.0 + rounds / *runs as f64).log10())
                            })
                            .collect()
                    })
                    .collect(),
            });
        }
    }
    let x_ticks: Vec<String> = (0..FRAC_BINS)
        .map(|b| format!("{:.2}", b as f64 / FRAC_BINS as f64))
        .collect();
    let y_ticks: Vec<String> = dims.deltas.iter().map(|d| format!("δ={d}")).collect();
    let svg = render_heatmap_sheet(
        &panels,
        &x_ticks,
        &y_ticks,
        &HeatmapStyle {
            columns: dims.schedulers.len(),
            scale_label: "log10(1 + mean rounds to gather)".into(),
            ..HeatmapStyle::default()
        },
    );

    // Full runs commit the phase diagram under results/; quick runs write
    // a reduced grid under a distinct name into --out, so the committed
    // cartography stays untouched even when --out is results/ (which is
    // what run_experiments.sh passes).
    let (dir, base) = if args.quick {
        (args.out_dir.clone(), "sweep_phase_quick")
    } else {
        (std::path::PathBuf::from("results"), "sweep_phase")
    };
    std::fs::create_dir_all(&dir).expect("create output dir");
    let json_path = dir.join(format!("{base}.json"));
    std::fs::write(&json_path, &json).expect("write phase JSON");
    let svg_path = dir.join(format!("{base}.svg"));
    std::fs::write(&svg_path, &svg).expect("write phase SVG");
    println!("\nwrote {}", json_path.display());
    println!("wrote {}", svg_path.display());
    if args.quick {
        println!("(quick run; committed results/sweep_phase.* left untouched)");
    }
}
