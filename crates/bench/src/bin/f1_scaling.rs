//! F1 — Rounds-to-gather scaling with team size.
//!
//! Sweeps `n` per class at `f = 0` and `f = n − 1`, under the random
//! scheduler and motion adversary.
//!
//! Expected shape: rounds grow mildly with `n` (activation fairness is the
//! binding constraint, not the geometry); massive crash counts *reduce*
//! rounds (fewer live robots need to arrive); no failures anywhere.

use gather_bench::runner::{mean, parallel_map, stddev, Scenario};
use gather_bench::table::{f, pct, Table};
use gather_bench::Args;
use gather_config::Class;
use gather_workloads as workloads;

fn main() {
    let args = Args::parse();
    let classes = [
        Class::Multiple,
        Class::Collinear1W,
        Class::QuasiRegular,
        Class::Asymmetric,
    ];
    let sizes: &[usize] = if args.quick {
        &[6, 12]
    } else {
        &[4, 6, 8, 12, 16, 24, 32]
    };

    let mut scenarios = Vec::new();
    for &class in &classes {
        for &n in sizes {
            for all_but_one in [false, true] {
                for trial in 0..args.trials as u64 {
                    let mut s = Scenario::new(workloads::of_class(class, n, trial), trial);
                    s.scheduler = "random";
                    s.motion = "random";
                    s.faults = if all_but_one { n - 1 } else { 0 };
                    s.max_rounds = 400_000;
                    scenarios.push(s);
                }
            }
        }
    }
    let metrics = parallel_map(scenarios, |s| s.run());

    let mut table = Table::new(&[
        "class",
        "n",
        "f",
        "gathered",
        "rounds(mean)",
        "rounds(std)",
        "travel(mean)",
    ]);
    let mut idx = 0;
    for &class in &classes {
        for &n in sizes {
            for all_but_one in [false, true] {
                let cell: Vec<_> = (0..args.trials).map(|k| &metrics[idx + k]).collect();
                idx += args.trials;
                let ok = cell.iter().filter(|m| m.gathered).count();
                let rounds: Vec<f64> = cell.iter().map(|m| m.rounds as f64).collect();
                let travel: Vec<f64> = cell.iter().map(|m| m.total_travel).collect();
                table.push(vec![
                    class.short_name().into(),
                    n.to_string(),
                    if all_but_one {
                        (n - 1).to_string()
                    } else {
                        "0".into()
                    },
                    pct(ok, args.trials),
                    f(mean(&rounds), 1),
                    f(stddev(&rounds), 1),
                    f(mean(&travel), 1),
                ]);
            }
        }
    }

    println!("F1 — rounds-to-gather vs team size (series: class × fault level)\n");
    table.print();
    let out = args.out_dir.join("f1_scaling.csv");
    table.write_csv(&out).expect("write CSV");
    println!("\nwrote {}", out.display());
}
