//! T3 — Lemma 5.2: the bivalent impossibility.
//!
//! From an exactly even two-point split, the group-serialising adversary
//! (activate one co-located group per round, alternating) defeats every
//! anonymous deterministic algorithm: the even split survives every round
//! while the separation only converges geometrically. The control rows
//! show that the *same* adversary loses against any unbalanced split —
//! only the exact `n/2 + n/2` case is deadly.
//!
//! Expected shape: `still B` = yes and `gathered` = no on every bivalent
//! row for every algorithm; the control rows all gather.

use gather_bench::factory::{algorithm, ALGORITHMS};
use gather_bench::table::{f, Table};
use gather_bench::Args;
use gather_config::{classify, Class};
use gather_geom::{Point, Tol};
use gather_sim::prelude::*;

/// Rounds to run: each round halves the separation; stay far above the
/// float snap floor (8 / 2^14 ≈ 5e-4 ≫ 1e-6).
const ROUNDS: u64 = 14;

fn main() {
    let args = Args::parse();
    let n = 8usize;
    let mut table = Table::new(&[
        "algorithm",
        "start",
        "rounds",
        "still B",
        "gathered",
        "sep start",
        "sep end",
    ]);

    for &alg in &ALGORITHMS {
        // The bivalent trap.
        let pts = gather_workloads::bivalent(n, 8.0);
        let half = n / 2;
        let mut engine = Engine::builder(pts)
            .algorithm(algorithm(alg))
            .scheduler(FnScheduler::new(
                "serialise-groups",
                move |round, alive: &[bool]| {
                    let range = if round % 2 == 0 {
                        0..half
                    } else {
                        half..alive.len()
                    };
                    range.filter(|i| alive[*i]).collect()
                },
            ))
            .frames(FramePolicy::GlobalFrame)
            .check_invariants(false)
            .build();
        let mut still_bivalent = true;
        for _ in 0..ROUNDS {
            if engine.is_gathered() {
                still_bivalent = false;
                break;
            }
            engine.step();
            let class = classify(&engine.configuration(), Tol::default()).class;
            if class != Class::Bivalent {
                still_bivalent = false;
                break;
            }
        }
        let d = engine.configuration().distinct_points();
        let sep_end = if d.len() == 2 { d[0].dist(d[1]) } else { 0.0 };
        table.push(vec![
            alg.into(),
            "bivalent 4+4".into(),
            ROUNDS.to_string(),
            if still_bivalent { "yes" } else { "NO" }.into(),
            if engine.is_gathered() { "YES" } else { "no" }.into(),
            f(8.0, 4),
            f(sep_end, 6),
        ]);

        // Control: the 5+3 split under the same adversary.
        let a = Point::new(0.0, 0.0);
        let b = Point::new(8.0, 0.0);
        let mut pts = vec![a; 5];
        pts.extend(vec![b; 3]);
        let mut engine = Engine::builder(pts)
            .algorithm(algorithm(alg))
            .scheduler(FnScheduler::new(
                "serialise-groups",
                move |round, alive: &[bool]| {
                    let range = if round % 2 == 0 { 0..5 } else { 5..alive.len() };
                    range.filter(|i| alive[*i]).collect()
                },
            ))
            .frames(FramePolicy::GlobalFrame)
            .check_invariants(false)
            .build();
        let outcome = engine.run(20_000);
        table.push(vec![
            alg.into(),
            "unbalanced 5+3".into(),
            outcome.rounds().to_string(),
            "-".into(),
            if outcome.gathered() { "yes" } else { "NO" }.into(),
            f(8.0, 4),
            f(0.0, 6),
        ]);
    }

    println!("T3 — Lemma 5.2: the bivalent trap vs every algorithm\n");
    table.print();
    println!(
        "\nseparation after {ROUNDS} rounds ≈ 8/2^{ROUNDS} — geometric convergence, \
         never coincidence: gathering is impossible from B, and only from B."
    );
    let out = args.out_dir.join("t3_bivalent.csv");
    table.write_csv(&out).expect("write CSV");
    println!("wrote {}", out.display());
}
