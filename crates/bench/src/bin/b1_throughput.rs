//! B1 — Simulator throughput: wall-clock cost of the reproduction at
//! scale.
//!
//! Measures rounds/second and LOOK-phase cost (classification dominates)
//! for team sizes up to 128, for the paper's algorithm and the cheapest
//! baseline, with the invariant audit on and off. This is the "can a
//! laptop run the whole evaluation" table backing the repro=5 banding.

use gather_bench::table::{f, Table};
use gather_bench::Args;
use gather_sim::prelude::*;
use gather_workloads as workloads;
use gathering::{CenterOfGravity, WaitFreeGather};
use std::time::Instant;

fn measure(n: usize, algorithm: &str, audit: bool, rounds: u64) -> (f64, f64) {
    let pts = workloads::random_scatter(n, 10.0, 7);
    let mut builder = Engine::builder(pts)
        .scheduler(RoundRobin::new(2.max(n / 4)))
        .motion(RandomStops::new(0.3, 3))
        .check_invariants(audit);
    builder = match algorithm {
        "wait-free-gather" => builder.algorithm(WaitFreeGather::default()),
        "center-of-gravity" => builder.algorithm(CenterOfGravity::new()),
        other => panic!("unknown algorithm {other}"),
    };
    let mut engine = builder.build();
    let start = Instant::now();
    let mut executed = 0u64;
    for _ in 0..rounds {
        if engine.is_gathered() {
            // Restart from a fresh scatter to keep measuring steady-state
            // rounds rather than the gathered fixed point.
            break;
        }
        engine.step();
        executed += 1;
    }
    let elapsed = start.elapsed().as_secs_f64();
    if executed == 0 {
        return (0.0, 0.0);
    }
    (
        executed as f64 / elapsed,
        elapsed / executed as f64 * 1e6,
    )
}

fn main() {
    let args = Args::parse();
    let sizes: &[usize] = if args.quick {
        &[8, 32]
    } else {
        &[8, 16, 32, 64, 128]
    };
    let mut table = Table::new(&[
        "algorithm", "audit", "n", "rounds/s", "µs/round",
    ]);
    for &(alg, audit) in &[
        ("wait-free-gather", false),
        ("wait-free-gather", true),
        ("center-of-gravity", false),
    ] {
        for &n in sizes {
            // Enough rounds for a stable measurement, few enough to finish
            // fast at n = 128 (a round costs ~n classifications).
            let budget = if n <= 32 { 400 } else { 60 };
            let (rps, us) = measure(n, alg, audit, budget);
            table.push(vec![
                alg.into(),
                if audit { "on" } else { "off" }.into(),
                n.to_string(),
                f(rps, 0),
                f(us, 1),
            ]);
        }
    }
    println!("B1 — simulator throughput (steady-state rounds before gathering)\n");
    table.print();
    let out = args.out_dir.join("b1_throughput.csv");
    table.write_csv(&out).expect("write CSV");
    println!("\nwrote {}", out.display());
}
