//! B1 — Simulator throughput: wall-clock cost of the reproduction at
//! scale.
//!
//! Measures rounds/second and LOOK-phase cost for team sizes up to 128,
//! for the paper's algorithm and the cheapest baseline, with the invariant
//! audit on and off — and, for the paper's algorithm, with the shared
//! per-round analysis pipeline on (default) and off (the naive per-robot
//! classification it replaced). The per-round metrics columns
//! (classifications, cache-hit rate, Weiszfeld iterations) make the cache's
//! work observable directly, not just through wall-clock. This is the "can
//! a laptop run the whole evaluation" table backing the repro=5 banding.
//!
//! Besides the CSV, writes `BENCH_b1_throughput.json` in the working
//! directory recording the shared-vs-naive rounds/sec ablation per team
//! size.

use gather_bench::table::{f, Table};
use gather_bench::Args;
use gather_sim::prelude::*;
use gather_workloads as workloads;
use gathering::{CenterOfGravity, WaitFreeGather};
use std::time::Instant;

struct Measurement {
    rounds_per_sec: f64,
    us_per_round: f64,
    classify_per_round: f64,
    cache_hit_rate: f64,
    weiszfeld_per_round: f64,
}

/// Best of `trials` timed runs (the metrics columns are deterministic and
/// identical across trials; wall-clock is not, and the minimum elapsed time
/// is the standard noise-resistant throughput estimate).
fn measure_best(
    n: usize,
    algorithm: &str,
    audit: bool,
    shared: bool,
    rounds: u64,
    trials: usize,
) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..trials {
        let m = measure(n, algorithm, audit, shared, rounds);
        best = match best {
            Some(b) if b.rounds_per_sec >= m.rounds_per_sec => Some(b),
            _ => Some(m),
        };
    }
    best.expect("at least one trial")
}

fn measure(n: usize, algorithm: &str, audit: bool, shared: bool, rounds: u64) -> Measurement {
    let pts = workloads::random_scatter(n, 10.0, 7);
    let mut builder = Engine::builder(pts)
        .scheduler(RoundRobin::new(2.max(n / 4)))
        .motion(RandomStops::new(0.3, 3))
        .check_invariants(audit)
        .shared_analysis(shared);
    builder = match algorithm {
        "wait-free-gather" => builder.algorithm(WaitFreeGather::default()),
        "center-of-gravity" => builder.algorithm(CenterOfGravity::new()),
        other => panic!("unknown algorithm {other}"),
    };
    let mut engine = builder.build();
    let start = Instant::now();
    let mut executed = 0u64;
    for _ in 0..rounds {
        if engine.is_gathered() {
            // Stop at the gathered fixed point to keep measuring
            // steady-state rounds.
            break;
        }
        engine.step();
        executed += 1;
    }
    let elapsed = start.elapsed().as_secs_f64();
    if executed == 0 {
        return Measurement {
            rounds_per_sec: 0.0,
            us_per_round: 0.0,
            classify_per_round: 0.0,
            cache_hit_rate: 0.0,
            weiszfeld_per_round: 0.0,
        };
    }
    let trace = engine.trace();
    let classifications = trace.total_classifications();
    let hits = trace.total_cache_hits();
    let served = classifications + hits;
    Measurement {
        rounds_per_sec: executed as f64 / elapsed,
        us_per_round: elapsed / executed as f64 * 1e6,
        classify_per_round: classifications as f64 / executed as f64,
        cache_hit_rate: if served == 0 {
            0.0
        } else {
            hits as f64 / served as f64
        },
        weiszfeld_per_round: trace.total_weiszfeld_iters() as f64 / executed as f64,
    }
}

fn main() {
    let args = Args::parse();
    let sizes: &[usize] = if args.quick {
        &[8, 32]
    } else {
        &[8, 16, 32, 64, 128]
    };
    let mut table = Table::new(&[
        "algorithm",
        "analysis",
        "audit",
        "n",
        "rounds/s",
        "µs/round",
        "classify/rnd",
        "hit%",
        "weiszfeld/rnd",
    ]);
    // (algorithm, shared analysis, audit). The shared-vs-naive pair for the
    // paper's algorithm is the ablation quantifying the pipeline's win.
    let combos = [
        ("wait-free-gather", true, false),
        ("wait-free-gather", true, true),
        ("wait-free-gather", false, false),
        ("wait-free-gather", false, true),
        ("center-of-gravity", true, false),
    ];
    // rounds/sec of the wait-free algorithm (audit off) per n, for the
    // ablation JSON: (n, shared pipeline, naive per-robot).
    let mut ablation: Vec<(usize, f64, f64)> = Vec::new();
    for &(alg, shared, audit) in &combos {
        for &n in sizes {
            // Enough rounds for a stable measurement, few enough to finish
            // fast at n = 128 (a naive round costs ~n classifications).
            let budget = if n <= 32 { 400 } else { 60 };
            let trials = if args.quick { 3 } else { 5 };
            let m = measure_best(n, alg, audit, shared, budget, trials);
            if alg == "wait-free-gather" && !audit {
                match ablation.iter_mut().find(|(sz, _, _)| *sz == n) {
                    Some(row) => {
                        if shared {
                            row.1 = m.rounds_per_sec;
                        } else {
                            row.2 = m.rounds_per_sec;
                        }
                    }
                    None => ablation.push(if shared {
                        (n, m.rounds_per_sec, 0.0)
                    } else {
                        (n, 0.0, m.rounds_per_sec)
                    }),
                }
            }
            table.push(vec![
                alg.into(),
                if shared { "shared" } else { "per-robot" }.into(),
                if audit { "on" } else { "off" }.into(),
                n.to_string(),
                f(m.rounds_per_sec, 0),
                f(m.us_per_round, 1),
                f(m.classify_per_round, 2),
                f(m.cache_hit_rate * 100.0, 1),
                f(m.weiszfeld_per_round, 1),
            ]);
        }
    }
    println!("B1 — simulator throughput (steady-state rounds before gathering)\n");
    table.print();
    let out = args.out_dir.join("b1_throughput.csv");
    table.write_csv(&out).expect("write CSV");
    println!("\nwrote {}", out.display());

    // Ablation record: shared-analysis vs naive rounds/sec per n.
    let mut json = String::from(
        "{\n  \"bench\": \"b1_throughput\",\n  \"metric\": \"rounds_per_second\",\n  \"algorithm\": \"wait-free-gather\",\n  \"audit\": false,\n  \"ablation\": [\n",
    );
    for (i, (n, shared_rps, naive_rps)) in ablation.iter().enumerate() {
        let speedup = if *naive_rps > 0.0 {
            shared_rps / naive_rps
        } else {
            0.0
        };
        json.push_str(&format!(
            "    {{\"n\": {n}, \"shared_analysis\": {shared_rps:.1}, \"per_robot\": {naive_rps:.1}, \"speedup\": {speedup:.2}}}{}\n",
            if i + 1 < ablation.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let bench_out = std::path::Path::new("BENCH_b1_throughput.json");
    std::fs::write(bench_out, &json).expect("write BENCH json");
    println!("wrote {}", bench_out.display());
}
