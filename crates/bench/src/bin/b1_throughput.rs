//! B1 — Simulator throughput: wall-clock cost of the reproduction at
//! scale.
//!
//! Measures rounds/second and LOOK-phase cost for team sizes up to 128,
//! for the paper's algorithm and the cheapest baseline, with the invariant
//! audit on and off — and, for the paper's algorithm, a four-way ablation.
//!
//! Two workloads, each matched to what it measures:
//!
//! * **throughput/allocation matrix** — a class-`M` start driven by the
//!   `δ`-only motion adversary: the satellites creep toward the heavy
//!   stack for the whole budget, so every measured round is the
//!   algorithm's combinatorial steady state (class `M` never reaches the
//!   Weiszfeld solver);
//! * **Weiszfeld warm-start ablation** — a quasi-regular multi-ring with
//!   an unoccupied centre, where every round re-detects regularity through
//!   the numeric Weber candidate; this is the regime where Lemma 3.2's
//!   warm start pays, reported as iterations/round warm vs cold.
//!
//! The four ablation variants:
//!
//! * `shared` — the default engine: shared per-round analysis, Weiszfeld
//!   warm-started from the previous round's Weber point (Lemma 3.2), and
//!   reusable scratch buffers (the zero-allocation round loop);
//! * `cold-start` — shared analysis but every Weiszfeld run starts cold
//!   from the centroid, quantifying the warm start's saving;
//! * `clone-buffers` — shared analysis but fresh buffers every round (the
//!   pre-scratch engine's allocation behaviour);
//! * `per-robot` — the naive pipeline: every robot classifies for itself.
//!
//! Built with `--features alloc-audit`, a counting global allocator adds
//! two columns: heap allocations per round over the whole run, and over
//! the *steady state* (consecutive class-`M` rounds after the trace ring
//! warmed up) — the scratch path must report exactly `0` there, and the
//! run exits non-zero if it does not. Without the feature the columns read
//! `n/a`.
//!
//! Besides the CSV, writes `BENCH_b1_throughput.json` recording the
//! ablation per team size — unless `--baseline PATH` or `--quick` is
//! given, in which case the JSON goes to the `--out` directory instead (a
//! reduced or regression-check run never overwrites the committed
//! record). With `--baseline` the fresh numbers are additionally compared
//! against the committed record and the run fails on a >20 % rounds/sec
//! regression of the default engine.

use gather_bench::report::{self, extract_number};
use gather_bench::table::{f, Table};
use gather_bench::{alloc_audit, Args};
use gather_config::Class;
use gather_sim::prelude::*;
use gather_workloads as workloads;
use gathering::{CenterOfGravity, WaitFreeGather};
use std::time::Instant;

/// Bounded trace: aggregates cover the whole run, the ring stops
/// allocating once it holds this many records.
const TRACE_CAP: usize = 64;

struct Measurement {
    rounds_per_sec: f64,
    us_per_round: f64,
    classify_per_round: f64,
    cache_hit_rate: f64,
    weiszfeld_per_round: f64,
    /// Heap allocations per round over the whole measured loop
    /// (`None` without the `alloc-audit` feature).
    allocs_per_round: Option<f64>,
    /// Heap allocations per steady-state round: consecutive class-`M`
    /// rounds after the trace ring warmed up. `None` without the feature
    /// or when the run never reached a steady window.
    steady_allocs_per_round: Option<f64>,
}

/// Engine-pipeline ablation axes for the paper's algorithm.
#[derive(Clone, Copy, PartialEq)]
struct Variant {
    label: &'static str,
    shared: bool,
    warm: bool,
    reuse: bool,
}

const SHARED: Variant = Variant {
    label: "shared",
    shared: true,
    warm: true,
    reuse: true,
};
const COLD_START: Variant = Variant {
    label: "cold-start",
    shared: true,
    warm: false,
    reuse: true,
};
const CLONE_BUFFERS: Variant = Variant {
    label: "clone-buffers",
    shared: true,
    warm: true,
    reuse: false,
};
const PER_ROBOT: Variant = Variant {
    label: "per-robot",
    shared: false,
    warm: true,
    reuse: true,
};

/// Best of `trials` timed runs (the metrics columns are deterministic and
/// identical across trials; wall-clock is not, and the minimum elapsed time
/// is the standard noise-resistant throughput estimate).
fn measure_best(
    n: usize,
    algorithm: &str,
    audit: bool,
    variant: Variant,
    rounds: u64,
    trials: usize,
) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..trials {
        let m = measure(n, algorithm, audit, variant, rounds);
        best = match best {
            Some(b) if b.rounds_per_sec >= m.rounds_per_sec => Some(b),
            _ => Some(m),
        };
    }
    best.expect("at least one trial")
}

fn measure(n: usize, algorithm: &str, audit: bool, variant: Variant, rounds: u64) -> Measurement {
    // A class-M start under the stingiest motion adversary: satellites
    // creep toward the heavy stack by δ per activation, so the run stays
    // in the algorithm's steady state (class M, no Weiszfeld) for the
    // whole budget instead of gathering after a couple dozen rounds.
    let pts = workloads::multiple(n, 3, 7);
    let mut builder = Engine::builder(pts)
        .scheduler(RoundRobin::new(2.max(n / 4)))
        .motion(AlwaysDelta)
        .check_invariants(audit)
        .shared_analysis(variant.shared)
        .warm_start(variant.warm)
        .reuse_buffers(variant.reuse)
        .trace_capacity(TRACE_CAP);
    builder = match algorithm {
        "wait-free-gather" => builder.algorithm(WaitFreeGather::default()),
        "center-of-gravity" => builder.algorithm(CenterOfGravity::new()),
        other => panic!("unknown algorithm {other}"),
    };
    let mut engine = builder.build();
    let allocs_before = alloc_audit::heap_allocations();
    let start = Instant::now();
    let mut executed = 0u64;
    // Steady-state alloc window: consecutive class-M rounds, opened only
    // after the trace ring is warm (the first TRACE_CAP pushes grow it)
    // and after one M round absorbed the one-off aggregate entries
    // (histogram key, transition edge, collapsed-sequence push).
    let mut m_streak = 0u64;
    let mut steady_rounds = 0u64;
    let mut steady_allocs_start = alloc_audit::heap_allocations();
    for _ in 0..rounds {
        if engine.is_gathered() {
            // Stop at the gathered fixed point to keep measuring
            // steady-state rounds.
            break;
        }
        let class = engine.step().class;
        executed += 1;
        if class == Class::Multiple {
            m_streak += 1;
        } else {
            m_streak = 0;
        }
        if m_streak >= 2 && executed > TRACE_CAP as u64 {
            steady_rounds += 1;
        } else {
            steady_rounds = 0;
            steady_allocs_start = alloc_audit::heap_allocations();
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let allocs_after = alloc_audit::heap_allocations();
    if executed == 0 {
        return Measurement {
            rounds_per_sec: 0.0,
            us_per_round: 0.0,
            classify_per_round: 0.0,
            cache_hit_rate: 0.0,
            weiszfeld_per_round: 0.0,
            allocs_per_round: None,
            steady_allocs_per_round: None,
        };
    }
    let trace = engine.trace();
    let classifications = trace.total_classifications();
    let hits = trace.total_cache_hits();
    let served = classifications + hits;
    Measurement {
        rounds_per_sec: executed as f64 / elapsed,
        us_per_round: elapsed / executed as f64 * 1e6,
        classify_per_round: classifications as f64 / executed as f64,
        cache_hit_rate: if served == 0 {
            0.0
        } else {
            hits as f64 / served as f64
        },
        weiszfeld_per_round: trace.total_weiszfeld_iters() as f64 / executed as f64,
        allocs_per_round: allocs_before
            .zip(allocs_after)
            .map(|(b, a)| (a - b) as f64 / executed as f64),
        steady_allocs_per_round: if steady_rounds == 0 {
            None
        } else {
            allocs_after
                .zip(steady_allocs_start)
                .map(|(a, s)| (a - s) as f64 / steady_rounds as f64)
        },
    }
}

/// Weiszfeld iterations per round on a workload that actually exercises
/// the numeric solver.
///
/// Classes `M`/`L1W`/`L2W` decide their targets combinatorially and never
/// reach Weiszfeld (classification short-circuits before quasi-regularity
/// detection), so the warm-start ablation is measured where the solver
/// lives: a quasi-regular configuration with an *unoccupied* centre, whose
/// every round re-detects regularity through the numeric Weber candidate.
/// Robots creep toward the centre by δ per activation, so the
/// configuration changes every round (cache miss) while staying in class
/// `QR` for the whole budget — the regime Lemma 3.2's warm start targets.
fn measure_weiszfeld(n: usize, variant: Variant, rounds: u64) -> f64 {
    // `quasi_regular` yields 4·rings robots; ×5 scaling keeps every radius
    // ≥ 2 so no robot reaches the centre within the budget (δ = 0.01).
    assert!(n >= 8 && n.is_multiple_of(4), "QR workload wants 4 | n");
    let pts: Vec<_> = workloads::quasi_regular(4, n / 4, 11)
        .into_iter()
        .map(|p| gather_geom::Point::new(p.x * 5.0, p.y * 5.0))
        .collect();
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default())
        .scheduler(RoundRobin::new(2.max(n / 4)))
        .motion(AlwaysDelta)
        .check_invariants(false)
        .shared_analysis(variant.shared)
        .warm_start(variant.warm)
        .reuse_buffers(variant.reuse)
        .trace_capacity(TRACE_CAP)
        .build();
    let mut executed = 0u64;
    for _ in 0..rounds {
        let record = engine.step();
        executed += 1;
        debug_assert_eq!(record.class, Class::QuasiRegular);
    }
    engine.trace().total_weiszfeld_iters() as f64 / executed.max(1) as f64
}

/// Worst steady-state allocations/round over sweep items `2..=items`, each
/// item executed as its own batch on a single persistent pool worker with
/// engine-parts recycling — the pooled-path counterpart of the in-run
/// audit. From the second item on, the worker's engine is rebuilt from
/// recycled [`EngineParts`], so this proves recycling across sweep-item
/// boundaries does not reintroduce heap traffic into the round loop.
///
/// Returns `None` without the `alloc-audit` feature or when no item after
/// the first reached a steady window.
fn measure_pooled_recycled_steady(n: usize, items: usize, rounds: u64) -> Option<f64> {
    use gather_bench::pool::WorkerPool;
    use std::sync::Mutex;

    let pool = WorkerPool::new(1);
    let parts_cell: Mutex<Option<EngineParts>> = Mutex::new(None);
    let worst: Mutex<Option<f64>> = Mutex::new(None);
    for item in 0..items {
        pool.run_batch(1, &|_| {
            // Poison recovery: a panicking sweep item must surface as its
            // own panic (re-raised by `run_batch`), not cascade into a
            // misleading mutex-poison failure on the next item's lock. The
            // cells hold plain data that is never left half-updated by a
            // panic, so a poisoned value is safe to reuse.
            let parts = parts_cell
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .unwrap_or_default();
            let pts = workloads::multiple(n, 3, 7 + item as u64);
            let mut engine = Engine::builder(pts)
                .algorithm(WaitFreeGather::default())
                .scheduler(RoundRobin::new(2.max(n / 4)))
                .motion(AlwaysDelta)
                .check_invariants(false)
                .trace_capacity(TRACE_CAP)
                .recycle(parts)
                .build();
            let mut m_streak = 0u64;
            let mut steady_rounds = 0u64;
            let mut steady_start = alloc_audit::heap_allocations();
            let mut executed = 0u64;
            for _ in 0..rounds {
                if engine.is_gathered() {
                    break;
                }
                let class = engine.step().class;
                executed += 1;
                if class == Class::Multiple {
                    m_streak += 1;
                } else {
                    m_streak = 0;
                }
                if m_streak >= 2 && executed > TRACE_CAP as u64 {
                    steady_rounds += 1;
                } else {
                    steady_rounds = 0;
                    steady_start = alloc_audit::heap_allocations();
                }
            }
            let end = alloc_audit::heap_allocations();
            if item >= 1 && steady_rounds > 0 {
                if let Some((s, e)) = steady_start.zip(end) {
                    let per_round = (e - s) as f64 / steady_rounds as f64;
                    let mut w = worst.lock().unwrap_or_else(|e| e.into_inner());
                    *w = Some(w.map_or(per_round, |x: f64| x.max(per_round)));
                }
            }
            *parts_cell.lock().unwrap_or_else(|e| e.into_inner()) = Some(engine.into_parts());
        });
    }
    let result = *worst.lock().unwrap_or_else(|e| e.into_inner());
    result
}

fn opt(x: Option<f64>, digits: usize) -> String {
    x.map(|v| f(v, digits)).unwrap_or_else(|| "n/a".into())
}

/// One ablation line of the JSON record.
#[derive(Default)]
struct AblationRow {
    shared_rps: f64,
    per_robot_rps: f64,
    cold_rps: f64,
    clone_rps: f64,
    weiszfeld_warm: f64,
    weiszfeld_cold: f64,
    /// `"enforced: …"` / `"skipped: …"` verdict of the warm-start gate for
    /// this size — recorded in the JSON so a gate that could not run is an
    /// explicit skip, never silence (the B7 convention).
    weiszfeld_gate: String,
    steady_allocs: Option<f64>,
}

/// Extracts the committed `(n, shared_analysis rounds/sec)` pairs from a
/// baseline JSON by scanning for the two keys — enough structure for the
/// file this binary itself writes, with no JSON dependency.
fn parse_baseline(text: &str) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(n) = extract_number(line, "\"n\":") else {
            continue;
        };
        let Some(rps) = extract_number(line, "\"shared_analysis\":") else {
            continue;
        };
        out.push((n as usize, rps));
    }
    out
}

fn main() {
    let args = Args::parse();
    let sizes: &[usize] = if args.quick {
        &[8, 32]
    } else {
        &[8, 16, 32, 64, 128]
    };
    let mut table = Table::new(&[
        "algorithm",
        "variant",
        "audit",
        "n",
        "rounds/s",
        "µs/round",
        "classify/rnd",
        "hit%",
        "weiszfeld/rnd",
        "alloc/rnd",
        "steady-alloc/rnd",
    ]);
    // (algorithm, variant, audit). The four wait-free audit-off variants
    // form the ablation quantifying the pipeline, warm-start and
    // scratch-buffer wins in isolation.
    let combos = [
        ("wait-free-gather", SHARED, false),
        ("wait-free-gather", COLD_START, false),
        ("wait-free-gather", CLONE_BUFFERS, false),
        ("wait-free-gather", PER_ROBOT, false),
        ("wait-free-gather", SHARED, true),
        ("wait-free-gather", PER_ROBOT, true),
        ("center-of-gravity", SHARED, false),
    ];
    // Untimed warm-up: lets the frequency governor and caches settle so
    // the first timed combo is not systematically slow (which would skew
    // both the ablation and the --baseline regression gate).
    let _ = measure(32, "wait-free-gather", false, SHARED, 20_000);
    let mut ablation: Vec<(usize, AblationRow)> =
        sizes.iter().map(|&n| (n, AblationRow::default())).collect();
    let mut failures: Vec<String> = Vec::new();
    for &(alg, variant, audit) in &combos {
        for &n in sizes {
            // Enough rounds for a stable measurement, few enough to finish
            // fast at n = 128 (a naive round costs ~n classifications).
            // The large-n budget must exceed TRACE_CAP by a comfortable
            // margin: the steady-state allocation window only opens after
            // the trace ring warmed up (`executed > TRACE_CAP`), so the old
            // 60-round budget could never audit n = 64/128 and reported
            // `null`.
            let budget = if n <= 32 { 400 } else { 160 };
            let trials = if args.quick { 3 } else { 5 };
            let m = measure_best(n, alg, audit, variant, budget, trials);
            if alg == "wait-free-gather" && !audit {
                let row = &mut ablation
                    .iter_mut()
                    .find(|(sz, _)| *sz == n)
                    .expect("size row")
                    .1;
                match variant.label {
                    "shared" => {
                        row.shared_rps = m.rounds_per_sec;
                        row.weiszfeld_warm = measure_weiszfeld(n, variant, budget);
                        row.steady_allocs = m.steady_allocs_per_round;
                        // The acceptance gate: the scratch path must not
                        // touch the heap in steady state — and with the
                        // audit compiled in, every size must actually be
                        // measured (a window that never opens is a silent
                        // audit hole, the bug the 60-round budget had).
                        match m.steady_allocs_per_round {
                            Some(a) if a > 0.0 => failures.push(format!(
                                "n={n}: scratch path allocated {a:.2}/round in steady state"
                            )),
                            None if alloc_audit::enabled() => failures.push(format!(
                                "n={n}: steady-state window never opened — budget too small to audit"
                            )),
                            _ => {}
                        }
                    }
                    "cold-start" => {
                        row.cold_rps = m.rounds_per_sec;
                        row.weiszfeld_cold = measure_weiszfeld(n, variant, budget);
                    }
                    "clone-buffers" => row.clone_rps = m.rounds_per_sec,
                    "per-robot" => row.per_robot_rps = m.rounds_per_sec,
                    _ => unreachable!(),
                }
            }
            table.push(vec![
                alg.into(),
                variant.label.into(),
                if audit { "on" } else { "off" }.into(),
                n.to_string(),
                f(m.rounds_per_sec, 0),
                f(m.us_per_round, 1),
                f(m.classify_per_round, 2),
                f(m.cache_hit_rate * 100.0, 1),
                f(m.weiszfeld_per_round, 1),
                opt(m.allocs_per_round, 2),
                opt(m.steady_allocs_per_round, 2),
            ]);
        }
    }
    println!("B1 — simulator throughput (steady-state class-M rounds under δ-motion)\n");
    table.print();

    // Warm-start ablation on the Weiszfeld-exercising QR workload (the
    // class-M throughput workload never runs the solver — see DESIGN.md).
    println!("\nWeiszfeld iterations/round, QR workload (warm vs cold start):\n");
    let mut wz = Table::new(&["n", "warm", "cold", "cold/warm", "gate"]);
    for (n, row) in &mut ablation {
        let ratio = if row.weiszfeld_warm > 0.0 {
            row.weiszfeld_cold / row.weiszfeld_warm
        } else {
            f64::INFINITY
        };
        // Acceptance gate: the warm start must at least halve the solver
        // work per round. A size where the cold variant never ran the
        // solver cannot be gated — record an explicit skip reason (the B7
        // convention) instead of passing silently.
        row.weiszfeld_gate = if row.weiszfeld_cold > 0.0 {
            if row.weiszfeld_warm * 2.0 > row.weiszfeld_cold {
                failures.push(format!(
                    "n={n}: warm-started Weiszfeld not >=2x cheaper ({:.2} warm vs {:.2} cold iters/round)",
                    row.weiszfeld_warm, row.weiszfeld_cold
                ));
                format!(
                    "enforced: warm {:.2} vs cold {:.2} iters/round (< 2x) — FAILED",
                    row.weiszfeld_warm, row.weiszfeld_cold
                )
            } else {
                format!(
                    "enforced: warm {:.2} vs cold {:.2} iters/round (>= 2x)",
                    row.weiszfeld_warm, row.weiszfeld_cold
                )
            }
        } else {
            format!("skipped: solver never ran in the cold variant at n={n}")
        };
        wz.push(vec![
            n.to_string(),
            f(row.weiszfeld_warm, 2),
            f(row.weiszfeld_cold, 2),
            f(ratio, 2),
            row.weiszfeld_gate.clone(),
        ]);
    }
    wz.print();

    // Pooled-path audit: sweep items executed back-to-back on one
    // persistent worker, engines rebuilt from recycled parts between items.
    let recycled_steady = measure_pooled_recycled_steady(32, 4, 400);
    println!(
        "\npooled recycle audit (worst steady-alloc/round, items 2..4 on one worker): {}",
        opt(recycled_steady, 2)
    );
    if alloc_audit::enabled() {
        match recycled_steady {
            Some(a) if a > 0.0 => failures.push(format!(
                "pooled recycle: {a:.2} allocs/round in steady state after an engine recycle"
            )),
            None => failures
                .push("pooled recycle: steady window never opened across sweep items".to_string()),
            _ => {}
        }
    }

    let out = args.out_dir.join("b1_throughput.csv");
    table.write_csv(&out).expect("write CSV");
    println!("\nwrote {}", out.display());

    // Ablation record: per n, rounds/sec of the four engine variants plus
    // the warm-vs-cold Weiszfeld iteration counts and the steady-state
    // allocation audit (an explicit "skipped: …" string when not measured,
    // never a silent null).
    let audit_skip_reason = "\"skipped: built without the alloc-audit feature\"";
    let recycled_json = match recycled_steady {
        Some(a) => format!("{a:.2}"),
        None if !alloc_audit::enabled() => audit_skip_reason.to_string(),
        None => "\"skipped: steady window never opened\"".to_string(),
    };
    let mut json = format!(
        "{{\n  \"bench\": \"b1_throughput\",\n  \"metric\": \"rounds_per_second\",\n  \"algorithm\": \"wait-free-gather\",\n  \"audit\": false,\n  \"recycled_steady_allocs_per_round\": {recycled_json},\n  \"ablation\": [\n",
    );
    for (i, (n, row)) in ablation.iter().enumerate() {
        let speedup = if row.per_robot_rps > 0.0 {
            row.shared_rps / row.per_robot_rps
        } else {
            0.0
        };
        let steady = match row.steady_allocs {
            Some(a) => format!("{a:.2}"),
            None if !alloc_audit::enabled() => audit_skip_reason.to_string(),
            None => "\"skipped: steady window never opened\"".to_string(),
        };
        json.push_str(&format!(
            "    {{\"n\": {n}, \"shared_analysis\": {:.1}, \"per_robot\": {:.1}, \"cold_start\": {:.1}, \"clone_buffers\": {:.1}, \"speedup\": {speedup:.2}, \"weiszfeld_warm\": {:.2}, \"weiszfeld_cold\": {:.2}, \"weiszfeld_gate\": \"{}\", \"steady_allocs_per_round\": {steady}}}{}\n",
            row.shared_rps,
            row.per_robot_rps,
            row.cold_rps,
            row.clone_rps,
            row.weiszfeld_warm,
            row.weiszfeld_cold,
            row.weiszfeld_gate,
            if i + 1 < ablation.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    if let Some(baseline_path) = &args.baseline {
        // Regression-check mode: compare against the committed record and
        // keep it untouched (the fresh JSON goes to the out dir).
        let baseline = parse_baseline(&report::read_baseline(baseline_path));
        assert!(
            !baseline.is_empty(),
            "baseline {} contains no (n, shared_analysis) rows",
            baseline_path.display()
        );
        for (n, base_rps) in baseline {
            let Some((_, row)) = ablation.iter().find(|(sz, _)| *sz == n) else {
                // Explicit skip, not silence: quick mode sweeps a subset of
                // the committed sizes.
                println!("baseline n={n}: skipped (size not in this sweep)");
                continue;
            };
            let measured = row.shared_rps;
            if measured < 0.8 * base_rps {
                failures.push(format!(
                    "n={n}: rounds/sec regressed >20% ({measured:.0} vs baseline {base_rps:.0})"
                ));
            } else {
                println!("baseline n={n}: {measured:.0} rounds/s vs committed {base_rps:.0} — ok");
            }
        }
    }
    report::emit_record(
        "b1_throughput",
        &json,
        &args.out_dir,
        args.quick,
        args.baseline.is_some(),
    );
    report::fail_if_any("B1", &failures);
}
