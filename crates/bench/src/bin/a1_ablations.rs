//! A1 — Ablations of the design constants DESIGN.md calls out.
//!
//! Three sweeps:
//!
//! 1. **Side-step fraction** (class M; paper: 1/3 of the angular gap).
//!    Measured: success, rounds, and Claim C1's hazard quantity — pairs of
//!    same-round movement paths crossing away from the target. Finding:
//!    crossings are 0 for *every* fraction < 1, matching the geometry
//!    (side-step chords stay inside the angular wedge to the next occupied
//!    ray; same-ray side-steps are parallel chords; free robots move
//!    radially within their own ray) — the paper's 1/3 is a conservative
//!    constant chosen for its clean `3θ` case analysis, not a tight bound.
//! 2. **Tolerance policy** (strict / default / loose): the reproduction's
//!    stand-in for exact arithmetic; correctness should be flat across
//!    policies on generator workloads.
//! 3. **QR candidate centres** (full detector vs occupied-only): disabling
//!    the unoccupied-centre candidates breaks exactly the symmetric
//!    configurations, quantifying how much of class QR each candidate
//!    family covers.

use gather_bench::table::{f as fmt, pct, Table};
use gather_bench::Args;
use gather_config::{detect_quasi_regularity, quasi_regular_with_center, Class, Configuration};
use gather_geom::{Point, Tol};
use gather_sim::prelude::*;
use gather_workloads as workloads;
use gathering::WaitFreeGather;

fn main() {
    let args = Args::parse();
    sidestep_sweep(&args);
    tolerance_sweep(&args);
    candidate_sweep(&args);
}

/// A blocking-heavy class-M workload: a stack at the origin plus chains of
/// robots sharing rays (every outer robot starts blocked) on rays only a
/// few degrees apart — the regime where side-stepping fires every round
/// and a too-greedy fraction steps next to a neighbouring ray.
fn blocked_workload(seed: u64) -> Vec<Point> {
    let mut pts = vec![Point::new(0.0, 0.0), Point::new(0.0, 0.0)];
    let base = (seed as f64) * 0.37;
    for (k, ray) in [0.0_f64, 0.12, 0.24, 2.1].iter().enumerate() {
        let theta = base + ray;
        let radii: &[f64] = if k % 2 == 0 {
            &[2.0, 4.0, 6.0]
        } else {
            &[3.0, 5.0]
        };
        for r in radii {
            pts.push(Point::new(r * theta.cos(), r * theta.sin()));
        }
    }
    pts
}

/// Runs the class-M rule with the given side-step fraction and counts
/// Claim C1's hazard quantity: pairs of same-round movement paths that
/// intersect away from the target (the proof for fraction 1/3 shows there
/// are none; intersecting paths are where an adversarial stop could merge
/// two robots and mint a second maximum).
fn run_m_with_fraction(fraction: f64, seed: u64) -> (bool, u64, usize) {
    use gather_geom::Segment;
    let pts = blocked_workload(seed);
    let target = Point::new(0.0, 0.0);
    let tol = gather_geom::Tol::default();
    let mut engine = Engine::builder(pts)
        .algorithm(WaitFreeGather::default().with_sidestep_fraction(fraction))
        .scheduler(EveryRobot) // all move: maximal simultaneous paths
        .motion(RandomStops::new(0.3, seed + 1))
        .check_invariants(false)
        .build();
    let mut crossings = 0usize;
    for _ in 0..20_000 {
        if engine.is_gathered() {
            break;
        }
        let before = engine.positions().to_vec();
        engine.step();
        let after = engine.positions();
        let moved: Vec<Segment> = before
            .iter()
            .zip(after)
            .filter(|(b, a)| b.dist(**a) > 1e-9)
            .map(|(b, a)| Segment::new(*b, *a))
            .collect();
        for i in 0..moved.len() {
            for j in (i + 1)..moved.len() {
                if moved[i].intersects(&moved[j], tol) {
                    // Intersections at the target itself are the intended
                    // meeting point; anything else is the hazard.
                    let shared_at_target =
                        moved[i].b.within(target, 1e-6) && moved[j].b.within(target, 1e-6);
                    if !shared_at_target {
                        crossings += 1;
                    }
                }
            }
        }
    }
    let gathered = engine.is_gathered();
    (gathered, engine.round(), crossings)
}

fn sidestep_sweep(args: &Args) {
    let mut table = Table::new(&[
        "fraction",
        "trials",
        "gathered",
        "rounds(mean)",
        "path crossings",
    ]);
    for fraction in [0.1, 1.0 / 3.0, 0.5, 0.9, 0.999] {
        let mut ok = 0;
        let mut rounds = Vec::new();
        let mut merges = 0usize;
        for seed in 0..args.trials as u64 {
            let (g, r, m) = run_m_with_fraction(fraction, seed);
            if g {
                ok += 1;
                rounds.push(r as f64);
            }
            merges += m;
        }
        table.push(vec![
            fmt(fraction, 3),
            args.trials.to_string(),
            pct(ok, args.trials),
            fmt(gather_bench::runner::mean(&rounds), 1),
            merges.to_string(),
        ]);
    }
    println!("A1a — class-M side-step fraction (paper: 0.333)\n");
    table.print();
    println!(
        "\nzero crossings at every fraction: equal-radius side-steps stay \
         inside their angular wedge, so collision-freedom holds for any \
         fraction < 1 — the paper's 1/3 is conservative.\n"
    );
    table
        .write_csv(&args.out_dir.join("a1a_sidestep.csv"))
        .expect("write CSV");
}

fn tolerance_sweep(args: &Args) {
    let mut table = Table::new(&["tolerance", "class", "trials", "gathered", "rounds(mean)"]);
    for (name, tol) in [
        ("strict", Tol::strict()),
        ("default", Tol::default()),
        ("loose", Tol::loose()),
    ] {
        for class in [Class::Multiple, Class::QuasiRegular, Class::Asymmetric] {
            let mut ok = 0;
            let mut rounds = Vec::new();
            for seed in 0..args.trials as u64 {
                let pts = workloads::of_class(class, 8, seed);
                let mut engine = Engine::builder(pts)
                    .algorithm(WaitFreeGather::new(tol))
                    .tol(tol)
                    .scheduler(RoundRobin::new(3))
                    .motion(RandomStops::new(0.4, seed))
                    .crash_plan(RandomCrashes::new(3, 0.05, seed + 1))
                    .check_invariants(false)
                    .build();
                let outcome = engine.run(30_000);
                if outcome.gathered() {
                    ok += 1;
                    rounds.push(outcome.rounds() as f64);
                }
            }
            table.push(vec![
                name.into(),
                class.short_name().into(),
                args.trials.to_string(),
                pct(ok, args.trials),
                fmt(gather_bench::runner::mean(&rounds), 1),
            ]);
        }
    }
    println!("A1b — tolerance policy sweep\n");
    table.print();
    table
        .write_csv(&args.out_dir.join("a1b_tolerance.csv"))
        .expect("write CSV");
    println!();
}

fn candidate_sweep(args: &Args) {
    // Which candidate family detects which QR sub-family?
    let tol = Tol::default();
    let mut table = Table::new(&["family", "full detector", "occupied-only"]);
    type Family = Box<dyn Fn(u64) -> Vec<Point>>;
    let families: [(&str, Family); 4] = [
        (
            "regular-polygon",
            Box::new(|s| workloads::regular_polygon(8, 3.0, s as f64 * 0.2)),
        ),
        (
            "biangular",
            Box::new(|_| workloads::biangular(4, 0.5, 2.0, 4.0)),
        ),
        (
            "ring+center",
            Box::new(|_| workloads::ring_with_center(7, 1, 3.0)),
        ),
        (
            "radially-converged",
            Box::new(|s| workloads::quasi_regular(4, 2, s)),
        ),
    ];
    for (name, generate) in &families {
        let mut full = 0usize;
        let mut occupied_only = 0usize;
        for seed in 0..args.trials as u64 {
            let config = Configuration::canonical(generate(seed), tol);
            if detect_quasi_regularity(&config, tol).is_some() {
                full += 1;
            }
            let occ = config
                .distinct_points()
                .into_iter()
                .any(|p| quasi_regular_with_center(&config, p, tol).is_some());
            if occ {
                occupied_only += 1;
            }
        }
        table.push(vec![
            (*name).into(),
            pct(full, args.trials),
            pct(occupied_only, args.trials),
        ]);
    }
    println!("A1c — QR detection candidate ablation (Lemma 3.4 alone vs full)\n");
    table.print();
    table
        .write_csv(&args.out_dir.join("a1c_candidates.csv"))
        .expect("write CSV");
    println!(
        "\nunoccupied-centre candidates (SEC centre + Weiszfeld) are what \
         extend Lemma 3.4's occupied-centre test to the symmetric families."
    );
}
