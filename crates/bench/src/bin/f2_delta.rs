//! F2 — Sensitivity to the minimum movement step `δ`.
//!
//! The model guarantees progress of at least `δ` per interrupted move; the
//! stingy adversary (`AlwaysDelta`) makes every move exactly `δ`, so the
//! round count scales like `diameter/δ`. The full-motion rows are the
//! control: `δ` is irrelevant when moves complete.
//!
//! Expected shape: under `delta` motion, rounds ≈ c/δ (log-log slope −1);
//! under `full` motion, rounds are flat in `δ`.

use gather_bench::runner::{mean, parallel_map, Scenario};
use gather_bench::table::{f, pct, Table};
use gather_bench::Args;
use gather_workloads as workloads;

fn main() {
    let args = Args::parse();
    let deltas: &[f64] = if args.quick {
        &[0.1, 0.5]
    } else {
        &[0.01, 0.02, 0.05, 0.1, 0.2, 0.5]
    };
    let motions = ["delta", "full"];
    let n = 8usize;

    let mut scenarios = Vec::new();
    for &motion in &motions {
        for &delta in deltas {
            for trial in 0..args.trials as u64 {
                let mut s = Scenario::new(workloads::random_scatter(n, 8.0, trial), trial);
                s.motion = motion;
                s.delta = delta;
                s.faults = 2;
                s.max_rounds = 1_000_000;
                scenarios.push(s);
            }
        }
    }
    let metrics = parallel_map(scenarios, |s| s.run());

    let mut table = Table::new(&[
        "motion",
        "delta",
        "gathered",
        "rounds(mean)",
        "rounds×delta",
        "travel(mean)",
    ]);
    let mut idx = 0;
    for &motion in &motions {
        for &delta in deltas {
            let cell: Vec<_> = (0..args.trials).map(|k| &metrics[idx + k]).collect();
            idx += args.trials;
            let ok = cell.iter().filter(|m| m.gathered).count();
            let rounds: Vec<f64> = cell.iter().map(|m| m.rounds as f64).collect();
            let travel: Vec<f64> = cell.iter().map(|m| m.total_travel).collect();
            table.push(vec![
                motion.into(),
                f(delta, 3),
                pct(ok, args.trials),
                f(mean(&rounds), 1),
                f(mean(&rounds) * delta, 2),
                f(mean(&travel), 1),
            ]);
        }
    }

    println!("F2 — effect of the minimum step δ (n = {n}, f = 2)\n");
    table.print();
    println!(
        "\nunder the stingy adversary 'rounds×delta' is roughly constant \
         (rounds ∝ 1/δ); under full motion δ does not matter."
    );
    let out = args.out_dir.join("f2_delta.csv");
    table.write_csv(&out).expect("write CSV");
    println!("wrote {}", out.display());
}
