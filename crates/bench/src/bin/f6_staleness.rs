//! F6 — Beyond ATOM: stale observations (toward the ASYNC model).
//!
//! The paper's guarantees hold in the semi-synchronous ATOM model, where
//! LOOK, COMPUTE and MOVE are atomic; the asynchronous model — where a
//! robot may move based on an arbitrarily old snapshot — is explicitly out
//! of scope. This experiment interpolates: every LOOK observes the
//! configuration from `delay` rounds ago (the robot still knows its own
//! true position). `delay = 0` is the paper's model; growing delays
//! measure how much of the algorithm's correctness is ATOM-specific.
//!
//! Expected shape: 100% at delay 0 (Theorem 5.1) — and, measured, 100%
//! at every delay with near-identical round counts. The reason is
//! structural: WAIT-FREE-GATHER's destinations are *invariants* of the
//! evolving configuration (the Weber point, the max-multiplicity point,
//! the elected safe point), so a stale snapshot usually yields the same
//! target as a fresh one; only class-transition moments are observed
//! late. This is empirical support for extending the result toward ASYNC
//! (the paper's open model), where the same invariance is the standard
//! proof tool.

use gather_bench::runner::{mean, parallel_map};
use gather_bench::table::{f, pct, Table};
use gather_bench::Args;
use gather_config::Class;
use gather_sim::prelude::*;
use gather_workloads as workloads;
use gathering::WaitFreeGather;

fn main() {
    let args = Args::parse();
    let delays: &[u64] = if args.quick {
        &[0, 4]
    } else {
        &[0, 1, 2, 4, 8, 16]
    };
    let classes = [Class::Multiple, Class::QuasiRegular, Class::Asymmetric];
    let n = 8usize;

    let mut jobs = Vec::new();
    for &class in &classes {
        for &delay in delays {
            for seed in 0..args.trials as u64 {
                jobs.push((class, delay, seed));
            }
        }
    }
    let outcomes = parallel_map(jobs, |&(class, delay, seed)| {
        let pts = workloads::of_class(class, n, seed);
        let mut engine = Engine::builder(pts)
            .algorithm(WaitFreeGather::default())
            .scheduler(RandomSubsets::new(0.4, 6 * n as u64, seed))
            .motion(RandomStops::new(0.4, seed + 1))
            .crash_plan(RandomCrashes::new(2, 0.05, seed + 2))
            .look_delay(delay)
            .check_invariants(false)
            .build();
        let outcome = engine.run(30_000);
        let metrics = gather_sim::metrics::summarize(outcome, engine.trace());
        (outcome, metrics.weiszfeld_per_round())
    });

    let mut table = Table::new(&[
        "class",
        "delay",
        "trials",
        "gathered",
        "rounds(mean)",
        "weiszfeld/rnd",
    ]);
    let mut idx = 0;
    for &class in &classes {
        for &delay in delays {
            let cell: Vec<_> = (0..args.trials).map(|k| &outcomes[idx + k]).collect();
            idx += args.trials;
            let ok = cell.iter().filter(|(o, _)| o.gathered()).count();
            let rounds: Vec<f64> = cell
                .iter()
                .filter(|(o, _)| o.gathered())
                .map(|(o, _)| o.rounds() as f64)
                .collect();
            // Solver cost per round: how much Weiszfeld work the warm-started
            // pipeline spends as staleness grows (class QR is the only
            // initial class whose rounds exercise the numeric solver).
            let weiszfeld: Vec<f64> = cell.iter().map(|(_, w)| *w).collect();
            table.push(vec![
                class.short_name().into(),
                delay.to_string(),
                args.trials.to_string(),
                pct(ok, args.trials),
                f(mean(&rounds), 1),
                f(mean(&weiszfeld), 2),
            ]);
        }
    }

    println!("F6 — stale observations: LOOK sees the configuration `delay` rounds old\n");
    table.print();
    println!(
        "\ndelay 0 is the paper's ATOM model (Theorem 5.1 applies); positive \
         delays step toward ASYNC, which the paper leaves open."
    );
    let out = args.out_dir.join("f6_staleness.csv");
    table.write_csv(&out).expect("write CSV");
    println!("wrote {}", out.display());
}
