//! Experiment harness shared by the per-table/per-figure runner binaries.
//!
//! The paper is a theory paper with no empirical section, so the
//! "evaluation" reproduced here is the explicit experiment plan of
//! DESIGN.md §6 / EXPERIMENTS.md: every runner binary regenerates one
//! table (T1–T6) or figure (F1–F5), printing a human-readable table and
//! writing a CSV under `results/`.
//!
//! The harness provides:
//!
//! * [`Args`] — uniform CLI parsing (`--trials N`, `--out DIR`,
//!   `--quick`);
//! * [`factory`] — algorithms/schedulers/motion adversaries by name, so
//!   sweeps are data-driven;
//! * [`runner`] — single-scenario execution with per-thread engine
//!   recycling, plus a parallel map over the persistent worker pool;
//! * [`pool`] — the long-lived worker pool behind `runner::parallel_map`
//!   (worker count from `GATHER_THREADS` or available parallelism);
//! * [`table`] — aligned text tables + CSV output.

use std::path::PathBuf;

pub mod factory;
pub mod pool;
pub mod report;
pub mod runner;
pub mod sweep;
pub mod table;

/// Allocation auditing (feature `alloc-audit`).
///
/// When the feature is enabled this module installs a counting wrapper
/// around the system allocator for the whole process, and
/// [`heap_allocations`] reports the running total — the B1 runner diffs it
/// around the round loop to prove the scratch-buffer engine's steady state
/// allocates nothing. Without the feature nothing is installed and
/// [`heap_allocations`] returns `None`, so the audit columns degrade to
/// `n/a` instead of lying.
pub mod alloc_audit {
    #[cfg(feature = "alloc-audit")]
    mod counting {
        use std::alloc::{GlobalAlloc, Layout, System};
        use std::sync::atomic::{AtomicU64, Ordering};

        pub static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

        /// Counts every allocation (and reallocation — a `Vec` growing in
        /// place still hits the allocator) before delegating to [`System`].
        /// Deallocations are not counted: the audit asks "did the round
        /// touch the heap", not "did memory usage grow".
        struct CountingAlloc;

        // SAFETY: pure delegation to `System`, plus a relaxed counter
        // increment that cannot affect the returned memory.
        unsafe impl GlobalAlloc for CountingAlloc {
            unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
                ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
                unsafe { System.alloc(layout) }
            }
            unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
                unsafe { System.dealloc(ptr, layout) }
            }
            unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
                ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
                unsafe { System.realloc(ptr, layout, new_size) }
            }
        }

        #[global_allocator]
        static GLOBAL: CountingAlloc = CountingAlloc;
    }

    /// Heap allocations performed by this process so far, when the
    /// `alloc-audit` feature compiled the counting allocator in.
    pub fn heap_allocations() -> Option<u64> {
        #[cfg(feature = "alloc-audit")]
        {
            Some(counting::ALLOCATIONS.load(std::sync::atomic::Ordering::Relaxed))
        }
        #[cfg(not(feature = "alloc-audit"))]
        {
            None
        }
    }

    /// Is the counting allocator compiled in?
    pub fn enabled() -> bool {
        cfg!(feature = "alloc-audit")
    }
}

/// Common command-line arguments for experiment binaries.
#[derive(Debug, Clone)]
pub struct Args {
    /// Number of independent trials per cell (seeds `0..trials`).
    pub trials: usize,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
    /// Reduced sweep for smoke-testing the harness.
    pub quick: bool,
    /// Committed benchmark record to regress against (`--baseline PATH`);
    /// runners that support it exit non-zero on a significant regression.
    pub baseline: Option<PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            trials: 10,
            out_dir: PathBuf::from("results"),
            quick: false,
            baseline: None,
        }
    }
}

impl Args {
    /// Parses `--trials N`, `--out DIR`, `--quick` and `--baseline PATH`
    /// from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse() -> Self {
        let mut out = Args::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--trials" => {
                    let v = args.next().expect("--trials needs a value");
                    out.trials = v.parse().expect("--trials must be an integer");
                }
                "--out" => {
                    let v = args.next().expect("--out needs a value");
                    out.out_dir = PathBuf::from(v);
                }
                "--quick" => {
                    out.quick = true;
                    out.trials = out.trials.min(3);
                }
                "--baseline" => {
                    let v = args.next().expect("--baseline needs a value");
                    out.baseline = Some(PathBuf::from(v));
                }
                other => {
                    panic!(
                        "unknown argument {other}; usage: \
                         [--trials N] [--out DIR] [--quick] [--baseline PATH]"
                    )
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args() {
        let a = Args::default();
        assert_eq!(a.trials, 10);
        assert!(!a.quick);
        assert_eq!(a.out_dir, PathBuf::from("results"));
    }
}
