//! Experiment harness shared by the per-table/per-figure runner binaries.
//!
//! The paper is a theory paper with no empirical section, so the
//! "evaluation" reproduced here is the explicit experiment plan of
//! DESIGN.md §6 / EXPERIMENTS.md: every runner binary regenerates one
//! table (T1–T6) or figure (F1–F5), printing a human-readable table and
//! writing a CSV under `results/`.
//!
//! The harness provides:
//!
//! * [`Args`] — uniform CLI parsing (`--trials N`, `--out DIR`,
//!   `--quick`);
//! * [`factory`] — algorithms/schedulers/motion adversaries by name, so
//!   sweeps are data-driven;
//! * [`runner`] — single-scenario execution and a scoped-std-thread parallel
//!   map for embarrassingly parallel trial matrices;
//! * [`table`] — aligned text tables + CSV output.

use std::path::PathBuf;

pub mod factory;
pub mod runner;
pub mod table;

/// Common command-line arguments for experiment binaries.
#[derive(Debug, Clone)]
pub struct Args {
    /// Number of independent trials per cell (seeds `0..trials`).
    pub trials: usize,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
    /// Reduced sweep for smoke-testing the harness.
    pub quick: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            trials: 10,
            out_dir: PathBuf::from("results"),
            quick: false,
        }
    }
}

impl Args {
    /// Parses `--trials N`, `--out DIR` and `--quick` from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse() -> Self {
        let mut out = Args::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--trials" => {
                    let v = args.next().expect("--trials needs a value");
                    out.trials = v.parse().expect("--trials must be an integer");
                }
                "--out" => {
                    let v = args.next().expect("--out needs a value");
                    out.out_dir = PathBuf::from(v);
                }
                "--quick" => {
                    out.quick = true;
                    out.trials = out.trials.min(3);
                }
                other => {
                    panic!("unknown argument {other}; usage: [--trials N] [--out DIR] [--quick]")
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args() {
        let a = Args::default();
        assert_eq!(a.trials, 10);
        assert!(!a.quick);
        assert_eq!(a.out_dir, PathBuf::from("results"));
    }
}
