//! Columnar mega-sweep: lockstep batch execution of scenario grids.
//!
//! [`crate::runner::Scenario::run`] drives one engine per scenario; a
//! parameter-space sweep instead hands *chunks* of consecutive scenarios to
//! each pool worker and advances every chunk as a [`BatchEngine`] — one
//! scratch arena, columnar between-round state, and per-lane retirement so
//! short runs free their slot for the next admission. The batch path is
//! bit-identical to the sequential one for every `(spec, seed)` (see
//! `tests/batch_identity.rs` and the `sweep-smoke` gate in
//! `scripts/check.sh`), so the only observable difference is throughput.
//!
//! Chunk ordering matters for warmth: grids should emit scenarios that
//! share an initial configuration consecutively (same class/n/trial, inner
//! loops over scheduler, `δ`, faults) so the batch admission memo skips the
//! cold classification for every grid cell after the first.

use crate::factory;
use crate::pool::WorkerPool;
use crate::runner::{put_thread_parts, take_thread_parts, Scenario};
use gather_geom::Tol;
use gather_sim::metrics::RunMetrics;
use gather_sim::prelude::*;

/// Consecutive scenarios handed to each pool job. Large enough that the
/// per-job overhead (slot scan, parts hand-off) amortises to nothing, small
/// enough that a grid of a few thousand cells still load-balances across
/// the pool.
pub const CHUNK: usize = 128;

/// Translates a [`Scenario`] into the equivalent [`LaneSpec`].
///
/// This mirrors `Scenario::build_engine` field for field (same factory
/// boxes, same derived seeds, same audit gating), which is what makes
/// [`run_batched_on`] interchangeable with `Scenario::run`: identical
/// configuration in, bit-identical [`RunMetrics`] out.
pub fn lane_spec(s: &Scenario) -> LaneSpec {
    assert!(
        !s.is_async(),
        "async scenarios run on the event-heap engine, not batch lanes"
    );
    let n = s.initial.len();
    let wait_free = s.algorithm == "wait-free-gather" && s.audit;
    let frames = if s.algorithm == "grid-march" {
        // Same exemption as `Scenario::frame_policy`: the grid rule gets
        // the grid model's common compass.
        FramePolicy::GlobalFrame
    } else {
        FramePolicy::RandomPerActivation {
            seed: s.seed.wrapping_add(3),
        }
    };
    LaneSpec {
        initial: s.initial.clone(),
        algorithm: factory::algorithm(s.algorithm),
        scheduler: factory::scheduler(s.scheduler, n, s.seed),
        crash_plan: Box::new(RandomCrashes::new(
            s.faults.min(n.saturating_sub(1)),
            0.05,
            s.seed.wrapping_add(2),
        )),
        motion: factory::motion(s.motion, s.seed.wrapping_add(1)),
        frames,
        tol: Tol::default(),
        delta: s.delta,
        check_invariants: wait_free,
        shared_analysis: true,
        warm_start: true,
        incremental: false,
        max_rounds: s.max_rounds,
        // Sweeps read summaries only; full per-round traces stay off the
        // hot path (trace consumers go through `Scenario::run_traced`).
        traced: false,
    }
}

/// Runs every scenario on `pool` via lockstep batches of `width` lanes and
/// returns the metrics in input order.
///
/// Each worker recycles the same thread-local [`EngineParts`] slot that
/// `Scenario::run` uses, so interleaving batched sweeps with sequential
/// runs on one pool keeps a single warm arena per thread. Like
/// `Scenario::run`, this asserts the invariant monitors stayed quiet for
/// audited wait-free scenarios.
pub fn run_batched_on(pool: &WorkerPool, scenarios: &[Scenario], width: usize) -> Vec<RunMetrics> {
    assert!(width > 0, "batch width must be positive");
    let chunks: Vec<&[Scenario]> = scenarios.chunks(CHUNK).collect();
    let per_chunk = pool.map(&chunks, |chunk| {
        // Lockstep lanes model synchronized rounds; `"async"` scenarios
        // have no rounds to lock, so each chunk partitions: sync members
        // ride the BatchEngine, async members run sequentially on the
        // event heap — same recycled thread arena, stitched back into
        // chunk order.
        let mut out: Vec<Option<RunMetrics>> = (0..chunk.len()).map(|_| None).collect();
        let sync_idx: Vec<usize> = (0..chunk.len()).filter(|&i| !chunk[i].is_async()).collect();
        if !sync_idx.is_empty() {
            let parts = take_thread_parts();
            let mut batch = BatchEngine::new(width, parts);
            let results = batch.run(sync_idx.iter().map(|&i| lane_spec(&chunk[i])).collect());
            put_thread_parts(batch.into_parts());
            for (&i, lane) in sync_idx.iter().zip(results) {
                let s = &chunk[i];
                if s.algorithm == "wait-free-gather" && s.audit {
                    assert!(
                        lane.violations.is_empty(),
                        "scenario (seed {}) violated invariants: {:?}",
                        s.seed,
                        lane.violations
                    );
                }
                out[i] = Some(lane.metrics);
            }
        }
        for (i, s) in chunk.iter().enumerate() {
            if s.is_async() {
                out[i] = Some(s.run());
            }
        }
        out.into_iter()
            .map(|m| m.expect("every chunk member executed"))
            .collect::<Vec<_>>()
    });
    per_chunk.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gather_config::Class;
    use gather_workloads::of_class;

    fn grid() -> Vec<Scenario> {
        let mut scenarios = Vec::new();
        let classes = [Class::Multiple, Class::Asymmetric, Class::QuasiRegular];
        for (ci, &class) in classes.iter().enumerate() {
            let initial = of_class(class, 6, 42 + ci as u64);
            for (si, scheduler) in ["full", "round-robin"].iter().enumerate() {
                for faults in [0usize, 2] {
                    let mut s = Scenario::new(initial.clone(), 1000 + (ci * 10 + si) as u64);
                    s.scheduler = scheduler;
                    s.faults = faults;
                    s.max_rounds = 400;
                    scenarios.push(s);
                }
            }
        }
        scenarios
    }

    #[test]
    fn batched_sweep_matches_sequential_scenario_runs() {
        let pool = WorkerPool::new(2);
        let scenarios = grid();
        let sequential: Vec<RunMetrics> = scenarios.iter().map(|s| s.run()).collect();
        for width in [1, 4] {
            let batched = run_batched_on(&pool, &scenarios, width);
            assert_eq!(batched, sequential, "width {width} diverged");
        }
    }

    #[test]
    fn mixed_async_chunks_match_sequential_runs() {
        let pool = WorkerPool::new(2);
        let mut scenarios = grid();
        // Interleave async scenarios through the chunk; they must come
        // back in input order, bit-identical to their sequential runs.
        for (i, s) in scenarios.iter_mut().enumerate() {
            if i % 3 == 0 {
                s.scheduler = "async";
                s.audit = false;
                s.max_rounds = 2_000;
            }
        }
        let sequential: Vec<RunMetrics> = scenarios.iter().map(|s| s.run()).collect();
        let batched = run_batched_on(&pool, &scenarios, 4);
        assert_eq!(batched, sequential);
        assert!(scenarios
            .iter()
            .zip(&batched)
            .filter(|(s, _)| s.is_async())
            .all(|(_, m)| m.async_events.is_some()));
    }

    #[test]
    fn audit_off_scenarios_also_match() {
        let pool = WorkerPool::new(1);
        let mut scenarios = grid();
        for s in &mut scenarios {
            s.audit = false;
        }
        let sequential: Vec<RunMetrics> = scenarios.iter().map(|s| s.run()).collect();
        let batched = run_batched_on(&pool, &scenarios, 8);
        assert_eq!(batched, sequential);
    }
}
