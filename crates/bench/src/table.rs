//! Aligned text tables and CSV output for experiment results.

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A simple result table: a header row plus data rows of equal arity.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV (header + rows, comma-separated, cells with
    /// commas/quotes escaped).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating directories or writing the file.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut f = fs::File::create(path)?;
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        writeln!(
            f,
            "{}",
            self.header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            )?;
        }
        Ok(())
    }
}

/// Convenience: formats a float with the given precision.
pub fn f(value: f64, precision: usize) -> String {
    format!("{value:.precision$}")
}

/// Convenience: formats a percentage out of a count.
pub fn pct(hits: usize, total: usize) -> String {
    if total == 0 {
        "n/a".into()
    } else {
        format!("{:.0}%", 100.0 * hits as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.push(vec!["x".into(), "1".into()]);
        t.push(vec!["longer".into(), "23".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.push(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escaping() {
        let dir = std::env::temp_dir().join("gather-bench-test");
        let path = dir.join("t.csv");
        let mut t = Table::new(&["a", "b"]);
        t.push(vec!["x,y".into(), "say \"hi\"".into()]);
        t.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"x,y\""));
        assert!(text.contains("\"say \"\"hi\"\"\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(3, 4), "75%");
        assert_eq!(pct(0, 0), "n/a");
    }
}
