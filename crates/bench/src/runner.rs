//! Scenario execution and parallel trial mapping.

use crate::factory;
use gather_geom::Point;
use gather_sim::metrics::{summarize, CacheStats, RunMetrics};
use gather_sim::prelude::*;
use std::cell::RefCell;

thread_local! {
    /// Engine scratch recycled across every [`Scenario::run`] on this
    /// thread. Pool workers are long-lived (see [`crate::pool`]), so after
    /// each worker's first scenario the steady-state sweep loop performs no
    /// per-item engine allocation. `AnalysisCache::reset` guarantees the
    /// recycling is observationally invisible, so results stay independent
    /// of which worker ran which scenario.
    static ENGINE_PARTS: RefCell<Option<EngineParts>> = const { RefCell::new(None) };
}

/// One fully specified simulation scenario (a single cell × seed of an
/// experiment matrix).
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Initial robot positions.
    pub initial: Vec<Point>,
    /// Algorithm name (see [`factory::ALGORITHMS`]).
    pub algorithm: &'static str,
    /// Scheduler name (see [`factory::SCHEDULERS`]).
    pub scheduler: &'static str,
    /// Motion-adversary name (see [`factory::MOTIONS`]).
    pub motion: &'static str,
    /// Number of crash faults to inject (randomly timed, seeded).
    pub faults: usize,
    /// Minimum movement step `δ`.
    pub delta: f64,
    /// Round budget.
    pub max_rounds: u64,
    /// RNG seed for every randomised component.
    pub seed: u64,
    /// Run the per-round invariant audits (default on). Only meaningful
    /// for the paper's algorithm — baselines never audit. Sweeps that
    /// measure raw scenario throughput turn this off; the audit costs the
    /// bulk of round time (see `BENCH_b9_obs.json`) and the b10 contract
    /// compares batch and sequential execution with identical settings.
    pub audit: bool,
    /// Rigid moves (default `true`). Only meaningful under the `"async"`
    /// scheduler: `false` lets the adversary stop in-flight robots at any
    /// event past `δ` progress ([`Rigidity::NonRigid`]).
    pub rigid: bool,
    /// Per-robot speed skew (default `0.0`). Only meaningful under the
    /// `"async"` scheduler: each robot's travel speed is scaled by a
    /// seeded multiplier in `[1, 1 + speed_skew)`.
    pub speed_skew: f64,
}

impl Scenario {
    /// A scenario with the harness defaults (paper's algorithm, full sync,
    /// full motion, no faults, `δ = 0.05`, 60 000 rounds).
    pub fn new(initial: Vec<Point>, seed: u64) -> Self {
        Scenario {
            initial,
            algorithm: "wait-free-gather",
            scheduler: "full",
            motion: "full",
            faults: 0,
            delta: 0.05,
            max_rounds: 60_000,
            seed,
            audit: true,
            rigid: true,
            speed_skew: 0.0,
        }
    }

    /// Does this scenario execute on the event-driven [`AsyncEngine`]?
    /// The `"async"` scheduler name selects the engine, not a
    /// [`Scheduler`] implementation — activation order comes from the
    /// event heap.
    pub fn is_async(&self) -> bool {
        self.scheduler == "async"
    }

    /// Runs the scenario to completion and summarises it, recycling this
    /// thread's engine scratch across calls.
    pub fn run(&self) -> RunMetrics {
        let parts = take_thread_parts();
        let (metrics, parts) = self.run_with(parts);
        put_thread_parts(parts);
        metrics
    }

    /// Runs the scenario with explicitly supplied recycled engine parts and
    /// hands them back for the next run. Exposed so benchmarks can audit
    /// allocation behaviour across sweep-item boundaries without the
    /// thread-local indirection.
    pub fn run_with(&self, parts: EngineParts) -> (RunMetrics, EngineParts) {
        if self.is_async() {
            let mut engine = self.build_async_engine(parts);
            let metrics = self.complete_async(&mut engine);
            return (metrics, engine.into_parts());
        }
        let mut engine = self.build_engine(parts, None);
        let metrics = self.complete(&mut engine);
        (metrics, engine.into_parts())
    }

    /// Runs the scenario with an attached observability handle and returns
    /// the handle alongside the metrics. When the handle is *enabled* the
    /// metrics carry per-phase wall-clock columns ([`RunMetrics::phase_ns`]);
    /// a [`EngineObs::disabled`] handle measures the cost of carrying the
    /// instrumentation without reading the clock.
    pub fn run_observed(&self, obs: EngineObs) -> (RunMetrics, EngineObs) {
        if self.is_async() {
            // The async engine carries no phase spans (its "phases" are
            // event kinds, not wall-clock laps); run plain and hand the
            // handle back untouched.
            let (metrics, _) = self.run_with(EngineParts::default());
            return (metrics, obs);
        }
        let mut engine = self.build_engine(EngineParts::default(), Some(obs));
        let mut metrics = self.complete(&mut engine);
        metrics.phase_ns = engine.phase_nanos();
        let obs = engine
            .take_observability()
            .expect("engine keeps the handle it was built with");
        (metrics, obs)
    }

    /// Runs the scenario with an *unbounded* trace and returns the metrics
    /// plus the full per-round NDJSON stream ([`Trace::to_jsonl`]). This is
    /// the in-process twin of the service's `GET /v1/trace` endpoint: the
    /// returned string is byte-identical to the streamed response body.
    pub fn run_traced(&self) -> (RunMetrics, String) {
        if self.is_async() {
            let mut engine = self.build_async_engine(EngineParts::default());
            let metrics = self.complete_async(&mut engine);
            return (metrics, engine.trace().to_jsonl());
        }
        let mut engine = self.build_engine(EngineParts::default(), None);
        let metrics = self.complete(&mut engine);
        (metrics, engine.trace().to_jsonl())
    }

    /// Runs like [`Scenario::run_traced`] but with the engine's position
    /// log enabled, returning the metrics, the per-round NDJSON trace and
    /// `log[r][i]` — robot `i`'s position after round `r` (`log[0]` is
    /// the initial configuration). This is the replay entry point: the
    /// trace-corpus tools re-simulate a captured spec + seed through it,
    /// cross-check the regenerated trace against the corpus bytes, and
    /// only then render frames — positions are never trusted from a
    /// side channel the trace cannot verify.
    ///
    /// # Errors
    ///
    /// Rejects `"async"` scenarios: the event-heap engine advances in
    /// event time and keeps no per-round position rows to replay.
    pub fn run_traced_positions(&self) -> Result<(RunMetrics, String, Vec<Vec<Point>>), String> {
        if self.is_async() {
            return Err(
                "replay requires a round-based scenario: the async engine keeps no \
                 per-round position log"
                    .to_string(),
            );
        }
        let mut engine = self.build_logged_engine(EngineParts::default());
        let metrics = self.complete(&mut engine);
        let trace = engine.trace().to_jsonl();
        Ok((metrics, trace, engine.position_log().to_vec()))
    }

    /// [`Scenario::build_engine`] with the position log switched on —
    /// recording is observation-only, so the run is bit-identical to an
    /// unlogged one (the replay cross-check above depends on it).
    fn build_logged_engine(&self, parts: EngineParts) -> Engine {
        self.engine_builder(parts).record_positions(true).build()
    }

    /// Builds the engine for this scenario. All `run*` entry points funnel
    /// through here so instrumented and traced runs are configured
    /// identically to plain ones.
    fn build_engine(&self, parts: EngineParts, obs: Option<EngineObs>) -> Engine {
        let mut builder = self.engine_builder(parts);
        if let Some(obs) = obs {
            builder = builder.observe(obs);
        }
        builder.build()
    }

    /// The shared builder behind every sync entry point: one place owns the
    /// factory wiring and seed layout, so logged/observed/traced runs can
    /// only differ by the flags they flip on top.
    fn engine_builder(&self, parts: EngineParts) -> EngineBuilder {
        let n = self.initial.len();
        let wait_free = self.algorithm == "wait-free-gather" && self.audit;
        Engine::builder(self.initial.clone())
            .algorithm(factory::algorithm(self.algorithm))
            .scheduler(factory::scheduler(self.scheduler, n, self.seed))
            .motion(factory::motion(self.motion, self.seed.wrapping_add(1)))
            .crash_plan(RandomCrashes::new(
                self.faults.min(n.saturating_sub(1)),
                0.05,
                self.seed.wrapping_add(2),
            ))
            .frames(self.frame_policy())
            .delta(self.delta)
            // Invariant monitors are part of the experiment only for the
            // wait-free algorithm; baselines violate them by design.
            .check_invariants(wait_free)
            .recycle(parts)
    }

    /// Frame policy shared by both engines: random per-activation frames,
    /// except for `"grid-march"` — the grid model grants a common compass
    /// (the algorithm is deliberately non-equivariant, its moves are
    /// global-axis steps), so it observes in the global frame.
    fn frame_policy(&self) -> FramePolicy {
        if self.algorithm == "grid-march" {
            FramePolicy::GlobalFrame
        } else {
            FramePolicy::RandomPerActivation {
                seed: self.seed.wrapping_add(3),
            }
        }
    }

    /// Builds the event-driven engine for an `"async"` scenario. Seed
    /// layout extends [`Scenario::build_engine`]'s (`+2` crashes, `+3`
    /// frames) with `+4` pacing, `+5` speed skew, `+6` rigidity.
    fn build_async_engine(&self, parts: EngineParts) -> AsyncEngine {
        let n = self.initial.len();
        let mut builder = AsyncEngine::builder(self.initial.clone())
            .algorithm(factory::algorithm(self.algorithm))
            .crash_plan(RandomCrashes::new(
                self.faults.min(n.saturating_sub(1)),
                0.05,
                self.seed.wrapping_add(2),
            ))
            .frames(self.frame_policy())
            .delta(self.delta)
            .timing(Timing::Phased {
                compute_time: 0.25,
                speed: 1.0,
            })
            .pacing(Pacing::Exponential {
                rate: 1.0,
                seed: self.seed.wrapping_add(4),
            })
            // The paper's invariant monitors (Lemma 5.1, never-bivalent)
            // are theorems of the ATOM model; mid-flight configurations
            // violate them legitimately, so ASYNC runs never audit —
            // boundary mapping records outcomes instead.
            .check_invariants(false)
            .recycle(parts);
        if self.speed_skew > 0.0 {
            builder = builder.speed_skew(self.speed_skew, self.seed.wrapping_add(5));
        }
        if !self.rigid {
            builder = builder.rigidity(Rigidity::NonRigid {
                stop_prob: 0.25,
                seed: self.seed.wrapping_add(6),
            });
        }
        builder.build()
    }

    /// Drives a built async engine to completion and summarises it,
    /// attaching cache stats and the event count.
    fn complete_async(&self, engine: &mut AsyncEngine) -> RunMetrics {
        let outcome = engine.run(self.max_rounds);
        let mut metrics = summarize(outcome, engine.trace());
        let (computed, hits, dirty_skips) = engine.analysis_cache_stats();
        metrics.analysis_cache = Some(CacheStats {
            computed,
            hits,
            dirty_skips,
        });
        metrics.async_events = Some(engine.events_processed());
        metrics
    }

    /// Drives a built engine to completion and summarises it, asserting the
    /// invariant monitors stayed quiet for the paper's algorithm.
    fn complete(&self, engine: &mut Engine) -> RunMetrics {
        let outcome = engine.run(self.max_rounds);
        let mut metrics = summarize(outcome, engine.trace());
        let (computed, hits, dirty_skips) = engine.analysis_cache_stats();
        metrics.analysis_cache = Some(CacheStats {
            computed,
            hits,
            dirty_skips,
        });
        if self.algorithm == "wait-free-gather" && self.audit {
            assert!(
                engine.violations().is_empty(),
                "invariant violations in {:?}: {:?}",
                self,
                engine.violations()
            );
        }
        metrics
    }
}

/// Takes this thread's recycled engine parts (fresh ones on the thread's
/// first use). Pair with [`put_thread_parts`]: the batch sweep runner uses
/// the same per-worker arena contract as [`Scenario::run`], so sequential
/// and batch execution on one pool share warm buffers.
pub fn take_thread_parts() -> EngineParts {
    ENGINE_PARTS
        .with(|cell| cell.borrow_mut().take())
        .unwrap_or_default()
}

/// Returns recycled engine parts to this thread's slot for the next run.
pub fn put_thread_parts(parts: EngineParts) {
    ENGINE_PARTS.with(|cell| *cell.borrow_mut() = Some(parts));
}

/// Runs `f` over every item on the process-wide persistent worker pool
/// (see [`crate::pool`]) and returns results in input order, independent of
/// worker count. Replaces the old per-call scoped-thread map: workers — and
/// with them the per-thread recycled engine scratch — now live for the
/// whole process instead of one call.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    crate::pool::global().map(&items, f)
}

/// Mean of a slice (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation of a slice.
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Median of a slice (0 for empty input).
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 50.0)
}

/// The `p`-th percentile (nearest-rank with linear interpolation; 0 for
/// empty input).
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let t = rank - lo as f64;
        sorted[lo] * (1.0 - t) + sorted[hi] * t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gather_workloads as workloads;

    #[test]
    fn scenario_runs_and_gathers() {
        let s = Scenario::new(workloads::random_scatter(5, 5.0, 3), 3);
        let m = s.run();
        assert!(m.gathered);
    }

    #[test]
    fn position_logged_run_is_bit_identical_to_the_traced_run() {
        let mut s = Scenario::new(workloads::random_scatter(6, 5.0, 9), 9);
        s.faults = 1;
        s.max_rounds = 2_000;
        let (plain_metrics, plain_trace) = s.run_traced();
        let (metrics, trace, log) = s.run_traced_positions().expect("sync scenario");
        assert_eq!(metrics, plain_metrics, "logging must not perturb the run");
        assert_eq!(trace, plain_trace);
        assert_eq!(
            log.len() as u64,
            metrics.rounds + 1,
            "log[0] is the initial configuration, one row per round after"
        );
        assert!(log.iter().all(|row| row.len() == 6));

        let mut a = s.clone();
        a.scheduler = "async";
        a.audit = false;
        assert!(
            a.run_traced_positions().is_err(),
            "the event-heap engine has no per-round position log"
        );
    }

    #[test]
    fn observed_run_matches_plain_run_and_times_phases() {
        let s = Scenario::new(workloads::random_scatter(5, 5.0, 3), 3);
        let plain = s.run();
        let (observed, obs) = s.run_observed(EngineObs::new(64));
        assert!(observed.phase_ns.is_some(), "enabled handle times phases");
        assert!(obs.totals().total() > 0);
        assert!(!obs.rounds().is_empty());
        // Identical behaviour modulo the timing columns.
        let mut untimed = observed.clone();
        untimed.phase_ns = None;
        assert_eq!(plain.to_jsonl(), untimed.to_jsonl());

        let (disabled, _) = s.run_observed(EngineObs::disabled());
        assert!(disabled.phase_ns.is_none(), "disabled handle stays silent");
    }

    #[test]
    fn weiszfeld_time_is_carved_out_of_classify() {
        // The B1 warm-start workload: a quasi-regular ring set with an
        // unoccupied centre, δ-creep motion — every round re-detects
        // regularity through the numeric Weber candidate, so the solver
        // runs and its time must land in the weiszfeld span.
        let initial: Vec<_> = workloads::quasi_regular(4, 3, 11)
            .into_iter()
            .map(|p| gather_geom::Point::new(p.x * 5.0, p.y * 5.0))
            .collect();
        let mut s = Scenario::new(initial, 11);
        s.scheduler = "round-robin";
        s.motion = "delta";
        s.delta = 0.01;
        s.max_rounds = 200;
        let (m, obs) = s.run_observed(EngineObs::new(64));
        assert!(m.weiszfeld_iters > 0, "QR scenario exercises Weiszfeld");
        assert!(
            obs.totals().get(gather_obs::Phase::Weiszfeld) > 0,
            "solver iterations must be charged to the weiszfeld phase: {:?}",
            obs.totals()
        );
    }

    #[test]
    fn traced_run_streams_every_round() {
        let s = Scenario::new(workloads::random_scatter(4, 4.0, 7), 7);
        let (metrics, jsonl) = s.run_traced();
        assert_eq!(jsonl.lines().count() as u64, metrics.rounds);
        assert!(jsonl.lines().all(|l| l.starts_with("{\"round\":")));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..37).collect();
        let out = parallel_map(items.clone(), |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<u64> = parallel_map(Vec::<u64>::new(), |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn statistics() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert!(stddev(&[2.0, 2.0, 2.0]) < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn percentiles() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert!((percentile(&v, 50.0) - 50.5).abs() < 1e-9);
        assert!((percentile(&v, 95.0) - 95.05).abs() < 1e-9);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_range_checked() {
        let _ = percentile(&[1.0], 101.0);
    }
}
