//! Persistent worker pool for sweep execution.
//!
//! [`super::runner::parallel_map`] used to spawn a fresh set of scoped
//! threads per call, which meant every sweep paid thread start-up costs and
//! — more importantly for the zero-allocation story — every worker started
//! with cold [`gather_sim::EngineParts`]. The pool here is created once
//! (per process via [`global`], or explicitly via [`WorkerPool::new`] for
//! benchmarks that compare thread counts) and its workers live for the
//! pool's lifetime, so thread-local engine scratch survives across batch
//! boundaries and a steady-state sweep performs no per-item allocation.
//!
//! Determinism contract (DESIGN.md §10): results are collected into a slot
//! per *input index*, and each scenario is a pure function of its own
//! `Scenario` value, so the returned `Vec` is bit-identical regardless of
//! how many workers the pool has or how indices interleave. The
//! thread-matrix tests in `tests/pool_determinism.rs` pin this down.
//!
//! Pure `std` only (hermetic-build policy, DESIGN.md §8): a `Mutex` +
//! `Condvar` pair hands batches to workers, and an atomic cursor inside the
//! batch lets workers claim indices without holding the lock.

use gather_obs::Histogram;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Per-job pool instrumentation: concurrent histograms fed by every worker
/// of an instrumented pool ([`WorkerPool::new_instrumented`]).
///
/// Recording is a few relaxed atomic increments per job (see
/// [`Histogram::record`]) and happens only on pools that were given a
/// handle — the default pools ([`WorkerPool::new`], [`global`]) skip all
/// clock reads.
#[derive(Debug, Default)]
pub struct PoolObs {
    /// Nanoseconds from batch submission to a worker claiming the job.
    pub queue_wait: Histogram,
    /// Nanoseconds a worker spent executing the job.
    pub run_time: Histogram,
}

/// One submitted batch: a borrowed job (erased to a raw pointer — see the
/// safety argument in [`WorkerPool::run_batch`]) plus the claim cursor.
struct Batch {
    job: *const (dyn Fn(usize) + Sync),
    len: usize,
    next: AtomicUsize,
    /// When the batch entered the pool; per-job queue wait is measured
    /// from here to the claiming worker's clock read.
    submitted: Instant,
}

// SAFETY: `job` points at a `Sync` closure that the submitting thread keeps
// alive until every index is completed (enforced by `run_batch` blocking on
// `completed == len` before returning), and `next`/`len` are `Send + Sync`
// on their own.
unsafe impl Send for Batch {}
unsafe impl Sync for Batch {}

struct State {
    batch: Option<Arc<Batch>>,
    /// Bumped once per batch so sleeping workers can tell "new batch" from
    /// a spurious wake-up on the same (exhausted) batch.
    generation: u64,
    completed: usize,
    panicked: Option<String>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
    batch_done: Condvar,
    /// Serialises `run_batch` callers so `completed`/`panicked` always
    /// refer to exactly one in-flight batch.
    submission: Mutex<()>,
    /// Per-job histograms, when this pool is instrumented.
    obs: Option<Arc<PoolObs>>,
}

/// A fixed-size pool of long-lived worker threads executing index batches.
///
/// Workers persist across [`WorkerPool::map`] calls, so per-thread state
/// (notably the recycled engine parts in `runner::Scenario::run`) is reused
/// from one sweep item — and one sweep — to the next.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

fn worker_loop(shared: &Shared) {
    let mut seen_generation = 0u64;
    loop {
        // Wait for a batch newer than the last one this worker drained.
        // An undrained batch takes priority over shutdown: `shutdown` can
        // race with a submission that already passed its shutdown check
        // (both happen under the state mutex), and the submitter blocks
        // until `completed == len` — so workers must finish an in-flight
        // batch before exiting or that submitter would hang forever.
        let batch = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.generation > seen_generation {
                    if let Some(b) = &st.batch {
                        seen_generation = st.generation;
                        break Arc::clone(b);
                    }
                }
                if st.shutdown {
                    return;
                }
                st = shared.work_ready.wait(st).unwrap();
            }
        };
        // Claim and run indices without holding the lock.
        let mut done = 0usize;
        let mut panic_msg: Option<String> = None;
        loop {
            let i = batch.next.fetch_add(1, Ordering::Relaxed);
            if i >= batch.len {
                break;
            }
            // Instrumented pools time each job; plain pools never read the
            // clock here (one `Option` check per claim).
            let claimed = shared.obs.as_deref().map(|obs| {
                let now = Instant::now();
                obs.queue_wait
                    .record(now.duration_since(batch.submitted).as_nanos() as u64);
                now
            });
            // SAFETY: `i < len`, so the submitter is still blocked in
            // `run_batch` and the borrowed job is alive.
            let job = unsafe { &*batch.job };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| job(i))) {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                // First message wins; keep draining so `completed` still
                // reaches `len` and the submitter wakes up.
                panic_msg.get_or_insert(msg);
            }
            if let (Some(obs), Some(claimed)) = (shared.obs.as_deref(), claimed) {
                obs.run_time.record(claimed.elapsed().as_nanos() as u64);
            }
            done += 1;
        }
        if done > 0 {
            let mut st = shared.state.lock().unwrap();
            st.completed += done;
            if let Some(msg) = panic_msg {
                st.panicked.get_or_insert(msg);
            }
            if st.completed >= batch.len {
                shared.batch_done.notify_all();
            }
        }
    }
}

impl WorkerPool {
    /// Spawns a pool with `threads` workers (clamped to at least 1).
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to spawn a thread.
    pub fn new(threads: usize) -> Self {
        Self::spawn(threads, None)
    }

    /// Spawns an *instrumented* pool: every job's queue wait and run time
    /// is recorded into `obs` (shared with the caller, who reads quantiles
    /// from it — the serving layer exposes them on `/v1/metrics`).
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to spawn a thread.
    pub fn new_instrumented(threads: usize, obs: Arc<PoolObs>) -> Self {
        Self::spawn(threads, Some(obs))
    }

    fn spawn(threads: usize, obs: Option<Arc<PoolObs>>) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                batch: None,
                generation: 0,
                completed: 0,
                panicked: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            batch_done: Condvar::new(),
            submission: Mutex::new(()),
            obs,
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gather-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Initiates a graceful shutdown without consuming the pool: workers
    /// finish draining any in-flight batch (its `run_batch` caller returns
    /// normally, panics still propagate to it), then exit. Idempotent.
    ///
    /// After shutdown, submitting a new batch panics — the serving layer
    /// relies on this to guarantee no work sneaks in behind a drain.
    /// Dropping the pool afterwards joins the (already exiting) workers.
    pub fn shutdown(&self) {
        let mut st = self.shared.state.lock().unwrap();
        st.shutdown = true;
        self.shared.work_ready.notify_all();
    }

    /// Has [`WorkerPool::shutdown`] been called?
    pub fn is_shut_down(&self) -> bool {
        self.shared.state.lock().unwrap().shutdown
    }

    /// Runs `job(i)` for every `i in 0..len` on the pool and blocks until
    /// all indices completed.
    ///
    /// # Panics
    ///
    /// Re-panics on the calling thread if any job panicked (after the whole
    /// batch has drained, so the pool stays usable). Also panics if the
    /// pool was [`shutdown`](WorkerPool::shutdown) before submission.
    pub fn run_batch(&self, len: usize, job: &(dyn Fn(usize) + Sync)) {
        if len == 0 {
            return;
        }
        // A prior batch that re-panicked below has poisoned this mutex;
        // that is fine — the batch still drained fully, so the pool state
        // is consistent and the lock stays usable.
        let submission = self
            .shared
            .submission
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // SAFETY of the lifetime erasure: workers dereference `job` only for
        // indices `< len`, every index is claimed exactly once, and we block
        // below until `completed == len` — so no dereference can outlive
        // this stack frame. Late wake-ups after that see `next >= len` and
        // never touch the pointer again.
        let job: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(job) };
        let batch = Arc::new(Batch {
            job,
            len,
            next: AtomicUsize::new(0),
            submitted: Instant::now(),
        });
        let mut st = self.shared.state.lock().unwrap();
        if st.shutdown {
            // Panic with no locks held so this refusal cannot poison the
            // pool state for a later drop.
            drop(st);
            drop(submission);
            panic!("batch submitted to a shut-down WorkerPool (shutdown() was called)");
        }
        st.batch = Some(Arc::clone(&batch));
        st.generation += 1;
        st.completed = 0;
        st.panicked = None;
        self.shared.work_ready.notify_all();
        while st.completed < len {
            st = self.shared.batch_done.wait(st).unwrap();
        }
        st.batch = None;
        let panicked = st.panicked.take();
        drop(st);
        drop(submission);
        if let Some(msg) = panicked {
            panic!("pool worker panicked: {msg}");
        }
    }

    /// Applies `f` to every item on the pool, returning results in input
    /// order (independent of worker count and scheduling — each result goes
    /// into the slot of its input index).
    ///
    /// # Panics
    ///
    /// Re-panics if `f` panicked on any item.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        self.run_batch(items.len(), &|i| {
            let result = f(&items[i]);
            *slots[i].lock().unwrap() = Some(result);
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker delivered every result")
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Worker count for the process-wide pool: `GATHER_THREADS` if set, else
/// the machine's available parallelism.
///
/// # Panics
///
/// Panics if `GATHER_THREADS` is set to anything but a positive integer.
pub fn default_threads() -> usize {
    match std::env::var("GATHER_THREADS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| panic!("GATHER_THREADS must be a positive integer, got {v:?}")),
        Err(_) => std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4),
    }
}

static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();

/// The process-wide pool used by [`super::runner::parallel_map`]; created
/// on first use with [`default_threads`] workers and kept for the life of
/// the process so engine scratch persists across sweeps.
pub fn global() -> &'static WorkerPool {
    GLOBAL.get_or_init(|| WorkerPool::new(default_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_input_order() {
        for threads in [1, 2, 5] {
            let pool = WorkerPool::new(threads);
            let items: Vec<u64> = (0..97).collect();
            let out = pool.map(&items, |x| x * 3 + 1);
            assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_survives_many_batches() {
        let pool = WorkerPool::new(3);
        for round in 0..20u64 {
            let items: Vec<u64> = (0..11).collect();
            let out = pool.map(&items, |x| x + round);
            assert_eq!(out, items.iter().map(|x| x + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pool = WorkerPool::new(2);
        let out: Vec<u64> = pool.map(&Vec::<u64>::new(), |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let pool = WorkerPool::new(4);
        let counts: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        pool.run_batch(counts.len(), &|i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn worker_panic_propagates_and_pool_stays_usable() {
        let pool = WorkerPool::new(2);
        let items: Vec<u64> = (0..8).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.map(&items, |x| {
                assert!(*x != 5, "boom at five");
                *x
            })
        }));
        assert!(caught.is_err());
        // The pool must still process a clean follow-up batch.
        let out = pool.map(&items, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn instrumented_pool_times_every_job() {
        let obs = Arc::new(PoolObs::default());
        let pool = WorkerPool::new_instrumented(2, Arc::clone(&obs));
        let items: Vec<u64> = (0..37).collect();
        let out = pool.map(&items, |x| {
            std::thread::sleep(std::time::Duration::from_micros(50));
            x + 1
        });
        assert_eq!(out.len(), 37);
        assert_eq!(obs.queue_wait.count(), 37, "one wait sample per job");
        assert_eq!(obs.run_time.count(), 37, "one run sample per job");
        assert!(
            obs.run_time.quantile(0.5) >= 50_000,
            "jobs slept >= 50us: {:?}",
            obs.run_time
        );
    }

    /// Serialises the tests that mutate `GATHER_THREADS`: the test harness
    /// runs tests on parallel threads but the environment is process-wide.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    /// Runs `body` with `GATHER_THREADS` set to `value` (unset for `None`),
    /// restoring the prior value afterwards even if `body` panics.
    fn with_gather_threads<R>(value: Option<&str>, body: impl FnOnce() -> R) -> R {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prior = std::env::var("GATHER_THREADS").ok();
        match value {
            Some(v) => std::env::set_var("GATHER_THREADS", v),
            None => std::env::remove_var("GATHER_THREADS"),
        }
        let result = catch_unwind(AssertUnwindSafe(body));
        match prior {
            Some(v) => std::env::set_var("GATHER_THREADS", v),
            None => std::env::remove_var("GATHER_THREADS"),
        }
        match result {
            Ok(r) => r,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    #[test]
    fn gather_threads_env_controls_default() {
        // `default_threads` reads the env var on every call, so exercising
        // it here is safe as long as we restore the prior value.
        with_gather_threads(Some("3"), || assert_eq!(default_threads(), 3));
        // Leading/trailing whitespace is tolerated (a quoted shell export).
        with_gather_threads(Some(" 2 "), || assert_eq!(default_threads(), 2));
        // Unset falls back to the machine's parallelism: some positive count.
        with_gather_threads(None, || assert!(default_threads() >= 1));
    }

    #[test]
    fn gather_threads_invalid_values_panic_with_contract_message() {
        // The documented contract: anything but a positive integer is a
        // configuration error, reported loudly instead of silently
        // defaulting — a typo'd `GATHER_THREADS=auto` must not quietly pin
        // a benchmark to the wrong worker count.
        for bad in ["0", "-1", "auto", "2.5", "", "1x"] {
            let caught = with_gather_threads(Some(bad), || {
                catch_unwind(AssertUnwindSafe(default_threads))
            });
            let payload = caught.expect_err(&format!("GATHER_THREADS={bad:?} must panic"));
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(
                msg.contains("GATHER_THREADS must be a positive integer"),
                "GATHER_THREADS={bad:?}: unexpected panic message {msg:?}"
            );
            assert!(
                msg.contains(&format!("{bad:?}")),
                "panic message must echo the offending value: {msg:?}"
            );
        }
    }
}
