//! The monotonicity auditor's two-sided property contract:
//!
//! * **soundness on the paper's model** — under the ATOM round model
//!   (FSYNC and SSYNC schedulers), fault-free and rigid, the wait-free
//!   algorithm's executions must audit *clean* for every initial class:
//!   the class rank is a monotone potential (Lemmas 5.3–5.9) and the
//!   audit has no false positives;
//! * **sensitivity off the model** — a non-rigid, speed-skewed ASYNC
//!   execution moves robots on stale snapshots, which can legitimately
//!   break the potential (e.g. splitting a multiplicity tower). The
//!   pinned seed below provably regresses the class rank, and the audit
//!   must flag it — no false negatives on the staleness it exists to
//!   detect. The seed stays meaningful because engine runs are
//!   byte-deterministic (DESIGN.md §11).

use gather_config::Class;
use gather_serve::ScenarioSpec;
use gather_trace::{analyze_corpus, audit_monotonicity, class_rank, Corpus, SIX_CLASS_MATRIX};

fn document(spec: &ScenarioSpec) -> String {
    let (_, rounds) = spec.to_scenario().expect("valid spec").run_traced();
    format!("{}{rounds}", spec.trace_header())
}

#[test]
fn fault_free_rigid_executions_audit_clean_for_all_six_classes() {
    let mut corpus_text = String::new();
    let mut expected = 0;
    for &(class, n) in &SIX_CLASS_MATRIX {
        for scheduler in ["full", "round-robin"] {
            for motion in ["full", "delta"] {
                for seed in [1u64, 9] {
                    corpus_text.push_str(&document(&ScenarioSpec {
                        class: Some(class),
                        n,
                        seed,
                        scheduler,
                        motion,
                        max_rounds: 5_000,
                        ..ScenarioSpec::default()
                    }));
                    expected += 1;
                }
            }
        }
    }
    let corpus = Corpus::parse(&corpus_text).expect("every document parses");
    assert_eq!(corpus.executions.len(), expected);
    let report = analyze_corpus(&corpus);
    for exec in &report.executions {
        assert!(
            exec.violations.is_empty(),
            "{} ({} rounds): ATOM-model execution broke the potential: {:?}",
            exec.label,
            exec.rounds,
            exec.violations
        );
        assert_eq!(
            exec.illegal_transitions, 0,
            "{}: transition graph contains a non-lemma edge: {:?}",
            exec.label, exec.transitions
        );
        assert!(
            exec.transitions.iter().all(|e| e.legal),
            "{}: {:?}",
            exec.label,
            exec.transitions
        );
        assert!(
            exec.gathered,
            "{}: fault-free execution must gather within budget",
            exec.label
        );
    }
}

#[test]
fn staleness_in_non_rigid_async_executions_is_flagged() {
    // Pinned by the seed hunt: non-rigid motion + speed skew + crashes
    // maximises snapshot staleness; this execution demonstrably regresses
    // from QR back to A mid-run.
    let spec = ScenarioSpec {
        class: Some(Class::QuasiRegular),
        n: 8,
        seed: 35,
        faults: 2,
        scheduler: "async",
        rigid: false,
        speed_skew: 0.5,
        max_rounds: 20_000,
        ..ScenarioSpec::default()
    };
    let corpus = Corpus::parse(&document(&spec)).expect("async document parses");
    let exec = &corpus.executions[0];
    assert_eq!(exec.header.as_ref().expect("header").engine, "async");

    let violations = audit_monotonicity(exec);
    assert!(
        !violations.is_empty(),
        "the pinned staleness scenario must produce at least one \
         non-monotone step for the audit to flag"
    );
    let v = &violations[0];
    assert!(
        class_rank(v.to) < class_rank(v.from),
        "flagged step must be a rank regression, got {} -> {}",
        v.from.short_name(),
        v.to.short_name()
    );
    assert_eq!(
        (v.from, v.to),
        (Class::QuasiRegular, Class::Asymmetric),
        "deterministic engine: the pinned seed's first regression is QR -> A"
    );
    assert!(
        v.prior_round < v.round,
        "context names the round whose moves caused the regression"
    );
    assert!(
        !v.activated.is_empty(),
        "the suspect activations are attached to the violation"
    );

    // The analytics report carries the same audit verbatim, and the
    // illegal edge shows up in the transition graph too.
    let report = analyze_corpus(&corpus);
    assert_eq!(report.executions[0].violations, violations);
    assert!(report.executions[0].illegal_transitions >= 1);
    assert!(report.executions[0]
        .transitions
        .iter()
        .any(|e| !e.legal && e.from == Class::QuasiRegular && e.to == Class::Asymmetric));
}
