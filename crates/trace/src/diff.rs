//! Corpus diffing for regression detection.
//!
//! Two corpora — typically a freshly captured one and a committed
//! baseline — are compared execution by execution, matched on the
//! corpus label. The regression predicate is directional: *slower*
//! gathering (more rounds), a *flatter* potential slope, *more*
//! monotonicity violations, or a lost terminal state count against the
//! candidate; improvements do not. Tolerances are relative, so a
//! zero-tolerance diff (the default, and what the `trace-smoke` gate
//! runs against itself) demands exact equality of the guarded columns.

use crate::analytics::CorpusReport;
use gather_config::Class;
use std::fmt::Write;

/// Relative tolerances for [`diff_reports`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DiffTolerance {
    /// Allowed relative round-count growth per execution (`0.1` = 10 %).
    pub rel_rounds: f64,
    /// Allowed relative potential-slope decrease per execution.
    pub rel_slope: f64,
}

/// One execution's baseline-vs-candidate comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionDelta {
    /// The matched corpus label.
    pub label: String,
    /// Baseline and candidate round counts.
    pub rounds: (u64, u64),
    /// Baseline and candidate potential slopes.
    pub slope: (f64, f64),
    /// Baseline and candidate violation counts.
    pub violations: (u64, u64),
    /// Per-class round-count deltas (candidate − baseline), rank order,
    /// zero deltas omitted.
    pub phase_deltas: Vec<(Class, i64)>,
    /// Why this execution counts as regressed (empty = clean).
    pub regressions: Vec<String>,
}

/// The full diff between a baseline and a candidate corpus report.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Per-execution comparisons, baseline order.
    pub deltas: Vec<ExecutionDelta>,
    /// Baseline labels the candidate lacks (each one a regression).
    pub missing: Vec<String>,
    /// Candidate labels the baseline lacks (informational).
    pub extra: Vec<String>,
}

impl DiffReport {
    /// Total regression count across executions and missing labels.
    pub fn regressions(&self) -> usize {
        self.missing.len()
            + self
                .deltas
                .iter()
                .map(|d| d.regressions.len())
                .sum::<usize>()
    }

    /// Deterministic NDJSON rendering: one line per execution delta,
    /// then a summary line.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for d in &self.deltas {
            let _ = write!(
                out,
                "{{\"label\":\"{}\",\"rounds\":[{},{}],\"slope\":[{:?},{:?}],\
                 \"violations\":[{},{}],\"phase_deltas\":[",
                d.label,
                d.rounds.0,
                d.rounds.1,
                d.slope.0,
                d.slope.1,
                d.violations.0,
                d.violations.1
            );
            for (i, (class, delta)) in d.phase_deltas.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[\"{}\",{delta}]", class.short_name());
            }
            out.push_str("],\"regressions\":[");
            for (i, r) in d.regressions.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\"", gather_serve::json::escape(r));
            }
            out.push_str("]}\n");
        }
        let _ = writeln!(
            out,
            "{{\"diff\":{{\"executions\":{},\"missing\":{:?},\"extra\":{:?},\
             \"regressions\":{}}}}}",
            self.deltas.len(),
            self.missing,
            self.extra,
            self.regressions()
        );
        out
    }
}

/// Compares `candidate` against `baseline` under `tol`.
pub fn diff_reports(
    baseline: &CorpusReport,
    candidate: &CorpusReport,
    tol: DiffTolerance,
) -> DiffReport {
    let mut deltas = Vec::new();
    let mut missing = Vec::new();
    for base in &baseline.executions {
        let Some(cand) = candidate.by_label(&base.label) else {
            missing.push(base.label.clone());
            continue;
        };
        let mut regressions = Vec::new();
        let allowed_rounds = base.rounds as f64 * (1.0 + tol.rel_rounds);
        if cand.rounds as f64 > allowed_rounds {
            regressions.push(format!(
                "rounds grew {} -> {} (> {:.1} allowed)",
                base.rounds, cand.rounds, allowed_rounds
            ));
        }
        // A flatter (smaller) slope converges slower. Guard only when the
        // baseline made progress at all.
        if base.potential_slope > 0.0 {
            let floor = base.potential_slope * (1.0 - tol.rel_slope);
            if cand.potential_slope < floor {
                regressions.push(format!(
                    "potential slope flattened {:?} -> {:?} (< {floor:?} allowed)",
                    base.potential_slope, cand.potential_slope
                ));
            }
        }
        if cand.violations.len() > base.violations.len() {
            regressions.push(format!(
                "monotonicity violations grew {} -> {}",
                base.violations.len(),
                cand.violations.len()
            ));
        }
        if cand.illegal_transitions > base.illegal_transitions {
            regressions.push(format!(
                "illegal transitions grew {} -> {}",
                base.illegal_transitions, cand.illegal_transitions
            ));
        }
        if base.gathered && !cand.gathered {
            regressions.push("execution no longer gathers".to_string());
        }
        if base.final_class != cand.final_class {
            regressions.push(format!(
                "final class changed {:?} -> {:?}",
                base.final_class.map(|c| c.short_name()),
                cand.final_class.map(|c| c.short_name())
            ));
        }

        let mut phase_deltas = Vec::new();
        let mut ranked = Class::all();
        ranked.sort_by_key(|&c| crate::analytics::class_rank(c));
        for class in ranked {
            let at = |r: &crate::analytics::ExecutionReport| {
                r.phase_rounds
                    .iter()
                    .find(|(c, _)| *c == class)
                    .map(|&(_, n)| n as i64)
                    .unwrap_or(0)
            };
            let delta = at(cand) - at(base);
            if delta != 0 {
                phase_deltas.push((class, delta));
            }
        }

        deltas.push(ExecutionDelta {
            label: base.label.clone(),
            rounds: (base.rounds, cand.rounds),
            slope: (base.potential_slope, cand.potential_slope),
            violations: (base.violations.len() as u64, cand.violations.len() as u64),
            phase_deltas,
            regressions,
        });
    }
    let extra = candidate
        .executions
        .iter()
        .filter(|c| baseline.by_label(&c.label).is_none())
        .map(|c| c.label.clone())
        .collect();
    DiffReport {
        deltas,
        missing,
        extra,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytics::{analyze_corpus, CorpusReport};
    use crate::corpus::Corpus;
    use gather_config::Class;
    use gather_sim::trace::RoundRecord;

    fn report(label_seed: u64, rounds: usize, final_mult: usize) -> CorpusReport {
        let spec =
            format!("{{\"workload\":\"class\",\"class\":\"A\",\"n\":8,\"seed\":{label_seed}}}");
        let mut text = format!(
            "{}\n",
            gather_sim::trace::v2_header(&spec, label_seed, "sync")
        );
        for i in 0..rounds {
            let r = RoundRecord {
                round: i as u64,
                class: if i + 1 == rounds {
                    Class::Multiple
                } else {
                    Class::Asymmetric
                },
                distinct: if i + 1 == rounds { 1 } else { 8 - i.min(4) },
                max_mult: if i + 1 == rounds { final_mult } else { 1 },
                activated: vec![0],
                crashed: vec![],
                travel: 1.0,
                classifications: 1,
                cache_hits: 0,
                weiszfeld_iters: 0,
            };
            text.push_str(&r.to_jsonl());
            text.push('\n');
        }
        analyze_corpus(&Corpus::parse(&text).expect("synthetic corpus"))
    }

    #[test]
    fn self_diff_is_clean() {
        let a = report(7, 6, 8);
        let diff = diff_reports(&a, &a, DiffTolerance::default());
        assert_eq!(diff.regressions(), 0);
        assert!(diff.missing.is_empty() && diff.extra.is_empty());
        assert!(diff.deltas[0].phase_deltas.is_empty());
        assert!(diff.to_ndjson().ends_with("\"regressions\":0}}\n"));
    }

    #[test]
    fn slower_gathering_is_a_regression_within_tolerance_is_not() {
        let base = report(7, 6, 8);
        let slow = report(7, 9, 8);
        let strict = diff_reports(&base, &slow, DiffTolerance::default());
        assert!(strict.regressions() >= 1);
        assert!(strict.deltas[0]
            .regressions
            .iter()
            .any(|r| r.contains("rounds grew 6 -> 9")));
        assert_eq!(
            strict.deltas[0].phase_deltas,
            vec![(Class::Asymmetric, 3)],
            "the extra rounds are attributed to the A phase"
        );
        let lax = diff_reports(
            &base,
            &slow,
            DiffTolerance {
                rel_rounds: 1.0,
                rel_slope: 1.0,
            },
        );
        assert_eq!(lax.regressions(), 0, "{:?}", lax.deltas[0].regressions);
        // Improvements never regress, even at zero tolerance.
        let fast = diff_reports(&base, &report(7, 5, 8), DiffTolerance::default());
        assert!(
            fast.deltas[0]
                .regressions
                .iter()
                .all(|r| !r.contains("rounds")),
            "{:?}",
            fast.deltas[0].regressions
        );
    }

    #[test]
    fn missing_and_extra_executions_are_reported() {
        let base = report(7, 6, 8);
        let other = report(8, 6, 8);
        let diff = diff_reports(&base, &other, DiffTolerance::default());
        assert_eq!(diff.missing, vec!["A/n8/seed7/sync"]);
        assert_eq!(diff.extra, vec!["A/n8/seed8/sync"]);
        assert_eq!(diff.regressions(), 1, "a missing execution regresses");
    }

    #[test]
    fn diff_lines_are_valid_json() {
        let diff = diff_reports(&report(7, 6, 8), &report(7, 9, 8), DiffTolerance::default());
        for line in diff.to_ndjson().lines() {
            gather_serve::json::Json::parse(line).expect(line);
        }
    }
}
