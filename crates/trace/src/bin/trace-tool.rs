//! `trace-tool` — the trace corpus CLI.
//!
//! ```text
//! trace-tool capture --out FILE [--seed N] [--max-rounds N] [--check-get-twin]
//! trace-tool analyze --corpus FILE [--out FILE]
//! trace-tool diff --baseline FILE --candidate FILE [--tol-rounds F] [--tol-slope F]
//! trace-tool replay --corpus FILE [--exec LABEL] [--every K] [--cols N] [--rows N] [--svg FILE]
//! trace-tool smoke --baseline FILE
//! ```
//!
//! `capture` streams the standard six-class corpus from an in-process
//! service; `analyze` prints the deterministic NDJSON report; `diff`
//! exits 1 on regressions; `replay` re-simulates and renders terminal
//! frames (and optionally the SVG trajectory export); `smoke` is the CI
//! gate: capture twice (byte-determinism), check the GET twin, compare
//! analyzer output against the committed baseline, and self-diff at zero
//! tolerance.

use gather_trace::{
    analyze_corpus, capture_corpus, diff_reports, replay_execution, replay_svg, six_class_specs,
    Corpus, DiffTolerance,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(command), rest) = (args.first(), &args[1.min(args.len())..]) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "capture" => capture(rest),
        "analyze" => analyze(rest),
        "diff" => diff(rest),
        "replay" => replay(rest),
        "smoke" => smoke(rest),
        _ => Err(format!("unknown subcommand {command:?}\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("trace-tool {command}: {e}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: trace-tool <capture|analyze|diff|replay|smoke> [options]\n\
  capture --out FILE [--seed N] [--max-rounds N] [--check-get-twin]\n\
  analyze --corpus FILE [--out FILE]\n\
  diff --baseline FILE --candidate FILE [--tol-rounds F] [--tol-slope F]\n\
  replay --corpus FILE [--exec LABEL] [--every K] [--cols N] [--rows N] [--svg FILE]\n\
  smoke --baseline FILE";

/// `--key value` lookup; flags repeat last-wins.
fn opt<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.windows(2)
        .rev()
        .find(|w| w[0] == key)
        .map(|w| w[1].as_str())
}

fn flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

fn required<'a>(args: &'a [String], key: &str) -> Result<&'a str, String> {
    opt(args, key).ok_or_else(|| format!("missing required option {key} <value>"))
}

fn parsed<T: std::str::FromStr>(text: &str, what: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{what} is not a valid value: {text:?}"))
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))
}

fn write(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("write {path}: {e}"))
}

fn capture(args: &[String]) -> Result<ExitCode, String> {
    let out = required(args, "--out")?;
    let seed = parsed(opt(args, "--seed").unwrap_or("7"), "--seed")?;
    let max_rounds = parsed(opt(args, "--max-rounds").unwrap_or("2000"), "--max-rounds")?;
    let specs = six_class_specs(seed, max_rounds);
    let corpus = capture_corpus(&specs, flag(args, "--check-get-twin"))?;
    write(out, &corpus)?;
    let parsed = Corpus::parse(&corpus)?;
    println!(
        "captured {} executions ({} rounds) to {out}",
        parsed.executions.len(),
        parsed.total_rounds()
    );
    Ok(ExitCode::SUCCESS)
}

fn analyze(args: &[String]) -> Result<ExitCode, String> {
    let corpus = Corpus::parse(&read(required(args, "--corpus")?)?)?;
    let ndjson = analyze_corpus(&corpus).to_ndjson();
    match opt(args, "--out") {
        Some(path) => write(path, &ndjson)?,
        None => print!("{ndjson}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn diff(args: &[String]) -> Result<ExitCode, String> {
    let baseline = analyze_corpus(&Corpus::parse(&read(required(args, "--baseline")?)?)?);
    let candidate = analyze_corpus(&Corpus::parse(&read(required(args, "--candidate")?)?)?);
    let tol = DiffTolerance {
        rel_rounds: parsed(opt(args, "--tol-rounds").unwrap_or("0"), "--tol-rounds")?,
        rel_slope: parsed(opt(args, "--tol-slope").unwrap_or("0"), "--tol-slope")?,
    };
    let report = diff_reports(&baseline, &candidate, tol);
    print!("{}", report.to_ndjson());
    Ok(if report.regressions() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn replay(args: &[String]) -> Result<ExitCode, String> {
    let corpus = Corpus::parse(&read(required(args, "--corpus")?)?)?;
    let exec = match opt(args, "--exec") {
        Some(label) => corpus.by_label(label).ok_or_else(|| {
            format!(
                "no execution labelled {label:?}; corpus has: {}",
                corpus
                    .executions
                    .iter()
                    .map(|e| e.label.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?,
        None => corpus
            .executions
            .first()
            .ok_or("corpus holds no executions")?,
    };
    let style = gather_viz::ReplayStyle {
        cols: parsed(opt(args, "--cols").unwrap_or("60"), "--cols")?,
        rows: parsed(opt(args, "--rows").unwrap_or("20"), "--rows")?,
    };
    let rendered = replay_execution(exec, style)?;
    // `--every 0` (the default) auto-strides to at most ~24 frames; the
    // final frame always prints.
    let every = match parsed::<usize>(opt(args, "--every").unwrap_or("0"), "--every")? {
        0 => rendered.frames.len().div_ceil(24).max(1),
        k => k,
    };
    let last = rendered.frames.len() - 1;
    for (i, frame) in rendered.frames.iter().enumerate() {
        if i % every == 0 || i == last {
            println!("{frame}");
        }
    }
    if let Some(path) = opt(args, "--svg") {
        write(path, &replay_svg(exec)?)?;
        println!("wrote trajectory SVG to {path}");
    }
    Ok(ExitCode::SUCCESS)
}

/// The CI gate: capture determinism, wire-form identity, baseline byte
/// identity, and a zero-tolerance self-diff.
fn smoke(args: &[String]) -> Result<ExitCode, String> {
    let baseline_path = required(args, "--baseline")?;
    let specs = six_class_specs(7, 2_000);

    let first = capture_corpus(&specs, true)?;
    let second = capture_corpus(&specs, false)?;
    if first != second {
        return Err("capture is not byte-deterministic across service instances".to_string());
    }
    println!(
        "trace-smoke: capture deterministic ({} bytes), GET twin identical",
        first.len()
    );

    let corpus = Corpus::parse(&first)?;
    if corpus.executions.len() != specs.len() {
        return Err(format!(
            "expected {} executions, parsed {}",
            specs.len(),
            corpus.executions.len()
        ));
    }
    let report = analyze_corpus(&corpus);
    for exec in &report.executions {
        if !exec.violations.is_empty() || exec.illegal_transitions != 0 {
            return Err(format!(
                "{}: {} monotonicity violations, {} illegal transitions (f=0 \
                 rigid executions must audit clean)",
                exec.label,
                exec.violations.len(),
                exec.illegal_transitions
            ));
        }
        if !exec.gathered {
            return Err(format!("{}: failed to gather", exec.label));
        }
    }
    println!(
        "trace-smoke: {} executions audit clean and gather",
        report.executions.len()
    );

    let ndjson = report.to_ndjson();
    let baseline = read(baseline_path)?;
    if ndjson != baseline {
        let divergent = ndjson
            .lines()
            .zip(baseline.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1)
            .unwrap_or_else(|| ndjson.lines().count().min(baseline.lines().count()) + 1);
        return Err(format!(
            "analyzer output diverges from {baseline_path} at line {divergent} \
             (regenerate with: trace-tool analyze --corpus <capture> --out {baseline_path})"
        ));
    }
    println!("trace-smoke: analytics match {baseline_path}");

    let self_diff = diff_reports(&report, &report, DiffTolerance::default());
    if self_diff.regressions() != 0 {
        return Err(format!(
            "self-diff reported {} regressions (must be 0)",
            self_diff.regressions()
        ));
    }
    println!("trace-smoke: self-diff clean — OK");
    Ok(ExitCode::SUCCESS)
}
