//! Service-backed corpus capture.
//!
//! Capture goes through the real HTTP service — `POST /v1/trace` against
//! an in-process [`Server`] — rather than calling `run_traced` directly,
//! so a captured corpus exercises (and is certified by) the same wire
//! path the deployed service serves: validation, the trace/v2 header,
//! chunked streaming and the result cache. The bit-identity contract
//! makes the two routes byte-equal anyway; capturing over the wire is
//! what *checks* that, and [`capture_corpus`] optionally replays every
//! spec through the deprecated `GET` form to assert the redesigned `POST`
//! endpoint kept its bytes.

use gather_config::Class;
use gather_serve::{Client, ScenarioSpec, ServeConfig, Server};

/// The standard six-class capture matrix: one execution per paper class
/// (`n` chosen to satisfy each class's parity constraint), mirroring the
/// service round-trip tests.
pub const SIX_CLASS_MATRIX: [(Class, usize); 6] = [
    (Class::Bivalent, 8),
    (Class::Multiple, 9),
    (Class::Collinear1W, 8),
    (Class::Collinear2W, 8),
    (Class::QuasiRegular, 9),
    (Class::Asymmetric, 8),
];

/// The six-class corpus specs for one `(seed, max_rounds)` choice.
///
/// The harness defaults (FSYNC, unrestricted motion) gather in a round
/// or two — traces with nothing to analyze. The standard corpus instead
/// runs SSYNC round-robin activation under the δ-bounded motion
/// adversary, so each execution actually walks the class DAG and the
/// transition-graph and phase-duration analytics have substance. Still
/// f = 0 and rigid: the corpus must audit clean.
pub fn six_class_specs(seed: u64, max_rounds: u64) -> Vec<ScenarioSpec> {
    SIX_CLASS_MATRIX
        .iter()
        .map(|&(class, n)| ScenarioSpec {
            class: Some(class),
            n,
            seed,
            max_rounds,
            scheduler: "round-robin",
            motion: "delta",
            ..ScenarioSpec::default()
        })
        .collect()
}

/// The deprecated query-string form of a spec (the `GET /v1/trace`
/// twin), used to cross-check the two wire forms during capture.
fn spec_query(spec: &ScenarioSpec) -> String {
    let mut q = format!("workload={}", spec.workload);
    if let Some(class) = spec.class {
        q.push_str(&format!("&class={}", class.short_name()));
    }
    q.push_str(&format!(
        "&n={}&seed={}&faults={}&algorithm={}&scheduler={}&motion={}&delta={:?}&max_rounds={}",
        spec.n,
        spec.seed,
        spec.faults,
        spec.algorithm,
        spec.scheduler,
        spec.motion,
        spec.delta,
        spec.max_rounds
    ));
    if spec.scheduler == "async" {
        q.push_str(&format!(
            "&rigidity={}&speed_skew={:?}",
            if spec.rigid { "rigid" } else { "non-rigid" },
            spec.speed_skew
        ));
    }
    q
}

/// Captures one corpus: starts an in-process service, streams every
/// spec's trace document over `POST /v1/trace`, and concatenates the
/// bodies in spec order. With `check_get_twin`, each document is also
/// fetched through the deprecated `GET` form and both the bytes and the
/// `Deprecation` header semantics are asserted.
///
/// # Errors
///
/// Any transport failure, non-200 response, or (under `check_get_twin`)
/// wire-form divergence.
pub fn capture_corpus(specs: &[ScenarioSpec], check_get_twin: bool) -> Result<String, String> {
    let server = Server::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .map_err(|e| format!("start capture service: {e}"))?;
    let result = capture_on(&server, specs, check_get_twin);
    server.shutdown();
    result
}

fn capture_on(
    server: &Server,
    specs: &[ScenarioSpec],
    check_get_twin: bool,
) -> Result<String, String> {
    let mut client =
        Client::connect(&server.addr()).map_err(|e| format!("connect capture client: {e}"))?;
    let mut corpus = String::new();
    for spec in specs {
        let posted = client
            .post_trace(&spec.to_json())
            .map_err(|e| format!("POST /v1/trace: {e}"))?;
        if posted.status != 200 {
            return Err(format!(
                "POST /v1/trace -> {}: {}",
                posted.status,
                posted.text()
            ));
        }
        if posted.header("deprecation").is_some() {
            return Err("POST /v1/trace must not be marked deprecated".to_string());
        }
        let document = posted.text();
        if !document.starts_with("{\"schema\":\"trace/v2\",") {
            return Err(format!(
                "trace document lacks the v2 header: {:?}...",
                &document[..document.len().min(40)]
            ));
        }
        if check_get_twin {
            let got = client
                .get_trace(&spec_query(spec))
                .map_err(|e| format!("GET /v1/trace: {e}"))?;
            if got.status != 200 {
                return Err(format!("GET /v1/trace -> {}: {}", got.status, got.text()));
            }
            if got.header("deprecation") != Some("true") {
                return Err("GET /v1/trace must carry the Deprecation header".to_string());
            }
            if got.body != posted.body {
                return Err(format!(
                    "wire forms diverge for seed {}: GET served {} bytes, POST {}",
                    spec.seed,
                    got.body.len(),
                    posted.body.len()
                ));
            }
        }
        corpus.push_str(&document);
    }
    Ok(corpus)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_class_specs_cover_every_class_once() {
        let specs = six_class_specs(7, 2_000);
        assert_eq!(specs.len(), 6);
        let classes: Vec<Class> = specs.iter().filter_map(|s| s.class).collect();
        assert_eq!(classes, Class::all().to_vec());
        assert!(specs.iter().all(|s| s.seed == 7 && s.max_rounds == 2_000));
    }

    #[test]
    fn query_twin_round_trips_through_the_shared_validator() {
        for spec in six_class_specs(3, 500) {
            let parsed = ScenarioSpec::from_query(&spec_query(&spec)).expect("query parses");
            assert_eq!(parsed, spec);
        }
        let async_spec = ScenarioSpec {
            scheduler: "async",
            rigid: false,
            speed_skew: 0.5,
            ..ScenarioSpec::default()
        };
        let parsed = ScenarioSpec::from_query(&spec_query(&async_spec)).expect("async query");
        assert_eq!(parsed, async_spec);
    }

    #[test]
    fn capture_streams_documents_in_spec_order_with_get_twin_checks() {
        let specs = vec![
            ScenarioSpec {
                seed: 11,
                max_rounds: 1_500,
                ..ScenarioSpec::default()
            },
            ScenarioSpec {
                seed: 12,
                max_rounds: 1_500,
                ..ScenarioSpec::default()
            },
        ];
        let corpus = capture_corpus(&specs, true).expect("capture");
        let expected: String = specs
            .iter()
            .map(|spec| {
                let (_, rounds) = spec.to_scenario().expect("valid").run_traced();
                format!("{}{rounds}", spec.trace_header())
            })
            .collect();
        assert_eq!(corpus, expected, "served capture == in-process documents");
    }
}
