//! Per-execution analytics: class-transition graphs, the
//! potential-function monotonicity audit, phase durations and
//! convergence-rate summaries.
//!
//! # The audited invariant
//!
//! The paper's progress argument (Lemmas 5.3–5.9) orders the six classes
//! by how far the algorithm has pushed the execution:
//!
//! | class | rank | leaves to |
//! |-------|------|-----------|
//! | `B`   | 0    | anything but `B` |
//! | `L2W` | 1    | anything but `B` |
//! | `A`   | 2    | `QR`, `L1W`, `M` |
//! | `QR`  | 3    | `L1W`, `M` |
//! | `L1W` | 4    | `M` |
//! | `M`   | 5    | nothing (`M` is absorbing, Lemma 5.3) |
//!
//! Every legal edge strictly increases the rank, so under the ATOM model
//! with the paper's algorithm the rank is a monotone potential — and
//! within `M` the maximum multiplicity never decreases (crashed robots
//! stay put; live ones only join the tower). The audit flags every round
//! whose start configuration breaks either clause, with the activations
//! and crashes of the *previous* round attached: those are the moves
//! that produced the regression. ASYNC executions legitimately violate
//! the invariant (a robot moving on a stale snapshot can split a
//! multiplicity), which is exactly what makes the audit useful as a
//! staleness detector there.
//!
//! `distinct` is *not* monotone (a Weber-bound sweep can merge and
//! re-split waypoints), so it contributes only to the descriptive scalar
//! potential `φ = (5 − rank)·10⁶ + (distinct − 1)` used for the
//! convergence-slope summary, never to the audit.

use crate::corpus::{Corpus, Execution};
use gather_config::Class;
use std::fmt::Write;

/// The monotone rank of a class in the paper's progress order.
pub const fn class_rank(class: Class) -> u8 {
    match class {
        Class::Bivalent => 0,
        Class::Collinear2W => 1,
        Class::Asymmetric => 2,
        Class::QuasiRegular => 3,
        Class::Collinear1W => 4,
        Class::Multiple => 5,
    }
}

/// Is `from → to` an edge Lemmas 5.3–5.9 allow? Equivalent to a strict
/// rank increase (every lemma edge raises the rank; every rank-raising
/// edge appears in some lemma).
pub fn legal_transition(from: Class, to: Class) -> bool {
    class_rank(from) < class_rank(to)
}

/// The descriptive scalar potential of a `(class, distinct)` state.
pub fn potential(class: Class, distinct: u32) -> u64 {
    (5 - class_rank(class)) as u64 * 1_000_000 + distinct.saturating_sub(1) as u64
}

/// One audited monotonicity failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The round whose start configuration regressed.
    pub round: u64,
    /// The preceding recorded round (whose moves caused the regression).
    pub prior_round: u64,
    /// Class before the regression.
    pub from: Class,
    /// Class after the regression (equal to `from` for a multiplicity
    /// drop inside `M`).
    pub to: Class,
    /// Maximum multiplicity before.
    pub from_max_mult: u32,
    /// Maximum multiplicity after.
    pub to_max_mult: u32,
    /// Robots activated in the prior round — the suspects.
    pub activated: Vec<u32>,
    /// Robots that crashed in the prior round.
    pub crashed: Vec<u32>,
}

impl Violation {
    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"round\":{},\"prior_round\":{},\"from\":\"{}\",\"to\":\"{}\",\
             \"from_max_mult\":{},\"to_max_mult\":{},\"activated\":{:?},\"crashed\":{:?}}}",
            self.round,
            self.prior_round,
            self.from.short_name(),
            self.to.short_name(),
            self.from_max_mult,
            self.to_max_mult,
            self.activated,
            self.crashed
        );
    }
}

/// Audits an execution against the monotone potential: flags every round
/// whose class rank decreased, and every `M → M` step whose maximum
/// multiplicity decreased.
pub fn audit_monotonicity(exec: &Execution) -> Vec<Violation> {
    let mut violations = Vec::new();
    for i in 1..exec.rounds() {
        let (from, to) = (exec.class[i - 1], exec.class[i]);
        let class_regressed = class_rank(to) < class_rank(from);
        let tower_shrank = from == Class::Multiple
            && to == Class::Multiple
            && exec.max_mult[i] < exec.max_mult[i - 1];
        if class_regressed || tower_shrank {
            violations.push(Violation {
                round: exec.round[i],
                prior_round: exec.round[i - 1],
                from,
                to,
                from_max_mult: exec.max_mult[i - 1],
                to_max_mult: exec.max_mult[i],
                activated: exec.activated(i - 1).to_vec(),
                crashed: exec.crashed(i - 1).to_vec(),
            });
        }
    }
    violations
}

/// One edge of an execution's class-transition graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionEdge {
    /// Source class.
    pub from: Class,
    /// Destination class.
    pub to: Class,
    /// How many times the execution took this edge.
    pub count: u64,
    /// Whether Lemmas 5.3–5.9 allow the edge.
    pub legal: bool,
}

/// The full analytics summary of one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// The execution's corpus label.
    pub label: String,
    /// Producing engine (`"sync"`, `"async"`, or `"unknown"` for
    /// headerless v1 streams).
    pub engine: String,
    /// Recorded rounds.
    pub rounds: u64,
    /// Class at the first recorded round.
    pub initial_class: Option<Class>,
    /// Class at the last recorded round.
    pub final_class: Option<Class>,
    /// Did the execution gather? Records carry *start-of-round* state, so
    /// a run that gathers during its last round never shows the gathered
    /// configuration in a record; for sync executions with a known
    /// `max_rounds` budget this is inferred from early termination
    /// (fewer recorded rounds than the budget), otherwise from the last
    /// record's `distinct == 1`.
    pub gathered: bool,
    /// Rounds spent per class, ordered by rank (absent classes omitted).
    pub phase_rounds: Vec<(Class, u64)>,
    /// The transition graph's edges, ordered by (source rank, dest rank).
    pub transitions: Vec<TransitionEdge>,
    /// Count of edges the lemmas forbid.
    pub illegal_transitions: u64,
    /// Every monotonicity failure, in round order.
    pub violations: Vec<Violation>,
    /// `φ` at the first recorded round.
    pub potential_start: u64,
    /// `φ` at the last recorded round.
    pub potential_end: u64,
    /// Mean `φ` decrease per round — the convergence rate.
    pub potential_slope: f64,
    /// Total distance travelled.
    pub travel: f64,
    /// Total `classify()` invocations.
    pub classifications: u64,
    /// Total analysis-cache hits.
    pub cache_hits: u64,
    /// Total Weiszfeld iterations.
    pub weiszfeld_iters: u64,
}

/// Analyzes one execution.
pub fn analyze_execution(exec: &Execution) -> ExecutionReport {
    let rounds = exec.rounds();
    let mut histogram = [0u64; 6];
    for &class in &exec.class {
        histogram[class_rank(class) as usize] += 1;
    }
    let by_rank = {
        let mut all = Class::all();
        all.sort_by_key(|&c| class_rank(c));
        all
    };
    let phase_rounds: Vec<(Class, u64)> = by_rank
        .iter()
        .filter_map(|&c| {
            let n = histogram[class_rank(c) as usize];
            (n > 0).then_some((c, n))
        })
        .collect();

    let mut edge_counts = [[0u64; 6]; 6];
    for pair in exec.class.windows(2) {
        if pair[0] != pair[1] {
            edge_counts[class_rank(pair[0]) as usize][class_rank(pair[1]) as usize] += 1;
        }
    }
    let mut transitions = Vec::new();
    let mut illegal_transitions = 0;
    for &from in &by_rank {
        for &to in &by_rank {
            let count = edge_counts[class_rank(from) as usize][class_rank(to) as usize];
            if count > 0 {
                let legal = legal_transition(from, to);
                if !legal {
                    illegal_transitions += count;
                }
                transitions.push(TransitionEdge {
                    from,
                    to,
                    count,
                    legal,
                });
            }
        }
    }

    let potential_start = exec
        .class
        .first()
        .map(|&c| potential(c, exec.distinct[0]))
        .unwrap_or(0);
    let potential_end = exec
        .class
        .last()
        .map(|&c| potential(c, exec.distinct[rounds - 1]))
        .unwrap_or(0);
    let elapsed = rounds.saturating_sub(1).max(1) as f64;
    let potential_slope = (potential_start as f64 - potential_end as f64) / elapsed;

    let sync_budget = exec
        .header
        .as_ref()
        .filter(|h| h.engine == "sync")
        .and_then(|h| gather_serve::json::Json::parse(&h.spec_json).ok())
        .and_then(|s| {
            s.get("max_rounds")
                .and_then(gather_serve::json::Json::as_u64)
        });
    let gathered = match sync_budget {
        Some(budget) => (rounds as u64) < budget,
        None => exec.distinct.last().is_some_and(|&d| d == 1),
    };

    ExecutionReport {
        label: exec.label.clone(),
        engine: exec
            .header
            .as_ref()
            .map(|h| h.engine.clone())
            .unwrap_or_else(|| "unknown".to_string()),
        rounds: rounds as u64,
        initial_class: exec.class.first().copied(),
        final_class: exec.class.last().copied(),
        gathered,
        phase_rounds,
        transitions,
        illegal_transitions,
        violations: audit_monotonicity(exec),
        potential_start,
        potential_end,
        potential_slope,
        travel: exec.travel.iter().sum(),
        classifications: exec.classifications.iter().sum(),
        cache_hits: exec.cache_hits.iter().sum(),
        weiszfeld_iters: exec.weiszfeld_iters.iter().sum(),
    }
}

impl ExecutionReport {
    /// Serialises the report as one deterministic NDJSON line (newline
    /// excluded) — fixed field order, `{:?}` floats, so `analyze` output
    /// is byte-comparable across runs and against committed baselines.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"label\":\"{}\",\"engine\":\"{}\",\"rounds\":{}",
            self.label, self.engine, self.rounds
        );
        for (key, class) in [
            ("initial_class", self.initial_class),
            ("final_class", self.final_class),
        ] {
            match class {
                Some(c) => {
                    let _ = write!(out, ",\"{key}\":\"{}\"", c.short_name());
                }
                None => {
                    let _ = write!(out, ",\"{key}\":null");
                }
            }
        }
        let _ = write!(out, ",\"gathered\":{}", self.gathered);
        out.push_str(",\"phase_rounds\":[");
        for (i, (class, n)) in self.phase_rounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[\"{}\",{n}]", class.short_name());
        }
        out.push_str("],\"transitions\":[");
        for (i, e) in self.transitions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"from\":\"{}\",\"to\":\"{}\",\"count\":{},\"legal\":{}}}",
                e.from.short_name(),
                e.to.short_name(),
                e.count,
                e.legal
            );
        }
        let _ = write!(
            out,
            "],\"illegal_transitions\":{},\"violations\":[",
            self.illegal_transitions
        );
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(&mut out);
        }
        let _ = write!(
            out,
            "],\"potential_start\":{},\"potential_end\":{},\"potential_slope\":{:?},\
             \"travel\":{:?},\"classifications\":{},\"cache_hits\":{},\"weiszfeld_iters\":{}}}",
            self.potential_start,
            self.potential_end,
            self.potential_slope,
            self.travel,
            self.classifications,
            self.cache_hits,
            self.weiszfeld_iters
        );
        out
    }
}

/// Analytics over a whole corpus: per-execution reports plus totals.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusReport {
    /// One report per execution, in corpus order.
    pub executions: Vec<ExecutionReport>,
}

/// Analyzes every execution of a corpus.
pub fn analyze_corpus(corpus: &Corpus) -> CorpusReport {
    CorpusReport {
        executions: corpus.executions.iter().map(analyze_execution).collect(),
    }
}

impl CorpusReport {
    /// Total monotonicity violations across the corpus.
    pub fn total_violations(&self) -> u64 {
        self.executions
            .iter()
            .map(|e| e.violations.len() as u64)
            .sum()
    }

    /// Total illegal transition-graph edges across the corpus.
    pub fn total_illegal_transitions(&self) -> u64 {
        self.executions.iter().map(|e| e.illegal_transitions).sum()
    }

    /// The full deterministic NDJSON report: one line per execution and
    /// a final totals line. This is `trace-tool analyze`'s output and
    /// the byte format of the committed `results/trace_analytics.json`
    /// baseline.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for report in &self.executions {
            out.push_str(&report.to_jsonl());
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "{{\"corpus\":{{\"executions\":{},\"rounds\":{},\"violations\":{},\
             \"illegal_transitions\":{},\"gathered\":{}}}}}",
            self.executions.len(),
            self.executions.iter().map(|e| e.rounds).sum::<u64>(),
            self.total_violations(),
            self.total_illegal_transitions(),
            self.executions.iter().filter(|e| e.gathered).count(),
        );
        out
    }

    /// Finds an execution report by label.
    pub fn by_label(&self, label: &str) -> Option<&ExecutionReport> {
        self.executions.iter().find(|e| e.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gather_sim::trace::RoundRecord;

    fn corpus_of(classes: &[(Class, u32, u32)]) -> Corpus {
        // (class, distinct, max_mult) per round, activated = [round],
        // crashed = [] except round 1 crashes robot 9.
        let text: String = classes
            .iter()
            .enumerate()
            .map(|(i, &(class, distinct, max_mult))| {
                let r = RoundRecord {
                    round: i as u64,
                    class,
                    distinct: distinct as usize,
                    max_mult: max_mult as usize,
                    activated: vec![i],
                    crashed: if i == 1 { vec![9] } else { vec![] },
                    travel: 0.5,
                    classifications: 2,
                    cache_hits: 1,
                    weiszfeld_iters: 4,
                };
                format!("{}\n", r.to_jsonl())
            })
            .collect();
        Corpus::parse(&text).expect("synthetic corpus")
    }

    #[test]
    fn ranks_order_the_paper_dag_and_legality_matches_the_lemmas() {
        use Class::*;
        let lemma_edges = [
            (Collinear1W, vec![Multiple]),
            (QuasiRegular, vec![Collinear1W, Multiple]),
            (Asymmetric, vec![QuasiRegular, Collinear1W, Multiple]),
            (
                Collinear2W,
                vec![Asymmetric, QuasiRegular, Collinear1W, Multiple],
            ),
            (
                Bivalent,
                vec![Collinear2W, Asymmetric, QuasiRegular, Collinear1W, Multiple],
            ),
            (Multiple, vec![]),
        ];
        for (from, allowed) in lemma_edges {
            for to in Class::all() {
                if to == from {
                    continue;
                }
                assert_eq!(
                    legal_transition(from, to),
                    allowed.contains(&to),
                    "{} -> {}",
                    from.short_name(),
                    to.short_name()
                );
            }
        }
        // Rank is a strict monotone witness for the DAG.
        let mut ranks: Vec<u8> = Class::all().map(class_rank).to_vec();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn clean_executions_audit_clean() {
        use Class::*;
        let corpus = corpus_of(&[
            (Asymmetric, 8, 1),
            (Asymmetric, 6, 1),
            (QuasiRegular, 6, 1),
            (Multiple, 4, 3),
            (Multiple, 2, 5),
            (Multiple, 1, 8),
        ]);
        let report = analyze_execution(&corpus.executions[0]);
        assert!(report.violations.is_empty());
        assert_eq!(report.illegal_transitions, 0);
        assert!(report.gathered);
        assert_eq!(report.initial_class, Some(Asymmetric));
        assert_eq!(report.final_class, Some(Multiple));
        assert_eq!(
            report.phase_rounds,
            vec![(Asymmetric, 2), (QuasiRegular, 1), (Multiple, 3)]
        );
        assert_eq!(report.transitions.len(), 2);
        assert!(report.transitions.iter().all(|e| e.legal && e.count == 1));
        // φ: A distinct 8 → M distinct 1, over 5 elapsed rounds.
        assert_eq!(report.potential_start, 3_000_007);
        assert_eq!(report.potential_end, 0);
        assert!((report.potential_slope - 3_000_007.0 / 5.0).abs() < 1e-9);
        assert_eq!(report.travel, 3.0);
    }

    #[test]
    fn class_regressions_are_flagged_with_prior_round_context() {
        use Class::*;
        let corpus = corpus_of(&[
            (Multiple, 4, 3),
            (Asymmetric, 5, 1), // regression: M -> A, caused by round 0's moves
            (Multiple, 3, 3),
        ]);
        let report = analyze_execution(&corpus.executions[0]);
        assert_eq!(report.violations.len(), 1);
        let v = &report.violations[0];
        assert_eq!(v.round, 1);
        assert_eq!(v.prior_round, 0);
        assert_eq!((v.from, v.to), (Multiple, Asymmetric));
        assert_eq!(v.activated, vec![0], "round 0's activations are attached");
        assert_eq!(report.illegal_transitions, 1, "M -> A is not a lemma edge");
    }

    #[test]
    fn multiplicity_drops_inside_m_are_flagged() {
        use Class::*;
        let corpus = corpus_of(&[(Multiple, 3, 4), (Multiple, 4, 6), (Multiple, 1, 2)]);
        let report = analyze_execution(&corpus.executions[0]);
        assert_eq!(report.violations.len(), 1);
        let v = &report.violations[0];
        assert_eq!((v.from, v.to), (Multiple, Multiple));
        assert_eq!((v.from_max_mult, v.to_max_mult), (6, 2));
        assert_eq!((v.round, v.prior_round), (2, 1));
        assert_eq!(v.crashed, vec![9], "round 1's crash context is attached");
        assert_eq!(
            report.illegal_transitions, 0,
            "self-loops are not transition edges"
        );
    }

    #[test]
    fn report_jsonl_is_deterministic_and_complete() {
        use Class::*;
        let corpus = corpus_of(&[(QuasiRegular, 5, 1), (Multiple, 1, 5)]);
        let report = analyze_corpus(&corpus);
        let ndjson = report.to_ndjson();
        assert_eq!(ndjson, analyze_corpus(&corpus).to_ndjson());
        let exec_line = ndjson.lines().next().expect("one execution line");
        assert!(exec_line.starts_with("{\"label\":\"exec0\",\"engine\":\"unknown\",\"rounds\":2"));
        assert!(exec_line.contains("\"phase_rounds\":[[\"QR\",1],[\"M\",1]]"));
        assert!(exec_line.contains("{\"from\":\"QR\",\"to\":\"M\",\"count\":1,\"legal\":true}"));
        assert!(exec_line.contains("\"violations\":[]"));
        let totals = ndjson.lines().last().expect("totals line");
        assert_eq!(
            totals,
            "{\"corpus\":{\"executions\":1,\"rounds\":2,\"violations\":0,\
             \"illegal_transitions\":0,\"gathered\":1}}"
        );
        // The report lines are themselves valid JSON.
        for line in ndjson.lines() {
            gather_serve::json::Json::parse(line).expect(line);
        }
    }

    #[test]
    fn empty_execution_reports_do_not_panic() {
        let corpus = Corpus::parse(
            "{\"schema\":\"trace/v2\",\"spec\":{\"n\":8},\"seed\":1,\"engine\":\"sync\"}\n",
        )
        .expect("header-only document");
        let report = analyze_execution(&corpus.executions[0]);
        assert_eq!(report.rounds, 0);
        assert_eq!(report.initial_class, None);
        assert!(!report.gathered);
        assert!(report.to_jsonl().contains("\"initial_class\":null"));
    }
}
