//! Trace corpus subsystem: parsing, analytics, diffing and replay of
//! the engine's NDJSON round traces.
//!
//! The pipeline (each stage is one module, the `trace-tool` binary
//! drives them):
//!
//! * [`capture`] — stream trace/v2 documents from the real service
//!   (`POST /v1/trace` against an in-process server) into a corpus file;
//! * [`corpus`] — parse v1/v2 NDJSON into a columnar in-memory
//!   [`Corpus`](corpus::Corpus) via a pinned-schema fast scanner;
//! * [`analytics`] — per-execution class-transition graphs, the
//!   potential-monotonicity audit (Lemmas 5.3–5.9), phase durations and
//!   convergence slopes;
//! * [`diff`] — baseline-vs-candidate regression detection with
//!   configurable tolerances;
//! * [`replay`] — re-simulate a captured spec + seed, cross-check the
//!   regenerated trace byte-for-byte, and render terminal frames
//!   (`gather_viz::render_replay`) or SVG trajectories.
//!
//! Everything is deterministic end to end: same corpus in, same report
//! bytes out — which is what lets `scripts/check.sh` gate analyzer
//! output against the committed `results/trace_analytics.json` baseline.

pub mod analytics;
pub mod capture;
pub mod corpus;
pub mod diff;
pub mod replay;

pub use analytics::{
    analyze_corpus, analyze_execution, audit_monotonicity, class_rank, legal_transition, potential,
    CorpusReport, ExecutionReport, TransitionEdge, Violation,
};
pub use capture::{capture_corpus, six_class_specs, SIX_CLASS_MATRIX};
pub use corpus::{Corpus, Execution, TraceHeader};
pub use diff::{diff_reports, DiffReport, DiffTolerance, ExecutionDelta};
pub use replay::{replay_execution, replay_svg, Replay};
