//! Columnar in-memory trace corpora.
//!
//! A *corpus file* is a concatenation of trace documents: each trace/v2
//! header line (`{"schema":"trace/v2",...}`) starts a new execution and
//! the v1 round lines that follow belong to it. A headerless (pure v1)
//! stream parses as one anonymous execution, so both schema generations
//! load through the same entry point, [`Corpus::parse`].
//!
//! Round lines are decoded by a hand-rolled scanner that walks the pinned
//! field order (`round, class, distinct, max_mult, activated, crashed,
//! travel, classifications, cache_hits, weiszfeld_iters` — see
//! `crates/sim/tests/trace_schema.rs`) directly into column vectors: no
//! per-line JSON tree, no per-round allocation beyond the growing
//! columns. The ragged robot-id lists land in flat vectors with offsets.
//! Any deviation from the pinned schema is a hard parse error with the
//! offending line number — a corpus that does not match the schema the
//! engine promises is corrupt, not "lenient input".

use gather_config::Class;
use gather_serve::json::Json;

/// Provenance carried by a trace/v2 document header.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHeader {
    /// The `spec` member, verbatim (canonical `ScenarioSpec::to_json`
    /// bytes) — kept as written so replay can re-validate through the
    /// service's own `ScenarioSpec::from_json` and re-emit the identical
    /// header.
    pub spec_json: String,
    /// The seed the execution ran with.
    pub seed: u64,
    /// The producing engine: `"sync"` (round-based) or `"async"`.
    pub engine: String,
}

impl TraceHeader {
    /// Parses one header line, validating the pinned `trace/v2` schema
    /// tag and extracting the `spec` object verbatim.
    pub fn parse(line: &str) -> Result<TraceHeader, String> {
        let v = Json::parse(line).map_err(|e| format!("malformed header: {e}"))?;
        match v.get("schema").and_then(Json::as_str) {
            Some(gather_sim::trace::TRACE_SCHEMA_V2) => {}
            Some(other) => return Err(format!("unsupported trace schema {other:?}")),
            None => return Err("header lacks a \"schema\" member".to_string()),
        }
        let seed = v
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or("header lacks an integer \"seed\"")?;
        let engine = v
            .get("engine")
            .and_then(Json::as_str)
            .ok_or("header lacks a string \"engine\"")?
            .to_string();
        if engine != "sync" && engine != "async" {
            return Err(format!("unknown engine {engine:?}"));
        }
        let spec_json = extract_verbatim_object(line, "\"spec\":")
            .ok_or("header lacks a \"spec\" object")?
            .to_string();
        Ok(TraceHeader {
            spec_json,
            seed,
            engine,
        })
    }
}

/// Finds `key` in `line` and returns the balanced JSON object following
/// it, verbatim. String-aware (braces inside quoted values don't count),
/// which is all the generality a canonical spec needs.
fn extract_verbatim_object<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let start = line.find(key)? + key.len();
    let bytes = line.as_bytes();
    if bytes.get(start) != Some(&b'{') {
        return None;
    }
    let (mut depth, mut in_string, mut escaped) = (0usize, false, false);
    for (i, &b) in bytes.iter().enumerate().skip(start) {
        match (in_string, escaped, b) {
            (true, true, _) => escaped = false,
            (true, false, b'\\') => escaped = true,
            (true, false, b'"') => in_string = false,
            (true, ..) => {}
            (false, _, b'"') => in_string = true,
            (false, _, b'{') => depth += 1,
            (false, _, b'}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(&line[start..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// One execution's rounds, stored column-wise.
///
/// Scalar fields are one vector per column; the per-round robot-id lists
/// (`activated`, `crashed`) are flattened with an offsets vector each
/// (`offsets.len() == rounds + 1`), read back through
/// [`Execution::activated`] / [`Execution::crashed`].
#[derive(Debug, Clone, Default)]
pub struct Execution {
    /// Document provenance; `None` for a headerless v1 stream.
    pub header: Option<TraceHeader>,
    /// Stable human-readable identity (diffing keys executions by it):
    /// `class-or-workload/nN/seedS/engine` from the header, or `execI`
    /// for anonymous executions.
    pub label: String,
    /// Round index column.
    pub round: Vec<u64>,
    /// Start-of-round configuration class column.
    pub class: Vec<Class>,
    /// Distinct occupied locations column.
    pub distinct: Vec<u32>,
    /// Maximum multiplicity column.
    pub max_mult: Vec<u32>,
    /// Per-round travel column.
    pub travel: Vec<f64>,
    /// Per-round `classify()` invocation column.
    pub classifications: Vec<u64>,
    /// Per-round analysis-cache hit column.
    pub cache_hits: Vec<u64>,
    /// Per-round Weiszfeld iteration column.
    pub weiszfeld_iters: Vec<u64>,
    activated_flat: Vec<u32>,
    activated_offsets: Vec<u32>,
    crashed_flat: Vec<u32>,
    crashed_offsets: Vec<u32>,
}

impl Execution {
    fn new(header: Option<TraceHeader>, index: usize) -> Execution {
        let label = match &header {
            Some(h) => {
                let spec = Json::parse(&h.spec_json).unwrap_or(Json::Null);
                let family = spec
                    .get("class")
                    .and_then(Json::as_str)
                    .or_else(|| spec.get("workload").and_then(Json::as_str))
                    .unwrap_or("?")
                    .to_string();
                let n = spec.get("n").and_then(Json::as_u64).unwrap_or(0);
                format!("{family}/n{n}/seed{}/{}", h.seed, h.engine)
            }
            None => format!("exec{index}"),
        };
        Execution {
            header,
            label,
            activated_offsets: vec![0],
            crashed_offsets: vec![0],
            ..Execution::default()
        }
    }

    /// Number of recorded rounds.
    pub fn rounds(&self) -> usize {
        self.round.len()
    }

    /// Robots activated in the `r`-th recorded round.
    pub fn activated(&self, r: usize) -> &[u32] {
        &self.activated_flat
            [self.activated_offsets[r] as usize..self.activated_offsets[r + 1] as usize]
    }

    /// Robots newly crashed in the `r`-th recorded round.
    pub fn crashed(&self, r: usize) -> &[u32] {
        &self.crashed_flat[self.crashed_offsets[r] as usize..self.crashed_offsets[r + 1] as usize]
    }

    /// Every `(robot, round)` crash event, in round order — the form the
    /// replay and trajectory renderers take.
    pub fn crash_events(&self) -> Vec<(usize, u64)> {
        (0..self.rounds())
            .flat_map(|r| {
                self.crashed(r)
                    .iter()
                    .map(move |&robot| (robot as usize, self.round[r]))
            })
            .collect()
    }

    /// Re-encodes the columns as the original v1 round lines (each
    /// `\n`-terminated). Because both the column decode and the `{:?}`
    /// float encoding round-trip exactly, this equals the parsed input
    /// bytes — replay uses that to cross-check a re-simulated trace
    /// against the corpus without keeping the raw text around.
    pub fn to_round_jsonl(&self) -> String {
        let mut record = gather_sim::trace::RoundRecord::default();
        let mut out = String::with_capacity(self.rounds() * 128);
        for r in 0..self.rounds() {
            record.round = self.round[r];
            record.class = self.class[r];
            record.distinct = self.distinct[r] as usize;
            record.max_mult = self.max_mult[r] as usize;
            record.activated.clear();
            record
                .activated
                .extend(self.activated(r).iter().map(|&id| id as usize));
            record.crashed.clear();
            record
                .crashed
                .extend(self.crashed(r).iter().map(|&id| id as usize));
            record.travel = self.travel[r];
            record.classifications = self.classifications[r];
            record.cache_hits = self.cache_hits[r];
            record.weiszfeld_iters = self.weiszfeld_iters[r];
            record.write_jsonl(&mut out);
            out.push('\n');
        }
        out
    }

    /// Decodes one pinned-schema round line into the columns.
    fn push_line(&mut self, line: &str) -> Result<(), String> {
        let mut c = Scanner::new(line);
        c.lit("{\"round\":")?;
        let round = c.uint()?;
        if let Some(&last) = self.round.last() {
            if round <= last {
                return Err(format!(
                    "round {round} does not advance past {last} — truncated or \
                     interleaved document?"
                ));
            }
        }
        c.lit(",\"class\":\"")?;
        let name = c.until(b'"')?;
        let class =
            Class::from_short_name(name).ok_or_else(|| format!("unknown class {name:?}"))?;
        c.lit("\",\"distinct\":")?;
        let distinct = c.uint()?;
        c.lit(",\"max_mult\":")?;
        let max_mult = c.uint()?;
        c.lit(",\"activated\":[")?;
        c.id_list(&mut self.activated_flat)?;
        c.lit(",\"crashed\":[")?;
        c.id_list(&mut self.crashed_flat)?;
        c.lit(",\"travel\":")?;
        let travel = c.float()?;
        c.lit(",\"classifications\":")?;
        let classifications = c.uint()?;
        c.lit(",\"cache_hits\":")?;
        let cache_hits = c.uint()?;
        c.lit(",\"weiszfeld_iters\":")?;
        let weiszfeld_iters = c.uint()?;
        c.lit("}")?;
        c.end()?;

        self.round.push(round);
        self.class.push(class);
        self.distinct
            .push(u32::try_from(distinct).map_err(|_| "distinct overflow")?);
        self.max_mult
            .push(u32::try_from(max_mult).map_err(|_| "max_mult overflow")?);
        self.travel.push(travel);
        self.classifications.push(classifications);
        self.cache_hits.push(cache_hits);
        self.weiszfeld_iters.push(weiszfeld_iters);
        self.activated_offsets
            .push(self.activated_flat.len() as u32);
        self.crashed_offsets.push(self.crashed_flat.len() as u32);
        Ok(())
    }
}

/// A parsed corpus: executions in document order.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    /// The executions, in the order their documents appeared.
    pub executions: Vec<Execution>,
}

impl Corpus {
    /// Parses a corpus file: concatenated trace/v2 documents, or a bare
    /// v1 round-line stream (one anonymous execution).
    ///
    /// # Errors
    ///
    /// Reports the first malformed line with its 1-based line number.
    pub fn parse(text: &str) -> Result<Corpus, String> {
        let mut executions: Vec<Execution> = Vec::new();
        let mut current: Option<Execution> = None;
        for (i, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            if line.starts_with("{\"schema\":") {
                let header =
                    TraceHeader::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
                if let Some(done) = current.take() {
                    executions.push(done);
                }
                current = Some(Execution::new(Some(header), executions.len()));
            } else {
                let exec = {
                    let next_index = executions.len();
                    current.get_or_insert_with(|| Execution::new(None, next_index))
                };
                exec.push_line(line)
                    .map_err(|e| format!("line {}: {e}", i + 1))?;
            }
        }
        if let Some(done) = current.take() {
            executions.push(done);
        }
        Ok(Corpus { executions })
    }

    /// Total recorded rounds across all executions.
    pub fn total_rounds(&self) -> usize {
        self.executions.iter().map(Execution::rounds).sum()
    }

    /// Finds an execution by its label.
    pub fn by_label(&self, label: &str) -> Option<&Execution> {
        self.executions.iter().find(|e| e.label == label)
    }
}

/// Byte cursor over one NDJSON line.
struct Scanner<'a> {
    line: &'a str,
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(line: &'a str) -> Scanner<'a> {
        Scanner { line, pos: 0 }
    }

    /// Consumes the exact literal `lit` or fails — this is where the
    /// pinned field order is enforced.
    fn lit(&mut self, lit: &str) -> Result<(), String> {
        if self.line[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!(
                "expected {lit:?} at byte {} of round line (pinned trace schema; \
                 got {:?}...)",
                self.pos,
                &self.line[self.pos..self.line.len().min(self.pos + 24)]
            ))
        }
    }

    /// Consumes a decimal unsigned integer.
    fn uint(&mut self) -> Result<u64, String> {
        let bytes = self.line.as_bytes();
        let start = self.pos;
        let mut value: u64 = 0;
        while let Some(d) = bytes.get(self.pos).and_then(|b| (*b as char).to_digit(10)) {
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add(d as u64))
                .ok_or("integer overflow in round line")?;
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected an integer at byte {start}"));
        }
        Ok(value)
    }

    /// Consumes a JSON number (the `{:?}` float encoding: digits, sign,
    /// dot, exponent) up to the next structural character.
    fn float(&mut self) -> Result<f64, String> {
        let start = self.pos;
        let bytes = self.line.as_bytes();
        while let Some(&b) = bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.line[start..self.pos]
            .parse::<f64>()
            .map_err(|e| format!("bad float at byte {start}: {e}"))
    }

    /// Returns the slice up to (excluding) the next `stop` byte without
    /// consuming the stop itself.
    fn until(&mut self, stop: u8) -> Result<&'a str, String> {
        let start = self.pos;
        let rest = &self.line.as_bytes()[self.pos..];
        let len = rest
            .iter()
            .position(|&b| b == stop)
            .ok_or_else(|| format!("unterminated token at byte {start}"))?;
        self.pos += len;
        Ok(&self.line[start..start + len])
    }

    /// Consumes a `1,2,3]` tail of an id array (the opening `[` is part
    /// of the preceding literal), appending the ids to `out`.
    fn id_list(&mut self, out: &mut Vec<u32>) -> Result<(), String> {
        if self.line.as_bytes().get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            let id = self.uint()?;
            out.push(u32::try_from(id).map_err(|_| "robot id overflow")?);
            match self.line.as_bytes().get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("malformed id list at byte {}", self.pos)),
            }
        }
    }

    /// Asserts the whole line was consumed.
    fn end(&self) -> Result<(), String> {
        if self.pos == self.line.len() {
            Ok(())
        } else {
            Err(format!(
                "trailing bytes after round record: {:?}",
                &self.line[self.pos..]
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gather_sim::trace::RoundRecord;

    fn line(round: u64, class: Class, activated: Vec<usize>, crashed: Vec<usize>) -> String {
        RoundRecord {
            round,
            class,
            distinct: 5,
            max_mult: 2,
            activated,
            crashed,
            travel: 0.625,
            classifications: 7,
            cache_hits: 3,
            weiszfeld_iters: 11,
        }
        .to_jsonl()
    }

    #[test]
    fn round_lines_decode_into_columns_exactly() {
        let text = format!(
            "{}\n{}\n",
            line(0, Class::Asymmetric, vec![0, 1, 2], vec![]),
            line(1, Class::Multiple, vec![1], vec![2]),
        );
        let corpus = Corpus::parse(&text).expect("parse v1 stream");
        assert_eq!(corpus.executions.len(), 1);
        let e = &corpus.executions[0];
        assert_eq!(e.label, "exec0");
        assert!(e.header.is_none());
        assert_eq!(e.rounds(), 2);
        assert_eq!(e.round, vec![0, 1]);
        assert_eq!(e.class, vec![Class::Asymmetric, Class::Multiple]);
        assert_eq!(e.distinct, vec![5, 5]);
        assert_eq!(e.max_mult, vec![2, 2]);
        assert_eq!(e.travel, vec![0.625, 0.625]);
        assert_eq!(e.classifications, vec![7, 7]);
        assert_eq!(e.cache_hits, vec![3, 3]);
        assert_eq!(e.weiszfeld_iters, vec![11, 11]);
        assert_eq!(e.activated(0), &[0, 1, 2]);
        assert_eq!(e.activated(1), &[1]);
        assert_eq!(e.crashed(0), &[] as &[u32]);
        assert_eq!(e.crashed(1), &[2]);
        assert_eq!(e.crash_events(), vec![(2, 1)]);
    }

    #[test]
    fn v2_headers_delimit_executions() {
        let spec = "{\"workload\":\"class\",\"class\":\"QR\",\"n\":9,\"seed\":7}";
        let text = format!(
            "{}\n{}\n{}\n{}\n",
            gather_sim::trace::v2_header(spec, 7, "sync"),
            line(0, Class::QuasiRegular, vec![0], vec![]),
            gather_sim::trace::v2_header(spec, 8, "async"),
            line(0, Class::QuasiRegular, vec![1], vec![]),
        );
        let corpus = Corpus::parse(&text).expect("parse v2 corpus");
        assert_eq!(corpus.executions.len(), 2);
        assert_eq!(corpus.executions[0].label, "QR/n9/seed7/sync");
        assert_eq!(corpus.executions[1].label, "QR/n9/seed8/async");
        let h = corpus.executions[0].header.as_ref().expect("header");
        assert_eq!(h.spec_json, spec, "spec survives verbatim");
        assert_eq!(h.seed, 7);
        assert_eq!(h.engine, "sync");
        assert_eq!(corpus.total_rounds(), 2);
        assert!(corpus.by_label("QR/n9/seed8/async").is_some());
    }

    #[test]
    fn header_spec_extraction_is_string_aware() {
        // A workload name containing a brace must not confuse the
        // balanced-object scan.
        let line = "{\"schema\":\"trace/v2\",\"spec\":{\"workload\":\"we{ird\",\"n\":8},\"seed\":1,\"engine\":\"sync\"}";
        let h = TraceHeader::parse(line).expect("parse");
        assert_eq!(h.spec_json, "{\"workload\":\"we{ird\",\"n\":8}");
    }

    #[test]
    fn corrupt_lines_are_rejected_with_line_numbers() {
        for (text, needle) in [
            ("{\"round\":0,\"klass\":\"A\"}\n", "pinned trace schema"),
            ("{\"round\":0,\"class\":\"Z\"", "unknown class"),
            (
                "{\"schema\":\"trace/v1\",\"spec\":{},\"seed\":0,\"engine\":\"sync\"}\n",
                "unsupported trace schema",
            ),
            (
                "{\"schema\":\"trace/v2\",\"spec\":{},\"seed\":0,\"engine\":\"warp\"}\n",
                "unknown engine",
            ),
            ("not json\n", "pinned trace schema"),
        ] {
            let err = Corpus::parse(text).expect_err(text);
            assert!(err.starts_with("line 1:"), "{err}");
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
    }

    #[test]
    fn non_advancing_rounds_are_rejected() {
        // The regression the batch-lane recycling audit guards against:
        // a retired lane's rounds bleeding into the next document.
        let text = format!(
            "{}\n{}\n",
            line(3, Class::Multiple, vec![], vec![]),
            line(3, Class::Multiple, vec![], vec![]),
        );
        let err = Corpus::parse(&text).expect_err("duplicate round");
        assert!(err.contains("does not advance"), "{err}");
    }

    #[test]
    fn trailing_bytes_and_empty_lines() {
        let mut bad = line(0, Class::Multiple, vec![], vec![]);
        bad.push_str("junk\n");
        assert!(Corpus::parse(&bad)
            .expect_err("trailing junk")
            .contains("trailing bytes"));
        assert!(Corpus::parse("\n\n").expect("blank").executions.is_empty());
        assert!(Corpus::parse("").expect("empty").executions.is_empty());
    }

    #[test]
    fn real_engine_output_parses_and_matches_the_trace_aggregates() {
        use gather_bench::runner::Scenario;
        use gather_workloads::of_class;
        let s = Scenario::new(of_class(Class::Asymmetric, 8, 7), 7);
        let (metrics, jsonl) = s.run_traced();
        let corpus = Corpus::parse(&jsonl).expect("engine output parses");
        let e = &corpus.executions[0];
        assert_eq!(e.rounds() as u64, metrics.rounds);
        assert_eq!(
            e.travel.iter().sum::<f64>(),
            metrics.total_travel,
            "columnar travel must sum to the engine's aggregate"
        );
        assert_eq!(*e.round.last().expect("rounds"), metrics.rounds - 1);
        assert_eq!(
            e.to_round_jsonl(),
            jsonl,
            "columnar decode + re-encode must round-trip the bytes"
        );
    }
}
