//! Axial (mirror) symmetry detection.
//!
//! Section I of the paper: configurations that are neither quasi-regular
//! nor linear "are either completely asymmetric or have only axial
//! symmetry (i.e., mirror symmetry). Using the condition of chirality, we
//! are able to break the symmetry for configurations having axial
//! symmetry and thus treat them as asymmetric configurations."
//!
//! The detector here makes that structure observable: it finds a mirror
//! axis when one exists. The gathering algorithm never needs it — that is
//! the point of the chirality argument — but experiments and tests use it
//! to label workloads and to verify that mirror-symmetric configurations
//! really do classify as `A`.

use crate::configuration::Configuration;
use gather_geom::{centroid, Line, Point, Tol};

/// Reflects `p` across `axis`.
fn reflect(p: Point, axis: &Line) -> Point {
    let t = axis.project(p);
    let foot = axis.at(t);
    foot + (foot - p)
}

/// Does reflecting the whole multiset across `axis` map it onto itself
/// (within `tol.snap`)?
pub fn is_mirror_axis(config: &Configuration, axis: &Line, tol: Tol) -> bool {
    let points = config.points();
    let mut used = vec![false; points.len()];
    for p in points {
        let image = reflect(*p, axis);
        let mut matched = false;
        for (j, q) in points.iter().enumerate() {
            if !used[j] && q.within(image, tol.snap) {
                used[j] = true;
                matched = true;
                break;
            }
        }
        if !matched {
            return false;
        }
    }
    true
}

/// Finds a mirror axis of the configuration, if any.
///
/// Any mirror axis of a finite multiset passes through its centroid, and
/// either passes through an occupied position or is the perpendicular
/// bisector of a pair of positions — so those finitely many candidates are
/// exhaustive. Returns the first axis found (configurations may have
/// several, e.g. regular polygons).
///
/// Gathered configurations (one distinct location) trivially admit every
/// axis through the point; `None` is returned for them and for empty
/// configurations, since "axial symmetry" is not a useful label there.
///
/// # Example
///
/// ```
/// use gather_config::{axial::detect_mirror_axis, Configuration};
/// use gather_geom::{Point, Tol};
///
/// // An isosceles triangle has a vertical mirror axis.
/// let c = Configuration::new(vec![
///     Point::new(-2.0, 0.0), Point::new(2.0, 0.0), Point::new(0.0, 5.0),
/// ]);
/// let axis = detect_mirror_axis(&c, Tol::default()).expect("isosceles");
/// // The axis is vertical: its direction has no x component.
/// assert!(axis.dir().x.abs() < 1e-9);
/// ```
pub fn detect_mirror_axis(config: &Configuration, tol: Tol) -> Option<Line> {
    let distinct = config.distinct_points();
    if distinct.len() < 2 {
        return None;
    }
    let center = centroid(config.points());

    let mut candidates: Vec<Line> = Vec::new();
    // Axes through the centroid and an occupied position.
    for p in &distinct {
        if !p.within(center, tol.snap) {
            candidates.push(Line::through(center, *p));
        }
    }
    // Perpendicular bisectors of pairs (through the centroid).
    for i in 0..distinct.len() {
        for j in (i + 1)..distinct.len() {
            let mid = distinct[i].midpoint(distinct[j]);
            let dir = (distinct[j] - distinct[i]).perp();
            if dir.norm() > tol.abs {
                let a = mid;
                let b = mid + dir;
                // The axis must pass through the centroid.
                let line = Line::through(a, b);
                if line.distance_to(center) <= tol.snap {
                    candidates.push(line);
                }
            }
        }
    }

    candidates
        .into_iter()
        .find(|axis| is_mirror_axis(config, axis, tol))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn t() -> Tol {
        Tol::default()
    }

    #[test]
    fn reflection_is_an_involution() {
        let axis = Line::through(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let p = Point::new(3.0, -2.0);
        let image = reflect(p, &axis);
        assert!(reflect(image, &axis).dist(p) < 1e-12);
        // Reflecting across y = x swaps coordinates.
        assert!(image.dist(Point::new(-2.0, 3.0)) < 1e-12);
    }

    #[test]
    fn isosceles_triangle_axis() {
        let c = Configuration::new(vec![
            Point::new(-2.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 5.0),
        ]);
        let axis = detect_mirror_axis(&c, t()).expect("axis");
        assert!(axis.contains(Point::new(0.0, 5.0), t()));
        assert!(axis.contains(Point::new(0.0, 0.0), t()));
    }

    #[test]
    fn scalene_has_no_axis() {
        let c = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(1.0, 2.5),
        ]);
        assert!(detect_mirror_axis(&c, t()).is_none());
    }

    #[test]
    fn regular_polygon_has_an_axis() {
        let pts: Vec<Point> = (0..5)
            .map(|k| {
                let th = TAU * k as f64 / 5.0 + 0.3;
                Point::new(2.0 * th.cos(), 2.0 * th.sin())
            })
            .collect();
        assert!(detect_mirror_axis(&Configuration::new(pts), t()).is_some());
    }

    #[test]
    fn generated_axial_workloads_have_axes() {
        // (Mirrors the generator in gather-workloads without depending on
        // it: build a mirror configuration by hand.)
        let axis_angle = 0.7_f64;
        let (s, c) = axis_angle.sin_cos();
        let mut pts = Vec::new();
        for (u, v) in [(1.0, 2.0), (-3.0, 1.0), (4.0, 3.5)] {
            pts.push(Point::new(u * c - v * s, u * s + v * c));
            pts.push(Point::new(u * c + v * s, u * s - v * c));
        }
        let config = Configuration::new(pts);
        let axis = detect_mirror_axis(&config, t()).expect("axis");
        // The detected axis has the constructed direction (mod π).
        let got = axis.dir().angle().rem_euclid(std::f64::consts::PI);
        let want = axis_angle.rem_euclid(std::f64::consts::PI);
        assert!(
            (got - want).abs() < 1e-6 || (got - want).abs() > std::f64::consts::PI - 1e-6,
            "axis direction {got} vs constructed {want}"
        );
    }

    #[test]
    fn multiplicity_must_match_under_reflection() {
        // A mirror pair with unequal multiplicities is not symmetric.
        let c = Configuration::new(vec![
            Point::new(-1.0, 0.0),
            Point::new(-1.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 3.0),
        ]);
        assert!(detect_mirror_axis(&c, t()).is_none());
    }

    #[test]
    fn gathered_and_tiny_configurations_return_none() {
        assert!(detect_mirror_axis(&Configuration::default(), t()).is_none());
        let single = Configuration::new(vec![Point::new(1.0, 1.0); 3]);
        assert!(detect_mirror_axis(&single, t()).is_none());
    }

    #[test]
    fn two_point_configuration_has_axes() {
        // Both the joining line and the perpendicular bisector are axes.
        let c = Configuration::new(vec![Point::new(-1.0, 0.0), Point::new(1.0, 0.0)]);
        assert!(detect_mirror_axis(&c, t()).is_some());
    }
}
