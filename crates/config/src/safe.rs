//! Safe points (Definition 8 of the paper).
//!
//! A robot position `p` is *safe* when every half-line starting at `p`
//! contains at most `⌈n/2⌉ − 1` robots. Moving all robots straight toward a
//! safe point can never produce the forbidden bivalent configuration `B`
//! (two points each holding `n/2` robots): any such split would need one
//! ray from `p` to carry `n/2 ≥ ⌈n/2⌉` robots.
//!
//! * Lemma 4.2 — every non-linear configuration contains a safe point;
//! * Lemma 4.3 — bivalent (`B`) and `L2W` configurations have none.
//!
//! The asymmetric branch (class `A`) of WAIT-FREE-GATHER elects its
//! gathering point among the safe points of the configuration.

use crate::angles::direction_buckets;
use crate::configuration::Configuration;
use crate::view::view_of;
use gather_geom::{Point, Tol};

/// Is `p` a safe point of `config` (Definition 8)?
///
/// `p` is safe iff no half-line starting at `p` (excluding `p` itself)
/// carries `⌈n/2⌉` or more robots, counted with multiplicity.
///
/// # Example
///
/// ```
/// use gather_config::{is_safe_point, Configuration};
/// use gather_geom::{Point, Tol};
///
/// let c = Configuration::new(vec![
///     Point::new(0.0, 0.0), Point::new(2.0, 0.0),
///     Point::new(4.0, 0.0), Point::new(6.0, 0.0),
/// ]);
/// let tol = Tol::default();
/// // From an endpoint, one ray carries all 3 other robots >= ceil(4/2)=2.
/// assert!(!is_safe_point(&c, Point::new(0.0, 0.0), tol));
/// // From an interior point, each ray carries at most 2 robots… which is
/// // still >= 2, so no point of this L2W line is safe (Lemma 4.3).
/// assert!(!is_safe_point(&c, Point::new(2.0, 0.0), tol));
/// ```
pub fn is_safe_point(config: &Configuration, p: Point, tol: Tol) -> bool {
    let n = config.len();
    let threshold = n.div_ceil(2); // ⌈n/2⌉; a ray with this many is unsafe
    let buckets = direction_buckets(config, p, tol);
    buckets.iter().all(|(_, count)| *count < threshold)
}

/// The safe points among the occupied positions `U(C)` of the
/// configuration, in deterministic (lexicographic) order.
///
/// # Example
///
/// ```
/// use gather_config::{safe_points, Configuration};
/// use gather_geom::{Point, Tol};
///
/// // Non-linear configurations always have a safe point (Lemma 4.2).
/// let c = Configuration::new(vec![
///     Point::new(0.0, 0.0), Point::new(4.0, 0.0), Point::new(1.0, 2.5),
/// ]);
/// assert!(!safe_points(&c, Tol::default()).is_empty());
/// ```
pub fn safe_points(config: &Configuration, tol: Tol) -> Vec<Point> {
    config
        .distinct_points()
        .into_iter()
        .filter(|p| is_safe_point(config, *p, tol))
        .collect()
}

/// The elected gathering point of the configuration (line 17 of the
/// paper's Figure 2): the best safe point by `(multiplicity ↑,
/// Σ distances ↓, view ↑)`, or `None` when the configuration has no safe
/// point (impossible for class `A` — non-linear configurations always
/// have one by Lemma 4.2).
///
/// The election is a pure function of the configuration — every robot
/// computes the same point — and each criterion is invariant under the
/// orientation-preserving similarities relating robot frames
/// (multiplicities and views verbatim; distance sums scale by a common
/// positive ratio, preserving the order), so the result is equivariant:
/// electing in a transformed frame yields the transformed point. This is
/// what lets the shared round analysis carry it as the class-`A` target.
pub fn elected_point(config: &Configuration, tol: Tol) -> Option<Point> {
    safe_points(config, tol).into_iter().max_by(|p, q| {
        config
            .mult(*p, tol)
            .cmp(&config.mult(*q, tol))
            // smaller sum of distances is better → reversed comparison
            .then_with(|| {
                config
                    .sum_of_distances(*q)
                    .total_cmp(&config.sum_of_distances(*p))
            })
            .then_with(|| view_of(config, *p, tol).cmp(&view_of(config, *q, tol)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn t() -> Tol {
        Tol::default()
    }

    #[test]
    fn triangle_corners_are_safe() {
        let c = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(1.0, 2.5),
        ]);
        // n = 3, threshold ⌈3/2⌉ = 2: every ray from a corner carries 1.
        assert_eq!(safe_points(&c, t()).len(), 3);
    }

    #[test]
    fn non_linear_configurations_have_safe_points() {
        // Lemma 4.2 on a gallery of non-linear configurations.
        let gallery: Vec<Configuration> = vec![
            Configuration::new(
                (0..7)
                    .map(|k| {
                        let th = TAU * k as f64 / 7.0;
                        Point::new(th.cos(), th.sin())
                    })
                    .collect(),
            ),
            Configuration::new(vec![
                Point::new(0.0, 0.0),
                Point::new(0.0, 0.0),
                Point::new(3.0, 0.0),
                Point::new(0.0, 3.0),
                Point::new(3.0, 3.0),
            ]),
            Configuration::new(vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(1.0, 1.0),
            ]),
        ];
        for c in &gallery {
            assert!(!safe_points(c, t()).is_empty(), "no safe point in {c}");
        }
    }

    #[test]
    fn bivalent_has_no_safe_point() {
        // Lemma 4.3, B case: 2+2 robots on two points.
        let c = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 0.0),
        ]);
        assert!(safe_points(&c, t()).is_empty());
        // …and even unoccupied points are unsafe.
        assert!(!is_safe_point(&c, Point::new(2.0, 0.0), t()));
        assert!(!is_safe_point(&c, Point::new(2.0, 3.0), t()));
    }

    #[test]
    fn l2w_line_has_no_safe_point() {
        // Lemma 4.3, L2W case: 4 distinct collinear points, median not
        // unique.
        let c = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(7.0, 0.0),
        ]);
        assert!(safe_points(&c, t()).is_empty());
    }

    #[test]
    fn l1w_median_with_multiplicity_is_safe() {
        // 5 collinear robots with a heavy middle: rays from the median
        // carry 2 < ⌈5/2⌉ = 3 robots each.
        let c = Configuration::new(vec![
            Point::new(-2.0, 0.0),
            Point::new(-1.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ]);
        let safe = safe_points(&c, t());
        assert_eq!(safe, vec![Point::new(0.0, 0.0)]);
    }

    #[test]
    fn multiplicity_counts_toward_threshold() {
        // n = 6; ray from p to a stack of 3 robots: 3 >= ⌈6/2⌉ = 3 unsafe.
        let c = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 2.0),
            Point::new(-2.0, -1.0),
        ]);
        assert!(!is_safe_point(&c, Point::new(0.0, 0.0), t()));
        // The stack itself is safe: rays from it carry at most 2.
        assert!(is_safe_point(&c, Point::new(2.0, 0.0), t()));
    }

    #[test]
    fn aligned_robots_on_one_ray_accumulate() {
        // From p, robots at distance 1, 2, 3 on the same ray share a
        // half-line: 3 >= ⌈5/2⌉ = 3, unsafe.
        let c = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(3.0, 3.0),
            Point::new(-1.0, 0.0),
        ]);
        assert!(!is_safe_point(&c, Point::new(0.0, 0.0), t()));
    }

    #[test]
    fn odd_bivalent_like_split_is_safe_on_heavy_side() {
        // 3 + 2 split over two points (n = 5, not bivalent): the heavy
        // point sees 2 < 3 on its one ray → safe; the light point sees
        // 3 >= 3 → unsafe.
        let heavy = Point::new(0.0, 0.0);
        let light = Point::new(5.0, 0.0);
        let c = Configuration::new(vec![heavy, heavy, heavy, light, light]);
        assert!(is_safe_point(&c, heavy, t()));
        assert!(!is_safe_point(&c, light, t()));
        assert_eq!(safe_points(&c, t()), vec![heavy]);
    }
}
