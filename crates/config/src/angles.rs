//! Successor ordering and the string of angles (Definition 4 of the paper).
//!
//! Given a configuration `C` and a candidate centre `c`, the robots not
//! located at `c` are enumerated in clockwise order around `c` (co-located
//! robots and robots sharing a ray are consecutive, contributing zero
//! angles). The resulting cyclic string of `n − mult(c)` angles is the
//! *string of angles* `SA(c)`; its periodicity `per(SA)` (Definition 5)
//! measures the configuration's angular regularity around `c`.
//!
//! Only the *direction* structure matters for periodicity: the string is
//! `k`-periodic exactly when the multiset of robot-count-per-direction is
//! invariant under rotation by `2π/k` around `c`. The implementation
//! therefore buckets robots by direction and compares angular gaps.

use crate::configuration::Configuration;
use gather_geom::{angle::normalize_tau, soa, Point, Tol};
use std::f64::consts::TAU;

/// Angular tolerance for direction comparisons (bucket merging, rotation
/// slot matching, periodicity of angle strings).
///
/// Robot positions carry transverse noise up to the canonicalisation
/// radius `Tol::snap`; seen from a candidate centre, a robot at distance
/// `r` therefore has direction noise up to `snap / r`. Robots closer than
/// the centre zone (see [`center_zone_radius`]) are treated as located at
/// the centre, which bounds the direction noise of the remaining robots by
/// `snap / zone ≲ 1e-3`. Genuinely distinct directions in the paper's
/// configurations are separated by orders of magnitude more.
pub const ANGLE_EPS: f64 = 1e-3;

/// Fraction of the configuration's radius (max distance from the centre)
/// within which robots count as located *at* a candidate centre for the
/// purpose of direction analysis.
pub const CENTER_ZONE_REL: f64 = 1e-3;

/// The radius around a candidate centre within which robots are treated
/// as being at the centre when analysing direction structure: the larger
/// of twice the canonicalisation radius and [`CENTER_ZONE_REL`] times the
/// configuration's extent around the centre.
///
/// Rationale: a robot converging on the centre ends up within `Tol::snap`
/// of it transversally; measured from any candidate centre its direction
/// is pure noise, yet it is exactly the robot whose position the
/// quasi-regular rule is free to ignore (it is "at" the Weber point for
/// all movement purposes). Excluding the zone keeps the direction noise of
/// every *counted* robot below [`ANGLE_EPS`].
pub fn center_zone_radius(config: &Configuration, center: Point, tol: Tol) -> f64 {
    let extent = if config.is_empty() {
        0.0
    } else {
        soa::max_dist2(config.soa(), center).1.sqrt()
    };
    (2.0 * tol.snap).max(CENTER_ZONE_REL * extent)
}

/// The string of angles `SA(c)` of a configuration around a centre point.
///
/// The entries are the clockwise angles between consecutive robots in the
/// clockwise successor order around the centre; robots at the centre are
/// excluded. The string is cyclic and its entries sum to `2π` (or the
/// string is empty when every robot sits at the centre).
#[derive(Debug, Clone, PartialEq)]
pub struct StringOfAngles {
    entries: Vec<f64>,
}

impl StringOfAngles {
    /// The angles in radians, in clockwise successor order.
    pub fn entries(&self) -> &[f64] {
        &self.entries
    }

    /// The string's length `m = n − mult(c)`.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the string empty (all robots at the centre)?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The periodicity `per(SA)`: the greatest `k` such that the cyclic
    /// string is a `k`-th power (`SA = x^k`). The empty string has
    /// periodicity 1 by convention.
    ///
    /// Angle entries are compared with [`ANGLE_EPS`] tolerance, so centres
    /// of regularity located numerically and configurations perturbed by
    /// position-canonicalisation noise are still recognised.
    pub fn periodicity(&self) -> usize {
        let n = self.entries.len();
        if n == 0 {
            return 1;
        }
        for block in 1..=n {
            if !n.is_multiple_of(block) {
                continue;
            }
            let tiles =
                (block..n).all(|i| (self.entries[i] - self.entries[i - block]).abs() <= ANGLE_EPS);
            if tiles {
                return n / block;
            }
        }
        1
    }
}

impl std::fmt::Display for StringOfAngles {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SA[")?;
        for (i, a) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a:.4}")?;
        }
        write!(f, "]")
    }
}

thread_local! {
    /// Reusable angle-key buffer for [`direction_buckets`]: the kernel
    /// fills it, the bucket merge consumes it, and the capacity survives
    /// across calls so steady-state classification does not allocate here.
    static ANGLE_SCRATCH: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Robots of `config` bucketed by their direction angle from `center`
/// (robots at the centre excluded): returns `(ccw angle in [0, 2π), count)`
/// pairs sorted by angle ascending, with buckets merged within
/// [`ANGLE_EPS`]-scale tolerance. The angle keys come from the
/// `gather_geom::soa::angle_keys_into` batch kernel over the
/// configuration's SoA mirror.
pub(crate) fn direction_buckets(
    config: &Configuration,
    center: Point,
    tol: Tol,
) -> Vec<(f64, usize)> {
    let zone = center_zone_radius(config, center, tol);
    let mut angles = ANGLE_SCRATCH.with(|c| std::mem::take(&mut *c.borrow_mut()));
    soa::angle_keys_into(config.soa(), center, zone, &mut angles);
    angles.sort_by(f64::total_cmp);
    let eps = ANGLE_EPS;
    let mut buckets: Vec<(f64, usize)> = Vec::new();
    for &a in &angles {
        match buckets.last_mut() {
            Some((b, m)) if (a - *b).abs() <= eps => {
                // Running mean keeps the representative centred.
                *b += (a - *b) / (*m as f64 + 1.0);
                *m += 1;
            }
            _ => buckets.push((a, 1)),
        }
    }
    ANGLE_SCRATCH.with(|c| *c.borrow_mut() = angles);
    // The first and last buckets may be the same direction across the 0/2π
    // seam.
    if buckets.len() > 1 {
        let first = buckets[0];
        let last = *buckets.last().expect("non-empty");
        if (first.0 + TAU - last.0).abs() <= eps {
            buckets[0].1 += last.1;
            buckets.pop();
        }
    }
    buckets
}

/// Computes the string of angles `SA(c)` of `config` around `center`
/// (Definition 4).
///
/// Robots located at `center` (within `tol.snap`) are excluded. Robots
/// sharing a direction contribute zero entries between them and one entry
/// equal to the clockwise gap to the next occupied direction.
///
/// # Example
///
/// ```
/// use gather_config::{string_of_angles, Configuration};
/// use gather_geom::{Point, Tol};
/// use std::f64::consts::FRAC_PI_2;
///
/// let square = Configuration::new(vec![
///     Point::new(1.0, 0.0), Point::new(0.0, 1.0),
///     Point::new(-1.0, 0.0), Point::new(0.0, -1.0),
/// ]);
/// let sa = string_of_angles(&square, Point::ORIGIN, Tol::default());
/// assert_eq!(sa.len(), 4);
/// assert!(sa.entries().iter().all(|a| (a - FRAC_PI_2).abs() < 1e-9));
/// assert_eq!(sa.periodicity(), 4);
/// ```
pub fn string_of_angles(config: &Configuration, center: Point, tol: Tol) -> StringOfAngles {
    let buckets = direction_buckets(config, center, tol);
    let mut entries: Vec<f64> = Vec::with_capacity(config.len());
    let d = buckets.len();
    for i in 0..d {
        let (angle, count) = buckets[i];
        // Zero angles between co-directional robots.
        entries.extend(std::iter::repeat_n(0.0, count - 1));
        // Clockwise gap to the next direction. Buckets are sorted by CCW
        // angle, so the clockwise successor direction is the *previous*
        // bucket; traversing buckets in ascending order while recording the
        // gap to the next ascending bucket yields the same cyclic string
        // read counter-clockwise. Periodicity is invariant under reading
        // direction reversal *of a cyclic string of gaps*, but to stay
        // faithful to the paper we record clockwise gaps: the gap from this
        // direction clockwise to the previous bucket equals the ascending
        // difference, so we emit ascending differences which are exactly
        // the clockwise gaps of the reversed traversal order.
        let next = buckets[(i + 1) % d].0;
        let gap = if d == 1 {
            TAU
        } else {
            normalize_tau(next - angle)
        };
        entries.push(gap);
    }
    StringOfAngles { entries }
}

/// Maintains an ascending direction-key list across a round in which only
/// the `dirty` robots moved: the keys of their old directions are removed
/// and the keys of their new directions merge-inserted, both computed with
/// the `soa::angle_keys_gather_into` dirty-gather kernel. Costs
/// O(|dirty|·(log n + n)) against a full O(n log n) rebuild, and produces
/// a list bitwise equal to rebuilding from scratch (same `atan2` inputs,
/// and a sorted f64 multiset has a unique value sequence).
///
/// Preconditions: `keys` is the ascending key list of `old` around
/// `center` with exclusion radius `zone` (i.e. `soa::angle_keys_into`
/// output, sorted by `f64::total_cmp`); `old` and `new` differ only at the
/// `dirty` indices; and `zone` is valid for both — the zone depends on the
/// configuration's extent via [`center_zone_radius`], so a caller must
/// fall back to a rebuild whenever a move changes the extent. `scratch`
/// holds the per-call key buffer so steady-state patching allocates
/// nothing.
///
/// # Panics
///
/// Panics if a dirty robot's old key is missing from `keys` (a stale
/// cache), or if any dirty index is out of bounds.
pub fn patch_sorted_angle_keys(
    keys: &mut Vec<f64>,
    old: &gather_geom::PointBuffer,
    new: &gather_geom::PointBuffer,
    dirty: &[usize],
    center: Point,
    zone: f64,
    scratch: &mut Vec<f64>,
) {
    soa::angle_keys_gather_into(old, dirty, center, zone, scratch);
    for &k in scratch.iter() {
        let at = keys.partition_point(|&x| f64::total_cmp(&x, &k).is_lt());
        assert!(
            at < keys.len() && keys[at].to_bits() == k.to_bits(),
            "stale angle-key cache: old key {k} not present"
        );
        keys.remove(at);
    }
    soa::angle_keys_gather_into(new, dirty, center, zone, scratch);
    for &k in scratch.iter() {
        let at = keys.partition_point(|&x| f64::total_cmp(&x, &k).is_lt());
        keys.insert(at, k);
    }
}

/// The greatest `k` such that the cyclic string `s` equals `x^k` for some
/// block `x` (i.e. `k` divides `len` and rotating by `len/k` fixes the
/// string). Empty strings have periodicity 1.
pub fn string_periodicity<T: PartialEq>(s: &[T]) -> usize {
    let n = s.len();
    if n == 0 {
        return 1;
    }
    // Try block lengths ascending: the first block length that tiles the
    // string gives the largest k = n / block.
    for block in 1..=n {
        if !n.is_multiple_of(block) {
            continue;
        }
        let tiles = (block..n).all(|i| s[i] == s[i - block]);
        if tiles {
            return n / block;
        }
    }
    1
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    fn t() -> Tol {
        Tol::default()
    }

    fn ngon(n: usize, r: f64, phase: f64) -> Configuration {
        (0..n)
            .map(|k| {
                let th = TAU * k as f64 / n as f64 + phase;
                Point::new(r * th.cos(), r * th.sin())
            })
            .collect()
    }

    #[test]
    fn periodicity_of_strings() {
        assert_eq!(string_periodicity(&[1, 2, 1, 2, 1, 2]), 3);
        assert_eq!(string_periodicity(&[1, 1, 1, 1]), 4);
        assert_eq!(string_periodicity(&[1, 2, 3]), 1);
        assert_eq!(string_periodicity(&[1, 2, 3, 1, 2, 3]), 2);
        assert_eq!(string_periodicity::<i64>(&[]), 1);
        assert_eq!(string_periodicity(&[7]), 1);
    }

    #[test]
    fn square_string_is_four_right_angles() {
        let sa = string_of_angles(&ngon(4, 2.0, 0.3), Point::ORIGIN, t());
        assert_eq!(sa.len(), 4);
        let total: f64 = sa.entries().iter().sum();
        assert!((total - TAU).abs() < 1e-9);
        assert!(sa.entries().iter().all(|a| (a - FRAC_PI_2).abs() < 1e-9));
        assert_eq!(sa.periodicity(), 4);
    }

    #[test]
    fn angles_sum_to_full_turn() {
        let c = Configuration::new(vec![
            Point::new(1.0, 0.2),
            Point::new(-0.5, 1.0),
            Point::new(-1.0, -1.3),
            Point::new(0.7, -0.9),
        ]);
        let sa = string_of_angles(&c, Point::ORIGIN, t());
        let total: f64 = sa.entries().iter().sum();
        assert!((total - TAU).abs() < 1e-9);
        assert_eq!(sa.periodicity(), 1);
    }

    #[test]
    fn center_robots_are_excluded() {
        let mut pts = ngon(3, 1.0, 0.0).points().to_vec();
        pts.push(Point::ORIGIN);
        pts.push(Point::ORIGIN);
        let c = Configuration::new(pts);
        let sa = string_of_angles(&c, Point::ORIGIN, t());
        assert_eq!(sa.len(), 3); // 5 robots - mult(center)=2
        assert_eq!(sa.periodicity(), 3);
    }

    #[test]
    fn colinear_stack_contributes_zero_angles() {
        // Two robots on the same ray: one zero entry.
        let c = Configuration::new(vec![
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 1.0),
        ]);
        let sa = string_of_angles(&c, Point::ORIGIN, t());
        assert_eq!(sa.len(), 3);
        let zeros = sa.entries().iter().filter(|a| a.abs() < 1e-9).count();
        assert_eq!(zeros, 1);
    }

    #[test]
    fn co_located_robots_contribute_zero_angles() {
        let c = Configuration::new(vec![
            Point::new(1.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(-1.0, 0.0),
            Point::new(-1.0, 0.0),
        ]);
        let sa = string_of_angles(&c, Point::ORIGIN, t());
        assert_eq!(sa.len(), 4);
        assert_eq!(sa.periodicity(), 2);
    }

    #[test]
    fn biangular_configuration_is_periodic_but_not_symmetric() {
        // Alternating angles α, β with arbitrary radii: periodicity k.
        let k = 3;
        let alpha = 0.4;
        let beta = TAU / k as f64 - alpha;
        let mut pts = Vec::new();
        let mut theta: f64 = 0.1;
        let radii = [1.0, 2.5];
        for i in 0..(2 * k) {
            pts.push(Point::new(
                radii[i % 2] * theta.cos(),
                radii[i % 2] * theta.sin(),
            ));
            theta += if i % 2 == 0 { alpha } else { beta };
        }
        let c = Configuration::new(pts);
        let sa = string_of_angles(&c, Point::ORIGIN, t());
        assert_eq!(sa.len(), 2 * k);
        assert_eq!(sa.periodicity(), k);
    }

    #[test]
    fn single_direction_wraps_to_full_turn() {
        let c = Configuration::new(vec![Point::new(1.0, 0.0), Point::new(2.0, 0.0)]);
        let sa = string_of_angles(&c, Point::ORIGIN, t());
        assert_eq!(sa.len(), 2);
        let total: f64 = sa.entries().iter().sum();
        assert!((total - TAU).abs() < 1e-9);
    }

    #[test]
    fn all_robots_at_center_is_empty_string() {
        let c = Configuration::new(vec![Point::ORIGIN; 3]);
        let sa = string_of_angles(&c, Point::ORIGIN, t());
        assert!(sa.is_empty());
        assert_eq!(sa.periodicity(), 1);
    }

    #[test]
    fn seam_bucket_merge() {
        // Directions at ~0 and ~2π-ε must merge into one bucket.
        let c = Configuration::new(vec![
            Point::new(1.0, 1e-9),
            Point::new(1.0, -1e-9),
            Point::new(-1.0, 0.0),
        ]);
        let buckets = direction_buckets(&c, Point::ORIGIN, t());
        assert_eq!(buckets.len(), 2);
        let counts: Vec<usize> = buckets.iter().map(|(_, m)| *m).collect();
        assert!(counts.contains(&2));
    }

    #[test]
    fn periodicity_is_rotation_invariant() {
        let base = ngon(6, 2.0, 0.0);
        let rotated = ngon(6, 2.0, 1.234);
        let p1 = string_of_angles(&base, Point::ORIGIN, t()).periodicity();
        let p2 = string_of_angles(&rotated, Point::ORIGIN, t()).periodicity();
        assert_eq!(p1, p2);
        assert_eq!(p1, 6);
    }

    #[test]
    fn patched_angle_keys_match_a_full_rebuild_bitwise() {
        use gather_geom::PointBuffer;
        let mut pts: Vec<Point> = (0..17)
            .map(|k| {
                let th = 0.37 * k as f64 + 0.1;
                let r = 1.0 + 0.2 * k as f64;
                Point::new(r * th.cos(), r * th.sin())
            })
            .collect();
        pts.push(Point::new(1e-9, 0.0)); // inside the zone below
        let old = PointBuffer::from_points(&pts);
        let zone = 0.5;
        let center = Point::ORIGIN;
        let mut keys = Vec::new();
        soa::angle_keys_into(&old, center, zone, &mut keys);
        keys.sort_by(f64::total_cmp);

        // Move a few robots (one of them into the zone, one out of it).
        let dirty = vec![2usize, 7, 11, 17];
        pts[2] = Point::new(-2.0, 0.4);
        pts[7] = Point::new(0.1, 0.0); // moves inside the zone
        pts[11] = Point::new(3.0, -3.0);
        pts[17] = Point::new(0.0, 2.0); // leaves the zone
        let new = PointBuffer::from_points(&pts);
        let mut scratch = Vec::new();
        patch_sorted_angle_keys(&mut keys, &old, &new, &dirty, center, zone, &mut scratch);

        let mut fresh = Vec::new();
        soa::angle_keys_into(&new, center, zone, &mut fresh);
        fresh.sort_by(f64::total_cmp);
        assert_eq!(keys, fresh);

        // Empty dirty set is a no-op.
        patch_sorted_angle_keys(&mut keys, &new, &new, &[], center, zone, &mut scratch);
        assert_eq!(keys, fresh);
    }

    #[test]
    #[should_panic(expected = "stale angle-key cache")]
    fn patching_with_a_stale_key_list_panics() {
        use gather_geom::PointBuffer;
        let old = PointBuffer::from_points(&[Point::new(2.0, 0.0), Point::new(0.0, 2.0)]);
        let new = PointBuffer::from_points(&[Point::new(-2.0, 0.0), Point::new(0.0, 2.0)]);
        let mut keys = vec![1.0, 2.0]; // not the keys of `old`
        let mut scratch = Vec::new();
        patch_sorted_angle_keys(
            &mut keys,
            &old,
            &new,
            &[0],
            Point::ORIGIN,
            0.1,
            &mut scratch,
        );
    }

    #[test]
    fn off_center_destroys_periodicity() {
        let c = ngon(4, 2.0, 0.0);
        let sa = string_of_angles(&c, Point::new(0.5, 0.3), t());
        assert_eq!(sa.periodicity(), 1);
    }
}
