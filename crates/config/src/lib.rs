//! Robot-configuration analysis for wait-free gathering.
//!
//! This crate implements Sections III and IV of *"Gathering of Mobile Robots
//! Tolerating Multiple Crash Faults"* (Bouzid, Das, Tixeuil; ICDCS 2013):
//!
//! * [`Configuration`] — a multiset of robot positions with strong
//!   multiplicity detection (`mult`, `U(C)`, `sec(C)`, linearity);
//! * [`view`] — Definition 2: the similarity-invariant *view* of a position,
//!   with a total order, and the equivalence classes it induces;
//! * [`symmetry`] — Definition 3: rotational symmetry `sym(C)`;
//! * [`angles`] — Definition 4: clockwise successor ordering and the
//!   *string of angles* `SA(c)` with its periodicity `per(SA)`;
//! * [`regularity`] — Definition 5: regular configurations and their centre
//!   of regularity;
//! * [`quasi`] — Definitions 6–7 and Lemma 3.4: quasi-regular
//!   configurations, their detection, and their Weber point (Theorem 3.1);
//! * [`axial`] — mirror-axis detection (the "only axial symmetry" case of
//!   the paper's taxonomy, broken by chirality);
//! * [`safe`] — Definition 8: safe points (Lemmas 4.2, 4.3);
//! * [`mod@classify`] — Section IV: the partition of all configurations into
//!   the classes `B`, `M`, `L1W`, `L2W`, `QR`, `A`;
//! * [`analysis`] — the shared per-round analysis: classification plus
//!   symmetry computed once per configuration, memoized across unchanged
//!   rounds ([`RoundAnalysis`], [`AnalysisCache`]).
//!
//! # Example
//!
//! ```
//! use gather_config::{Class, classify, Configuration};
//! use gather_geom::{Point, Tol};
//!
//! // Three robots at one point, one elsewhere: a unique point of maximum
//! // multiplicity, so the configuration is of class M.
//! let config = Configuration::new(vec![
//!     Point::new(0.0, 0.0), Point::new(0.0, 0.0), Point::new(0.0, 0.0),
//!     Point::new(5.0, 5.0),
//! ]);
//! let analysis = classify(&config, Tol::default());
//! assert_eq!(analysis.class, Class::Multiple);
//! ```

pub mod analysis;
pub mod angles;
pub mod axial;
pub mod classify;
pub mod configuration;
pub mod quasi;
pub mod regularity;
pub mod safe;
pub mod symmetry;
pub mod view;

pub use analysis::{fingerprint, AnalysisCache, RoundAnalysis};
pub use angles::{patch_sorted_angle_keys, string_of_angles, string_periodicity, StringOfAngles};
pub use axial::{detect_mirror_axis, is_mirror_axis};
pub use classify::{
    classify, classify_hinted, classify_hinted_with_distinct, classify_invocations, Analysis, Class,
};
pub use configuration::{
    canonicalize_dirty_into, canonicalize_into, snap_separated, CanonScratch, Configuration,
};
pub use quasi::{
    detect_quasi_regularity, detect_quasi_regularity_hinted, quasi_regular_with_center,
    QuasiRegularity,
};
pub use regularity::{regularity_around, RegularityWitness};
pub use safe::{elected_point, is_safe_point, safe_points};
pub use symmetry::{rotational_symmetry, rotational_symmetry_dirty, symmetry_classes};
pub use view::{view_of, View};
