//! The shared per-round analysis layer.
//!
//! In the ATOM/SSYNC model every robot activated in a round LOOKs at the
//! *same* start-of-round configuration, and the classification of Section IV
//! (class, Weber target, symmetry) is a pure function of that configuration.
//! Running [`classify`] once per robot — as a naive reading of the per-robot
//! COMPUTE phase suggests — therefore recomputes an identical result `n`
//! times per round, with the Weiszfeld iteration inside quasi-regularity
//! detection dominating the bill.
//!
//! [`RoundAnalysis`] packages the per-round result computed **once**;
//! [`AnalysisCache`] memoizes it across consecutive rounds in which the
//! canonical configuration did not change (common under partial activation,
//! stingy motion adversaries, and the audit-then-step pattern of the
//! engine). The memo key is a 64-bit fingerprint of the exact point
//! multiset used as a fast filter, always confirmed by an exact point
//! comparison, so a fingerprint collision can never smuggle in a stale
//! analysis.
//!
//! The engine threads a `RoundAnalysis` through each robot's snapshot after
//! transforming the target into the robot's local frame; class, `n`,
//! symmetry and `qreg` are invariant under the orientation-preserving
//! similarities that relate robot frames, so they are shared verbatim. The
//! equivalence of this shared path with a per-robot fresh classification is
//! proven by the equivariance tests in the umbrella crate.

use crate::classify::{classify_hinted, classify_hinted_with_distinct, Analysis, Class};
use crate::configuration::Configuration;
use crate::symmetry::rotational_symmetry;
use gather_geom::{Point, Tol};
use gather_prng::mix64;

/// Everything the round needs to know about one configuration, computed
/// once: the Section-IV classification (with its movement target) plus the
/// rotational symmetry `sym(C)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundAnalysis {
    /// The classification (class, `n`, target, `qreg`).
    pub analysis: Analysis,
    /// Rotational symmetry `sym(C)` (Definition 3), when the class pins it
    /// or the class makes it load-bearing; see [`RoundAnalysis::compute`]
    /// for the policy and [`RoundAnalysis::symmetry`] for on-demand
    /// computation of the `None` cases.
    pub sym: Option<usize>,
    /// Fingerprint of the analysed point multiset (see [`fingerprint`]).
    pub fingerprint: u64,
    /// The numeric Weber point this analysis computed (or pinned, for
    /// class `QR`), carried as the warm-start iterate for the next round's
    /// Weiszfeld run (Lemma 3.2). `None` when the class never reached the
    /// numeric Weber computation.
    pub weber_hint: Option<Point>,
}

impl RoundAnalysis {
    /// Analyses `config` from scratch (one [`classify`] call plus the
    /// symmetry policy below).
    ///
    /// `sym(C)` is *derived* from the classification wherever the
    /// partition pins it, because the view-based computation costs as much
    /// as several classifications and no movement rule consults it:
    ///
    /// * class `A` is by construction the `sym(C) = 1` remainder of
    ///   Section IV.A (a symmetric configuration would have been caught by
    ///   the quasi-regularity detector via its SEC centre);
    /// * a gathered configuration trivially has `sym = 1`;
    /// * class `B` always has `sym = 2` (the π-rotation about the midpoint
    ///   exchanges the two equally-loaded points, so their views agree and
    ///   the two locations form one equivalence class);
    /// * class `QR` — the one class whose structure *is* its symmetry —
    ///   pays for the full computation;
    /// * `M`, `L1W`, `L2W` leave it `None`: nothing in the round consumes
    ///   it, and callers that do want it use [`RoundAnalysis::symmetry`].
    pub fn compute(config: &Configuration, tol: Tol) -> Self {
        Self::compute_hinted(config, tol, None)
    }

    /// [`RoundAnalysis::compute`] with an optional warm-start iterate for
    /// the numeric Weber computation inside quasi-regularity detection —
    /// the previous round's Weber point, which Lemma 3.2 keeps exact while
    /// robots move toward it. The hint only seeds Weiszfeld's iteration;
    /// classes that never compute a numeric Weber point ignore it.
    pub fn compute_hinted(config: &Configuration, tol: Tol, hint: Option<Point>) -> Self {
        let (analysis, weber_seen) = classify_hinted(config, tol, hint);
        RoundAnalysis::from_classification(config, tol, analysis, weber_seen)
    }

    /// The symmetry/warm-start policy shared by the full and incremental
    /// analysis paths: applied to a classification however it was obtained,
    /// so both paths derive `sym`, the Weber hint and the fingerprint
    /// through identical code.
    fn from_classification(
        config: &Configuration,
        tol: Tol,
        analysis: Analysis,
        weber_seen: Option<Point>,
    ) -> Self {
        let sym = match analysis.class {
            Class::Asymmetric => Some(1),
            Class::Bivalent => Some(2),
            Class::QuasiRegular => Some(rotational_symmetry(config, tol)),
            // All points bitwise equal ⇔ one distinct location (gathered);
            // checked on the raw slice so steady-state M rounds stay
            // allocation-free.
            Class::Multiple if config.points().iter().all(|p| *p == config.points()[0]) => Some(1),
            _ => None,
        };
        // For QR the centre of quasi-regularity *is* the Weber point
        // (Lemma 3.3), so it doubles as a hint even when the occupied-centre
        // test decided without running Weiszfeld.
        let weber_hint = weber_seen.or(match analysis.class {
            Class::QuasiRegular => analysis.target,
            _ => None,
        });
        RoundAnalysis {
            analysis,
            sym,
            fingerprint: fingerprint(config.points()),
            weber_hint,
        }
    }

    /// The rotational symmetry `sym(C)`: the cached value when
    /// [`RoundAnalysis::compute`] pinned it, the full view-based
    /// computation otherwise. `config` must be the configuration this
    /// analysis was computed from.
    pub fn symmetry(&self, config: &Configuration, tol: Tol) -> usize {
        self.sym.unwrap_or_else(|| rotational_symmetry(config, tol))
    }

    /// The analysis with its target mapped through `f` — the orientation-
    /// preserving frame transform into a robot's local coordinates. Class,
    /// `n`, `sym` and `qreg` are similarity-invariant and carried verbatim.
    pub fn map_target(self, f: impl Fn(Point) -> Point) -> Self {
        RoundAnalysis {
            analysis: Analysis {
                target: self.analysis.target.map(f),
                ..self.analysis
            },
            ..self
        }
    }
}

/// Order-sensitive 64-bit fingerprint of a point sequence (configurations
/// are canonical, so equal multisets have equal orderings). Built by mixing
/// each coordinate's bit pattern with SplitMix64's finalizer; used only as
/// a fast *filter* — the cache always confirms with an exact comparison.
pub fn fingerprint(points: &[Point]) -> u64 {
    let mut h = mix64(points.len() as u64);
    for p in points {
        h = mix64(h ^ p.x.to_bits());
        h = mix64(h ^ p.y.to_bits());
    }
    h
}

/// Memoizes the [`RoundAnalysis`] of the most recent configuration.
///
/// One entry suffices: the engine analyses the current configuration at the
/// start of each round and (with audits on) the post-move configuration at
/// the end, which is exactly the next round's start-of-round configuration —
/// so in steady state each distinct configuration is analysed once.
#[derive(Debug)]
pub struct AnalysisCache {
    entry: Option<Entry>,
    computed: u64,
    hits: u64,
    /// Memo hits served by [`AnalysisCache::analyse_dirty`] purely from
    /// the empty dirty set, i.e. without hashing or comparing any point.
    dirty_skips: u64,
    /// Whether cache misses seed Weiszfeld with the last known Weber point.
    warm_start: bool,
    /// The most recent Weber point any analysis computed, surviving rounds
    /// whose class skips the numeric computation (e.g. `A → M → A`
    /// sequences keep their warmth through the `M` rounds).
    last_weber: Option<Point>,
    /// Sorting scratch for rebuilding the entry's distinct multiset.
    sort_buf: Vec<Point>,
}

impl Default for AnalysisCache {
    fn default() -> Self {
        AnalysisCache {
            entry: None,
            computed: 0,
            hits: 0,
            dirty_skips: 0,
            warm_start: true,
            last_weber: None,
            sort_buf: Vec::new(),
        }
    }
}

#[derive(Debug)]
struct Entry {
    fingerprint: u64,
    points: Vec<Point>,
    analysis: RoundAnalysis,
    /// The distinct-location multiset of `points` in
    /// [`Configuration::distinct_into`] order, maintained incrementally by
    /// [`AnalysisCache::analyse_dirty`]. Only meaningful when
    /// `distinct_valid` holds; the plain [`AnalysisCache::analyse`] miss
    /// path just invalidates it (lazy rebuild on the next dirty patch).
    distinct: Vec<(Point, usize)>,
    distinct_valid: bool,
}

impl Entry {
    /// Rebuilds `distinct` from `points` exactly as
    /// [`Configuration::distinct_into`] would: lexicographic sort, then
    /// run-length grouping of equal values.
    fn rebuild_distinct(&mut self, sort_buf: &mut Vec<Point>) {
        sort_buf.clear();
        sort_buf.extend_from_slice(&self.points);
        sort_buf.sort_by(|a, b| a.lex_cmp(*b));
        self.distinct.clear();
        for &p in sort_buf.iter() {
            match self.distinct.last_mut() {
                Some((q, m)) if *q == p => *m += 1,
                _ => self.distinct.push((p, 1)),
            }
        }
        self.distinct_valid = true;
    }
}

impl AnalysisCache {
    /// An empty cache (warm starts enabled).
    pub fn new() -> Self {
        AnalysisCache::default()
    }

    /// Enables or disables Weiszfeld warm starts on cache misses (enabled
    /// by default; the cold path exists for ablation measurements).
    pub fn set_warm_start(&mut self, enabled: bool) {
        self.warm_start = enabled;
    }

    /// The analysis of `config`: served from the memo when the point
    /// sequence is identical to the previous call's, recomputed (and
    /// memoized) otherwise. Recomputation warm-starts the numeric Weber
    /// iteration from the last known Weber point (Lemma 3.2) unless warm
    /// starts are disabled.
    pub fn analyse(&mut self, config: &Configuration, tol: Tol) -> RoundAnalysis {
        let fp = fingerprint(config.points());
        if let Some(e) = &self.entry {
            // The fingerprint is a filter; equality of the actual points is
            // what authorises reuse (a collision must not corrupt a run).
            if e.fingerprint == fp && e.points == config.points() {
                self.hits += 1;
                return e.analysis;
            }
        }
        let hint = if self.warm_start {
            self.last_weber
        } else {
            None
        };
        let analysis = RoundAnalysis::compute_hinted(config, tol, hint);
        self.computed += 1;
        if analysis.weber_hint.is_some() {
            self.last_weber = analysis.weber_hint;
        }
        match &mut self.entry {
            // Recycle the previous entry's point buffer: steady-state
            // rounds then memoize without heap allocation.
            Some(e) => {
                e.fingerprint = fp;
                e.points.clear();
                e.points.extend_from_slice(config.points());
                e.analysis = analysis;
                e.distinct_valid = false;
            }
            entry @ None => {
                *entry = Some(Entry {
                    fingerprint: fp,
                    points: config.points().to_vec(),
                    analysis,
                    distinct: Vec::new(),
                    distinct_valid: false,
                });
            }
        }
        analysis
    }

    /// [`AnalysisCache::analyse`] for the incremental engine path: `dirty`
    /// lists the indices at which `config` differs (bitwise) from the
    /// configuration of the previous call on this cache.
    ///
    /// * Empty dirty set — the previous analysis is returned without
    ///   hashing or comparing a single point (counted as a hit, like the
    ///   fingerprint-checked memo hit the reference path records, plus a
    ///   `dirty_skips` tick).
    /// * Non-empty — the memoized distinct-location multiset is patched at
    ///   the dirty indices (O(|dirty|·log n) instead of an O(n log n)
    ///   re-sort) and classification resumes from it via
    ///   [`classify_hinted_with_distinct`], with the same warm-start hint
    ///   policy as a plain miss; `computed`/`hits` and the classify and
    ///   Weiszfeld invocation counters advance exactly as the reference
    ///   path's miss would, so traces stay bit-identical.
    /// * No entry, or an entry of a different length — falls back to the
    ///   plain path and builds the distinct multiset for later patching.
    ///
    /// # Panics
    ///
    /// Panics if a dirty index is out of bounds, or if the dirty set lies
    /// about the previous configuration (a listed index whose old value is
    /// missing from the memoized multiset).
    pub fn analyse_dirty(
        &mut self,
        config: &Configuration,
        tol: Tol,
        dirty: &[usize],
    ) -> RoundAnalysis {
        let usable = self
            .entry
            .as_ref()
            .is_some_and(|e| !e.points.is_empty() && e.points.len() == config.len());
        if !usable {
            let analysis = self.analyse(config, tol);
            if let Some(e) = &mut self.entry {
                e.rebuild_distinct(&mut self.sort_buf);
            }
            return analysis;
        }
        if dirty.is_empty() {
            let e = self.entry.as_ref().expect("usable entry");
            debug_assert_eq!(
                e.points,
                config.points(),
                "empty dirty set but the configuration changed"
            );
            self.hits += 1;
            self.dirty_skips += 1;
            return e.analysis;
        }

        let hint = if self.warm_start {
            self.last_weber
        } else {
            None
        };
        {
            let e = self.entry.as_mut().expect("usable entry");
            if !e.distinct_valid {
                e.rebuild_distinct(&mut self.sort_buf);
            }
            for &i in dirty {
                let old = e.points[i];
                let new = config.points()[i];
                if old.x.to_bits() == new.x.to_bits() && old.y.to_bits() == new.y.to_bits() {
                    continue;
                }
                match e.distinct.binary_search_by(|probe| probe.0.lex_cmp(old)) {
                    Ok(pos) => {
                        if e.distinct[pos].1 == 1 {
                            e.distinct.remove(pos);
                        } else {
                            e.distinct[pos].1 -= 1;
                        }
                    }
                    Err(_) => panic!("stale dirty set: old position of robot {i} not memoized"),
                }
                match e.distinct.binary_search_by(|probe| probe.0.lex_cmp(new)) {
                    Ok(pos) => e.distinct[pos].1 += 1,
                    Err(pos) => e.distinct.insert(pos, (new, 1)),
                }
                e.points[i] = new;
            }
        }
        let e = self.entry.as_ref().expect("usable entry");
        let (analysis, weber_seen) = classify_hinted_with_distinct(config, tol, hint, &e.distinct);
        let analysis = RoundAnalysis::from_classification(config, tol, analysis, weber_seen);
        self.computed += 1;
        if analysis.weber_hint.is_some() {
            self.last_weber = analysis.weber_hint;
        }
        let e = self.entry.as_mut().expect("usable entry");
        e.fingerprint = analysis.fingerprint;
        e.analysis = analysis;
        analysis
    }

    /// The memoized distinct-location multiset (in
    /// [`Configuration::distinct_into`] order), when it is valid — i.e.
    /// immediately after an [`AnalysisCache::analyse_dirty`] call synced
    /// the entry to the caller's configuration. The caller must only
    /// consume it for that same configuration.
    pub fn distinct_cached(&self) -> Option<&[(Point, usize)]> {
        match &self.entry {
            Some(e) if e.distinct_valid => Some(&e.distinct),
            _ => None,
        }
    }

    /// Installs an externally computed analysis as the memo entry, exactly
    /// as a miss of [`AnalysisCache::analyse`] on `points` would have —
    /// entry updated (reusing its point buffer), warm-start iterate carried
    /// forward, `computed` incremented. `analysis` must be the analysis of
    /// `points` at the tolerance this cache is used with; a batch admission
    /// layer that classifies many identical initial configurations can then
    /// share one computation across caches without perturbing any later
    /// hit/miss or Weiszfeld-iteration sequence.
    pub fn seed(&mut self, points: &[Point], analysis: RoundAnalysis) {
        self.computed += 1;
        if analysis.weber_hint.is_some() {
            self.last_weber = analysis.weber_hint;
        }
        match &mut self.entry {
            Some(e) => {
                e.fingerprint = analysis.fingerprint;
                e.points.clear();
                e.points.extend_from_slice(points);
                e.analysis = analysis;
                e.distinct_valid = false;
            }
            entry @ None => {
                *entry = Some(Entry {
                    fingerprint: analysis.fingerprint,
                    points: points.to_vec(),
                    analysis,
                    distinct: Vec::new(),
                    distinct_valid: false,
                });
            }
        }
    }

    /// Returns the cache to its initial state — no memo entry, no warm-start
    /// iterate, zeroed counters — while keeping the entry's point buffer
    /// allocated for reuse.
    ///
    /// This is the determinism contract of engine recycling: a worker that
    /// reuses one cache across sweep items must observe, on every item, the
    /// same per-round hit/miss and Weiszfeld-iteration sequence as a fresh
    /// cache would, regardless of what the worker processed before. A stale
    /// memo (or a stale warm-start hint) would alter those per-round trace
    /// counters and break bit-identical results across thread counts.
    pub fn reset(&mut self) {
        if let Some(e) = &mut self.entry {
            // An empty point list can never equal a non-empty configuration,
            // so the stale analysis is unreachable; the buffer's capacity
            // survives for the next item.
            e.fingerprint = 0;
            e.points.clear();
            e.distinct.clear();
            e.distinct_valid = false;
        }
        self.computed = 0;
        self.hits = 0;
        self.dirty_skips = 0;
        self.warm_start = true;
        self.last_weber = None;
    }

    /// Number of full analyses computed (cache misses).
    pub fn computed(&self) -> u64 {
        self.computed
    }

    /// Number of calls served from the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of [`AnalysisCache::analyse_dirty`] hits served purely from
    /// an empty dirty set (a subset of [`AnalysisCache::hits`]).
    pub fn dirty_skips(&self) -> u64 {
        self.dirty_skips
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, Class};

    fn t() -> Tol {
        Tol::default()
    }

    fn square() -> Configuration {
        Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ])
    }

    #[test]
    fn compute_matches_fresh_classify() {
        let c = square();
        let ra = RoundAnalysis::compute(&c, t());
        assert_eq!(ra.analysis, classify(&c, t()));
        // QR is the class that pays for the full symmetry computation.
        assert_eq!(ra.sym, Some(rotational_symmetry(&c, t())));
        assert_eq!(ra.symmetry(&c, t()), rotational_symmetry(&c, t()));
    }

    #[test]
    fn deferred_symmetry_is_computed_on_demand() {
        // Class M with a symmetric support: sym is not precomputed (no
        // rule consumes it) but the accessor returns the true value.
        let heavy = Point::new(0.0, 0.0);
        let mut pts = square().points().to_vec();
        pts.push(heavy);
        pts.push(heavy);
        let c = Configuration::new(pts);
        let ra = RoundAnalysis::compute(&c, t());
        assert_eq!(ra.analysis.class, Class::Multiple);
        assert_eq!(ra.sym, None);
        assert_eq!(ra.symmetry(&c, t()), rotational_symmetry(&c, t()));
    }

    #[test]
    fn bivalent_symmetry_is_two() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(3.0, 1.0);
        let c = Configuration::new(vec![p, p, q, q]);
        let ra = RoundAnalysis::compute(&c, t());
        assert_eq!(ra.analysis.class, Class::Bivalent);
        assert_eq!(ra.sym, Some(2));
        assert_eq!(rotational_symmetry(&c, t()), 2);
    }

    #[test]
    fn asymmetric_short_circuit_agrees_with_full_symmetry() {
        // The partition argument behind the class-A fast path, checked
        // against the view-based computation it replaces.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(1.1, 2.3),
            Point::new(-0.7, 1.2),
            Point::new(2.2, -1.4),
        ];
        let c = Configuration::new(pts);
        let ra = RoundAnalysis::compute(&c, t());
        assert_eq!(ra.analysis.class, Class::Asymmetric);
        assert_eq!(ra.sym, Some(1));
        assert_eq!(rotational_symmetry(&c, t()), 1);
    }

    #[test]
    fn gathered_configuration_has_symmetry_one() {
        let c = Configuration::new(vec![Point::new(2.0, -1.0); 4]);
        let ra = RoundAnalysis::compute(&c, t());
        assert_eq!(ra.sym, Some(1));
    }

    #[test]
    fn repeated_configuration_hits_the_memo() {
        let c = square();
        let mut cache = AnalysisCache::new();
        let a1 = cache.analyse(&c, t());
        let a2 = cache.analyse(&c, t());
        assert_eq!(a1, a2);
        assert_eq!(cache.computed(), 1);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn changed_configuration_recomputes() {
        let mut cache = AnalysisCache::new();
        let a = cache.analyse(&square(), t());
        let moved = square().map(|p| Point::new(p.x + 1.0, p.y));
        let b = cache.analyse(&moved, t());
        assert_eq!(cache.computed(), 2);
        assert_eq!(cache.hits(), 0);
        assert_eq!(a.analysis.class, b.analysis.class);
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn reset_restores_fresh_cache_behaviour() {
        let c = square();
        let mut fresh = AnalysisCache::new();
        let expect = fresh.analyse(&c, t());

        let mut recycled = AnalysisCache::new();
        recycled.set_warm_start(false);
        let _ = recycled.analyse(&c, t());
        let _ = recycled.analyse(&square().map(|p| Point::new(p.x + 1.0, p.y)), t());
        recycled.reset();
        assert_eq!(recycled.computed(), 0);
        assert_eq!(recycled.hits(), 0);
        // Same analysis, and a *miss* (not a hit on the stale memo), exactly
        // as a fresh cache behaves.
        let again = recycled.analyse(&c, t());
        assert_eq!(again, expect);
        assert_eq!(recycled.computed(), 1);
        assert_eq!(recycled.hits(), 0);
    }

    #[test]
    fn seeded_cache_behaves_like_a_cache_that_analysed() {
        let c = square();
        let mut analysed = AnalysisCache::new();
        let expect = analysed.analyse(&c, t());

        let mut seeded = AnalysisCache::new();
        seeded.seed(c.points(), RoundAnalysis::compute(&c, t()));
        assert_eq!(seeded.computed(), analysed.computed());
        assert_eq!(seeded.hits(), 0);
        // The seeded entry serves the next identical configuration as a hit,
        // exactly like the cache that ran analyse() itself.
        let again = seeded.analyse(&c, t());
        assert_eq!(again, expect);
        assert_eq!(seeded.hits(), 1);
        assert_eq!(seeded.computed(), 1);

        // And a different configuration misses on both, with the same
        // warm-start state carried from the seeded analysis.
        let moved = square().map(|p| Point::new(p.x + 1.0, p.y));
        assert_eq!(seeded.analyse(&moved, t()), analysed.analyse(&moved, t()));
    }

    /// Drives a reference cache (plain `analyse`) and an incremental cache
    /// (`analyse_dirty` with exact bitwise diffs) through the same
    /// configuration sequence and asserts identical analyses and identical
    /// `computed`/`hits` trajectories.
    fn assert_dirty_tracks_reference(sequence: &[Configuration]) {
        let mut reference = AnalysisCache::new();
        let mut dirty_cache = AnalysisCache::new();
        let mut prev: Option<Configuration> = None;
        for (step, c) in sequence.iter().enumerate() {
            let dirty: Vec<usize> = match &prev {
                Some(p) if p.len() == c.len() => (0..c.len())
                    .filter(|&i| {
                        let (a, b) = (p.points()[i], c.points()[i]);
                        a.x.to_bits() != b.x.to_bits() || a.y.to_bits() != b.y.to_bits()
                    })
                    .collect(),
                _ => Vec::new(),
            };
            let expect = reference.analyse(c, t());
            let got = dirty_cache.analyse_dirty(c, t(), &dirty);
            assert_eq!(got, expect, "analyses diverged at step {step}");
            assert_eq!(
                dirty_cache.computed(),
                reference.computed(),
                "computed diverged at step {step}"
            );
            assert_eq!(
                dirty_cache.hits(),
                reference.hits(),
                "hits diverged at step {step}"
            );
            // The patched multiset must equal a fresh distinct computation.
            assert_eq!(
                dirty_cache
                    .distinct_cached()
                    .expect("valid after analyse_dirty"),
                c.distinct().as_slice(),
                "distinct multiset diverged at step {step}"
            );
            prev = Some(c.clone());
        }
    }

    #[test]
    fn dirty_analysis_tracks_the_reference_cache() {
        let mut seq = Vec::new();
        // Start from a square (QR), repeat it (static round), move one
        // corner (A or QR), collapse two robots onto one point (M), then
        // everything onto one point (gathered M).
        let c0 = square();
        seq.push(c0.clone());
        seq.push(c0.clone());
        let mut c1 = c0.clone();
        c1.set_point(2, Point::new(2.7, 1.3));
        seq.push(c1.clone());
        let mut c2 = c1.clone();
        c2.set_point(2, Point::new(0.0, 0.0));
        seq.push(c2.clone());
        seq.push(c2.clone());
        let gathered = Configuration::new(vec![Point::new(0.0, 0.0); 4]);
        seq.push(gathered);
        assert_dirty_tracks_reference(&seq);
    }

    #[test]
    fn dirty_analysis_handles_linear_and_bivalent_transitions() {
        let line = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(9.0, 0.0),
        ]);
        let mut off_line = line.clone();
        off_line.set_point(3, Point::new(9.0, 4.0));
        let mut bivalent = line.clone();
        bivalent.set_point(1, Point::new(0.0, 0.0));
        bivalent.set_point(3, Point::new(5.0, 0.0));
        assert_dirty_tracks_reference(&[line.clone(), off_line, line, bivalent]);
    }

    #[test]
    fn dirty_skip_counts_static_rounds_only() {
        let c = square();
        let mut cache = AnalysisCache::new();
        let first = cache.analyse_dirty(&c, t(), &[]); // no entry: fallback
        assert_eq!(cache.computed(), 1);
        assert_eq!(cache.dirty_skips(), 0);
        let again = cache.analyse_dirty(&c, t(), &[]);
        assert_eq!(again, first);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.dirty_skips(), 1);
        cache.reset();
        assert_eq!(cache.dirty_skips(), 0);
        assert_eq!(cache.distinct_cached(), None);
    }

    #[test]
    fn length_change_falls_back_to_the_plain_path() {
        let mut cache = AnalysisCache::new();
        let _ = cache.analyse_dirty(&square(), t(), &[]);
        let grown = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
            Point::new(1.0, 1.0),
        ]);
        let got = cache.analyse_dirty(&grown, t(), &[]);
        assert_eq!(got, RoundAnalysis::compute(&grown, t()));
        assert_eq!(cache.computed(), 2);
        assert_eq!(
            cache.distinct_cached().unwrap(),
            grown.distinct().as_slice()
        );
    }

    #[test]
    fn duplicate_and_noop_dirty_indices_are_harmless() {
        // A conservative dirty superset (indices that did not actually
        // move, or listed twice) must not perturb the result.
        let mut reference = AnalysisCache::new();
        let mut cache = AnalysisCache::new();
        let a = square();
        assert_eq!(
            cache.analyse_dirty(&a, t(), &[]),
            reference.analyse(&a, t())
        );
        let mut b = a.clone();
        b.set_point(2, Point::new(3.0, 1.0));
        assert_eq!(
            cache.analyse_dirty(&b, t(), &[0, 2, 2, 3]),
            reference.analyse(&b, t())
        );
        assert_eq!(cache.distinct_cached().unwrap(), b.distinct().as_slice());
        assert_eq!(cache.computed(), reference.computed());
    }

    #[test]
    fn fingerprint_is_order_and_value_sensitive() {
        let a = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let b = [Point::new(1.0, 0.0), Point::new(0.0, 0.0)];
        let c = [Point::new(0.0, 0.0), Point::new(1.0, 1e-12)];
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
        assert_eq!(fingerprint(&a), fingerprint(a.as_ref()));
    }

    #[test]
    fn map_target_transforms_only_the_target() {
        let c = square();
        let ra = RoundAnalysis::compute(&c, t());
        assert_eq!(ra.analysis.class, Class::QuasiRegular);
        let shifted = ra.map_target(|p| Point::new(p.x + 5.0, p.y));
        assert_eq!(shifted.analysis.class, ra.analysis.class);
        assert_eq!(shifted.sym, ra.sym);
        let t0 = ra.analysis.target.unwrap();
        assert_eq!(shifted.analysis.target, Some(Point::new(t0.x + 5.0, t0.y)));
    }

    #[test]
    fn counter_is_monotone_across_classify_calls() {
        let before = crate::classify::classify_invocations();
        let _ = classify(&square(), t());
        let _ = classify(&square(), t());
        assert_eq!(crate::classify::classify_invocations(), before + 2);
    }
}
