//! The shared per-round analysis layer.
//!
//! In the ATOM/SSYNC model every robot activated in a round LOOKs at the
//! *same* start-of-round configuration, and the classification of Section IV
//! (class, Weber target, symmetry) is a pure function of that configuration.
//! Running [`classify`] once per robot — as a naive reading of the per-robot
//! COMPUTE phase suggests — therefore recomputes an identical result `n`
//! times per round, with the Weiszfeld iteration inside quasi-regularity
//! detection dominating the bill.
//!
//! [`RoundAnalysis`] packages the per-round result computed **once**;
//! [`AnalysisCache`] memoizes it across consecutive rounds in which the
//! canonical configuration did not change (common under partial activation,
//! stingy motion adversaries, and the audit-then-step pattern of the
//! engine). The memo key is a 64-bit fingerprint of the exact point
//! multiset used as a fast filter, always confirmed by an exact point
//! comparison, so a fingerprint collision can never smuggle in a stale
//! analysis.
//!
//! The engine threads a `RoundAnalysis` through each robot's snapshot after
//! transforming the target into the robot's local frame; class, `n`,
//! symmetry and `qreg` are invariant under the orientation-preserving
//! similarities that relate robot frames, so they are shared verbatim. The
//! equivalence of this shared path with a per-robot fresh classification is
//! proven by the equivariance tests in the umbrella crate.

use crate::classify::{classify_hinted, Analysis, Class};
use crate::configuration::Configuration;
use crate::symmetry::rotational_symmetry;
use gather_geom::{Point, Tol};
use gather_prng::mix64;

/// Everything the round needs to know about one configuration, computed
/// once: the Section-IV classification (with its movement target) plus the
/// rotational symmetry `sym(C)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundAnalysis {
    /// The classification (class, `n`, target, `qreg`).
    pub analysis: Analysis,
    /// Rotational symmetry `sym(C)` (Definition 3), when the class pins it
    /// or the class makes it load-bearing; see [`RoundAnalysis::compute`]
    /// for the policy and [`RoundAnalysis::symmetry`] for on-demand
    /// computation of the `None` cases.
    pub sym: Option<usize>,
    /// Fingerprint of the analysed point multiset (see [`fingerprint`]).
    pub fingerprint: u64,
    /// The numeric Weber point this analysis computed (or pinned, for
    /// class `QR`), carried as the warm-start iterate for the next round's
    /// Weiszfeld run (Lemma 3.2). `None` when the class never reached the
    /// numeric Weber computation.
    pub weber_hint: Option<Point>,
}

impl RoundAnalysis {
    /// Analyses `config` from scratch (one [`classify`] call plus the
    /// symmetry policy below).
    ///
    /// `sym(C)` is *derived* from the classification wherever the
    /// partition pins it, because the view-based computation costs as much
    /// as several classifications and no movement rule consults it:
    ///
    /// * class `A` is by construction the `sym(C) = 1` remainder of
    ///   Section IV.A (a symmetric configuration would have been caught by
    ///   the quasi-regularity detector via its SEC centre);
    /// * a gathered configuration trivially has `sym = 1`;
    /// * class `B` always has `sym = 2` (the π-rotation about the midpoint
    ///   exchanges the two equally-loaded points, so their views agree and
    ///   the two locations form one equivalence class);
    /// * class `QR` — the one class whose structure *is* its symmetry —
    ///   pays for the full computation;
    /// * `M`, `L1W`, `L2W` leave it `None`: nothing in the round consumes
    ///   it, and callers that do want it use [`RoundAnalysis::symmetry`].
    pub fn compute(config: &Configuration, tol: Tol) -> Self {
        Self::compute_hinted(config, tol, None)
    }

    /// [`RoundAnalysis::compute`] with an optional warm-start iterate for
    /// the numeric Weber computation inside quasi-regularity detection —
    /// the previous round's Weber point, which Lemma 3.2 keeps exact while
    /// robots move toward it. The hint only seeds Weiszfeld's iteration;
    /// classes that never compute a numeric Weber point ignore it.
    pub fn compute_hinted(config: &Configuration, tol: Tol, hint: Option<Point>) -> Self {
        let (analysis, weber_seen) = classify_hinted(config, tol, hint);
        let sym = match analysis.class {
            Class::Asymmetric => Some(1),
            Class::Bivalent => Some(2),
            Class::QuasiRegular => Some(rotational_symmetry(config, tol)),
            // All points bitwise equal ⇔ one distinct location (gathered);
            // checked on the raw slice so steady-state M rounds stay
            // allocation-free.
            Class::Multiple if config.points().iter().all(|p| *p == config.points()[0]) => Some(1),
            _ => None,
        };
        // For QR the centre of quasi-regularity *is* the Weber point
        // (Lemma 3.3), so it doubles as a hint even when the occupied-centre
        // test decided without running Weiszfeld.
        let weber_hint = weber_seen.or(match analysis.class {
            Class::QuasiRegular => analysis.target,
            _ => None,
        });
        RoundAnalysis {
            analysis,
            sym,
            fingerprint: fingerprint(config.points()),
            weber_hint,
        }
    }

    /// The rotational symmetry `sym(C)`: the cached value when
    /// [`RoundAnalysis::compute`] pinned it, the full view-based
    /// computation otherwise. `config` must be the configuration this
    /// analysis was computed from.
    pub fn symmetry(&self, config: &Configuration, tol: Tol) -> usize {
        self.sym.unwrap_or_else(|| rotational_symmetry(config, tol))
    }

    /// The analysis with its target mapped through `f` — the orientation-
    /// preserving frame transform into a robot's local coordinates. Class,
    /// `n`, `sym` and `qreg` are similarity-invariant and carried verbatim.
    pub fn map_target(self, f: impl Fn(Point) -> Point) -> Self {
        RoundAnalysis {
            analysis: Analysis {
                target: self.analysis.target.map(f),
                ..self.analysis
            },
            ..self
        }
    }
}

/// Order-sensitive 64-bit fingerprint of a point sequence (configurations
/// are canonical, so equal multisets have equal orderings). Built by mixing
/// each coordinate's bit pattern with SplitMix64's finalizer; used only as
/// a fast *filter* — the cache always confirms with an exact comparison.
pub fn fingerprint(points: &[Point]) -> u64 {
    let mut h = mix64(points.len() as u64);
    for p in points {
        h = mix64(h ^ p.x.to_bits());
        h = mix64(h ^ p.y.to_bits());
    }
    h
}

/// Memoizes the [`RoundAnalysis`] of the most recent configuration.
///
/// One entry suffices: the engine analyses the current configuration at the
/// start of each round and (with audits on) the post-move configuration at
/// the end, which is exactly the next round's start-of-round configuration —
/// so in steady state each distinct configuration is analysed once.
#[derive(Debug)]
pub struct AnalysisCache {
    entry: Option<Entry>,
    computed: u64,
    hits: u64,
    /// Whether cache misses seed Weiszfeld with the last known Weber point.
    warm_start: bool,
    /// The most recent Weber point any analysis computed, surviving rounds
    /// whose class skips the numeric computation (e.g. `A → M → A`
    /// sequences keep their warmth through the `M` rounds).
    last_weber: Option<Point>,
}

impl Default for AnalysisCache {
    fn default() -> Self {
        AnalysisCache {
            entry: None,
            computed: 0,
            hits: 0,
            warm_start: true,
            last_weber: None,
        }
    }
}

#[derive(Debug)]
struct Entry {
    fingerprint: u64,
    points: Vec<Point>,
    analysis: RoundAnalysis,
}

impl AnalysisCache {
    /// An empty cache (warm starts enabled).
    pub fn new() -> Self {
        AnalysisCache::default()
    }

    /// Enables or disables Weiszfeld warm starts on cache misses (enabled
    /// by default; the cold path exists for ablation measurements).
    pub fn set_warm_start(&mut self, enabled: bool) {
        self.warm_start = enabled;
    }

    /// The analysis of `config`: served from the memo when the point
    /// sequence is identical to the previous call's, recomputed (and
    /// memoized) otherwise. Recomputation warm-starts the numeric Weber
    /// iteration from the last known Weber point (Lemma 3.2) unless warm
    /// starts are disabled.
    pub fn analyse(&mut self, config: &Configuration, tol: Tol) -> RoundAnalysis {
        let fp = fingerprint(config.points());
        if let Some(e) = &self.entry {
            // The fingerprint is a filter; equality of the actual points is
            // what authorises reuse (a collision must not corrupt a run).
            if e.fingerprint == fp && e.points == config.points() {
                self.hits += 1;
                return e.analysis;
            }
        }
        let hint = if self.warm_start {
            self.last_weber
        } else {
            None
        };
        let analysis = RoundAnalysis::compute_hinted(config, tol, hint);
        self.computed += 1;
        if analysis.weber_hint.is_some() {
            self.last_weber = analysis.weber_hint;
        }
        match &mut self.entry {
            // Recycle the previous entry's point buffer: steady-state
            // rounds then memoize without heap allocation.
            Some(e) => {
                e.fingerprint = fp;
                e.points.clear();
                e.points.extend_from_slice(config.points());
                e.analysis = analysis;
            }
            entry @ None => {
                *entry = Some(Entry {
                    fingerprint: fp,
                    points: config.points().to_vec(),
                    analysis,
                });
            }
        }
        analysis
    }

    /// Installs an externally computed analysis as the memo entry, exactly
    /// as a miss of [`AnalysisCache::analyse`] on `points` would have —
    /// entry updated (reusing its point buffer), warm-start iterate carried
    /// forward, `computed` incremented. `analysis` must be the analysis of
    /// `points` at the tolerance this cache is used with; a batch admission
    /// layer that classifies many identical initial configurations can then
    /// share one computation across caches without perturbing any later
    /// hit/miss or Weiszfeld-iteration sequence.
    pub fn seed(&mut self, points: &[Point], analysis: RoundAnalysis) {
        self.computed += 1;
        if analysis.weber_hint.is_some() {
            self.last_weber = analysis.weber_hint;
        }
        match &mut self.entry {
            Some(e) => {
                e.fingerprint = analysis.fingerprint;
                e.points.clear();
                e.points.extend_from_slice(points);
                e.analysis = analysis;
            }
            entry @ None => {
                *entry = Some(Entry {
                    fingerprint: analysis.fingerprint,
                    points: points.to_vec(),
                    analysis,
                });
            }
        }
    }

    /// Returns the cache to its initial state — no memo entry, no warm-start
    /// iterate, zeroed counters — while keeping the entry's point buffer
    /// allocated for reuse.
    ///
    /// This is the determinism contract of engine recycling: a worker that
    /// reuses one cache across sweep items must observe, on every item, the
    /// same per-round hit/miss and Weiszfeld-iteration sequence as a fresh
    /// cache would, regardless of what the worker processed before. A stale
    /// memo (or a stale warm-start hint) would alter those per-round trace
    /// counters and break bit-identical results across thread counts.
    pub fn reset(&mut self) {
        if let Some(e) = &mut self.entry {
            // An empty point list can never equal a non-empty configuration,
            // so the stale analysis is unreachable; the buffer's capacity
            // survives for the next item.
            e.fingerprint = 0;
            e.points.clear();
        }
        self.computed = 0;
        self.hits = 0;
        self.warm_start = true;
        self.last_weber = None;
    }

    /// Number of full analyses computed (cache misses).
    pub fn computed(&self) -> u64 {
        self.computed
    }

    /// Number of calls served from the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, Class};

    fn t() -> Tol {
        Tol::default()
    }

    fn square() -> Configuration {
        Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ])
    }

    #[test]
    fn compute_matches_fresh_classify() {
        let c = square();
        let ra = RoundAnalysis::compute(&c, t());
        assert_eq!(ra.analysis, classify(&c, t()));
        // QR is the class that pays for the full symmetry computation.
        assert_eq!(ra.sym, Some(rotational_symmetry(&c, t())));
        assert_eq!(ra.symmetry(&c, t()), rotational_symmetry(&c, t()));
    }

    #[test]
    fn deferred_symmetry_is_computed_on_demand() {
        // Class M with a symmetric support: sym is not precomputed (no
        // rule consumes it) but the accessor returns the true value.
        let heavy = Point::new(0.0, 0.0);
        let mut pts = square().points().to_vec();
        pts.push(heavy);
        pts.push(heavy);
        let c = Configuration::new(pts);
        let ra = RoundAnalysis::compute(&c, t());
        assert_eq!(ra.analysis.class, Class::Multiple);
        assert_eq!(ra.sym, None);
        assert_eq!(ra.symmetry(&c, t()), rotational_symmetry(&c, t()));
    }

    #[test]
    fn bivalent_symmetry_is_two() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(3.0, 1.0);
        let c = Configuration::new(vec![p, p, q, q]);
        let ra = RoundAnalysis::compute(&c, t());
        assert_eq!(ra.analysis.class, Class::Bivalent);
        assert_eq!(ra.sym, Some(2));
        assert_eq!(rotational_symmetry(&c, t()), 2);
    }

    #[test]
    fn asymmetric_short_circuit_agrees_with_full_symmetry() {
        // The partition argument behind the class-A fast path, checked
        // against the view-based computation it replaces.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(1.1, 2.3),
            Point::new(-0.7, 1.2),
            Point::new(2.2, -1.4),
        ];
        let c = Configuration::new(pts);
        let ra = RoundAnalysis::compute(&c, t());
        assert_eq!(ra.analysis.class, Class::Asymmetric);
        assert_eq!(ra.sym, Some(1));
        assert_eq!(rotational_symmetry(&c, t()), 1);
    }

    #[test]
    fn gathered_configuration_has_symmetry_one() {
        let c = Configuration::new(vec![Point::new(2.0, -1.0); 4]);
        let ra = RoundAnalysis::compute(&c, t());
        assert_eq!(ra.sym, Some(1));
    }

    #[test]
    fn repeated_configuration_hits_the_memo() {
        let c = square();
        let mut cache = AnalysisCache::new();
        let a1 = cache.analyse(&c, t());
        let a2 = cache.analyse(&c, t());
        assert_eq!(a1, a2);
        assert_eq!(cache.computed(), 1);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn changed_configuration_recomputes() {
        let mut cache = AnalysisCache::new();
        let a = cache.analyse(&square(), t());
        let moved = square().map(|p| Point::new(p.x + 1.0, p.y));
        let b = cache.analyse(&moved, t());
        assert_eq!(cache.computed(), 2);
        assert_eq!(cache.hits(), 0);
        assert_eq!(a.analysis.class, b.analysis.class);
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn reset_restores_fresh_cache_behaviour() {
        let c = square();
        let mut fresh = AnalysisCache::new();
        let expect = fresh.analyse(&c, t());

        let mut recycled = AnalysisCache::new();
        recycled.set_warm_start(false);
        let _ = recycled.analyse(&c, t());
        let _ = recycled.analyse(&square().map(|p| Point::new(p.x + 1.0, p.y)), t());
        recycled.reset();
        assert_eq!(recycled.computed(), 0);
        assert_eq!(recycled.hits(), 0);
        // Same analysis, and a *miss* (not a hit on the stale memo), exactly
        // as a fresh cache behaves.
        let again = recycled.analyse(&c, t());
        assert_eq!(again, expect);
        assert_eq!(recycled.computed(), 1);
        assert_eq!(recycled.hits(), 0);
    }

    #[test]
    fn seeded_cache_behaves_like_a_cache_that_analysed() {
        let c = square();
        let mut analysed = AnalysisCache::new();
        let expect = analysed.analyse(&c, t());

        let mut seeded = AnalysisCache::new();
        seeded.seed(c.points(), RoundAnalysis::compute(&c, t()));
        assert_eq!(seeded.computed(), analysed.computed());
        assert_eq!(seeded.hits(), 0);
        // The seeded entry serves the next identical configuration as a hit,
        // exactly like the cache that ran analyse() itself.
        let again = seeded.analyse(&c, t());
        assert_eq!(again, expect);
        assert_eq!(seeded.hits(), 1);
        assert_eq!(seeded.computed(), 1);

        // And a different configuration misses on both, with the same
        // warm-start state carried from the seeded analysis.
        let moved = square().map(|p| Point::new(p.x + 1.0, p.y));
        assert_eq!(seeded.analyse(&moved, t()), analysed.analyse(&moved, t()));
    }

    #[test]
    fn fingerprint_is_order_and_value_sensitive() {
        let a = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let b = [Point::new(1.0, 0.0), Point::new(0.0, 0.0)];
        let c = [Point::new(0.0, 0.0), Point::new(1.0, 1e-12)];
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
        assert_eq!(fingerprint(&a), fingerprint(a.as_ref()));
    }

    #[test]
    fn map_target_transforms_only_the_target() {
        let c = square();
        let ra = RoundAnalysis::compute(&c, t());
        assert_eq!(ra.analysis.class, Class::QuasiRegular);
        let shifted = ra.map_target(|p| Point::new(p.x + 5.0, p.y));
        assert_eq!(shifted.analysis.class, ra.analysis.class);
        assert_eq!(shifted.sym, ra.sym);
        let t0 = ra.analysis.target.unwrap();
        assert_eq!(shifted.analysis.target, Some(Point::new(t0.x + 5.0, t0.y)));
    }

    #[test]
    fn counter_is_monotone_across_classify_calls() {
        let before = crate::classify::classify_invocations();
        let _ = classify(&square(), t());
        let _ = classify(&square(), t());
        assert_eq!(crate::classify::classify_invocations(), before + 2);
    }
}
