//! The multiset of robot positions (`C_R(τ)` in the paper) and strong
//! multiplicity detection.

use gather_geom::{
    are_collinear, smallest_enclosing_circle_soa, soa, Circle, Point, PointBuffer, Tol,
};

/// A configuration of `n` robots: a *multiset* of points on the plane.
///
/// The paper's robots have **strong multiplicity detection**: a robot can
/// count exactly how many robots occupy each point. [`Configuration`]
/// supports this through [`Configuration::distinct`] (the paper's `U(C)`
/// with multiplicities) and [`Configuration::mult`].
///
/// To make multiplicity well defined in floating point, configurations are
/// usually built with [`Configuration::canonical`], which snaps together
/// points closer than `tol.snap` so that co-located robots have bitwise
/// identical coordinates.
///
/// # Example
///
/// ```
/// use gather_config::Configuration;
/// use gather_geom::{Point, Tol};
///
/// let c = Configuration::canonical(
///     vec![
///         Point::new(0.0, 0.0),
///         Point::new(1e-9, -1e-9),     // same location, up to noise
///         Point::new(3.0, 4.0),
///     ],
///     Tol::default(),
/// );
/// assert_eq!(c.len(), 3);
/// assert_eq!(c.distinct().len(), 2);
/// assert_eq!(c.mult(Point::new(0.0, 0.0), Tol::default()), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Configuration {
    points: Vec<Point>,
    /// Structure-of-arrays mirror of `points`, kept in sync by every
    /// mutator (the `points` field is private, so mutation cannot bypass
    /// the mirror). The geometry batch kernels — distance sums, SEC, angle
    /// keys, the quasi-regularity prefilter — read this instead of
    /// re-transposing per call, and the `copy_from*` resyncs reuse its
    /// capacity so the round loop stays allocation-free.
    soa: PointBuffer,
}

impl PartialEq for Configuration {
    fn eq(&self, other: &Self) -> bool {
        // The mirror is a function of `points`; comparing it would be
        // redundant work.
        self.points == other.points
    }
}

impl Configuration {
    /// Creates a configuration from robot positions as given (no snapping).
    pub fn new(points: Vec<Point>) -> Self {
        let soa = PointBuffer::from_points(&points);
        Configuration { points, soa }
    }

    /// Creates a configuration, snapping together all points within
    /// `tol.snap` of each other so multiplicity detection is exact.
    ///
    /// Clustering is transitive (single-linkage): a chain of nearby points
    /// collapses into one location, represented by the cluster centroid.
    pub fn canonical(points: Vec<Point>, tol: Tol) -> Self {
        Configuration::new(canonicalize(points, tol.snap))
    }

    /// Overwrites this configuration with the contents of `other`, reusing
    /// the existing point buffer (no allocation once capacity suffices).
    pub fn copy_from(&mut self, other: &Configuration) {
        self.points.clone_from(&other.points);
        self.soa.copy_from_points(&self.points);
    }

    /// Overwrites this configuration with the given points, reusing the
    /// existing buffer.
    pub fn copy_from_slice(&mut self, points: &[Point]) {
        self.points.clear();
        self.points.extend_from_slice(points);
        self.soa.copy_from_points(points);
    }

    /// Replaces the position of robot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set_point(&mut self, i: usize, p: Point) {
        self.points[i] = p;
        self.soa.set(i, p);
    }

    /// Applies `f` to every robot position in place (the allocation-free
    /// counterpart of [`Configuration::map`]).
    pub fn map_in_place(&mut self, mut f: impl FnMut(Point) -> Point) {
        for (i, p) in self.points.iter_mut().enumerate() {
            *p = f(*p);
            self.soa.set(i, *p);
        }
    }

    /// Number of robots `n`.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Is the configuration empty (no robots)?
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The positions of all robots, one entry per robot.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The structure-of-arrays mirror of [`Configuration::points`], for the
    /// batch kernels in `gather_geom::soa`. Always in sync with the
    /// array-of-structs view.
    pub fn soa(&self) -> &PointBuffer {
        &self.soa
    }

    /// The paper's `U(C)`: distinct occupied locations, each with its
    /// multiplicity, in deterministic (lexicographic) order.
    ///
    /// Positions are compared bitwise; build the configuration with
    /// [`Configuration::canonical`] if the input may contain noise.
    pub fn distinct(&self) -> Vec<(Point, usize)> {
        let mut out = Vec::new();
        let mut sort_buf = Vec::new();
        self.distinct_into(&mut out, &mut sort_buf);
        out
    }

    /// Allocation-free form of [`Configuration::distinct`]: fills `out`
    /// with the distinct locations and multiplicities, using `sort_buf` as
    /// sorting scratch. Both buffers are cleared first and keep their
    /// capacity across calls.
    pub fn distinct_into(&self, out: &mut Vec<(Point, usize)>, sort_buf: &mut Vec<Point>) {
        sort_buf.clear();
        sort_buf.extend_from_slice(&self.points);
        sort_buf.sort_by(|a, b| a.lex_cmp(*b));
        out.clear();
        for &p in sort_buf.iter() {
            match out.last_mut() {
                Some((q, m)) if *q == p => *m += 1,
                _ => out.push((p, 1)),
            }
        }
    }

    /// The distinct occupied locations without multiplicities.
    pub fn distinct_points(&self) -> Vec<Point> {
        self.distinct().into_iter().map(|(p, _)| p).collect()
    }

    /// The multiplicity of location `p`: how many robots are within
    /// `tol.snap` of it (strong multiplicity detection, `mult(p)`).
    pub fn mult(&self, p: Point, tol: Tol) -> usize {
        self.points.iter().filter(|q| q.within(p, tol.snap)).count()
    }

    /// The maximum multiplicity over all locations, with the locations that
    /// attain it.
    pub fn max_multiplicity(&self) -> (usize, Vec<Point>) {
        let distinct = self.distinct();
        let max = distinct.iter().map(|(_, m)| *m).max().unwrap_or(0);
        let points = distinct
            .into_iter()
            .filter(|(_, m)| *m == max)
            .map(|(p, _)| p)
            .collect();
        (max, points)
    }

    /// Does exactly one location attain the maximum multiplicity, and if so
    /// which (the class-`M` test)?
    pub fn unique_max_multiplicity(&self) -> Option<(Point, usize)> {
        let (max, points) = self.max_multiplicity();
        if points.len() == 1 {
            Some((points[0], max))
        } else {
            None
        }
    }

    /// Are all robots on one straight line (the paper's *linear*
    /// configuration)? Configurations with at most 2 distinct locations are
    /// linear by convention.
    pub fn is_linear(&self, tol: Tol) -> bool {
        are_collinear(&self.distinct_points(), tol)
    }

    /// Are all robots at a single location?
    pub fn is_gathered(&self) -> bool {
        self.distinct().len() <= 1
    }

    /// The smallest enclosing circle of the occupied locations
    /// (`sec(U(C))` in the paper).
    ///
    /// Computed over the full multiset via the SoA mirror — the smallest
    /// enclosing circle of a multiset equals that of its support, and
    /// Welzl's dedup handles repeated points, so no distinct-point set is
    /// materialised.
    pub fn sec(&self) -> Circle {
        smallest_enclosing_circle_soa(&self.soa)
    }

    /// Sum of distances from `x` to every robot (with multiplicity) — the
    /// Weber objective over the configuration, as a batch kernel over the
    /// SoA mirror.
    pub fn sum_of_distances(&self, x: Point) -> f64 {
        soa::sum_distances(&self.soa, x)
    }

    /// Applies `f` to every robot position, producing a new configuration.
    /// Useful for expressing global transforms in tests.
    pub fn map(&self, mut f: impl FnMut(Point) -> Point) -> Configuration {
        Configuration::new(self.points.iter().map(|p| f(*p)).collect())
    }
}

impl FromIterator<Point> for Configuration {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> Self {
        Configuration::new(iter.into_iter().collect())
    }
}

impl Extend<Point> for Configuration {
    fn extend<I: IntoIterator<Item = Point>>(&mut self, iter: I) {
        for p in iter {
            self.points.push(p);
            self.soa.push(p);
        }
    }
}

impl std::fmt::Display for Configuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Configuration[n={}] {{ ", self.len())?;
        for (p, m) in self.distinct() {
            if m > 1 {
                write!(f, "{p}x{m} ")?;
            } else {
                write!(f, "{p} ")?;
            }
        }
        write!(f, "}}")
    }
}

/// Single-linkage clustering of points within `snap`, replacing each
/// cluster by its centroid. O(n²) union-find; n is small (robot counts).
fn canonicalize(points: Vec<Point>, snap: f64) -> Vec<Point> {
    let mut out = Vec::with_capacity(points.len());
    canonicalize_into(&points, snap, &mut CanonScratch::default(), &mut out);
    out
}

/// Reusable working memory for [`canonicalize_into`] and
/// [`canonicalize_dirty_into`]: the union-find parent array, the
/// per-cluster centroid accumulators, and the index/dedup buffers of the
/// dirty path.
#[derive(Debug, Default)]
pub struct CanonScratch {
    parent: Vec<usize>,
    sum_x: Vec<f64>,
    sum_y: Vec<f64>,
    count: Vec<usize>,
    idx: Vec<usize>,
    mask: Vec<bool>,
    uniq: Vec<Point>,
}

/// Union-find root lookup with recursive path compression, shared by the
/// full and dirty canonicalization passes.
fn find(parent: &mut Vec<usize>, i: usize) -> usize {
    if parent[i] != i {
        let root = find(parent, parent[i]);
        parent[i] = root;
    }
    parent[i]
}

/// Allocation-free canonicalization: snaps `points` exactly like
/// [`Configuration::canonical`] and writes the result into `out` (cleared
/// first). `scratch` keeps the union-find arrays alive between calls so the
/// steady-state round loop performs no heap allocation here.
pub fn canonicalize_into(
    points: &[Point],
    snap: f64,
    scratch: &mut CanonScratch,
    out: &mut Vec<Point>,
) {
    let n = points.len();
    let parent = &mut scratch.parent;
    parent.clear();
    parent.extend(0..n);

    for i in 0..n {
        for j in (i + 1)..n {
            if points[i].within(points[j], snap) {
                let ri = find(parent, i);
                let rj = find(parent, j);
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }

    emit_centroids(points, scratch, out);
}

/// The centroid-per-cluster emission phase shared by the full and dirty
/// canonicalization passes: per-cluster sums accumulated in index order
/// (so the output depends only on the partition, never on which member
/// became the union-find root), then `out[i] = centroid(cluster of i)`.
fn emit_centroids(points: &[Point], scratch: &mut CanonScratch, out: &mut Vec<Point>) {
    let n = points.len();
    let parent = &mut scratch.parent;
    let (sum_x, sum_y, count) = (&mut scratch.sum_x, &mut scratch.sum_y, &mut scratch.count);
    sum_x.clear();
    sum_x.resize(n, 0.0);
    sum_y.clear();
    sum_y.resize(n, 0.0);
    count.clear();
    count.resize(n, 0);
    for (i, p) in points.iter().enumerate() {
        let r = find(parent, i);
        sum_x[r] += p.x;
        sum_y[r] += p.y;
        count[r] += 1;
    }
    out.clear();
    out.extend((0..n).map(|i| {
        let r = find(parent, i);
        Point::new(sum_x[r] / count[r] as f64, sum_y[r] / count[r] as f64)
    }));
}

/// [`canonicalize_into`] in O(|dirty|·n + n log n) instead of O(n²), valid
/// only under the incremental engine's separation invariant.
///
/// `dirty` lists the indices whose coordinates may have changed since a
/// previous canonical output; every other ("clean") point must be a value
/// from that output, and that output must satisfy [`snap_separated`] —
/// i.e. any two clean points are either bitwise equal or farther than
/// `snap` apart. Under that precondition the single-linkage partition is
/// reproduced exactly from two cheap edge families: bitwise-equality runs
/// among the clean points (found by one lexicographic index sort) and every
/// dirty-vs-all pair. The centroid emission is shared with the full pass,
/// so the result is bitwise identical to [`canonicalize_into`].
///
/// # Panics
///
/// Panics if any dirty index is out of bounds.
pub fn canonicalize_dirty_into(
    points: &[Point],
    snap: f64,
    dirty: &[usize],
    scratch: &mut CanonScratch,
    out: &mut Vec<Point>,
) {
    let n = points.len();
    let parent = &mut scratch.parent;
    parent.clear();
    parent.extend(0..n);

    let mask = &mut scratch.mask;
    mask.clear();
    mask.resize(n, false);
    for &d in dirty {
        mask[d] = true;
    }

    // Clean-clean edges: by the separation precondition, two clean points
    // within snap are bitwise equal, so one lexicographic sort exposes all
    // such pairs as adjacent runs.
    let idx = &mut scratch.idx;
    idx.clear();
    idx.extend((0..n).filter(|&i| !mask[i]));
    idx.sort_by(|&a, &b| points[a].lex_cmp(points[b]));
    for w in 1..idx.len() {
        let (i, j) = (idx[w - 1], idx[w]);
        if points[i] == points[j] {
            let ri = find(parent, i);
            let rj = find(parent, j);
            if ri != rj {
                parent[ri] = rj;
            }
        }
    }

    // Dirty-vs-all edges: a moved point may snap to anything.
    for &i in dirty {
        for j in 0..n {
            if j != i && points[i].within(points[j], snap) {
                let ri = find(parent, i);
                let rj = find(parent, j);
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }

    emit_centroids(points, scratch, out);
}

/// Is every pair of *distinct* values in `points` farther than `snap`
/// apart? This is the invariant [`canonicalize_dirty_into`] requires of
/// the clean points; the incremental engine re-verifies it on each
/// canonical output and falls back to the full pass when it fails.
/// Bitwise duplicates are deduplicated first, so stacked multiplicities
/// cost O(n log n), not O(n²).
pub fn snap_separated(points: &[Point], snap: f64, scratch: &mut CanonScratch) -> bool {
    let uniq = &mut scratch.uniq;
    uniq.clear();
    uniq.extend_from_slice(points);
    uniq.sort_by(|a, b| a.lex_cmp(*b));
    uniq.dedup();
    for i in 0..uniq.len() {
        for j in (i + 1)..uniq.len() {
            if uniq[j].x - uniq[i].x > snap {
                break;
            }
            if uniq[i].within(uniq[j], snap) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tol {
        Tol::default()
    }

    #[test]
    fn distinct_counts_multiplicities() {
        let c = Configuration::new(vec![
            Point::new(1.0, 1.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 1.0),
        ]);
        let d = c.distinct();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0], (Point::new(0.0, 0.0), 1));
        assert_eq!(d[1], (Point::new(1.0, 1.0), 3));
    }

    #[test]
    fn canonical_snaps_noisy_duplicates() {
        let c = Configuration::canonical(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1e-8, 1e-8),
                Point::new(-1e-8, 0.0),
                Point::new(2.0, 2.0),
            ],
            t(),
        );
        assert_eq!(c.distinct().len(), 2);
        let (max, pts) = c.max_multiplicity();
        assert_eq!(max, 3);
        assert_eq!(pts.len(), 1);
        assert!(pts[0].dist(Point::ORIGIN) < 1e-7);
    }

    #[test]
    fn canonical_clusters_transitively() {
        // Chain: a-b within snap, b-c within snap, a-c slightly beyond.
        let snap = 1e-6;
        let tol = Tol::new(1e-9, 1e-9, snap);
        let c = Configuration::canonical(
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.8e-6, 0.0),
                Point::new(1.6e-6, 0.0),
            ],
            tol,
        );
        assert_eq!(c.distinct().len(), 1);
    }

    #[test]
    fn mult_uses_snap_radius() {
        let c = Configuration::new(vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0)]);
        assert_eq!(c.mult(Point::new(0.0, 1e-8), t()), 1);
        assert_eq!(c.mult(Point::new(2.0, 0.0), t()), 0);
    }

    #[test]
    fn unique_max_multiplicity_detection() {
        let unique = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
        ]);
        let (p, m) = unique.unique_max_multiplicity().unwrap();
        assert_eq!((p, m), (Point::new(0.0, 0.0), 2));

        let tie = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 0.0),
        ]);
        assert!(tie.unique_max_multiplicity().is_none());
    }

    #[test]
    fn linearity() {
        let line = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(4.0, 4.0),
            Point::new(1.0, 1.0),
        ]);
        assert!(line.is_linear(t()));
        let tri = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ]);
        assert!(!tri.is_linear(t()));
        // <= 2 distinct points is always linear.
        let two = Configuration::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
        assert!(two.is_linear(t()));
    }

    #[test]
    fn gathered_detection() {
        let g = Configuration::new(vec![Point::new(2.0, 2.0); 5]);
        assert!(g.is_gathered());
        let ng = Configuration::new(vec![Point::new(2.0, 2.0), Point::new(3.0, 2.0)]);
        assert!(!ng.is_gathered());
        assert!(Configuration::default().is_gathered());
    }

    #[test]
    fn sec_ignores_multiplicity() {
        // sec is over U(C): stacking robots on one point must not move it.
        let base = Configuration::new(vec![Point::new(-1.0, 0.0), Point::new(1.0, 0.0)]);
        let stacked = Configuration::new(vec![
            Point::new(-1.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 0.0),
        ]);
        assert!(base.sec().center.dist(stacked.sec().center) < 1e-12);
    }

    #[test]
    fn sum_of_distances_counts_multiplicity() {
        let c = Configuration::new(vec![
            Point::new(1.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(-2.0, 0.0),
        ]);
        assert_eq!(c.sum_of_distances(Point::ORIGIN), 1.0 + 1.0 + 2.0);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut c: Configuration = (0..3).map(|i| Point::new(i as f64, 0.0)).collect();
        assert_eq!(c.len(), 3);
        c.extend([Point::new(9.0, 9.0)]);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn map_applies_transform() {
        let c = Configuration::new(vec![Point::new(1.0, 2.0)]);
        let moved = c.map(|p| Point::new(p.x + 1.0, p.y));
        assert_eq!(moved.points()[0], Point::new(2.0, 2.0));
    }

    #[test]
    fn soa_mirror_tracks_every_mutator() {
        fn assert_synced(c: &Configuration) {
            assert_eq!(c.soa().len(), c.len());
            for (i, p) in c.points().iter().enumerate() {
                assert_eq!(c.soa().get(i), *p, "mirror out of sync at {i}");
            }
        }

        let mut c = Configuration::new(vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)]);
        assert_synced(&c);
        c.set_point(1, Point::new(-1.0, -1.0));
        assert_synced(&c);
        c.map_in_place(|p| Point::new(p.x + 1.0, p.y));
        assert_synced(&c);
        c.extend([Point::new(7.0, 8.0)]);
        assert_synced(&c);
        c.copy_from_slice(&[Point::new(0.5, 0.5)]);
        assert_synced(&c);
        let other = Configuration::canonical(vec![Point::new(9.0, 9.0); 3], t());
        c.copy_from(&other);
        assert_synced(&c);
        assert_synced(&c.clone());
        assert_synced(&c.map(|p| Point::new(-p.x, p.y)));
        let collected: Configuration = (0..4).map(|i| Point::new(i as f64, 0.0)).collect();
        assert_synced(&collected);
    }

    /// Simulates the incremental round loop: start from a canonical
    /// separated output, move the `dirty` indices, and check the dirty pass
    /// reproduces the full pass bitwise.
    fn assert_dirty_matches_full(points: &[Point], dirty: &[usize], snap: f64) {
        let mut scratch = CanonScratch::default();
        let (mut full, mut incr) = (Vec::new(), Vec::new());
        canonicalize_into(points, snap, &mut scratch, &mut full);
        canonicalize_dirty_into(points, snap, dirty, &mut scratch, &mut incr);
        assert_eq!(
            full.len(),
            incr.len(),
            "dirty canonicalization changed the length"
        );
        for (i, (a, b)) in full.iter().zip(&incr).enumerate() {
            assert!(
                a.x.to_bits() == b.x.to_bits() && a.y.to_bits() == b.y.to_bits(),
                "dirty canonicalization diverged at {i}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn dirty_canonicalization_matches_full_pass() {
        let snap = 1e-6;
        // Clean points: a canonical separated output — stacked multiplicity
        // at the origin plus spread satellites (all pairwise > snap).
        let mut pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(3.0, 1.0),
            Point::new(-2.0, 4.0),
            Point::new(5.0, -5.0),
        ];
        // No movement: empty dirty set must still reproduce the stacks.
        assert_dirty_matches_full(&pts, &[], snap);
        // One satellite moves near another (snaps into a fresh cluster).
        pts[3] = Point::new(-2.0, 4.0 + 0.5e-6);
        assert_dirty_matches_full(&pts, &[3], snap);
        // A robot leaves the stack; the stack stays a clean bitwise group.
        pts[2] = Point::new(1.0, 1.0);
        assert_dirty_matches_full(&pts, &[2, 3], snap);
        // A dirty robot lands bitwise on the stack.
        pts[2] = Point::new(0.0, 0.0);
        assert_dirty_matches_full(&pts, &[2, 3], snap);
        // Chain through a dirty point: clean at 0 and 1.6e-6 (> snap apart),
        // dirty lands between and merges all three transitively.
        let chain = vec![
            Point::new(0.0, 0.0),
            Point::new(1.6e-6, 0.0),
            Point::new(0.8e-6, 0.0),
            Point::new(9.0, 9.0),
        ];
        assert_dirty_matches_full(&chain, &[2], snap);
        // All-dirty degenerates to the full pass.
        assert_dirty_matches_full(&chain, &[0, 1, 2, 3], snap);
    }

    #[test]
    fn snap_separated_detects_close_distinct_pairs() {
        let snap = 1e-6;
        let mut scratch = CanonScratch::default();
        let sep = vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0), // bitwise duplicate: fine
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ];
        assert!(snap_separated(&sep, snap, &mut scratch));
        let close = vec![
            Point::new(0.0, 0.0),
            Point::new(0.5e-6, 0.0), // distinct value within snap
            Point::new(1.0, 0.0),
        ];
        assert!(!snap_separated(&close, snap, &mut scratch));
        // Same x, close y: caught despite the x-window early break.
        let close_y = vec![Point::new(2.0, 0.0), Point::new(2.0, 0.5e-6)];
        assert!(!snap_separated(&close_y, snap, &mut scratch));
        assert!(snap_separated(&[], snap, &mut scratch));
    }

    #[test]
    fn display_shows_multiplicity() {
        let c = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
        ]);
        let s = format!("{c}");
        assert!(s.contains("x2"), "{s}");
        assert!(s.contains("n=3"), "{s}");
    }
}
