//! Rotational symmetry of configurations (Definition 3 of the paper).
//!
//! Positions with equal views (Definition 2) are equivalent under the
//! relation `∼ᵣ`; the *rotational symmetry* `sym(C)` is the cardinality of
//! the largest equivalence class. A configuration with `sym(C) = 1` is
//! *asymmetric*: every occupied position has a unique view, which the
//! algorithm exploits to elect a unique gathering point (class `A`).
//!
//! Lemma 3.1: if `sym(C) = k > 1`, every equivalence class not at the SEC
//! centre is a regular `k`-gon centred on the SEC centre whose corners carry
//! equal multiplicity.

use crate::configuration::Configuration;
use crate::view::{view_of, View};
use gather_geom::{Point, Tol};
use std::collections::BTreeMap;

/// Groups the occupied positions of `config` into equivalence classes of
/// equal views, returned with each class's shared view, ordered by view
/// (ascending).
///
/// # Example
///
/// ```
/// use gather_config::symmetry_classes;
/// use gather_config::Configuration;
/// use gather_geom::{Point, Tol};
///
/// let square = Configuration::new(vec![
///     Point::new(1.0, 0.0), Point::new(0.0, 1.0),
///     Point::new(-1.0, 0.0), Point::new(0.0, -1.0),
/// ]);
/// let classes = symmetry_classes(&square, Tol::default());
/// assert_eq!(classes.len(), 1);          // all corners equivalent
/// assert_eq!(classes[0].1.len(), 4);
/// ```
pub fn symmetry_classes(config: &Configuration, tol: Tol) -> Vec<(View, Vec<Point>)> {
    let mut classes: BTreeMap<View, Vec<Point>> = BTreeMap::new();
    for p in config.distinct_points() {
        classes.entry(view_of(config, p, tol)).or_default().push(p);
    }
    classes.into_iter().collect()
}

/// The rotational symmetry `sym(C)`: the size of the largest class of
/// positions with equal views (Definition 3).
///
/// Returns `0` for an empty configuration; a gathered configuration has
/// symmetry `1`.
///
/// # Example
///
/// ```
/// use gather_config::{rotational_symmetry, Configuration};
/// use gather_geom::{Point, Tol};
///
/// let line = Configuration::new(vec![
///     Point::new(-1.0, 0.0), Point::new(0.0, 0.0), Point::new(1.0, 0.0),
/// ]);
/// // The two endpoints are equivalent; the middle point is alone.
/// assert_eq!(rotational_symmetry(&line, Tol::default()), 2);
/// ```
pub fn rotational_symmetry(config: &Configuration, tol: Tol) -> usize {
    symmetry_classes(config, tol)
        .iter()
        .map(|(_, pts)| pts.len())
        .max()
        .unwrap_or(0)
}

/// Is the configuration asymmetric (`sym(C) = 1`)?
pub fn is_asymmetric(config: &Configuration, tol: Tol) -> bool {
    rotational_symmetry(config, tol) == 1
}

/// [`rotational_symmetry`] for the incremental analysis path: reuses the
/// `cached` value when no robot moved since it was computed (`dirty`
/// empty) and recomputes otherwise.
///
/// A position's view (Definition 2) encodes the polar coordinates of
/// *every* robot, so a single moved robot invalidates all views at once —
/// there is no sound per-index patch of the equivalence classes. The
/// incremental win for symmetry is therefore all-or-nothing: static
/// rounds skip the computation entirely, and the classifier only requests
/// symmetry for quasi-regular configurations in the first place (see
/// DESIGN.md §15).
pub fn rotational_symmetry_dirty(
    config: &Configuration,
    tol: Tol,
    dirty: &[usize],
    cached: Option<usize>,
) -> usize {
    if dirty.is_empty() {
        if let Some(sym) = cached {
            return sym;
        }
    }
    rotational_symmetry(config, tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn t() -> Tol {
        Tol::default()
    }

    fn regular_ngon(n: usize, r: f64, phase: f64) -> Configuration {
        (0..n)
            .map(|k| {
                let th = TAU * k as f64 / n as f64 + phase;
                Point::new(r * th.cos(), r * th.sin())
            })
            .collect()
    }

    #[test]
    fn regular_polygons_have_full_symmetry() {
        for n in [3usize, 4, 5, 6, 8] {
            let c = regular_ngon(n, 3.0, 0.21);
            assert_eq!(rotational_symmetry(&c, t()), n, "n-gon with n={n}");
        }
    }

    #[test]
    fn scalene_triangle_is_asymmetric() {
        let c = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(1.0, 2.5),
        ]);
        assert!(is_asymmetric(&c, t()));
        assert_eq!(symmetry_classes(&c, t()).len(), 3);
    }

    #[test]
    fn two_nested_squares_have_symmetry_four() {
        let mut pts = regular_ngon(4, 3.0, 0.0).points().to_vec();
        pts.extend_from_slice(regular_ngon(4, 1.0, 0.4).points());
        let c = Configuration::new(pts);
        assert_eq!(rotational_symmetry(&c, t()), 4);
        assert_eq!(symmetry_classes(&c, t()).len(), 2);
    }

    #[test]
    fn multiplicity_breaks_symmetry() {
        // A square with one doubled corner: that corner's view differs.
        let mut pts = regular_ngon(4, 2.0, 0.0).points().to_vec();
        pts.push(pts[0]);
        let c = Configuration::new(pts);
        let sym = rotational_symmetry(&c, t());
        assert!(sym < 4, "sym={sym}");
    }

    #[test]
    fn center_point_does_not_hide_ring_symmetry() {
        let mut pts = regular_ngon(5, 2.0, 0.0).points().to_vec();
        pts.push(Point::ORIGIN);
        let c = Configuration::new(pts);
        assert_eq!(rotational_symmetry(&c, t()), 5);
    }

    #[test]
    fn line_endpoints_are_equivalent() {
        let c = Configuration::new(vec![
            Point::new(-2.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
        ]);
        let classes = symmetry_classes(&c, t());
        assert_eq!(classes.len(), 2);
        let sizes: Vec<usize> = classes.iter().map(|(_, p)| p.len()).collect();
        assert!(sizes.contains(&2) && sizes.contains(&1));
    }

    #[test]
    fn asymmetric_line_is_asymmetric() {
        let c = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(5.0, 0.0),
        ]);
        assert!(is_asymmetric(&c, t()));
    }

    #[test]
    fn empty_and_gathered() {
        assert_eq!(rotational_symmetry(&Configuration::default(), t()), 0);
        let g = Configuration::new(vec![Point::new(1.0, 1.0); 6]);
        assert_eq!(rotational_symmetry(&g, t()), 1);
    }

    #[test]
    fn dirty_symmetry_reuses_cache_only_on_static_rounds() {
        let c = regular_ngon(6, 2.0, 0.0);
        let sym = rotational_symmetry(&c, t());
        // Static round: the cached value stands, even a (wrong) sentinel —
        // proving no recompute happened.
        assert_eq!(rotational_symmetry_dirty(&c, t(), &[], Some(99)), 99);
        assert_eq!(rotational_symmetry_dirty(&c, t(), &[], Some(sym)), sym);
        // No cache, or any dirty index: full recompute.
        assert_eq!(rotational_symmetry_dirty(&c, t(), &[], None), sym);
        assert_eq!(rotational_symmetry_dirty(&c, t(), &[3], Some(99)), sym);
    }

    #[test]
    fn bivalent_configuration_has_symmetry_two() {
        let c = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 0.0),
        ]);
        assert_eq!(rotational_symmetry(&c, t()), 2);
    }
}
