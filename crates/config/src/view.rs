//! Views of robot positions (Definition 2 of the paper).
//!
//! The *view* of an occupied position `p` is the multiset of all robot
//! positions expressed in a polar coordinate system intrinsic to the
//! configuration: origin `p`, zero direction toward the centre `c` of the
//! smallest enclosing circle of `U(C)` (or toward a maximising reference
//! point when `p = c`), angles measured **clockwise** (chirality), and
//! distances normalised by `|p, c|` (the definition places `c` at `(1, 0)`).
//!
//! Views are therefore invariant under the orientation-preserving
//! similarity transforms that relate robot frames: two robots always agree
//! on the view of every position, and on the total (lexicographic) order
//! among views. The algorithm uses this order to elect points in
//! asymmetric configurations, and the equivalence classes of
//! equal-view positions define rotational symmetry (Definition 3).
//!
//! # Quantisation
//!
//! To obtain an exact, hashable total order in floating point, view entries
//! are quantised to a grid of `1e-7` (normalised distance units / radians).
//! Geometrically equal features computed through different arithmetic paths
//! differ by ~1e-12, so they land in the same cell with overwhelming
//! probability; genuinely distinct features in the generated workloads are
//! separated by far more than the grid step.

use crate::configuration::Configuration;
use gather_geom::{angle::normalize_tau, Point, Tol};
use std::f64::consts::TAU;

/// Quantisation step for view entries (normalised distances and radians).
pub const VIEW_QUANT: f64 = 1e-7;

/// Number of quantised angle buckets in a full turn.
fn angle_buckets() -> i64 {
    (TAU / VIEW_QUANT).round() as i64
}

/// Quantises a clockwise angle in `[0, 2π)` onto the circular grid.
fn quant_angle(theta: f64) -> i64 {
    let b = angle_buckets();
    ((theta / VIEW_QUANT).round() as i64).rem_euclid(b)
}

/// Quantises a normalised distance onto the grid.
fn quant_dist(d: f64) -> i64 {
    (d / VIEW_QUANT).round() as i64
}

/// The similarity-invariant view of a position (Definition 2), with a total
/// order.
///
/// Entries are quantised `(distance, clockwise angle)` pairs, one per robot
/// (so multiplicities are represented by repeated entries; robots located at
/// the observed position contribute `(0, 0)` entries), sorted ascending.
///
/// # Example
///
/// ```
/// use gather_config::{view_of, Configuration};
/// use gather_geom::{Point, Tol};
///
/// // In a 3-4-5-ish asymmetric triangle every position has a distinct view.
/// let c = Configuration::new(vec![
///     Point::new(0.0, 0.0), Point::new(4.0, 0.0), Point::new(0.0, 3.0),
/// ]);
/// let tol = Tol::default();
/// let v0 = view_of(&c, Point::new(0.0, 0.0), tol);
/// let v1 = view_of(&c, Point::new(4.0, 0.0), tol);
/// assert_ne!(v0, v1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct View {
    entries: Vec<(i64, i64)>,
}

impl View {
    /// The quantised `(distance, clockwise-angle)` entries, sorted
    /// ascending; one entry per robot.
    pub fn entries(&self) -> &[(i64, i64)] {
        &self.entries
    }

    /// Number of robots represented (always `n`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the view empty (empty configuration)?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl std::fmt::Display for View {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "View[")?;
        for (i, (d, a)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "({d},{a})")?;
        }
        write!(f, "]")
    }
}

/// Builds the view of position `p` using `reference` as the zero direction
/// and `unit` as the distance unit.
fn view_with_reference(
    config: &Configuration,
    p: Point,
    reference: Point,
    unit: f64,
    tol: Tol,
) -> View {
    let ref_dir = reference - p;
    let ref_angle = ref_dir.angle();
    let mut entries: Vec<(i64, i64)> = config
        .points()
        .iter()
        .map(|q| {
            if q.within(p, tol.snap) {
                (0, 0)
            } else {
                let v = *q - p;
                // Clockwise angle from the reference direction.
                let cw = normalize_tau(ref_angle - v.angle());
                (quant_dist(v.norm() / unit), quant_angle(cw))
            }
        })
        .collect();
    entries.sort_unstable();
    View { entries }
}

/// Computes the view of position `p` in configuration `config`
/// (Definition 2).
///
/// `p` should be an occupied position (the definition only assigns views to
/// points of `U(C)`), but any point may be observed; the reference
/// conventions are:
///
/// * if `p` differs from the centre `c` of `sec(U(C))`, the zero direction
///   points toward `c` and the unit distance is `|p, c|`;
/// * if `p` coincides with `c`, the reference is the occupied position
///   `x ≠ p` whose own view is maximal, and among maximising candidates the
///   one producing the greatest view of `p` (the definition allows "any"
///   maximising `x`; taking the max makes the choice deterministic and
///   agrees whenever the definition's choices agree);
/// * if the configuration occupies a single location, the view is all-zero.
pub fn view_of(config: &Configuration, p: Point, tol: Tol) -> View {
    let distinct = config.distinct_points();
    if distinct.len() <= 1 {
        return View {
            entries: vec![(0, 0); config.len()],
        };
    }
    let c = config.sec().center;
    if !p.within(c, tol.snap) {
        return view_with_reference(config, p, c, p.dist(c), tol);
    }
    // p is the SEC centre: pick the reference among other occupied points.
    let candidates: Vec<Point> = distinct
        .iter()
        .copied()
        .filter(|x| !x.within(p, tol.snap))
        .collect();
    let max_view = candidates
        .iter()
        .map(|x| view_of_noncenter(config, *x, c, tol))
        .max()
        .expect("non-gathered configuration has another occupied point");
    candidates
        .iter()
        .filter(|x| view_of_noncenter(config, **x, c, tol) == max_view)
        .map(|x| view_with_reference(config, p, *x, p.dist(*x), tol))
        .max()
        .expect("at least one maximising reference")
}

/// View of a position known not to be the SEC centre `c`.
fn view_of_noncenter(config: &Configuration, p: Point, c: Point, tol: Tol) -> View {
    view_with_reference(config, p, c, p.dist(c), tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gather_geom::Similarity;
    use std::f64::consts::FRAC_PI_3;

    fn t() -> Tol {
        Tol::default()
    }

    fn square_config() -> Configuration {
        Configuration::new(vec![
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(-1.0, 0.0),
            Point::new(0.0, -1.0),
        ])
    }

    #[test]
    fn square_corners_share_one_view() {
        let c = square_config();
        let views: Vec<View> = c
            .distinct_points()
            .into_iter()
            .map(|p| view_of(&c, p, t()))
            .collect();
        for v in &views[1..] {
            assert_eq!(views[0], *v);
        }
    }

    #[test]
    fn asymmetric_positions_have_distinct_views() {
        let c = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(1.0, 2.5),
            Point::new(3.0, 1.0),
        ]);
        let views: Vec<View> = c
            .distinct_points()
            .into_iter()
            .map(|p| view_of(&c, p, t()))
            .collect();
        for i in 0..views.len() {
            for j in (i + 1)..views.len() {
                assert_ne!(views[i], views[j], "positions {i} and {j}");
            }
        }
    }

    #[test]
    fn views_are_similarity_invariant() {
        let c = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(1.0, 2.5),
            Point::new(3.0, 1.0),
        ]);
        let sim = Similarity::new(FRAC_PI_3, 2.7, Point::new(-3.0, 11.0));
        let tc = c.map(|p| sim.apply(p));
        let mut orig: Vec<View> = c
            .distinct_points()
            .into_iter()
            .map(|p| view_of(&c, p, t()))
            .collect();
        let mut moved: Vec<View> = tc
            .distinct_points()
            .into_iter()
            .map(|p| view_of(&tc, p, t()))
            .collect();
        orig.sort();
        moved.sort();
        assert_eq!(orig, moved);
    }

    #[test]
    fn view_encodes_multiplicity() {
        let single = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 2.0),
        ]);
        let stacked = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 2.0),
        ]);
        let p = Point::new(2.0, 0.0);
        assert_ne!(view_of(&single, p, t()), view_of(&stacked, p, t()));
    }

    #[test]
    fn observer_position_contributes_zero_entries() {
        let c = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
        ]);
        let v = view_of(&c, Point::new(0.0, 0.0), t());
        let zeros = v.entries().iter().filter(|e| **e == (0, 0)).count();
        assert_eq!(zeros, 2);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn gathered_configuration_has_trivial_view() {
        let c = Configuration::new(vec![Point::new(5.0, 5.0); 4]);
        let v = view_of(&c, Point::new(5.0, 5.0), t());
        assert_eq!(v.entries(), &[(0, 0); 4]);
    }

    #[test]
    fn center_position_view_is_well_defined() {
        // Square plus a robot at the SEC centre.
        let mut pts = square_config().points().to_vec();
        pts.push(Point::ORIGIN);
        let c = Configuration::new(pts);
        let v = view_of(&c, Point::ORIGIN, t());
        assert_eq!(v.len(), 5);
        // The centre sees 4 robots at normalised distance 1.
        let ones = v
            .entries()
            .iter()
            .filter(|(d, _)| *d == quant_dist(1.0))
            .count();
        assert_eq!(ones, 4);
    }

    #[test]
    fn center_view_invariant_under_rotation() {
        let mut pts = square_config().points().to_vec();
        pts.push(Point::ORIGIN);
        let c = Configuration::new(pts);
        let sim = Similarity::new(0.77, 1.3, Point::new(2.0, -1.0));
        let tc = c.map(|p| sim.apply(p));
        let v1 = view_of(&c, Point::ORIGIN, t());
        let v2 = view_of(&tc, sim.apply(Point::ORIGIN), t());
        assert_eq!(v1, v2);
    }

    #[test]
    fn views_have_total_order() {
        let c = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(1.0, 2.5),
        ]);
        let mut views: Vec<View> = c
            .distinct_points()
            .into_iter()
            .map(|p| view_of(&c, p, t()))
            .collect();
        views.sort();
        assert!(views[0] <= views[1] && views[1] <= views[2]);
    }

    #[test]
    fn chirality_distinguishes_mirror_configurations() {
        // A configuration and its mirror image: with chirality (clockwise
        // angles), a position's view differs from the view of its mirror
        // position unless the configuration is itself symmetric.
        let c = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(1.0, 2.5),
        ]);
        let mirrored = c.map(|p| Point::new(p.x, -p.y));
        let v = view_of(&c, Point::new(0.0, 0.0), t());
        let vm = view_of(&mirrored, Point::new(0.0, 0.0), t());
        assert_ne!(v, vm);
    }
}
