//! Regular configurations (Definition 5 of the paper).
//!
//! A configuration is *regular* when the string of angles around some point
//! `c` — the *centre of regularity* — is periodic with period `m > 1`.
//! Regularity generalises rotational symmetry (every symmetric configuration
//! is regular with `m = sym(C)`) and is preserved when robots move radially
//! toward the centre, which is what makes it useful for gathering:
//! biangular and partially-converged symmetric configurations stay regular.

use crate::angles::string_of_angles;
use crate::configuration::Configuration;
use gather_geom::{weber_point_weiszfeld, weber_point_weiszfeld_from, Point, Tol};

/// Evidence that a configuration is regular: the centre and the period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegularityWitness {
    /// The centre of regularity `CR(C)`.
    pub center: Point,
    /// The regularity `reg(C) = per(SA(center)) > 1`.
    pub m: usize,
}

/// The periodicity of the string of angles of `config` around `center`
/// (`per(SA(center))`); `1` means "not regular around this point".
///
/// # Example
///
/// ```
/// use gather_config::{regularity_around, Configuration};
/// use gather_geom::{Point, Tol};
///
/// let square = Configuration::new(vec![
///     Point::new(1.0, 0.0), Point::new(0.0, 1.0),
///     Point::new(-1.0, 0.0), Point::new(0.0, -1.0),
/// ]);
/// assert_eq!(regularity_around(&square, Point::ORIGIN, Tol::default()), 4);
/// assert_eq!(
///     regularity_around(&square, Point::new(0.3, 0.0), Tol::default()),
///     1,
/// );
/// ```
pub fn regularity_around(config: &Configuration, center: Point, tol: Tol) -> usize {
    string_of_angles(config, center, tol).periodicity()
}

/// Candidate centres for regularity detection.
///
/// The centre of regularity of a non-linear configuration is its Weber
/// point (Lemma 3.3 via quasi-regularity). Three families of candidates
/// cover all cases arising during execution of the algorithm:
///
/// * every occupied position (centres carrying robots),
/// * the centre of the smallest enclosing circle (symmetric configurations,
///   where the Weber point is the SEC centre),
/// * the numerically computed Weber point (regular-but-not-symmetric
///   configurations such as biangular ones, whose centre satisfies the
///   Weber first-order condition `Σ unit-vectors = 0`).
pub(crate) fn candidate_centers(config: &Configuration, tol: Tol) -> Vec<Point> {
    candidate_centers_hinted(config, tol, None).0
}

/// [`candidate_centers`] with an optional warm-start iterate for the numeric
/// Weber candidate (the previous round's Weber point, see Lemma 3.2), and
/// the computed Weber point returned alongside so callers can carry it
/// forward as the next round's hint.
pub(crate) fn candidate_centers_hinted(
    config: &Configuration,
    tol: Tol,
    hint: Option<Point>,
) -> (Vec<Point>, Point) {
    let mut candidates = config.distinct_points();
    candidates.push(config.sec().center);
    let weber = match hint {
        Some(h) => weber_point_weiszfeld_from(h, config.points(), tol).point,
        None => weber_point_weiszfeld(config.points(), tol).point,
    };
    candidates.push(weber);
    (candidates, weber)
}

/// Searches for a centre of regularity among the candidate centres
/// (every occupied position, the SEC centre, and the numeric Weber point).
/// Returns the witness with the largest period, or `None` when no
/// candidate yields `per(SA) > 1`.
///
/// The search is complete for the configurations arising in the gathering
/// algorithm: the centre of regularity of a non-linear configuration is
/// its Weber point (Lemma 3.3), and all three candidate families target
/// exactly that point; DESIGN.md §2 documents this substitution for the
/// paper's abstract "there exists a point `c`".
pub fn detect_regularity(config: &Configuration, tol: Tol) -> Option<RegularityWitness> {
    let mut best: Option<RegularityWitness> = None;
    for c in candidate_centers(config, tol) {
        let m = regularity_around(config, c, tol);
        if m > 1 && best.is_none_or(|b| m > b.m) {
            best = Some(RegularityWitness { center: c, m });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn t() -> Tol {
        Tol::default()
    }

    fn ngon(n: usize, r: f64, phase: f64) -> Vec<Point> {
        (0..n)
            .map(|k| {
                let th = TAU * k as f64 / n as f64 + phase;
                Point::new(r * th.cos(), r * th.sin())
            })
            .collect()
    }

    #[test]
    fn symmetric_configurations_are_regular() {
        for n in [3usize, 4, 6] {
            let c = Configuration::new(ngon(n, 2.0, 0.5));
            let w = detect_regularity(&c, t()).expect("regular");
            assert_eq!(w.m, n);
            assert!(w.center.dist(Point::ORIGIN) < 1e-6);
        }
    }

    #[test]
    fn radially_perturbed_ngon_stays_regular() {
        // Shrink alternate radii: directions unchanged, still m-periodic.
        let pts: Vec<Point> = ngon(6, 2.0, 0.0)
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                if i % 2 == 0 {
                    Point::new(p.x * 0.4, p.y * 0.4)
                } else {
                    p
                }
            })
            .collect();
        let c = Configuration::new(pts);
        // Note: this configuration is still 3-fold symmetric; the string of
        // angles around the origin is 6-periodic because directions are.
        assert_eq!(regularity_around(&c, Point::ORIGIN, t()), 6);
        let w = detect_regularity(&c, t()).expect("regular");
        assert!(w.m >= 3);
    }

    #[test]
    fn biangular_is_regular_with_half_period() {
        let k = 4usize;
        let alpha = 0.3;
        let beta = TAU / k as f64 - alpha;
        let mut pts = Vec::new();
        let mut theta: f64 = 0.0;
        for i in 0..(2 * k) {
            let r = if i % 2 == 0 { 1.0 } else { 3.0 };
            pts.push(Point::new(r * theta.cos(), r * theta.sin()));
            theta += if i % 2 == 0 { alpha } else { beta };
        }
        let c = Configuration::new(pts);
        assert_eq!(regularity_around(&c, Point::ORIGIN, t()), k);
        let w = detect_regularity(&c, t()).expect("biangular is regular");
        assert_eq!(w.m, k);
        assert!(w.center.dist(Point::ORIGIN) < 1e-5, "center {}", w.center);
    }

    #[test]
    fn asymmetric_configuration_is_not_regular() {
        // Weber point at the occupied origin (pull of others ≈ 0.65 < 1)
        // with non-periodic directions 0°, 100°, 200°: no candidate centre
        // is regular. (Generic configurations with an *unoccupied* Weber
        // point are regular around it for n = 3, 4 — see the quasi module.)
        let deg = |d: f64| d.to_radians();
        let c = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(2.0 * deg(100.0).cos(), 2.0 * deg(100.0).sin()),
            Point::new(2.5 * deg(200.0).cos(), 2.5 * deg(200.0).sin()),
        ]);
        assert!(detect_regularity(&c, t()).is_none());
    }

    #[test]
    fn every_triangle_is_regular_around_its_fermat_point() {
        let c = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(1.0, 2.5),
        ]);
        let w = detect_regularity(&c, t()).expect("Fermat point regularity");
        assert_eq!(w.m, 3);
    }

    #[test]
    fn occupied_center_is_found() {
        let mut pts = ngon(5, 2.0, 0.0);
        pts.push(Point::ORIGIN);
        let c = Configuration::new(pts);
        let w = detect_regularity(&c, t()).expect("regular around occupied centre");
        assert_eq!(w.m, 5);
        assert!(w.center.dist(Point::ORIGIN) < 1e-6);
    }

    #[test]
    fn regularity_larger_than_symmetry_is_possible() {
        // Square with two opposite points pulled inward by different
        // factors: only 2-fold symmetric (congruence) at best, but the
        // angle string around the centre is still 4-periodic.
        let pts = vec![
            Point::new(2.0, 0.0),
            Point::new(0.0, 0.7),
            Point::new(-1.2, 0.0),
            Point::new(0.0, -2.0),
        ];
        let c = Configuration::new(pts);
        assert_eq!(regularity_around(&c, Point::ORIGIN, t()), 4);
    }
}
