//! Quasi-regular configurations and their detection (Definitions 6–7,
//! Lemma 3.4, Theorem 3.1 of the paper).
//!
//! A configuration `C` is *quasi-regular* with centre `c` when a regular
//! configuration with centre of regularity `c` can be obtained from `C` by
//! moving only robots located at `c`. Quasi-regularity matters because:
//!
//! * it is preserved when robots move straight toward the centre (even if
//!   the adversary interrupts them), and
//! * the centre of quasi-regularity of a non-linear configuration **is its
//!   Weber point** (Lemma 3.3), the ideal crash-tolerant gathering target.
//!
//! Detection has two cases:
//!
//! * **Occupied centre** (`c ∈ C`): the paper's combinatorial criterion
//!   (Lemma 3.4) — for some `m > 1`, the robots at `c` suffice to fill every
//!   angular slot of the `2π/m`-rotation orbits of the occupied directions
//!   around `c` up to the orbit's maximum. Implemented exactly in
//!   [`quasi_regular_with_center`].
//! * **Unoccupied centre**: then no point may be moved, so `C` itself must
//!   be regular around `c`; such a centre satisfies the Weber first-order
//!   condition and is found among the regularity candidate centres (SEC
//!   centre, numeric Weber point).

use crate::angles::{center_zone_radius, direction_buckets, ANGLE_EPS};
use crate::configuration::Configuration;
use crate::regularity::{candidate_centers_hinted, regularity_around};
use gather_geom::{Point, Tol};
use std::f64::consts::TAU;

/// Evidence that a configuration is quasi-regular (Definition 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuasiRegularity {
    /// The centre of quasi-regularity `CQR(C)`; for non-linear
    /// configurations this is the Weber point (Lemma 3.3).
    pub center: Point,
    /// The quasi-regularity `qreg(C) > 1`.
    pub m: usize,
    /// Whether the centre is an occupied position.
    pub center_occupied: bool,
}

/// Absolute circular distance between two angles, in `[0, π]`.
fn circ_diff(a: f64, b: f64) -> f64 {
    let mut d = (a - b).abs() % TAU;
    if d > TAU / 2.0 {
        d = TAU - d;
    }
    d
}

/// Lemma 3.4: is `config` quasi-regular with **occupied** centre `p`?
///
/// Returns the largest `m > 1` for which the criterion
/// `mult(p) ≥ Σ_x (OBJ(C, x) − LOC(C, x))` holds — i.e. the robots stacked
/// at `p` can be redistributed to the empty angular slots so that the
/// directions around `p` become `m`-periodic — or `None` if no `m` works.
///
/// `p` must carry at least one robot, and at least one robot must lie
/// elsewhere (otherwise the notion is degenerate and `None` is returned).
///
/// # Example
///
/// ```
/// use gather_config::{quasi_regular_with_center, Configuration};
/// use gather_geom::{Point, Tol};
///
/// // Three of four corners of a square plus 1 spare robot at the centre:
/// // the spare can complete the square, so the configuration is
/// // quasi-regular with the centre as its Weber point.
/// let c = Configuration::new(vec![
///     Point::new(1.0, 0.0), Point::new(0.0, 1.0), Point::new(-1.0, 0.0),
///     Point::new(0.0, 0.0),
/// ]);
/// let m = quasi_regular_with_center(&c, Point::new(0.0, 0.0), Tol::default());
/// assert_eq!(m, Some(4));
/// ```
pub fn quasi_regular_with_center(config: &Configuration, p: Point, tol: Tol) -> Option<usize> {
    if config.mult(p, tol) == 0 {
        return None;
    }
    // Robots within the centre zone count as located at p: they are the
    // robots the quasi-regular rule may move (or has just gathered), and
    // their directions from p are numerically meaningless.
    let zone = center_zone_radius(config, p, tol);
    let mult_p = gather_geom::soa::radial_pull(config.soa(), p, zone).1;
    let buckets = direction_buckets(config, p, tol);
    if buckets.is_empty() {
        return None; // all robots at p: gathered, not quasi-regular
    }
    let n = config.len();
    let eps = ANGLE_EPS;

    let mut best: Option<usize> = None;
    for m in 2..=n {
        let step = TAU / m as f64;
        let mut visited = vec![false; buckets.len()];
        let mut deficiency: usize = 0;
        let mut feasible = true;
        for i in 0..buckets.len() {
            if visited[i] {
                continue;
            }
            // The orbit of direction i under rotation by 2π/m: m slots.
            let base = buckets[i].0;
            let mut counts: Vec<usize> = Vec::with_capacity(m);
            for j in 0..m {
                let target = base + step * j as f64;
                let mut found = 0usize;
                for (k, (angle, count)) in buckets.iter().enumerate() {
                    if circ_diff(*angle, target) <= eps {
                        found = *count;
                        if visited[k] && k != i {
                            // Slot already claimed by another orbit: the
                            // orbits overlap inconsistently under this m.
                            feasible = false;
                        }
                        visited[k] = true;
                        break;
                    }
                }
                counts.push(found);
            }
            if !feasible {
                break;
            }
            let obj = *counts.iter().max().expect("m >= 2 slots");
            deficiency += counts.iter().map(|c| obj - c).sum::<usize>();
        }
        if feasible && deficiency <= mult_p {
            best = Some(m);
        }
    }
    best
}

/// Theorem 3.1: detects whether `config` is quasi-regular and, if so,
/// returns its centre (= Weber point for non-linear configurations) and
/// quasi-regularity.
///
/// Linear configurations are excluded by convention (`None`): the paper's
/// class `QR` is disjoint from the linear classes, and the Weber machinery
/// for lines lives in `gather_geom::weber`.
///
/// Occupied-centre candidates are tested with the exact combinatorial
/// criterion of Lemma 3.4; unoccupied candidates (SEC centre, numeric Weber
/// point) with the string-of-angles periodicity. Occupied centres win ties
/// because their test is exact.
pub fn detect_quasi_regularity(config: &Configuration, tol: Tol) -> Option<QuasiRegularity> {
    detect_quasi_regularity_hinted(config, tol, None).0
}

/// [`detect_quasi_regularity`] with an optional warm-start iterate for the
/// numeric Weber candidate. Returns the detection result together with the
/// Weber point the unoccupied-centre search computed (if it ran), so the
/// caller can carry it forward as the next round's warm-start hint
/// (Lemma 3.2 makes the previous round's Weber point an excellent iterate
/// while robots move toward it).
pub fn detect_quasi_regularity_hinted(
    config: &Configuration,
    tol: Tol,
    hint: Option<Point>,
) -> (Option<QuasiRegularity>, Option<Point>) {
    if config.len() < 2 || config.is_gathered() || config.is_linear(tol) {
        return (None, None);
    }
    // Occupied centres: Lemma 3.4, prefiltered by the Weber subgradient
    // condition — by Lemma 3.3 the centre of quasi-regularity must be the
    // Weber point, and an occupied point p with multiplicity k is the
    // Weber point only if the residual pull of the other robots satisfies
    // |Σ unit(p→q)| ≤ k. The prefilter is exact up to floating noise and
    // prunes the O(n³) combinatorial test from all but O(1) candidates.
    let mut best: Option<QuasiRegularity> = None;
    for (p, _mult) in config.distinct() {
        let zone = center_zone_radius(config, p, tol);
        let (pull, zone_mult) = gather_geom::soa::radial_pull(config.soa(), p, zone);
        // Generous slack: direction noise contributes at most ANGLE_EPS
        // per robot to the residual; a false pass only costs time.
        if pull.norm() > zone_mult as f64 + 0.1 + ANGLE_EPS * config.len() as f64 {
            continue;
        }
        if let Some(m) = quasi_regular_with_center(config, p, tol) {
            if best.is_none_or(|b| m > b.m) {
                best = Some(QuasiRegularity {
                    center: p,
                    m,
                    center_occupied: true,
                });
            }
        }
    }
    if best.is_some() {
        return (best, None);
    }
    // Unoccupied centres: C itself must be regular around the centre.
    let (candidates, weber) = candidate_centers_hinted(config, tol, hint);
    for c in candidates {
        if config.mult(c, tol) > 0 {
            continue; // occupied candidates already handled exactly
        }
        let m = regularity_around(config, c, tol);
        if m > 1 && best.is_none_or(|b| m > b.m) {
            best = Some(QuasiRegularity {
                center: c,
                m,
                center_occupied: false,
            });
        }
    }
    (best, Some(weber))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gather_geom::weber_objective;

    fn t() -> Tol {
        Tol::default()
    }

    fn ngon(n: usize, r: f64, phase: f64) -> Vec<Point> {
        (0..n)
            .map(|k| {
                let th = TAU * k as f64 / n as f64 + phase;
                Point::new(r * th.cos(), r * th.sin())
            })
            .collect()
    }

    #[test]
    fn regular_polygon_is_quasi_regular_with_unoccupied_center() {
        let c = Configuration::new(ngon(5, 2.0, 0.3));
        let qr = detect_quasi_regularity(&c, t()).expect("5-gon is quasi-regular");
        assert_eq!(qr.m, 5);
        assert!(!qr.center_occupied);
        assert!(qr.center.dist(Point::ORIGIN) < 1e-6);
    }

    #[test]
    fn occupied_center_completion() {
        // 4 of 6 hexagon corners + 2 robots at the centre: the centre
        // robots can fill the 2 missing corners.
        let corners = ngon(6, 2.0, 0.0);
        let mut pts = corners[..4].to_vec();
        pts.push(Point::ORIGIN);
        pts.push(Point::ORIGIN);
        let c = Configuration::new(pts);
        let m = quasi_regular_with_center(&c, Point::ORIGIN, t());
        assert_eq!(m, Some(6));
        let qr = detect_quasi_regularity(&c, t()).expect("quasi-regular");
        assert!(qr.center_occupied);
        assert!(qr.center.dist(Point::ORIGIN) < 1e-9);
    }

    #[test]
    fn insufficient_center_multiplicity_fails() {
        // 4 of 6 hexagon corners + only 1 robot at the centre: cannot fill
        // 2 missing corners with one robot — m = 6 infeasible. But m = 2 is
        // feasible: opposite corners pair up (2 orbits complete) and the 2
        // unpaired corners need... check exact combinatorics instead of
        // guessing: the test asserts only that m = 6 is not claimed.
        let corners = ngon(6, 2.0, 0.0);
        let mut pts = corners[..4].to_vec();
        pts.push(Point::ORIGIN);
        let c = Configuration::new(pts);
        let m = quasi_regular_with_center(&c, Point::ORIGIN, t());
        assert_ne!(m, Some(6));
    }

    /// A robustly asymmetric configuration: the Weber point coincides with
    /// the occupied point at the origin (the pull of the other three robots
    /// has norm ≈ 0.65 < 1), and the directions from it (0°, 100°, 200°)
    /// are not periodic. Note that a *generic* 4-point configuration with
    /// an unoccupied Weber point is quasi-regular with m = 2: four unit
    /// vectors summing to zero are always invariant under rotation by π.
    fn asymmetric4() -> Configuration {
        let deg = |d: f64| d.to_radians();
        Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(2.0 * deg(100.0).cos(), 2.0 * deg(100.0).sin()),
            Point::new(2.5 * deg(200.0).cos(), 2.5 * deg(200.0).sin()),
        ])
    }

    #[test]
    fn asymmetric_is_not_quasi_regular() {
        assert!(detect_quasi_regularity(&asymmetric4(), t()).is_none());
    }

    #[test]
    fn every_triangle_is_quasi_regular_via_its_fermat_point() {
        // The string of angles around the Fermat point of any triangle with
        // all angles < 120° is (2π/3)³, so scalene triangles are regular —
        // the paper's QR class subsumes the classic 3-robot algorithm of
        // moving to the Weber point.
        let c = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(1.0, 2.5),
        ]);
        let qr = detect_quasi_regularity(&c, t()).expect("triangle is quasi-regular");
        assert_eq!(qr.m, 3);
        assert!(!qr.center_occupied);
    }

    #[test]
    fn generic_four_points_are_quasi_regular_with_period_two() {
        let c = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(1.0, 2.5),
            Point::new(3.4, 2.9),
        ]);
        let qr = detect_quasi_regularity(&c, t()).expect("4 points, interior Weber point");
        assert_eq!(qr.m, 2);
    }

    #[test]
    fn linear_configurations_are_excluded() {
        let c = Configuration::new(vec![
            Point::new(-1.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
        ]);
        assert!(detect_quasi_regularity(&c, t()).is_none());
    }

    #[test]
    fn quasi_regular_center_is_weber_point() {
        // Lemma 3.3: CQR(C) = WP(C) for non-linear quasi-regular C.
        let mut pts = ngon(4, 3.0, 0.0);
        pts.push(Point::ORIGIN); // occupied centre
        let c = Configuration::new(pts);
        let qr = detect_quasi_regularity(&c, t()).expect("quasi-regular");
        // The centre minimises the Weber objective against perturbations.
        let obj = weber_objective(qr.center, c.points());
        for dir in 0..8 {
            let th = TAU * dir as f64 / 8.0;
            let probe = Point::new(qr.center.x + 0.05 * th.cos(), qr.center.y + 0.05 * th.sin());
            assert!(weber_objective(probe, c.points()) >= obj - 1e-12);
        }
    }

    #[test]
    fn biangular_with_unequal_radii_is_quasi_regular() {
        let k = 3usize;
        let alpha = 0.5;
        let beta = TAU / k as f64 - alpha;
        let mut pts = Vec::new();
        let mut theta: f64 = 0.2;
        for i in 0..(2 * k) {
            let r = if i % 2 == 0 { 1.0 } else { 2.0 };
            pts.push(Point::new(r * theta.cos(), r * theta.sin()));
            theta += if i % 2 == 0 { alpha } else { beta };
        }
        let c = Configuration::new(pts);
        let qr = detect_quasi_regularity(&c, t()).expect("biangular is quasi-regular");
        assert!(qr.m >= k, "m = {}", qr.m);
        assert!(qr.center.dist(Point::ORIGIN) < 1e-5);
    }

    #[test]
    fn moving_points_toward_center_preserves_quasi_regularity() {
        let c = Configuration::new(ngon(4, 2.0, 0.0));
        let qr = detect_quasi_regularity(&c, t()).expect("square");
        // Move two robots partway toward the centre (adversarial stops).
        let moved = Configuration::new(
            c.points()
                .iter()
                .enumerate()
                .map(|(i, p)| match i {
                    0 => p.lerp(qr.center, 0.5),
                    1 => p.lerp(qr.center, 0.8),
                    _ => *p,
                })
                .collect(),
        );
        let qr2 = detect_quasi_regularity(&moved, t()).expect("still quasi-regular");
        assert!(qr2.center.dist(qr.center) < 1e-6);
    }

    #[test]
    fn robots_reaching_the_center_keep_it_quasi_regular() {
        // One robot of a square reaches the centre: now an occupied-centre
        // quasi-regular configuration (the centre robot could rebuild the
        // square).
        let mut pts = ngon(4, 2.0, 0.0);
        pts[0] = Point::ORIGIN;
        let c = Configuration::new(pts);
        let qr = detect_quasi_regularity(&c, t()).expect("quasi-regular");
        assert!(qr.center.dist(Point::ORIGIN) < 1e-9);
        assert!(qr.center_occupied);
        assert_eq!(qr.m, 4);
    }

    #[test]
    fn gathered_and_tiny_configurations() {
        assert!(detect_quasi_regularity(&Configuration::default(), t()).is_none());
        let single = Configuration::new(vec![Point::ORIGIN; 5]);
        assert!(detect_quasi_regularity(&single, t()).is_none());
        let pair = Configuration::new(vec![Point::ORIGIN, Point::new(1.0, 0.0)]);
        assert!(detect_quasi_regularity(&pair, t()).is_none()); // linear
    }

    #[test]
    fn occupied_test_rejects_unoccupied_point() {
        let c = Configuration::new(ngon(4, 2.0, 0.0));
        assert_eq!(quasi_regular_with_center(&c, Point::ORIGIN, t()), None);
    }

    #[test]
    fn doubled_square_is_quasi_regular_around_unoccupied_center() {
        // Two robots on each square corner: the string of angles around the
        // centre is (0, π/2)⁴, so per(SA) = 4 and the centre is unoccupied.
        let mut pts = Vec::new();
        for p in ngon(4, 2.0, 0.0) {
            pts.push(p);
            pts.push(p);
        }
        let c = Configuration::new(pts);
        let qr = detect_quasi_regularity(&c, t()).expect("doubled square");
        assert_eq!(qr.m, 4);
        assert!(!qr.center_occupied);
        assert!(qr.center.dist(Point::ORIGIN) < 1e-6);
    }
}
