//! Classification of configurations (Section IV of the paper).
//!
//! Every configuration of `n ≥ 1` robots belongs to exactly one of five
//! classes, and WAIT-FREE-GATHER dispatches on the class:
//!
//! | Class | Definition | Algorithm behaviour |
//! |---|---|---|
//! | `B`   | robots split `n/2 + n/2` over two points | *(gathering impossible — Lemma 5.2)* |
//! | `M`   | unique point of maximum multiplicity | converge on it with side-steps |
//! | `L1W` | collinear, unique Weber point (median) | move to the median |
//! | `L2W` | collinear, non-unique Weber point | endpoints leave the line, others go to the line centre |
//! | `QR`  | quasi-regular, not above | move to the centre of quasi-regularity (= Weber point) |
//! | `A`   | asymmetric remainder | elect a safe point, move to it |
//!
//! `classify` follows the same priority order the definitions use, so the
//! classes are disjoint by construction; the partition property
//! (`B ∪ M ∪ L ∪ QR ∪ A = P`) is validated empirically by experiment T6.

use crate::configuration::Configuration;
use crate::quasi::detect_quasi_regularity_hinted;
use gather_geom::{are_collinear, weber::median_interval_on_line, Point, Tol};

/// The five configuration classes of the paper (`L` split into `L1W` and
/// `L2W` as in Section IV.A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Class {
    /// `B`: robots equally distributed over exactly two points.
    /// Deterministic gathering is impossible from this class.
    Bivalent,
    /// `M`: a unique point of maximum multiplicity exists.
    Multiple,
    /// `L1W`: collinear with a unique Weber point (unique median).
    Collinear1W,
    /// `L2W`: collinear with infinitely many Weber points.
    Collinear2W,
    /// `QR`: quasi-regular (includes regular, biangular, and rotationally
    /// symmetric configurations), not in the previous classes.
    QuasiRegular,
    /// `A`: asymmetric (`sym(C) = 1`) remainder.
    Asymmetric,
}

impl Class {
    /// Short name as used in the paper (`B`, `M`, `L1W`, `L2W`, `QR`, `A`).
    pub fn short_name(self) -> &'static str {
        match self {
            Class::Bivalent => "B",
            Class::Multiple => "M",
            Class::Collinear1W => "L1W",
            Class::Collinear2W => "L2W",
            Class::QuasiRegular => "QR",
            Class::Asymmetric => "A",
        }
    }

    /// The class whose [`short_name`](Class::short_name) is `name`
    /// (`None` for anything else). Inverse of `short_name`; used by the
    /// serialization layers (`RunMetrics` JSONL, the serving API) to parse
    /// classes back out of their wire form.
    pub fn from_short_name(name: &str) -> Option<Class> {
        Class::all().into_iter().find(|c| c.short_name() == name)
    }

    /// All classes, in the paper's priority order.
    pub fn all() -> [Class; 6] {
        [
            Class::Bivalent,
            Class::Multiple,
            Class::Collinear1W,
            Class::Collinear2W,
            Class::QuasiRegular,
            Class::Asymmetric,
        ]
    }
}

impl std::fmt::Display for Class {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// The result of classifying a configuration, with the artefacts the
/// gathering algorithm needs for the class.
///
/// `Copy` so a shared per-round analysis can be handed to every robot's
/// snapshot without allocation (see [`crate::analysis`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Analysis {
    /// The configuration's class.
    pub class: Class,
    /// Number of robots.
    pub n: usize,
    /// The unique movement target, when the class defines one:
    /// the max-multiplicity point for `M`, the Weber point for `L1W`,
    /// the centre of quasi-regularity for `QR`, the elected safe point
    /// for `A`. `None` for `B` and `L2W`, whose rules are per-robot.
    pub target: Option<Point>,
    /// For `QR`: the quasi-regularity `qreg(C)`.
    pub qreg: Option<usize>,
}

thread_local! {
    /// Number of [`classify`] invocations on this thread.
    static CLASSIFY_CALLS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Total number of [`classify`] invocations on the current thread since it
/// started. Monotone; callers diff two readings to count the classifications
/// a code region performed. Feeds the engine's per-round metrics and the
/// "classify at most twice per round" acceptance test of the shared-analysis
/// pipeline.
pub fn classify_invocations() -> u64 {
    CLASSIFY_CALLS.with(|c| c.get())
}

/// Classifies `config` into the paper's partition (Section IV.A) and
/// returns the class together with the class's movement target when one is
/// intrinsic to the class.
///
/// # Panics
///
/// Panics if the configuration is empty: the paper's model has `n ≥ 1`
/// robots and an empty configuration has no meaningful class.
///
/// # Example
///
/// ```
/// use gather_config::{classify, Class, Configuration};
/// use gather_geom::{Point, Tol};
///
/// let bivalent = Configuration::new(vec![
///     Point::new(0.0, 0.0), Point::new(0.0, 0.0),
///     Point::new(3.0, 0.0), Point::new(3.0, 0.0),
/// ]);
/// assert_eq!(classify(&bivalent, Tol::default()).class, Class::Bivalent);
/// ```
pub fn classify(config: &Configuration, tol: Tol) -> Analysis {
    classify_hinted(config, tol, None).0
}

/// Scratch pair for [`classify`]: (multiplicity-grouped points, raw points).
type ClassifyScratch = (Vec<(Point, usize)>, Vec<Point>);

thread_local! {
    /// Reusable buffers for the early (multiplicity/linearity) phase of
    /// [`classify`], so steady-state class-M rounds classify without any
    /// heap allocation. Safe as a thread-local because nothing called
    /// while the borrow is held re-enters `classify`.
    static CLASSIFY_SCRATCH: std::cell::RefCell<ClassifyScratch> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

/// Outcome of the allocation-free early phase of classification.
enum Prefix {
    Done(Analysis),
    Linear,
    Open,
}

/// [`classify`] with an optional warm-start iterate for the numeric Weber
/// computation inside quasi-regularity detection (the previous round's
/// Weber point — exact while robots move toward it, Lemma 3.2). Returns
/// the analysis together with the Weber point the detector computed, if it
/// ran, so callers (the [`crate::analysis::AnalysisCache`]) can carry it
/// forward as the next round's hint. The hint only seeds the iteration;
/// classes that never reach the numeric Weber computation (`B`, `M`, `L1W`,
/// `L2W`, occupied-centre `QR`) ignore it, which is what makes the warm
/// start safe across class changes.
pub fn classify_hinted(
    config: &Configuration,
    tol: Tol,
    weber_hint: Option<Point>,
) -> (Analysis, Option<Point>) {
    CLASSIFY_CALLS.with(|c| c.set(c.get() + 1));
    assert!(!config.is_empty(), "cannot classify an empty configuration");
    let n = config.len();

    let prefix = CLASSIFY_SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        let (distinct, pts) = (&mut scratch.0, &mut scratch.1);
        config.distinct_into(distinct, pts);
        classify_prefix(distinct, pts, n, tol)
    });

    classify_tail(prefix, config, tol, weber_hint, n)
}

/// [`classify_hinted`] with the distinct-location multiset already in hand
/// (in [`Configuration::distinct_into`]'s lexicographic order) — the entry
/// point of the incremental analysis path, which maintains the multiset by
/// patching instead of re-sorting the whole configuration each round.
/// Identical in every observable way to [`classify_hinted`], including the
/// invocation counter, when `distinct` equals what `distinct_into` would
/// produce for `config`.
///
/// # Panics
///
/// Panics if the configuration is empty.
pub fn classify_hinted_with_distinct(
    config: &Configuration,
    tol: Tol,
    weber_hint: Option<Point>,
    distinct: &[(Point, usize)],
) -> (Analysis, Option<Point>) {
    CLASSIFY_CALLS.with(|c| c.set(c.get() + 1));
    assert!(!config.is_empty(), "cannot classify an empty configuration");
    let n = config.len();
    debug_assert_eq!(
        distinct.iter().map(|&(_, m)| m).sum::<usize>(),
        n,
        "distinct multiset does not cover the configuration"
    );

    let prefix = CLASSIFY_SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        classify_prefix(distinct, &mut scratch.1, n, tol)
    });

    classify_tail(prefix, config, tol, weber_hint, n)
}

/// The allocation-free early phase shared by [`classify_hinted`] and
/// [`classify_hinted_with_distinct`]: multiplicity-driven classes (`M`,
/// `B`) and the linearity split, decided purely from the distinct-location
/// multiset. `pts` is sorting-free scratch for the collinearity test.
fn classify_prefix(
    distinct: &[(Point, usize)],
    pts: &mut Vec<Point>,
    n: usize,
    tol: Tol,
) -> Prefix {
    // Gathered configurations are class M with the gathering point as
    // target (the M rule keeps them gathered: the robot at the unique
    // maximum does not move).
    if distinct.len() == 1 {
        return Prefix::Done(Analysis {
            class: Class::Multiple,
            n,
            target: Some(distinct[0].0),
            qreg: None,
        });
    }

    // B: exactly two locations, each with n/2 robots.
    if distinct.len() == 2 && distinct[0].1 == distinct[1].1 {
        return Prefix::Done(Analysis {
            class: Class::Bivalent,
            n,
            target: None,
            qreg: None,
        });
    }

    // M: unique point of maximum multiplicity.
    let max = distinct.iter().map(|&(_, m)| m).max().expect("non-empty");
    let mut attaining = distinct.iter().filter(|&&(_, m)| m == max);
    let first = attaining.next().expect("max is attained");
    if attaining.next().is_none() {
        return Prefix::Done(Analysis {
            class: Class::Multiple,
            n,
            target: Some(first.0),
            qreg: None,
        });
    }

    // L: linearity of the distinct positions.
    pts.clear();
    pts.extend(distinct.iter().map(|&(p, _)| p));
    if are_collinear(pts, tol) {
        Prefix::Linear
    } else {
        Prefix::Open
    }
}

/// The class-specific completion shared by both classification entry
/// points: linear median split, quasi-regularity detection, safe-point
/// election.
fn classify_tail(
    prefix: Prefix,
    config: &Configuration,
    tol: Tol,
    weber_hint: Option<Point>,
    n: usize,
) -> (Analysis, Option<Point>) {
    match prefix {
        Prefix::Done(analysis) => (analysis, None),
        // Linear configurations, split by Weber-point uniqueness. Linearity
        // was established on the distinct positions above; the median
        // interval is computed by projection (no second collinearity test,
        // which could disagree on near-coincident clusters).
        Prefix::Linear => {
            let (lo, hi) = median_interval_on_line(config.points(), tol);
            if lo.dist(hi) <= tol.snap {
                return (
                    Analysis {
                        class: Class::Collinear1W,
                        n,
                        target: Some(lo.midpoint(hi)),
                        qreg: None,
                    },
                    None,
                );
            }
            (
                Analysis {
                    class: Class::Collinear2W,
                    n,
                    target: None,
                    qreg: None,
                },
                None,
            )
        }
        Prefix::Open => {
            // QR: quasi-regular configurations.
            let (qr, weber_seen) = detect_quasi_regularity_hinted(config, tol, weber_hint);
            if let Some(qr) = qr {
                return (
                    Analysis {
                        class: Class::QuasiRegular,
                        n,
                        target: Some(qr.center),
                        qreg: Some(qr.m),
                    },
                    weber_seen,
                );
            }

            // A: everything else. By the partition argument of Section IV.A
            // any remaining configuration has sym(C) = 1 (a symmetric one
            // would have been caught by the QR detector via its SEC centre).
            // The class-A movement target — the elected safe point of
            // Figure 2 line 17 — is a pure function of the configuration
            // (every robot elects the same point), so it is part of the
            // analysis; non-linear configurations always yield one
            // (Lemma 4.2).
            (
                Analysis {
                    class: Class::Asymmetric,
                    n,
                    target: crate::safe::elected_point(config, tol),
                    qreg: None,
                },
                weber_seen,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symmetry::rotational_symmetry;
    use std::f64::consts::TAU;

    fn t() -> Tol {
        Tol::default()
    }

    fn ngon(n: usize, r: f64) -> Vec<Point> {
        (0..n)
            .map(|k| {
                let th = TAU * k as f64 / n as f64;
                Point::new(r * th.cos(), r * th.sin())
            })
            .collect()
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_configuration_panics() {
        let _ = classify(&Configuration::default(), t());
    }

    #[test]
    fn gathered_is_multiple() {
        let c = Configuration::new(vec![Point::new(1.0, 2.0); 7]);
        let a = classify(&c, t());
        assert_eq!(a.class, Class::Multiple);
        assert_eq!(a.target, Some(Point::new(1.0, 2.0)));
    }

    #[test]
    fn bivalent_detection() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(5.0, 0.0);
        let c = Configuration::new(vec![p, p, p, q, q, q]);
        assert_eq!(classify(&c, t()).class, Class::Bivalent);
        // Unequal split over two points is NOT bivalent — it's M.
        let c2 = Configuration::new(vec![p, p, p, q, q]);
        let a2 = classify(&c2, t());
        assert_eq!(a2.class, Class::Multiple);
        assert_eq!(a2.target, Some(p));
    }

    #[test]
    fn two_robots_at_distinct_points_are_bivalent() {
        let c = Configuration::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
        assert_eq!(classify(&c, t()).class, Class::Bivalent);
    }

    #[test]
    fn multiple_beats_linearity() {
        // A linear configuration with a unique max multiplicity is M.
        let c = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(3.0, 0.0),
        ]);
        let a = classify(&c, t());
        assert_eq!(a.class, Class::Multiple);
        assert_eq!(a.target, Some(Point::new(1.0, 0.0)));
    }

    #[test]
    fn collinear_odd_is_l1w() {
        let c = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(4.0, 4.0),
        ]);
        let a = classify(&c, t());
        assert_eq!(a.class, Class::Collinear1W);
        assert!(a.target.unwrap().dist(Point::new(1.0, 1.0)) < 1e-9);
    }

    #[test]
    fn collinear_even_distinct_medians_is_l2w() {
        let c = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(7.0, 0.0),
        ]);
        let a = classify(&c, t());
        assert_eq!(a.class, Class::Collinear2W);
        assert!(a.target.is_none());
    }

    #[test]
    fn collinear_even_with_coincident_medians_is_l1w() {
        // Middle two robots at the same point, but max multiplicity tied:
        // 2 robots at x=3 and 2 robots at x=0 → no unique max → linear →
        // median = 3 (positions 0,0,3,3,8 sorted: n=5 odd). Build n=6:
        // 0,0,3,3,3? that's unique max. Use 0,0,3,3,8,9: medians both 3.
        let xs = [0.0, 0.0, 3.0, 3.0, 8.0, 9.0];
        let c = Configuration::new(xs.map(|x| Point::new(x, 0.0)).to_vec());
        let a = classify(&c, t());
        assert_eq!(a.class, Class::Collinear1W);
        assert!(a.target.unwrap().dist(Point::new(3.0, 0.0)) < 1e-9);
    }

    #[test]
    fn square_is_quasi_regular() {
        let c = Configuration::new(ngon(4, 2.0));
        let a = classify(&c, t());
        assert_eq!(a.class, Class::QuasiRegular);
        assert_eq!(a.qreg, Some(4));
        assert!(a.target.unwrap().dist(Point::ORIGIN) < 1e-6);
    }

    /// Robustly asymmetric: Weber point at the occupied origin, directions
    /// 0°/100°/200° not periodic (see the quasi module for why generic
    /// small configurations end up quasi-regular instead).
    fn asymmetric4() -> Configuration {
        let deg = |d: f64| d.to_radians();
        Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(2.0 * deg(100.0).cos(), 2.0 * deg(100.0).sin()),
            Point::new(2.5 * deg(200.0).cos(), 2.5 * deg(200.0).sin()),
        ])
    }

    #[test]
    fn vertex_weber_quadrilateral_is_asymmetric() {
        let c = asymmetric4();
        let a = classify(&c, t());
        assert_eq!(a.class, Class::Asymmetric);
        assert_eq!(rotational_symmetry(&c, t()), 1);
    }

    #[test]
    fn scalene_triangle_is_quasi_regular() {
        // Any triangle with all angles < 120° is regular around its Fermat
        // point (string of angles (2π/3)³), hence in QR, not A.
        let c = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(1.0, 2.5),
        ]);
        let a = classify(&c, t());
        assert_eq!(a.class, Class::QuasiRegular);
        assert_eq!(a.qreg, Some(3));
    }

    #[test]
    fn classes_are_disjoint_over_a_gallery() {
        // classify returns exactly one class per configuration by
        // construction; verify the expected class on one representative of
        // each.
        let reps: Vec<(Configuration, Class)> = vec![
            (
                Configuration::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]),
                Class::Bivalent,
            ),
            (
                Configuration::new(vec![
                    Point::new(0.0, 0.0),
                    Point::new(0.0, 0.0),
                    Point::new(1.0, 0.0),
                ]),
                Class::Multiple,
            ),
            (
                Configuration::new(vec![
                    Point::new(0.0, 0.0),
                    Point::new(1.0, 0.0),
                    Point::new(5.0, 0.0),
                ]),
                Class::Collinear1W,
            ),
            (
                Configuration::new(vec![
                    Point::new(0.0, 0.0),
                    Point::new(1.0, 0.0),
                    Point::new(2.0, 0.0),
                    Point::new(5.0, 0.0),
                ]),
                Class::Collinear2W,
            ),
            (Configuration::new(ngon(6, 1.0)), Class::QuasiRegular),
            (asymmetric4(), Class::Asymmetric),
        ];
        for (c, expected) in &reps {
            assert_eq!(classify(c, t()).class, *expected, "config {c}");
        }
    }

    #[test]
    fn symmetric_triangle_with_center_robot() {
        // Equilateral triangle + robot at the centre: all multiplicities
        // are 1 with 4 points, non-linear, quasi-regular with occupied
        // centre.
        let mut pts = ngon(3, 2.0);
        pts.push(Point::ORIGIN);
        let c = Configuration::new(pts);
        let a = classify(&c, t());
        assert_eq!(a.class, Class::QuasiRegular);
        assert!(a.target.unwrap().dist(Point::ORIGIN) < 1e-9);
    }

    #[test]
    fn classify_with_distinct_matches_classify_hinted() {
        let configs = vec![
            Configuration::new(vec![Point::new(1.0, 2.0); 7]),
            Configuration::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]),
            Configuration::new(vec![
                Point::new(0.0, 0.0),
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
            ]),
            Configuration::new(vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 1.0),
                Point::new(4.0, 4.0),
            ]),
            Configuration::new(vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(3.0, 0.0),
                Point::new(7.0, 0.0),
            ]),
            Configuration::new(ngon(5, 2.0)),
            asymmetric4(),
        ];
        for c in &configs {
            let distinct = c.distinct();
            let before = classify_invocations();
            let plain = classify_hinted(c, t(), None);
            let mid = classify_invocations();
            let with = classify_hinted_with_distinct(c, t(), None, &distinct);
            let after = classify_invocations();
            assert_eq!(plain, with, "config {c}");
            // Both entry points bump the invocation counter exactly once.
            assert_eq!(mid - before, 1);
            assert_eq!(after - mid, 1);
        }
    }

    #[test]
    fn short_names_cover_all_classes() {
        let names: Vec<&str> = Class::all().iter().map(|c| c.short_name()).collect();
        assert_eq!(names, vec!["B", "M", "L1W", "L2W", "QR", "A"]);
        assert_eq!(format!("{}", Class::QuasiRegular), "QR");
    }

    #[test]
    fn short_names_round_trip() {
        for class in Class::all() {
            assert_eq!(Class::from_short_name(class.short_name()), Some(class));
        }
        assert_eq!(Class::from_short_name("X"), None);
        assert_eq!(Class::from_short_name(""), None);
    }
}
