//! Seeded-loop ports of the configuration property suite (hermetic-build
//! policy, DESIGN.md §8): the same statements as `proptest_config.rs`,
//! driven by the in-tree PRNG so they run in the default offline build.

use gather_config::{
    classify, detect_quasi_regularity, is_safe_point, regularity_around, safe_points,
    string_of_angles, view_of, Class, Configuration,
};
use gather_geom::{Point, Similarity, Tol};
use gather_prng::Rng;
use std::f64::consts::TAU;

const CASES: usize = 96;

fn point(rng: &mut Rng) -> Point {
    Point::new(
        rng.random_range(-800i32..800) as f64 / 80.0,
        rng.random_range(-800i32..800) as f64 / 80.0,
    )
}

fn config(rng: &mut Rng) -> Configuration {
    let n = rng.random_range(3usize..11);
    Configuration::canonical((0..n).map(|_| point(rng)).collect(), tol())
}

fn tol() -> Tol {
    Tol::default()
}

#[test]
fn distinct_multiplicities_sum_to_n() {
    let mut rng = Rng::seed_from_u64(0xC001);
    for _ in 0..CASES {
        let c = config(&mut rng);
        let total: usize = c.distinct().iter().map(|(_, m)| m).sum();
        assert_eq!(total, c.len());
    }
}

#[test]
fn views_are_stable_on_recomputation() {
    let mut rng = Rng::seed_from_u64(0xC002);
    for _ in 0..CASES {
        let c = config(&mut rng);
        for p in c.distinct_points() {
            assert_eq!(view_of(&c, p, tol()), view_of(&c, p, tol()));
        }
    }
}

#[test]
fn string_of_angles_sums_to_full_turn_with_dividing_periodicity() {
    let mut rng = Rng::seed_from_u64(0xC003);
    for _ in 0..CASES {
        let c = config(&mut rng);
        let center = point(&mut rng);
        let sa = string_of_angles(&c, center, tol());
        if sa.is_empty() {
            continue;
        }
        let total: f64 = sa.entries().iter().sum();
        assert!((total - TAU).abs() < 1e-6, "angles sum to {total}");
        assert_eq!(
            sa.len() % sa.periodicity(),
            0,
            "periodicity must divide length"
        );
    }
}

#[test]
fn regularity_is_rotation_invariant() {
    let mut rng = Rng::seed_from_u64(0xC004);
    for _ in 0..CASES {
        let c = config(&mut rng);
        let theta = rng.random_range(0.0..TAU);
        let sim = Similarity::new(theta, 1.0, Point::ORIGIN);
        let moved = c.map(|p| sim.apply(p));
        let probe = Point::new(0.1, 0.2);
        assert_eq!(
            regularity_around(&c, probe, tol()),
            regularity_around(&moved, sim.apply(probe), tol())
        );
    }
}

#[test]
fn safe_points_are_a_subset_of_occupied() {
    let mut rng = Rng::seed_from_u64(0xC005);
    for _ in 0..CASES {
        let c = config(&mut rng);
        let occupied = c.distinct_points();
        for p in safe_points(&c, tol()) {
            assert!(occupied.contains(&p), "safe point {p} is unoccupied");
            assert!(is_safe_point(&c, p, tol()));
        }
    }
}

#[test]
fn gathered_configs_classify_multiple() {
    let mut rng = Rng::seed_from_u64(0xC006);
    for _ in 0..CASES {
        let p = point(&mut rng);
        let n = rng.random_range(1usize..8);
        let a = classify(&Configuration::new(vec![p; n]), tol());
        assert_eq!(a.class, Class::Multiple);
        assert_eq!(a.target, Some(p));
    }
}

#[test]
fn class_targets_exist_when_required() {
    // M, L1W, QR and A carry their global movement target in the analysis
    // (for A it is the elected safe point, present whenever the class is
    // reachable — Lemma 4.2); B and L2W have per-robot rules and no target.
    let mut rng = Rng::seed_from_u64(0xC007);
    for _ in 0..CASES {
        let c = config(&mut rng);
        let a = classify(&c, tol());
        match a.class {
            Class::Multiple | Class::Collinear1W | Class::QuasiRegular | Class::Asymmetric => {
                assert!(a.target.is_some(), "{} lacks a target on {c}", a.class)
            }
            Class::Bivalent | Class::Collinear2W => {
                assert!(a.target.is_none(), "{} has an unexpected target", a.class)
            }
        }
    }
}

#[test]
fn qr_detection_is_translation_invariant() {
    let mut rng = Rng::seed_from_u64(0xC008);
    for _ in 0..CASES {
        let c = config(&mut rng);
        let shift = gather_geom::Vec2::new(
            rng.random_range(-50i32..50) as f64 / 5.0,
            rng.random_range(-50i32..50) as f64 / 5.0,
        );
        let moved = c.map(|p| p + shift);
        assert_eq!(
            detect_quasi_regularity(&c, tol()).is_some(),
            detect_quasi_regularity(&moved, tol()).is_some()
        );
    }
}

#[test]
fn qr_center_is_stable_under_contraction() {
    let mut rng = Rng::seed_from_u64(0xC009);
    for _ in 0..CASES {
        let c = config(&mut rng);
        if c.is_linear(tol()) {
            continue;
        }
        if let Some(qr) = detect_quasi_regularity(&c, tol()) {
            let moved = c.map(|p| p.lerp(qr.center, 0.3));
            let again = detect_quasi_regularity(&moved, tol());
            assert!(again.is_some(), "QR lost under contraction of {c}");
            let scale = c.sec().radius.max(1.0);
            assert!(
                again.unwrap().center.dist(qr.center) < 1e-3 * scale,
                "centre drifted under contraction"
            );
        }
    }
}

#[test]
fn multiple_class_survives_partial_move_to_target() {
    // Claim C1 of Lemma 5.3, random form: moving any single robot halfway
    // toward the class-M target keeps the target the unique maximum.
    let mut rng = Rng::seed_from_u64(0xC00A);
    for _ in 0..CASES {
        let c = config(&mut rng);
        let a = classify(&c, tol());
        if a.class != Class::Multiple || c.is_gathered() {
            continue;
        }
        let target = a.target.unwrap();
        for idx in 0..c.len() {
            let halfway = c.points()[idx].lerp(target, 0.5);
            // The side-step rule exists precisely to avoid landing on
            // another robot; the straight-line claim only applies to
            // unobstructed moves.
            let lands_on_robot = c
                .distinct_points()
                .iter()
                .any(|q| !q.within(target, tol().snap) && halfway.within(*q, tol().snap));
            if lands_on_robot {
                continue;
            }
            let moved = Configuration::canonical(
                c.points()
                    .iter()
                    .enumerate()
                    .map(|(i, p)| if i == idx { halfway } else { *p })
                    .collect(),
                tol(),
            );
            let b = classify(&moved, tol());
            assert_eq!(b.class, Class::Multiple);
            assert!(b.target.unwrap().within(target, 1e-6));
        }
    }
}
