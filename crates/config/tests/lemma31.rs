//! Lemma 3.1: in a configuration with `sym(C) = k > 1`, every view
//! equivalence class away from the SEC centre is a regular `k`-gon centred
//! on the SEC centre whose corners carry equal multiplicity.

use gather_config::{rotational_symmetry, symmetry_classes, Configuration};
use gather_geom::{Point, Tol};
use std::f64::consts::TAU;

fn assert_lemma31(config: &Configuration, expected_sym: usize) {
    let tol = Tol::default();
    let k = rotational_symmetry(config, tol);
    assert_eq!(k, expected_sym, "unexpected symmetry for {config}");
    if k <= 1 {
        return;
    }
    let center = config.sec().center;
    for (view, class) in symmetry_classes(config, tol) {
        let off_center: Vec<Point> = class
            .iter()
            .copied()
            .filter(|p| !p.within(center, tol.snap))
            .collect();
        if off_center.is_empty() {
            continue; // the centre itself forms a singleton class
        }
        // Classes are k-gons for maximal classes; smaller classes divide k.
        if off_center.len() != k {
            continue;
        }
        // Equal radius…
        let r0 = off_center[0].dist(center);
        for p in &off_center {
            assert!(
                (p.dist(center) - r0).abs() < 1e-6,
                "class of view {view} not equidistant from the SEC centre"
            );
        }
        // …equally spaced angles…
        let mut angles: Vec<f64> = off_center.iter().map(|p| (*p - center).angle()).collect();
        angles.sort_by(f64::total_cmp);
        for w in 0..angles.len() {
            let gap = if w + 1 < angles.len() {
                angles[w + 1] - angles[w]
            } else {
                angles[0] + TAU - angles[w]
            };
            assert!(
                (gap - TAU / k as f64).abs() < 1e-6,
                "class is not a regular {k}-gon (gap {gap})"
            );
        }
        // …equal multiplicity.
        let m0 = config.mult(off_center[0], tol);
        for p in &off_center {
            assert_eq!(config.mult(*p, tol), m0, "corner multiplicities differ");
        }
    }
}

fn ngon(n: usize, r: f64, phase: f64) -> Vec<Point> {
    (0..n)
        .map(|j| {
            let th = TAU * j as f64 / n as f64 + phase;
            Point::new(r * th.cos(), r * th.sin())
        })
        .collect()
}

#[test]
fn single_ring() {
    for k in [3usize, 4, 5, 7] {
        assert_lemma31(&Configuration::new(ngon(k, 3.0, 0.4)), k);
    }
}

#[test]
fn nested_rings() {
    let mut pts = ngon(5, 4.0, 0.0);
    pts.extend(ngon(5, 1.5, 0.7));
    assert_lemma31(&Configuration::new(pts), 5);
}

#[test]
fn rings_with_center_robot() {
    let mut pts = ngon(6, 2.0, 0.1);
    pts.push(Point::ORIGIN);
    assert_lemma31(&Configuration::new(pts), 6);
}

#[test]
fn rings_with_multiplicity() {
    // Two robots on every corner of a square: classes still form 4-gons
    // with equal (doubled) multiplicity.
    let mut pts = Vec::new();
    for p in ngon(4, 3.0, 0.2) {
        pts.push(p);
        pts.push(p);
    }
    assert_lemma31(&Configuration::new(pts), 4);
}

#[test]
fn mixed_symmetry_takes_gcd_like_structure() {
    // A hexagon plus a square share only the trivial rotation: sym is
    // determined by the largest equal-view class, which here is < 6.
    let mut pts = ngon(6, 4.0, 0.0);
    pts.extend(ngon(4, 2.0, 0.3));
    let config = Configuration::new(pts);
    let k = rotational_symmetry(&config, Tol::default());
    assert!(k <= 2, "hexagon+square cannot have high symmetry, got {k}");
}
