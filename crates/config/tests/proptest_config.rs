//! **Gated behind `--features external-deps`** (hermetic-build policy,
//! DESIGN.md §8): this suite needs the external `proptest` package, which
//! the default offline profile does not resolve. The same properties are
//! covered by the in-tree seeded-loop tests in `seeded_properties.rs`.
#![cfg(feature = "external-deps")]

//! Property-based tests of the configuration-analysis layer.

use gather_config::{
    classify, detect_quasi_regularity, is_safe_point, regularity_around, safe_points,
    string_of_angles, view_of, Class, Configuration,
};
use gather_geom::{Point, Similarity, Tol};
use proptest::prelude::*;
use std::f64::consts::TAU;

fn arb_point() -> impl Strategy<Value = Point> {
    (-800i32..800, -800i32..800).prop_map(|(x, y)| Point::new(x as f64 / 80.0, y as f64 / 80.0))
}

fn arb_config() -> impl Strategy<Value = Configuration> {
    prop::collection::vec(arb_point(), 3..=10)
        .prop_map(|pts| Configuration::canonical(pts, Tol::default()))
}

fn tol() -> Tol {
    Tol::default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn distinct_multiplicities_sum_to_n(config in arb_config()) {
        let total: usize = config.distinct().iter().map(|(_, m)| m).sum();
        prop_assert_eq!(total, config.len());
    }

    #[test]
    fn views_agree_between_colocated_robots(config in arb_config()) {
        // Every occupied location has exactly one view — recomputation is
        // stable and independent of which robot at the location asks.
        for p in config.distinct_points() {
            let v1 = view_of(&config, p, tol());
            let v2 = view_of(&config, p, tol());
            prop_assert_eq!(v1, v2);
        }
    }

    #[test]
    fn string_of_angles_sums_to_full_turn(config in arb_config(), c in arb_point()) {
        let sa = string_of_angles(&config, c, tol());
        if !sa.is_empty() {
            let total: f64 = sa.entries().iter().sum();
            prop_assert!((total - TAU).abs() < 1e-6, "sum {total}");
        }
    }

    #[test]
    fn periodicity_divides_length(config in arb_config(), c in arb_point()) {
        let sa = string_of_angles(&config, c, tol());
        if !sa.is_empty() {
            prop_assert_eq!(sa.len() % sa.periodicity(), 0);
        }
    }

    #[test]
    fn regularity_is_rotation_invariant(config in arb_config(), theta in 0.0f64..TAU) {
        let sim = Similarity::new(theta, 1.0, Point::ORIGIN);
        let moved = config.map(|p| sim.apply(p));
        let r1 = regularity_around(&config, Point::new(0.1, 0.2), tol());
        let r2 = regularity_around(&moved, sim.apply(Point::new(0.1, 0.2)), tol());
        prop_assert_eq!(r1, r2);
    }

    #[test]
    fn safe_points_are_a_subset_of_occupied(config in arb_config()) {
        let occupied = config.distinct_points();
        for p in safe_points(&config, tol()) {
            prop_assert!(occupied.contains(&p));
            prop_assert!(is_safe_point(&config, p, tol()));
        }
    }

    #[test]
    fn gathered_configs_classify_multiple(p in arb_point(), n in 1usize..8) {
        let config = Configuration::new(vec![p; n]);
        let a = classify(&config, tol());
        prop_assert_eq!(a.class, Class::Multiple);
        prop_assert_eq!(a.target, Some(p));
    }

    #[test]
    fn class_targets_exist_when_required(config in arb_config()) {
        let a = classify(&config, tol());
        match a.class {
            Class::Multiple | Class::Collinear1W | Class::QuasiRegular | Class::Asymmetric => {
                prop_assert!(a.target.is_some(), "{} lacks a target", a.class)
            }
            Class::Bivalent | Class::Collinear2W => {
                prop_assert!(a.target.is_none(), "{} has an unexpected target", a.class)
            }
        }
    }

    #[test]
    fn qr_detection_is_translation_invariant(config in arb_config(), dx in -50i32..50, dy in -50i32..50) {
        let shift = gather_geom::Vec2::new(dx as f64 / 5.0, dy as f64 / 5.0);
        let moved = config.map(|p| p + shift);
        let d1 = detect_quasi_regularity(&config, tol()).is_some();
        let d2 = detect_quasi_regularity(&moved, tol()).is_some();
        prop_assert_eq!(d1, d2);
    }

    #[test]
    fn qr_center_is_stable_under_contraction(config in arb_config()) {
        // If QR is detected, moving every robot 30% toward the centre must
        // keep the configuration quasi-regular with (almost) the same
        // centre — the heart of Lemma 5.5's claim C1.
        if config.is_linear(tol()) {
            return Ok(());
        }
        if let Some(qr) = detect_quasi_regularity(&config, tol()) {
            let moved = config.map(|p| p.lerp(qr.center, 0.3));
            let again = detect_quasi_regularity(&moved, tol());
            prop_assert!(again.is_some(), "QR lost under contraction of {config}");
            let scale = config.sec().radius.max(1.0);
            prop_assert!(
                again.unwrap().center.dist(qr.center) < 1e-3 * scale,
                "centre drifted"
            );
        }
    }

    #[test]
    fn multiple_class_survives_partial_move_to_target(config in arb_config()) {
        // Claim C1 of Lemma 5.3, random form: moving any single robot
        // halfway toward the class-M target keeps the target the unique
        // maximum.
        let a = classify(&config, tol());
        if a.class != Class::Multiple || config.is_gathered() {
            return Ok(());
        }
        let target = a.target.unwrap();
        for idx in 0..config.len() {
            let halfway = config.points()[idx].lerp(target, 0.5);
            // The algorithm's side-step rule exists precisely to avoid
            // landing on another robot; the straight-line form of the
            // claim only applies to unobstructed moves.
            let lands_on_robot = config
                .distinct_points()
                .iter()
                .any(|q| !q.within(target, tol().snap) && halfway.within(*q, tol().snap));
            if lands_on_robot {
                continue;
            }
            let moved = Configuration::canonical(
                config
                    .points()
                    .iter()
                    .enumerate()
                    .map(|(i, p)| if i == idx { halfway } else { *p })
                    .collect(),
                tol(),
            );
            let b = classify(&moved, tol());
            prop_assert_eq!(b.class, Class::Multiple);
            prop_assert!(b.target.unwrap().within(target, 1e-6));
        }
    }
}
