//! In-tree deterministic pseudo-random numbers for the gathering suite.
//!
//! The simulator's adversaries (schedulers, motion, crash plans, frames)
//! and the workload generators need *seeded, reproducible* randomness —
//! nothing cryptographic, nothing platform-dependent, and critically
//! nothing that requires fetching a crates-io package: the suite's hermetic
//! build policy (DESIGN.md §8) forbids external dependencies in the default
//! profile.
//!
//! The generator is [xoshiro256++][xo] seeded through [SplitMix64][sm],
//! the standard pairing recommended by the xoshiro authors: SplitMix64
//! fans a single `u64` seed out into a well-mixed 256-bit state, and
//! xoshiro256++ then delivers fast, high-quality 64-bit outputs. Both are
//! public-domain algorithms implemented here from their reference
//! descriptions.
//!
//! The API mirrors the small slice of `rand` the suite previously used, so
//! call sites read identically:
//!
//! ```
//! use gather_prng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let x = rng.random_range(-10.0..10.0); // f64 in [-10, 10)
//! let i = rng.random_range(0..6usize);   // usize in [0, 6)
//! let b = rng.random_bool(0.5);          // Bernoulli(1/2)
//! assert!((-10.0..10.0).contains(&x));
//! assert!(i < 6);
//! let _ = b;
//! ```
//!
//! Identical seeds produce identical sequences on every platform — the
//! whole simulation stack's determinism guarantee rests on this.
//!
//! [xo]: https://prng.di.unimi.it/xoshiro256plusplus.c
//! [sm]: https://prng.di.unimi.it/splitmix64.c

/// The SplitMix64 step: advances `state` and returns the next output.
///
/// Used for seed expansion; also handy on its own for cheap stateless
/// hashing (see [`mix64`]).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A single SplitMix64 mix of `x`: a fast, high-quality 64-bit bit mixer
/// (the finalizer of SplitMix64). Useful for fingerprinting.
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut s = x;
    splitmix64(&mut s)
}

/// A seedable deterministic generator (xoshiro256++).
///
/// Not cryptographically secure — it drives simulations, not secrets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose sequence is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with the standard 53-bit construction.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from `range` (half-open, like `rand`'s
    /// `random_range`). Implemented for `f64` and the integer types the
    /// suite uses.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.next_f64() < p
    }

    /// A uniform `u64` in `[0, bound)` by rejection from the top of the
    /// range (no modulo bias).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bounded_u64 needs a positive bound");
        // Accept only below the largest multiple of `bound`, so every
        // residue is equally likely; at most `bound` values are rejected.
        let zone = u64::MAX - u64::MAX.wrapping_rem(bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// Ranges [`Rng::random_range`] can sample from.
pub trait SampleRange {
    /// The sampled value's type.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(
            self.start < self.end,
            "empty range {}..{}",
            self.start,
            self.end
        );
        let span = self.end - self.start;
        assert!(span.is_finite(), "range span must be finite");
        // next_f64 < 1, so the result stays below `end` for finite spans.
        self.start + rng.next_f64() * span
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range {}..{}", self.start, self.end);
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs of splitmix64 for state 0, from the public-domain
    /// reference implementation.
    #[test]
    fn splitmix64_known_answers() {
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220A8397B1DCDAF);
        assert_eq!(splitmix64(&mut s), 0x6E789E6AA1B965F4);
        assert_eq!(splitmix64(&mut s), 0x06C45D188009454F);
    }

    #[test]
    fn identical_seeds_identical_sequences() {
        let mut a = Rng::seed_from_u64(12345);
        let mut b = Rng::seed_from_u64(12345);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "{same} collisions in 64 draws");
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} outside [0, 1)");
        }
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.random_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x), "{x} outside range");
        }
    }

    #[test]
    fn integer_ranges_cover_and_respect_bounds() {
        let mut rng = Rng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = rng.random_range(0..6usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|s| *s), "not all values hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn random_bool_matches_probability_roughly() {
        let mut rng = Rng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        let mut rng = Rng::seed_from_u64(5);
        assert!(!rng.random_bool(0.0));
        let mut rng = Rng::seed_from_u64(5);
        assert!(rng.random_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn random_bool_validates_probability() {
        let _ = Rng::seed_from_u64(0).random_bool(1.5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_float_range_panics() {
        let _ = Rng::seed_from_u64(0).random_range(1.0..1.0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_int_range_panics() {
        let _ = Rng::seed_from_u64(0).random_range(3..3u32);
    }

    #[test]
    fn bounded_u64_is_unbiased_over_small_bound() {
        let mut rng = Rng::seed_from_u64(9);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.bounded_u64(3) as usize] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "{counts:?}");
        }
    }

    #[test]
    fn mix64_spreads_nearby_inputs() {
        // Sequential inputs must not produce correlated outputs.
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 10, "poor avalanche: {a:x} vs {b:x}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = Rng::seed_from_u64(77);
        for _ in 0..10 {
            a.next_u64();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
