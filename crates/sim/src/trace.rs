//! Execution traces: per-round records for analysis and experiments.

use gather_config::Class;
use std::collections::BTreeMap;

/// The versioned trace-document schema identifier carried by the header
/// line ([`v2_header`]). A *v2 trace document* is this header followed by
/// the unchanged v1 round lines ([`RoundRecord::write_jsonl`]) — the
/// header adds provenance (spec, seed, producing engine) without touching
/// the round-line encoding, so v1 consumers that skip unknown lines keep
/// working and the round lines stay byte-identical to a bare
/// [`Trace::to_jsonl`]. Pinned by `crates/sim/tests/trace_schema.rs`.
pub const TRACE_SCHEMA_V2: &str = "trace/v2";

/// Serialises the trace/v2 header line (newline excluded) in the fixed
/// field order `schema, spec, seed, engine`.
///
/// `spec_json` is inserted verbatim as the `spec` member and must already
/// be a canonical JSON object (the service uses `ScenarioSpec::to_json`);
/// `engine` names the producer, `"sync"` (round-based) or `"async"`
/// (event-heap). Deterministic and byte-exact like the round lines, so
/// the service's trace responses stay cacheable and bit-comparable.
pub fn write_v2_header(out: &mut String, spec_json: &str, seed: u64, engine: &str) {
    use std::fmt::Write;
    let _ = write!(
        out,
        "{{\"schema\":\"{TRACE_SCHEMA_V2}\",\"spec\":{spec_json},\"seed\":{seed},\"engine\":\"{engine}\"}}"
    );
}

/// [`write_v2_header`] into a fresh `String`.
pub fn v2_header(spec_json: &str, seed: u64, engine: &str) -> String {
    let mut out = String::with_capacity(spec_json.len() + 64);
    write_v2_header(&mut out, spec_json, seed, engine);
    out
}

/// What happened in one simulated round.
#[derive(Debug, PartialEq)]
pub struct RoundRecord {
    /// Round index (0-based).
    pub round: u64,
    /// The configuration's class at the *start* of the round.
    pub class: Class,
    /// Number of distinct occupied locations at the start of the round.
    pub distinct: usize,
    /// Maximum multiplicity at the start of the round.
    pub max_mult: usize,
    /// Robots activated by the scheduler this round.
    pub activated: Vec<usize>,
    /// Robots newly crashed this round.
    pub crashed: Vec<usize>,
    /// Total distance travelled by robots this round.
    pub travel: f64,
    /// `classify()` invocations performed during this round (shared
    /// analysis, algorithm fallbacks, audits — everything on this thread).
    pub classifications: u64,
    /// Analysis-cache hits during this round (configuration unchanged since
    /// the previous analysis, so the memoized result was reused).
    pub cache_hits: u64,
    /// Weiszfeld solver iterations spent during this round.
    pub weiszfeld_iters: u64,
}

impl RoundRecord {
    /// Serialises the record as one NDJSON line (newline excluded), in the
    /// fixed field order
    /// `round, class, distinct, max_mult, activated, crashed, travel,
    /// classifications, cache_hits, weiszfeld_iters`.
    ///
    /// Like `RunMetrics::to_jsonl` the encoding is deterministic and
    /// byte-exact (floats use shortest round-trip formatting), which is
    /// what lets the service's streaming `GET /v1/trace` endpoint promise
    /// byte-identity with the in-process trace. The schema is pinned by
    /// `crates/sim/tests/trace_schema.rs` — changing field names or order
    /// is a breaking API change.
    pub fn write_jsonl(&self, out: &mut String) {
        use std::fmt::Write;
        let _ = write!(
            out,
            "{{\"round\":{},\"class\":\"{}\",\"distinct\":{},\"max_mult\":{}",
            self.round,
            self.class.short_name(),
            self.distinct,
            self.max_mult
        );
        out.push_str(",\"activated\":[");
        for (i, robot) in self.activated.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{robot}");
        }
        out.push_str("],\"crashed\":[");
        for (i, robot) in self.crashed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{robot}");
        }
        let _ = write!(
            out,
            "],\"travel\":{:?},\"classifications\":{},\"cache_hits\":{},\"weiszfeld_iters\":{}}}",
            self.travel, self.classifications, self.cache_hits, self.weiszfeld_iters
        );
    }

    /// [`RoundRecord::write_jsonl`] into a fresh `String`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(128);
        self.write_jsonl(&mut out);
        out
    }
}

impl Default for RoundRecord {
    fn default() -> Self {
        RoundRecord {
            round: 0,
            class: Class::Multiple,
            distinct: 0,
            max_mult: 0,
            activated: Vec::new(),
            crashed: Vec::new(),
            travel: 0.0,
            classifications: 0,
            cache_hits: 0,
            weiszfeld_iters: 0,
        }
    }
}

impl Clone for RoundRecord {
    fn clone(&self) -> Self {
        let mut out = RoundRecord::default();
        out.clone_from(self);
        out
    }

    /// Field-wise copy that reuses the destination's vector capacity — the
    /// engine's bounded trace recycles evicted records through this, so
    /// steady-state rounds record without heap allocation.
    fn clone_from(&mut self, source: &Self) {
        self.round = source.round;
        self.class = source.class;
        self.distinct = source.distinct;
        self.max_mult = source.max_mult;
        self.activated.clone_from(&source.activated);
        self.crashed.clone_from(&source.crashed);
        self.travel = source.travel;
        self.classifications = source.classifications;
        self.cache_hits = source.cache_hits;
        self.weiszfeld_iters = source.weiszfeld_iters;
    }
}

/// A complete execution trace.
///
/// Aggregates (class histogram, transition counts, totals) are maintained
/// incrementally on push, so they stay exact even when the trace is
/// *bounded*: with [`Trace::set_capacity`] only the most recent records are
/// retained (a ring over a `Vec`, keeping [`Trace::records`] a plain
/// ordered slice) while every aggregate still covers the full execution.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    records: Vec<RoundRecord>,
    capacity: Option<usize>,
    dropped: u64,
    total_travel: f64,
    total_classifications: u64,
    total_cache_hits: u64,
    total_weiszfeld_iters: u64,
    histogram: BTreeMap<Class, u64>,
    transitions: BTreeMap<(Class, Class), u64>,
    sequence: Vec<Class>,
    rounds_seen: u64,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Bounds the number of *retained* records: once more than `capacity`
    /// rounds are pushed, the oldest records are evicted (their memory is
    /// recycled, see [`RoundRecord::clone_from`]). Aggregates keep covering
    /// every round ever pushed. `None` (the default) retains everything.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is `Some(0)` — a trace that can hold nothing
    /// cannot satisfy `records()` callers.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        if let Some(cap) = capacity {
            assert!(cap > 0, "trace capacity must be positive");
            if self.records.len() > cap {
                self.dropped += (self.records.len() - cap) as u64;
                self.records.drain(..self.records.len() - cap);
            }
        }
        self.capacity = capacity;
    }

    /// Folds one record into the running aggregates.
    fn absorb(&mut self, record: &RoundRecord) {
        self.total_travel += record.travel;
        self.total_classifications += record.classifications;
        self.total_cache_hits += record.cache_hits;
        self.total_weiszfeld_iters += record.weiszfeld_iters;
        *self.histogram.entry(record.class).or_insert(0) += 1;
        match self.sequence.last() {
            Some(&last) if last == record.class => {}
            Some(&last) => {
                *self.transitions.entry((last, record.class)).or_insert(0) += 1;
                self.sequence.push(record.class);
            }
            None => self.sequence.push(record.class),
        }
        self.rounds_seen += 1;
    }

    /// Appends one round's record.
    pub fn push(&mut self, record: RoundRecord) {
        self.absorb(&record);
        match self.capacity {
            Some(cap) if self.records.len() >= cap => {
                self.records.rotate_left(1);
                *self.records.last_mut().expect("capacity > 0") = record;
                self.dropped += 1;
            }
            _ => self.records.push(record),
        }
    }

    /// Appends a round's record by reference; with a bounded trace the
    /// evicted record's buffers are reused, so no allocation happens once
    /// the ring is warm.
    pub fn push_cloned(&mut self, record: &RoundRecord) {
        self.absorb(record);
        match self.capacity {
            Some(cap) if self.records.len() >= cap => {
                self.records.rotate_left(1);
                self.records
                    .last_mut()
                    .expect("capacity > 0")
                    .clone_from(record);
                self.dropped += 1;
            }
            _ => self.records.push(record.clone()),
        }
    }

    /// Returns the trace to the empty state while keeping its capacity
    /// bound and the retained records' buffers for reuse — the recycling
    /// contract batch execution relies on: a lane slot that finished one
    /// scenario hands its trace to the next scenario, which must observe
    /// exactly what a fresh `Trace` (with the same capacity) would.
    pub fn reset(&mut self) {
        self.records.clear();
        self.dropped = 0;
        self.total_travel = 0.0;
        self.total_classifications = 0;
        self.total_cache_hits = 0;
        self.total_weiszfeld_iters = 0;
        self.histogram.clear();
        self.transitions.clear();
        self.sequence.clear();
        self.rounds_seen = 0;
    }

    /// The retained records, oldest first. The full execution unless a
    /// capacity bound evicted early rounds (see [`Trace::dropped`]).
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// Number of rounds ever pushed (evicted rounds included).
    pub fn len(&self) -> usize {
        self.rounds_seen as usize
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.rounds_seen == 0
    }

    /// Number of records evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Rounds spent in each configuration class.
    pub fn class_histogram(&self) -> BTreeMap<Class, u64> {
        self.histogram.clone()
    }

    /// The observed class transitions `(from, to) → count`, counting only
    /// rounds where the class changed.
    ///
    /// Experiment F3 compares this against the transition edges allowed by
    /// Lemmas 5.3–5.9 (e.g. `M` never leaves `M`; nothing enters `B`).
    pub fn class_transitions(&self) -> BTreeMap<(Class, Class), u64> {
        self.transitions.clone()
    }

    /// Total distance travelled by all robots over the execution.
    pub fn total_travel(&self) -> f64 {
        self.total_travel
    }

    /// Total `classify()` invocations over the execution.
    pub fn total_classifications(&self) -> u64 {
        self.total_classifications
    }

    /// Total analysis-cache hits over the execution.
    pub fn total_cache_hits(&self) -> u64 {
        self.total_cache_hits
    }

    /// Total Weiszfeld iterations over the execution.
    pub fn total_weiszfeld_iters(&self) -> u64 {
        self.total_weiszfeld_iters
    }

    /// The sequence of classes visited (consecutive duplicates collapsed).
    pub fn class_sequence(&self) -> Vec<Class> {
        self.sequence.clone()
    }

    /// Serialises every *retained* record as NDJSON — one
    /// [`RoundRecord::write_jsonl`] line per round, each terminated by
    /// `\n`. With an unbounded trace this is the full execution, and it is
    /// the exact byte stream `GET /v1/trace` serves.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 128);
        for record in &self.records {
            record.write_jsonl(&mut out);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(round: u64, class: Class) -> RoundRecord {
        RoundRecord {
            round,
            class,
            distinct: 3,
            max_mult: 1,
            activated: vec![0],
            crashed: vec![],
            travel: 1.0,
            classifications: 2,
            cache_hits: 1,
            weiszfeld_iters: 10,
        }
    }

    #[test]
    fn histogram_counts_rounds_per_class() {
        let mut t = Trace::new();
        t.push(rec(0, Class::Asymmetric));
        t.push(rec(1, Class::Asymmetric));
        t.push(rec(2, Class::Multiple));
        let h = t.class_histogram();
        assert_eq!(h[&Class::Asymmetric], 2);
        assert_eq!(h[&Class::Multiple], 1);
    }

    #[test]
    fn transitions_ignore_self_loops() {
        let mut t = Trace::new();
        t.push(rec(0, Class::Asymmetric));
        t.push(rec(1, Class::Asymmetric));
        t.push(rec(2, Class::Multiple));
        t.push(rec(3, Class::Multiple));
        let tr = t.class_transitions();
        assert_eq!(tr.len(), 1);
        assert_eq!(tr[&(Class::Asymmetric, Class::Multiple)], 1);
    }

    #[test]
    fn class_sequence_collapses_runs() {
        let mut t = Trace::new();
        for (i, c) in [
            Class::QuasiRegular,
            Class::QuasiRegular,
            Class::Multiple,
            Class::Multiple,
        ]
        .iter()
        .enumerate()
        {
            t.push(rec(i as u64, *c));
        }
        assert_eq!(
            t.class_sequence(),
            vec![Class::QuasiRegular, Class::Multiple]
        );
    }

    #[test]
    fn totals() {
        let mut t = Trace::new();
        t.push(rec(0, Class::Multiple));
        t.push(rec(1, Class::Multiple));
        assert_eq!(t.total_travel(), 2.0);
        assert_eq!(t.total_classifications(), 4);
        assert_eq!(t.total_cache_hits(), 2);
        assert_eq!(t.total_weiszfeld_iters(), 20);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert!(Trace::new().is_empty());
    }

    #[test]
    fn bounded_trace_keeps_recent_records_and_full_aggregates() {
        let mut t = Trace::new();
        t.set_capacity(Some(3));
        for i in 0..10 {
            let class = if i < 5 {
                Class::Asymmetric
            } else {
                Class::Multiple
            };
            t.push_cloned(&rec(i, class));
        }
        // Only the 3 most recent records survive, in order.
        let rounds: Vec<u64> = t.records().iter().map(|r| r.round).collect();
        assert_eq!(rounds, vec![7, 8, 9]);
        assert_eq!(t.dropped(), 7);
        // Aggregates still cover all 10 rounds.
        assert_eq!(t.len(), 10);
        assert_eq!(t.total_travel(), 10.0);
        assert_eq!(t.class_histogram()[&Class::Asymmetric], 5);
        assert_eq!(t.class_histogram()[&Class::Multiple], 5);
        assert_eq!(
            t.class_transitions()[&(Class::Asymmetric, Class::Multiple)],
            1
        );
        assert_eq!(t.class_sequence(), vec![Class::Asymmetric, Class::Multiple]);
    }

    #[test]
    fn set_capacity_trims_existing_records() {
        let mut t = Trace::new();
        for i in 0..5 {
            t.push(rec(i, Class::Multiple));
        }
        t.set_capacity(Some(2));
        let rounds: Vec<u64> = t.records().iter().map(|r| r.round).collect();
        assert_eq!(rounds, vec![3, 4]);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn reset_restores_fresh_trace_behaviour() {
        let mut recycled = Trace::new();
        recycled.set_capacity(Some(2));
        for i in 0..6 {
            recycled.push_cloned(&rec(i, Class::Asymmetric));
        }
        recycled.reset();
        assert!(recycled.is_empty());
        assert_eq!(recycled.dropped(), 0);

        let mut fresh = Trace::new();
        fresh.set_capacity(Some(2));
        for i in 0..4 {
            recycled.push_cloned(&rec(i, Class::Multiple));
            fresh.push_cloned(&rec(i, Class::Multiple));
        }
        assert_eq!(recycled.records(), fresh.records());
        assert_eq!(recycled.dropped(), fresh.dropped());
        assert_eq!(recycled.len(), fresh.len());
        assert_eq!(recycled.total_travel(), fresh.total_travel());
        assert_eq!(recycled.class_histogram(), fresh.class_histogram());
        assert_eq!(recycled.class_transitions(), fresh.class_transitions());
        assert_eq!(recycled.class_sequence(), fresh.class_sequence());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_is_rejected() {
        let mut t = Trace::new();
        t.set_capacity(Some(0));
    }

    #[test]
    fn round_record_jsonl_is_deterministic() {
        let r = rec(3, Class::QuasiRegular);
        assert_eq!(
            r.to_jsonl(),
            "{\"round\":3,\"class\":\"QR\",\"distinct\":3,\"max_mult\":1,\
             \"activated\":[0],\"crashed\":[],\"travel\":1.0,\
             \"classifications\":2,\"cache_hits\":1,\"weiszfeld_iters\":10}"
        );
        let mut t = Trace::new();
        t.push(rec(0, Class::Multiple));
        t.push(rec(1, Class::Multiple));
        let ndjson = t.to_jsonl();
        assert_eq!(ndjson.lines().count(), 2);
        assert!(ndjson.ends_with("}\n"));
        assert_eq!(
            ndjson,
            t.records()
                .iter()
                .map(|r| format!("{}\n", r.to_jsonl()))
                .collect::<String>()
        );
    }

    #[test]
    fn v2_header_is_deterministic_and_wraps_the_spec_verbatim() {
        let header = v2_header("{\"n\":8}", 7, "sync");
        assert_eq!(
            header,
            "{\"schema\":\"trace/v2\",\"spec\":{\"n\":8},\"seed\":7,\"engine\":\"sync\"}"
        );
        let mut streamed = String::new();
        write_v2_header(&mut streamed, "{\"n\":8}", 7, "sync");
        assert_eq!(streamed, header);
    }

    #[test]
    fn clone_from_reuses_buffers_and_copies_fields() {
        let source = rec(42, Class::QuasiRegular);
        let mut dest = RoundRecord {
            activated: Vec::with_capacity(8),
            ..RoundRecord::default()
        };
        let ptr = dest.activated.as_ptr();
        dest.clone_from(&source);
        assert_eq!(dest, source);
        assert_eq!(dest.activated.as_ptr(), ptr, "buffer was reallocated");
    }
}
