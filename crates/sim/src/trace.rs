//! Execution traces: per-round records for analysis and experiments.

use gather_config::Class;
use std::collections::BTreeMap;

/// What happened in one simulated round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Round index (0-based).
    pub round: u64,
    /// The configuration's class at the *start* of the round.
    pub class: Class,
    /// Number of distinct occupied locations at the start of the round.
    pub distinct: usize,
    /// Maximum multiplicity at the start of the round.
    pub max_mult: usize,
    /// Robots activated by the scheduler this round.
    pub activated: Vec<usize>,
    /// Robots newly crashed this round.
    pub crashed: Vec<usize>,
    /// Total distance travelled by robots this round.
    pub travel: f64,
    /// `classify()` invocations performed during this round (shared
    /// analysis, algorithm fallbacks, audits — everything on this thread).
    pub classifications: u64,
    /// Analysis-cache hits during this round (configuration unchanged since
    /// the previous analysis, so the memoized result was reused).
    pub cache_hits: u64,
    /// Weiszfeld solver iterations spent during this round.
    pub weiszfeld_iters: u64,
}

/// A complete execution trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    records: Vec<RoundRecord>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends one round's record.
    pub fn push(&mut self, record: RoundRecord) {
        self.records.push(record);
    }

    /// All recorded rounds, in order.
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Rounds spent in each configuration class.
    pub fn class_histogram(&self) -> BTreeMap<Class, u64> {
        let mut hist = BTreeMap::new();
        for r in &self.records {
            *hist.entry(r.class).or_insert(0) += 1;
        }
        hist
    }

    /// The observed class transitions `(from, to) → count`, counting only
    /// rounds where the class changed.
    ///
    /// Experiment F3 compares this against the transition edges allowed by
    /// Lemmas 5.3–5.9 (e.g. `M` never leaves `M`; nothing enters `B`).
    pub fn class_transitions(&self) -> BTreeMap<(Class, Class), u64> {
        let mut out = BTreeMap::new();
        for w in self.records.windows(2) {
            if w[0].class != w[1].class {
                *out.entry((w[0].class, w[1].class)).or_insert(0) += 1;
            }
        }
        out
    }

    /// Total distance travelled by all robots over the execution.
    pub fn total_travel(&self) -> f64 {
        self.records.iter().map(|r| r.travel).sum()
    }

    /// Total `classify()` invocations over the execution.
    pub fn total_classifications(&self) -> u64 {
        self.records.iter().map(|r| r.classifications).sum()
    }

    /// Total analysis-cache hits over the execution.
    pub fn total_cache_hits(&self) -> u64 {
        self.records.iter().map(|r| r.cache_hits).sum()
    }

    /// Total Weiszfeld iterations over the execution.
    pub fn total_weiszfeld_iters(&self) -> u64 {
        self.records.iter().map(|r| r.weiszfeld_iters).sum()
    }

    /// The sequence of classes visited (consecutive duplicates collapsed).
    pub fn class_sequence(&self) -> Vec<Class> {
        let mut out: Vec<Class> = Vec::new();
        for r in &self.records {
            if out.last() != Some(&r.class) {
                out.push(r.class);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(round: u64, class: Class) -> RoundRecord {
        RoundRecord {
            round,
            class,
            distinct: 3,
            max_mult: 1,
            activated: vec![0],
            crashed: vec![],
            travel: 1.0,
            classifications: 2,
            cache_hits: 1,
            weiszfeld_iters: 10,
        }
    }

    #[test]
    fn histogram_counts_rounds_per_class() {
        let mut t = Trace::new();
        t.push(rec(0, Class::Asymmetric));
        t.push(rec(1, Class::Asymmetric));
        t.push(rec(2, Class::Multiple));
        let h = t.class_histogram();
        assert_eq!(h[&Class::Asymmetric], 2);
        assert_eq!(h[&Class::Multiple], 1);
    }

    #[test]
    fn transitions_ignore_self_loops() {
        let mut t = Trace::new();
        t.push(rec(0, Class::Asymmetric));
        t.push(rec(1, Class::Asymmetric));
        t.push(rec(2, Class::Multiple));
        t.push(rec(3, Class::Multiple));
        let tr = t.class_transitions();
        assert_eq!(tr.len(), 1);
        assert_eq!(tr[&(Class::Asymmetric, Class::Multiple)], 1);
    }

    #[test]
    fn class_sequence_collapses_runs() {
        let mut t = Trace::new();
        for (i, c) in [
            Class::QuasiRegular,
            Class::QuasiRegular,
            Class::Multiple,
            Class::Multiple,
        ]
        .iter()
        .enumerate()
        {
            t.push(rec(i as u64, *c));
        }
        assert_eq!(
            t.class_sequence(),
            vec![Class::QuasiRegular, Class::Multiple]
        );
    }

    #[test]
    fn totals() {
        let mut t = Trace::new();
        t.push(rec(0, Class::Multiple));
        t.push(rec(1, Class::Multiple));
        assert_eq!(t.total_travel(), 2.0);
        assert_eq!(t.total_classifications(), 4);
        assert_eq!(t.total_cache_hits(), 2);
        assert_eq!(t.total_weiszfeld_iters(), 20);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert!(Trace::new().is_empty());
    }
}
