//! Crash-fault injection (the paper's fault model).
//!
//! A crashed robot stops taking actions forever but remains visible to the
//! others. The adversary chooses *which* robots crash and *when*; the
//! paper's Theorem 5.1 tolerates any `f ≤ n − 1` crashes. Plans provided:
//!
//! * [`NoCrashes`] — fault-free baseline;
//! * [`CrashAtRounds`] — an explicit schedule `(round, robot)`;
//! * [`RandomCrashes`] — up to `f` crashes at random times/victims;
//! * [`TargetedCrashes`] — crashes chosen by a closure observing the
//!   current configuration (e.g. "always crash the robot closest to the
//!   elected point", or "crash the line endpoints", the adversarial
//!   patterns used in the paper's proofs).

use gather_config::Configuration;
use gather_prng::Rng;

/// Decides which robots crash at the start of each round.
pub trait CrashPlan {
    /// Robots to crash in `round`, given the current (global, canonical)
    /// configuration and per-robot positions/liveness. Indices of already
    /// crashed robots are ignored by the engine.
    fn crashes(&mut self, round: u64, config: &Configuration, alive: &[bool]) -> Vec<usize>;

    /// Allocation-free form of [`CrashPlan::crashes`]: writes the victims
    /// into `out` (cleared first, capacity kept). The default delegates to
    /// `crashes`; [`NoCrashes`] overrides it so fault-free steady-state
    /// rounds do not allocate.
    fn crashes_into(
        &mut self,
        round: u64,
        config: &Configuration,
        alive: &[bool],
        out: &mut Vec<usize>,
    ) {
        out.clear();
        out.append(&mut self.crashes(round, config, alive));
    }

    /// Short identifier used in experiment tables.
    fn name(&self) -> &'static str {
        "crash-plan"
    }

    /// The maximum number of crashes this plan may inject (`f`), if known.
    fn budget(&self) -> Option<usize> {
        None
    }
}

impl<C: CrashPlan + ?Sized> CrashPlan for Box<C> {
    fn crashes(&mut self, round: u64, config: &Configuration, alive: &[bool]) -> Vec<usize> {
        (**self).crashes(round, config, alive)
    }
    fn crashes_into(
        &mut self,
        round: u64,
        config: &Configuration,
        alive: &[bool],
        out: &mut Vec<usize>,
    ) {
        (**self).crashes_into(round, config, alive, out)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn budget(&self) -> Option<usize> {
        (**self).budget()
    }
}

/// No robot ever crashes.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCrashes;

impl CrashPlan for NoCrashes {
    fn crashes(&mut self, _round: u64, _config: &Configuration, _alive: &[bool]) -> Vec<usize> {
        Vec::new()
    }
    fn crashes_into(
        &mut self,
        _round: u64,
        _config: &Configuration,
        _alive: &[bool],
        out: &mut Vec<usize>,
    ) {
        out.clear();
    }
    fn name(&self) -> &'static str {
        "none"
    }
    fn budget(&self) -> Option<usize> {
        Some(0)
    }
}

/// Crashes robots at an explicit schedule of `(round, robot)` pairs.
///
/// # Example
///
/// ```
/// use gather_sim::prelude::{CrashAtRounds, CrashPlan};
/// use gather_config::Configuration;
/// use gather_geom::Point;
///
/// let mut plan = CrashAtRounds::new(vec![(0, 2), (5, 0)]);
/// let c = Configuration::new(vec![Point::ORIGIN; 3]);
/// assert_eq!(plan.crashes(0, &c, &[true; 3]), vec![2]);
/// assert_eq!(plan.crashes(1, &c, &[true; 3]), Vec::<usize>::new());
/// assert_eq!(plan.crashes(5, &c, &[true; 3]), vec![0]);
/// ```
#[derive(Debug, Clone)]
pub struct CrashAtRounds {
    schedule: Vec<(u64, usize)>,
}

impl CrashAtRounds {
    /// A plan crashing robot `i` at round `r` for each `(r, i)` given.
    pub fn new(schedule: Vec<(u64, usize)>) -> Self {
        CrashAtRounds { schedule }
    }

    /// Convenience: crash the given robots before the first round.
    pub fn at_start(robots: impl IntoIterator<Item = usize>) -> Self {
        CrashAtRounds {
            schedule: robots.into_iter().map(|i| (0, i)).collect(),
        }
    }
}

impl CrashPlan for CrashAtRounds {
    fn crashes(&mut self, round: u64, _config: &Configuration, _alive: &[bool]) -> Vec<usize> {
        self.schedule
            .iter()
            .filter(|(r, _)| *r == round)
            .map(|(_, i)| *i)
            .collect()
    }
    fn name(&self) -> &'static str {
        "scheduled"
    }
    fn budget(&self) -> Option<usize> {
        Some(self.schedule.len())
    }
}

/// Crashes up to `f` robots: in each round, each live robot crashes with
/// probability `p_per_round` until the budget is exhausted.
#[derive(Debug, Clone)]
pub struct RandomCrashes {
    f: usize,
    p_per_round: f64,
    crashed_so_far: usize,
    rng: Rng,
}

impl RandomCrashes {
    /// A plan crashing at most `f` robots, each live robot independently
    /// with per-round probability `p_per_round`.
    ///
    /// # Panics
    ///
    /// Panics if `p_per_round` is not within `[0, 1]`.
    pub fn new(f: usize, p_per_round: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_per_round),
            "crash probability must be in [0, 1]"
        );
        RandomCrashes {
            f,
            p_per_round,
            crashed_so_far: 0,
            rng: Rng::seed_from_u64(seed),
        }
    }
}

impl CrashPlan for RandomCrashes {
    fn crashes(&mut self, _round: u64, _config: &Configuration, alive: &[bool]) -> Vec<usize> {
        let mut out = Vec::new();
        for (i, &is_alive) in alive.iter().enumerate() {
            if self.crashed_so_far >= self.f {
                break;
            }
            if is_alive && self.rng.random_bool(self.p_per_round) {
                out.push(i);
                self.crashed_so_far += 1;
            }
        }
        out
    }
    fn name(&self) -> &'static str {
        "random"
    }
    fn budget(&self) -> Option<usize> {
        Some(self.f)
    }
}

/// Crashes chosen by an arbitrary closure with access to the current
/// configuration — the fully adaptive adversary of the paper's proofs.
///
/// The closure receives `(round, config, alive)` and returns victims; the
/// plan enforces the budget `f` across the whole run.
pub struct TargetedCrashes<F> {
    f: usize,
    used: usize,
    name: &'static str,
    chooser: F,
}

impl<F: FnMut(u64, &Configuration, &[bool]) -> Vec<usize>> TargetedCrashes<F> {
    /// A budgeted adaptive crash plan.
    pub fn new(name: &'static str, f: usize, chooser: F) -> Self {
        TargetedCrashes {
            f,
            used: 0,
            name,
            chooser,
        }
    }
}

impl<F: FnMut(u64, &Configuration, &[bool]) -> Vec<usize>> CrashPlan for TargetedCrashes<F> {
    fn crashes(&mut self, round: u64, config: &Configuration, alive: &[bool]) -> Vec<usize> {
        if self.used >= self.f {
            return Vec::new();
        }
        let mut victims = (self.chooser)(round, config, alive);
        victims.retain(|i| alive.get(*i).copied().unwrap_or(false));
        victims.truncate(self.f - self.used);
        self.used += victims.len();
        victims
    }
    fn name(&self) -> &'static str {
        self.name
    }
    fn budget(&self) -> Option<usize> {
        Some(self.f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gather_geom::Point;

    fn cfg(n: usize) -> Configuration {
        Configuration::new((0..n).map(|i| Point::new(i as f64, 0.0)).collect())
    }

    #[test]
    fn no_crashes_never_crashes() {
        let mut p = NoCrashes;
        for r in 0..10 {
            assert!(p.crashes(r, &cfg(4), &[true; 4]).is_empty());
        }
        assert_eq!(p.budget(), Some(0));
    }

    #[test]
    fn scheduled_crashes_fire_once() {
        let mut p = CrashAtRounds::new(vec![(3, 1), (3, 2)]);
        assert!(p.crashes(2, &cfg(4), &[true; 4]).is_empty());
        assert_eq!(p.crashes(3, &cfg(4), &[true; 4]), vec![1, 2]);
        assert_eq!(p.budget(), Some(2));
    }

    #[test]
    fn at_start_crashes_in_round_zero() {
        let mut p = CrashAtRounds::at_start([0, 3]);
        assert_eq!(p.crashes(0, &cfg(4), &[true; 4]), vec![0, 3]);
        assert!(p.crashes(1, &cfg(4), &[true; 4]).is_empty());
    }

    #[test]
    fn random_crashes_respect_budget() {
        let mut p = RandomCrashes::new(2, 1.0, 9);
        let first = p.crashes(0, &cfg(5), &[true; 5]);
        assert_eq!(first.len(), 2);
        let later = p.crashes(1, &cfg(5), &[true; 5]);
        assert!(later.is_empty());
    }

    #[test]
    fn random_crashes_deterministic_per_seed() {
        let run = |seed| {
            let mut p = RandomCrashes::new(3, 0.3, seed);
            (0..20)
                .map(|r| p.crashes(r, &cfg(6), &[true; 6]))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn targeted_crashes_filter_dead_and_budget() {
        let mut p = TargetedCrashes::new("kill-zero", 1, |_r, _c, _a| vec![0, 1]);
        // Robot 0 already dead: only robot 1 is a valid victim, budget 1.
        let victims = p.crashes(0, &cfg(3), &[false, true, true]);
        assert_eq!(victims, vec![1]);
        assert!(p.crashes(1, &cfg(3), &[false, false, true]).is_empty());
    }

    #[test]
    fn targeted_crashes_see_configuration() {
        // Crash the robot at the largest x-coordinate.
        let mut p = TargetedCrashes::new("rightmost", 1, |_r, c: &Configuration, _a| {
            let rightmost = c
                .points()
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.x.total_cmp(&b.x))
                .map(|(i, _)| i);
            rightmost.into_iter().collect()
        });
        assert_eq!(p.crashes(0, &cfg(4), &[true; 4]), vec![3]);
    }
}
