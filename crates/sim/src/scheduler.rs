//! Activation schedulers: the ATOM model's adversary choosing which robots
//! act in each round.
//!
//! The model's only constraint is *fairness*: every correct robot is
//! activated infinitely often. The proofs of the paper quantify over all
//! fair schedulers; the experiments sample the canonical extreme points of
//! that space:
//!
//! * [`EveryRobot`] — fully synchronous (FSYNC embedded in SSYNC);
//! * [`RoundRobin`] — exactly `k` robots per round, cyclically;
//! * [`SequentialSingle`] — one robot per round (maximal serialisation);
//! * [`RandomSubsets`] — independent coin per robot, with a starvation cap
//!   enforcing fairness in finite runs;
//! * [`FnScheduler`] — arbitrary custom adversaries for experiments.
//!
//! Schedulers see only robot indices and liveness, not positions; an
//! adversary that reads the configuration can be built with
//! [`FnScheduler`].

use gather_prng::Rng;

/// Chooses the set of robots to activate in each round.
///
/// `alive[i]` tells whether robot `i` is still correct; crashed robots may
/// be "selected" but the engine ignores them, so schedulers may skip the
/// liveness check. Returning an empty set is allowed (an idle round), but a
/// fair scheduler must not starve any live robot forever.
pub trait Scheduler {
    /// Robots to activate in `round` (0-based), given liveness flags.
    fn select(&mut self, round: u64, alive: &[bool]) -> Vec<usize>;

    /// Allocation-free form of [`Scheduler::select`]: writes the selection
    /// into `out` (cleared first, capacity kept). The default delegates to
    /// `select`; the engine's built-in schedulers override it so the
    /// steady-state round loop does not allocate.
    fn select_into(&mut self, round: u64, alive: &[bool], out: &mut Vec<usize>) {
        out.clear();
        out.append(&mut self.select(round, alive));
    }

    /// Short identifier used in experiment tables.
    fn name(&self) -> &'static str {
        "scheduler"
    }
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn select(&mut self, round: u64, alive: &[bool]) -> Vec<usize> {
        (**self).select(round, alive)
    }
    fn select_into(&mut self, round: u64, alive: &[bool], out: &mut Vec<usize>) {
        (**self).select_into(round, alive, out)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Activates every robot in every round (fully synchronous execution).
#[derive(Debug, Clone, Copy, Default)]
pub struct EveryRobot;

impl Scheduler for EveryRobot {
    fn select(&mut self, _round: u64, alive: &[bool]) -> Vec<usize> {
        (0..alive.len()).collect()
    }
    fn select_into(&mut self, _round: u64, alive: &[bool], out: &mut Vec<usize>) {
        out.clear();
        out.extend(0..alive.len());
    }
    fn name(&self) -> &'static str {
        "full"
    }
}

/// Activates exactly `k` live robots per round, cycling deterministically.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    k: usize,
    next: usize,
}

impl RoundRobin {
    /// A round-robin scheduler activating `k` robots per round.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "round-robin group size must be positive");
        RoundRobin { k, next: 0 }
    }
}

impl Scheduler for RoundRobin {
    fn select(&mut self, round: u64, alive: &[bool]) -> Vec<usize> {
        let mut out = Vec::new();
        self.select_into(round, alive, &mut out);
        out
    }
    fn select_into(&mut self, _round: u64, alive: &[bool], out: &mut Vec<usize>) {
        out.clear();
        let live_count = alive.iter().filter(|a| **a).count();
        if live_count == 0 {
            return;
        }
        // The j-th pick is the ((next + j) mod live)-th live robot, found by
        // rank scan — O(k·n) but allocation-free, and n is a robot count.
        for j in 0..self.k.min(live_count) {
            let rank = (self.next + j) % live_count;
            let idx = alive
                .iter()
                .enumerate()
                .filter(|(_, a)| **a)
                .nth(rank)
                .map(|(i, _)| i)
                .expect("rank < live_count");
            out.push(idx);
        }
        self.next = (self.next + self.k) % live_count;
    }
    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Activates a single robot per round, in cyclic order — the most
/// serialised fair execution.
#[derive(Debug, Clone, Default)]
pub struct SequentialSingle {
    next: usize,
}

impl SequentialSingle {
    /// A scheduler activating one robot at a time.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for SequentialSingle {
    fn select(&mut self, round: u64, alive: &[bool]) -> Vec<usize> {
        let mut out = Vec::new();
        self.select_into(round, alive, &mut out);
        out
    }
    fn select_into(&mut self, _round: u64, alive: &[bool], out: &mut Vec<usize>) {
        out.clear();
        let n = alive.len();
        for _ in 0..n {
            let i = self.next % n.max(1);
            self.next = (self.next + 1) % n.max(1);
            if alive.get(i).copied().unwrap_or(false) {
                out.push(i);
                return;
            }
        }
    }
    fn name(&self) -> &'static str {
        "single"
    }
}

/// Activates each live robot independently with probability `p`, forcing
/// activation of any robot idle for more than `starvation_cap` rounds so
/// finite executions remain fair.
#[derive(Debug, Clone)]
pub struct RandomSubsets {
    p: f64,
    starvation_cap: u64,
    rng: Rng,
    last_active: Vec<u64>,
}

impl RandomSubsets {
    /// A random-subset scheduler with activation probability `p` and the
    /// given seed. Robots idle longer than `starvation_cap` rounds are
    /// activated unconditionally.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `(0, 1]`.
    pub fn new(p: f64, starvation_cap: u64, seed: u64) -> Self {
        assert!(
            p > 0.0 && p <= 1.0,
            "activation probability must be in (0, 1]"
        );
        RandomSubsets {
            p,
            starvation_cap,
            rng: Rng::seed_from_u64(seed),
            last_active: Vec::new(),
        }
    }
}

impl Scheduler for RandomSubsets {
    fn select(&mut self, round: u64, alive: &[bool]) -> Vec<usize> {
        if self.last_active.len() != alive.len() {
            self.last_active = vec![round; alive.len()];
        }
        let mut out = Vec::new();
        for (i, &is_alive) in alive.iter().enumerate() {
            if !is_alive {
                continue;
            }
            let starved = round.saturating_sub(self.last_active[i]) >= self.starvation_cap;
            if starved || self.rng.random_bool(self.p) {
                out.push(i);
                self.last_active[i] = round;
            }
        }
        out
    }
    fn name(&self) -> &'static str {
        "random"
    }
}

/// Wraps a closure as a scheduler, for experiment-specific adversaries.
///
/// # Example
///
/// ```
/// use gather_sim::prelude::{FnScheduler, Scheduler};
/// // Activate only even-indexed robots on even rounds, odd on odd rounds.
/// let mut s = FnScheduler::new("parity", |round, alive: &[bool]| {
///     (0..alive.len())
///         .filter(|i| alive[*i] && (*i as u64 % 2 == round % 2))
///         .collect()
/// });
/// assert_eq!(s.select(0, &[true, true, true]), vec![0, 2]);
/// assert_eq!(s.select(1, &[true, true, true]), vec![1]);
/// ```
pub struct FnScheduler<F> {
    name: &'static str,
    f: F,
}

impl<F: FnMut(u64, &[bool]) -> Vec<usize>> FnScheduler<F> {
    /// Wraps `f` as a scheduler named `name`.
    pub fn new(name: &'static str, f: F) -> Self {
        FnScheduler { name, f }
    }
}

impl<F: FnMut(u64, &[bool]) -> Vec<usize>> Scheduler for FnScheduler<F> {
    fn select(&mut self, round: u64, alive: &[bool]) -> Vec<usize> {
        (self.f)(round, alive)
    }
    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_robot_selects_all() {
        let mut s = EveryRobot;
        assert_eq!(s.select(0, &[true, false, true]), vec![0, 1, 2]);
    }

    #[test]
    fn round_robin_cycles_over_live_robots() {
        let mut s = RoundRobin::new(2);
        let alive = [true, true, true, true];
        let r0 = s.select(0, &alive);
        let r1 = s.select(1, &alive);
        assert_eq!(r0, vec![0, 1]);
        assert_eq!(r1, vec![2, 3]);
        let r2 = s.select(2, &alive);
        assert_eq!(r2, vec![0, 1]);
    }

    #[test]
    fn select_into_matches_select() {
        let alive = [true, false, true, true, true];
        let mut buf = Vec::new();
        let (mut a, mut b) = (RoundRobin::new(2), RoundRobin::new(2));
        for r in 0..10 {
            let v = a.select(r, &alive);
            b.select_into(r, &alive, &mut buf);
            assert_eq!(v, buf, "round-robin diverged at round {r}");
        }
        let (mut a, mut b) = (SequentialSingle::new(), SequentialSingle::new());
        for r in 0..10 {
            let v = a.select(r, &alive);
            b.select_into(r, &alive, &mut buf);
            assert_eq!(v, buf, "sequential diverged at round {r}");
        }
        // Schedulers without an override fall back to select.
        let (mut a, mut b) = (
            RandomSubsets::new(0.5, 10, 3),
            RandomSubsets::new(0.5, 10, 3),
        );
        for r in 0..10 {
            let v = a.select(r, &alive);
            b.select_into(r, &alive, &mut buf);
            assert_eq!(v, buf, "random diverged at round {r}");
        }
    }

    #[test]
    fn round_robin_skips_crashed_robots() {
        let mut s = RoundRobin::new(2);
        let alive = [true, false, true, false];
        let r0 = s.select(0, &alive);
        assert_eq!(r0, vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn round_robin_zero_panics() {
        let _ = RoundRobin::new(0);
    }

    #[test]
    fn sequential_visits_everyone() {
        let mut s = SequentialSingle::new();
        let alive = [true, true, true];
        let mut seen = std::collections::HashSet::new();
        for r in 0..3 {
            for i in s.select(r, &alive) {
                seen.insert(i);
            }
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn sequential_skips_crashed() {
        let mut s = SequentialSingle::new();
        let alive = [false, true, false];
        assert_eq!(s.select(0, &alive), vec![1]);
        assert_eq!(s.select(1, &alive), vec![1]);
    }

    #[test]
    fn random_subsets_respects_starvation_cap() {
        let mut s = RandomSubsets::new(0.01, 5, 42);
        let alive = [true; 4];
        let mut last = [0u64; 4];
        for round in 0..200 {
            for i in s.select(round, &alive) {
                last[i] = round;
            }
            for (i, l) in last.iter().enumerate() {
                assert!(
                    round - l <= 6,
                    "robot {i} starved from round {l} to {round}"
                );
            }
        }
    }

    #[test]
    fn random_subsets_is_deterministic_per_seed() {
        let alive = [true; 8];
        let runs: Vec<Vec<Vec<usize>>> = (0..2)
            .map(|_| {
                let mut s = RandomSubsets::new(0.5, 100, 7);
                (0..20).map(|r| s.select(r, &alive)).collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn random_subsets_validates_probability() {
        let _ = RandomSubsets::new(0.0, 10, 1);
    }

    #[test]
    fn scheduler_names() {
        assert_eq!(EveryRobot.name(), "full");
        assert_eq!(RoundRobin::new(1).name(), "round-robin");
        assert_eq!(SequentialSingle::new().name(), "single");
        assert_eq!(RandomSubsets::new(0.5, 10, 0).name(), "random");
    }
}
