//! The round-based ATOM execution engine.
//!
//! Each round proceeds exactly as in Section II of the paper:
//!
//! 1. the crash adversary may crash robots (they stay visible forever);
//! 2. the scheduler activates a subset of the live robots;
//! 3. every activated robot atomically LOOKs (obtaining the start-of-round
//!    configuration in its own fresh local frame), COMPUTEs (running the
//!    algorithm), and MOVEs (straight toward its destination, stopped by
//!    the motion adversary no earlier than the minimum step `δ`);
//! 4. all moves take effect simultaneously.
//!
//! The engine canonicalises positions every round (points within
//! `tol.snap` merge) so strong multiplicity detection is exact, records a
//! [`Trace`], and optionally audits the wait-freeness condition of
//! Lemma 5.1 and the never-enter-`B` invariant.

use crate::algorithm::Algorithm;
use crate::byzantine::ByzantinePolicy;
use crate::crash::{CrashPlan, NoCrashes};
use crate::frames::{FramePolicy, FrameSource};
use crate::motion::{apply_motion, FullMotion, MotionAdversary};
use crate::scheduler::{EveryRobot, Scheduler};
use crate::snapshot::Snapshot;
use crate::trace::{RoundRecord, Trace};
use gather_config::{
    canonicalize_into, classify, classify_invocations, AnalysisCache, CanonScratch, Class,
    Configuration, RoundAnalysis,
};
use gather_geom::{weiszfeld_iterations, weiszfeld_nanos, Point, Tol};
use gather_obs::{EngineObs, Phase, PhaseNanos, PhaseTimer};

/// Reusable working memory for the round loop. Cleared and refilled every
/// round instead of re-`collect`ed, so the steady state allocates nothing.
/// `std::mem::take`n at the top of [`Engine::step`] (sidestepping borrow
/// conflicts between the buffers and the engine's trait objects) and put
/// back before returning.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    /// The start-of-round configuration (what every robot LOOKs at).
    pub(crate) config: Configuration,
    /// A robot's local view: the observed configuration with the robot's
    /// own entry refreshed, mapped into its frame.
    pub(crate) local: Configuration,
    /// Pending end-of-round positions, before canonicalisation.
    pub(crate) new_positions: Vec<Point>,
    /// Canonicalised end-of-round positions (swapped into `positions`).
    pub(crate) canon_out: Vec<Point>,
    /// Union-find arrays for canonicalisation.
    pub(crate) canon: CanonScratch,
    /// Robots activated this round.
    pub(crate) activated: Vec<usize>,
    /// Raw victim list from the crash plan (pre-liveness-filter).
    pub(crate) crash_raw: Vec<usize>,
    /// Robots that actually crashed this round.
    pub(crate) crashed_now: Vec<usize>,
    /// Distinct locations with multiplicities (`U(C)`).
    pub(crate) distinct: Vec<(Point, usize)>,
    /// Sorting scratch for `distinct_into`.
    pub(crate) sort: Vec<Point>,
    /// Indices whose pending position differs bitwise from the previous
    /// canonical one (the incremental path's per-round dirty set).
    pub(crate) dirty: Vec<usize>,
}

/// The reusable heap-backed innards of a retired [`Engine`]: the round-loop
/// scratch buffers and the analysis cache. Extracted with
/// [`Engine::into_parts`] and fed to [`EngineBuilder::recycle`], so a worker
/// that runs many simulations back to back (a sweep) keeps one warm set of
/// buffers instead of re-growing them per run — the steady-state
/// zero-allocation property then holds across sweep-item boundaries, not
/// just within one run.
///
/// Recycling is observationally invisible: `build` resets the analysis
/// cache (memo, warm-start iterate, counters) and every scratch buffer is
/// cleared before use, so a recycled engine produces bit-identical traces
/// and metrics to a fresh one.
#[derive(Debug, Default)]
pub struct EngineParts {
    pub(crate) scratch: Scratch,
    pub(crate) analysis_cache: AnalysisCache,
}

/// The reusable stepping core: one scenario's adversaries, algorithm and
/// analysis state, with the per-round loop factored into callable stages
/// over *borrowed* mutable state (positions, liveness flags, scratch
/// buffers supplied by the caller).
///
/// [`Engine`] recomposes the stages — in the exact order and with the
/// exact operations of the original monolithic loop — around its own
/// history ring, position log, trace and phase timers. The lockstep
/// [`crate::batch::BatchEngine`] drives the *same* stage code over
/// scenario-major columnar state, which is what makes batch execution
/// bit-identical to sequential runs by construction rather than by
/// re-implementation.
///
/// Stage methods take `round`, state slices and a [`Scratch`] explicitly
/// instead of owning them: one scratch arena can then serve many cores
/// (the batch engine lends its single per-worker arena to whichever lane
/// is stepping), and the borrows stay disjoint from the trait objects
/// stored here.
pub(crate) struct StepCore {
    pub(crate) algorithm: Box<dyn Algorithm>,
    pub(crate) scheduler: Box<dyn Scheduler>,
    pub(crate) crash_plan: Box<dyn CrashPlan>,
    pub(crate) motion: Box<dyn MotionAdversary>,
    pub(crate) frame_source: FrameSource,
    pub(crate) tol: Tol,
    pub(crate) delta: f64,
    pub(crate) shared_analysis: bool,
    pub(crate) check_invariants: bool,
    pub(crate) started_bivalent: bool,
    pub(crate) incremental: bool,
    /// Bitwise diff between the analysis cache's memoized configuration
    /// and the configuration the *next* analysis will see. Set by
    /// [`StepCore::stage_apply`] after canonicalisation, consumed (and
    /// cleared) by every [`AnalysisCache::analyse_dirty`] call — after
    /// which the memo equals the analysed configuration again, so an empty
    /// pending set means "nothing moved since the memo".
    pub(crate) pending_dirty: Vec<usize>,
    /// Whether the current canonical positions are pairwise snap-separated
    /// (distinct values > `tol.snap` apart). Licenses the O(dirty·n)
    /// canonicalisation: clean points then cannot merge with each other.
    /// Starts `false` (unverified), re-established after every apply.
    pub(crate) sep_ok: bool,
    pub(crate) analysis_cache: AnalysisCache,
}

impl StepCore {
    /// The single shared analysis of the start-of-round configuration
    /// (already loaded into `scratch.config`) and the round's class. `None`
    /// analysis in the ablation mode: each consumer then classifies for
    /// itself, as the seed did.
    pub(crate) fn stage_classify(&mut self, scratch: &Scratch) -> (Option<RoundAnalysis>, Class) {
        let shared: Option<RoundAnalysis> = if self.shared_analysis {
            Some(self.analyse_shared(&scratch.config))
        } else {
            None
        };
        let class = match &shared {
            Some(ra) => ra.analysis.class,
            None => classify(&scratch.config, self.tol).class,
        };
        (shared, class)
    }

    /// The one shared-analysis entry point: the incremental path routes
    /// through [`AnalysisCache::analyse_dirty`] with the pending dirty set
    /// (cleared afterwards — the memo now equals `config`), the reference
    /// path through the plain full-recompute [`AnalysisCache::analyse`].
    fn analyse_shared(&mut self, config: &Configuration) -> RoundAnalysis {
        if self.incremental {
            let ra = self
                .analysis_cache
                .analyse_dirty(config, self.tol, &self.pending_dirty);
            self.pending_dirty.clear();
            ra
        } else {
            self.analysis_cache.analyse(config, self.tol)
        }
    }

    /// Computes the distinct occupied locations (`U(C)`) of the
    /// start-of-round configuration into `scratch.distinct`.
    pub(crate) fn stage_distinct(&self, scratch: &mut Scratch) {
        // The incremental cache maintains the distinct multiset of its
        // memoized configuration — which `stage_classify` just made equal
        // to `scratch.config` — so a valid cached copy replaces the
        // O(n log n) sort with an O(|U(C)|) copy.
        if self.incremental && self.shared_analysis {
            if let Some(d) = self.analysis_cache.distinct_cached() {
                scratch.distinct.clear();
                scratch.distinct.extend_from_slice(d);
                return;
            }
        }
        let Scratch {
            config,
            distinct,
            sort,
            ..
        } = scratch;
        config.distinct_into(distinct, sort);
    }

    /// Crash stage: asks the plan for this round's victims (on the
    /// start-of-round configuration in `scratch.config`), kills the ones
    /// still alive, and records them in `scratch.crashed_now`.
    pub(crate) fn stage_crashes(&mut self, round: u64, alive: &mut [bool], scratch: &mut Scratch) {
        self.crash_plan
            .crashes_into(round, &scratch.config, alive, &mut scratch.crash_raw);
        scratch.crashed_now.clear();
        for &victim in &scratch.crash_raw {
            if alive.get(victim).copied().unwrap_or(false) {
                alive[victim] = false;
                scratch.crashed_now.push(victim);
            }
        }
    }

    /// Activation stage: scheduler selection filtered to live in-range
    /// robots, sorted and deduplicated, into `scratch.activated`.
    pub(crate) fn stage_activate(&mut self, round: u64, alive: &[bool], scratch: &mut Scratch) {
        self.scheduler
            .select_into(round, alive, &mut scratch.activated);
        scratch.activated.retain(|i| *i < alive.len() && alive[*i]);
        scratch.activated.sort_unstable();
        scratch.activated.dedup();
    }

    /// Look–Compute–Move stage for every activated robot, from the same
    /// start-of-round configuration (ATOM atomicity). Pending end-of-round
    /// positions land in `scratch.new_positions`; the return value is the
    /// round's total travel.
    ///
    /// `history_front` is the stale observed configuration when a positive
    /// look delay is in force (`None` means robots observe
    /// `scratch.config`); `fresh_look` says whether the observed
    /// configuration IS the analysed one, which is what licenses attaching
    /// the shared analysis to robot snapshots. `byzantine` may be shorter
    /// than the robot count (the batch path passes an empty slice: lanes
    /// never carry byzantine robots); missing entries mean "not byzantine".
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn stage_moves(
        &mut self,
        round: u64,
        positions: &[Point],
        byzantine: &mut [Option<Box<dyn ByzantinePolicy>>],
        history_front: Option<&Configuration>,
        shared: Option<&RoundAnalysis>,
        fresh_look: bool,
        scratch: &mut Scratch,
    ) -> f64 {
        scratch.new_positions.clear();
        scratch.new_positions.extend_from_slice(positions);
        let mut travel = 0.0;
        for &i in &scratch.activated {
            let me = positions[i];
            let dest = if let Some(policy) = byzantine.get_mut(i).and_then(|p| p.as_mut()) {
                // Byzantine robots pick destinations omnisciently, in
                // global coordinates, on the *current* configuration.
                policy.destination(round, i, &scratch.config, me)
            } else {
                let frame = self.frame_source.frame_for(me);
                // The robot sees itself where it currently is (it is the
                // origin of its own frame), embedded in the (possibly
                // stale) observed configuration: its own entry is replaced
                // by its true position, everyone else appears where they
                // were `look_delay` rounds ago.
                let observed = history_front.unwrap_or(&scratch.config);
                scratch.local.copy_from(observed);
                scratch.local.set_point(i, me);
                scratch.local.map_in_place(|p| frame.apply(p));
                let local_me = frame.apply(me);
                // Attach the shared analysis with its target carried into
                // the robot's frame — class, n and qreg are invariant under
                // the orientation-preserving frame similarity. Only valid
                // when the robot's view IS the analysed configuration, i.e.
                // with fresh (non-stale) LOOKs.
                let snap = match shared {
                    Some(ra) if fresh_look => Snapshot::with_analysis_borrowed(
                        &scratch.local,
                        local_me,
                        ra.map_target(|t| frame.apply(t)).analysis,
                    ),
                    _ => Snapshot::borrowed(&scratch.local, local_me),
                };
                let local_dest = self.algorithm.destination(&snap);
                frame.inverse().apply(local_dest)
            };
            // "Destination == current position → do not move" (footnote 2
            // of the paper). The threshold only absorbs frame round-trip
            // noise (~1e-13); genuine short moves are completed exactly by
            // the δ rule, letting nearby robots actually coincide.
            if dest.within(me, self.tol.abs) {
                continue;
            }
            let fraction = self.motion.stop_fraction(round, i, me, dest);
            let reached = apply_motion(me, dest, fraction, self.delta);
            travel += me.dist(reached);
            scratch.new_positions[i] = reached;
        }
        travel
    }

    /// Simultaneous application: canonicalises `scratch.new_positions`
    /// into `scratch.canon_out` (the caller swaps or copies it into its
    /// own position storage). `prev` is the start-of-round canonical
    /// position vector the pending positions were derived from.
    ///
    /// The incremental path diffs `prev` against the pending positions to
    /// find the robots that actually moved, canonicalises in
    /// O(dirty · n) when the previous round's output was snap-separated
    /// (clean points then cannot merge with each other — see
    /// `canonicalize_dirty_into`), and records the post-canonicalisation
    /// diff as the analysis cache's pending dirty set for the next
    /// `analyse_dirty` call.
    pub(crate) fn stage_apply(&mut self, prev: &[Point], scratch: &mut Scratch) {
        if !self.incremental {
            canonicalize_into(
                &scratch.new_positions,
                self.tol.snap,
                &mut scratch.canon,
                &mut scratch.canon_out,
            );
            return;
        }
        // With the shared pipeline on, `stage_classify` consumed the
        // previous round's pending set earlier this round; overwriting an
        // unconsumed one would desynchronise the cache memo.
        debug_assert!(!self.shared_analysis || self.pending_dirty.is_empty());
        gather_geom::soa::diff_indices(prev, &scratch.new_positions, &mut scratch.dirty);
        if self.sep_ok {
            gather_config::canonicalize_dirty_into(
                &scratch.new_positions,
                self.tol.snap,
                &scratch.dirty,
                &mut scratch.canon,
                &mut scratch.canon_out,
            );
        } else {
            canonicalize_into(
                &scratch.new_positions,
                self.tol.snap,
                &mut scratch.canon,
                &mut scratch.canon_out,
            );
        }
        self.sep_ok =
            gather_config::snap_separated(&scratch.canon_out, self.tol.snap, &mut scratch.canon);
        gather_geom::soa::diff_indices(prev, &scratch.canon_out, &mut self.pending_dirty);
    }

    /// Invariant-audit stage over the completed round: wait-freeness on the
    /// start-of-round configuration (still in `scratch.config`), then the
    /// never-enter-`B` check on the post-move `post` (which overwrites
    /// `scratch.config` — the start-of-round one is no longer needed).
    pub(crate) fn stage_audits(
        &mut self,
        round: u64,
        post: &[Point],
        shared: Option<&RoundAnalysis>,
        scratch: &mut Scratch,
        violations: &mut Vec<String>,
    ) {
        self.audit_wait_freeness(
            round,
            &scratch.config,
            &scratch.distinct,
            shared,
            violations,
        );
        // The wait-freeness audit needed the start-of-round
        // configuration; recycle its buffer for the post-move one.
        scratch.config.copy_from_slice(post);
        self.audit_never_bivalent(round, &scratch.config, violations);
    }

    /// Destination the algorithm assigns to a robot at `at` over
    /// `positions`, computed in the global frame. Reuses the shared
    /// analysis: between steps this is a cache hit (the post-move
    /// configuration was analysed by the audit).
    pub(crate) fn destination_at(
        &mut self,
        positions: &[Point],
        at: Point,
        scratch: &mut Scratch,
    ) -> Point {
        scratch.config.copy_from_slice(positions);
        let snap = if self.shared_analysis {
            let ra = self.analyse_shared(&scratch.config);
            Snapshot::with_analysis_borrowed(&scratch.config, at, ra.analysis)
        } else {
            Snapshot::borrowed(&scratch.config, at)
        };
        self.algorithm.destination(&snap)
    }

    /// The `GATHERED` predicate (Definition 9) over borrowed state: all
    /// robots with a `true` mask entry occupy one location *and* the
    /// algorithm, applied to the full configuration, does not instruct
    /// that location to move. Returns the gathering location when it
    /// holds. The mask marks the *correct* robots (live and
    /// non-byzantine); a batch lane's mask is its alive column.
    pub(crate) fn gathered_point(
        &mut self,
        positions: &[Point],
        correct: &[bool],
        scratch: &mut Scratch,
    ) -> Option<Point> {
        let first = positions
            .iter()
            .zip(correct)
            .find(|(_, c)| **c)
            .map(|(p, _)| *p)?;
        let all_together = positions
            .iter()
            .zip(correct)
            .filter(|(_, c)| **c)
            .all(|(p, _)| p.within(first, self.tol.snap));
        if !all_together {
            return None;
        }
        let dest = self.destination_at(positions, first, scratch);
        dest.within(first, self.tol.snap).then_some(first)
    }

    /// Lemma 5.1 audit: at most one occupied location may be told to stay.
    ///
    /// Destinations are evaluated per distinct location in the global
    /// frame; by algorithm equivariance this matches what any robot at that
    /// location would compute in its own frame.
    fn audit_wait_freeness(
        &mut self,
        round: u64,
        config: &Configuration,
        distinct: &[(Point, usize)],
        shared: Option<&RoundAnalysis>,
        violations: &mut Vec<String>,
    ) {
        if distinct.len() <= 1 {
            return; // gathered — `Configuration::is_gathered` would allocate
        }
        // The bivalent class is outside the algorithm's contract.
        let class = match shared {
            Some(ra) => ra.analysis.class,
            None => classify(config, self.tol).class,
        };
        if class == Class::Bivalent {
            return;
        }
        let mut staying = 0usize;
        for (p, _) in distinct {
            // The audit evaluates in the global frame, so the shared
            // analysis applies verbatim (identity transform) and the
            // configuration is lent, not cloned, per location.
            let snap = match shared {
                Some(ra) => Snapshot::with_analysis_borrowed(config, *p, ra.analysis),
                None => Snapshot::borrowed(config, *p),
            };
            let dest = self.algorithm.destination(&snap);
            // Mirrors the engine's own "do not move" rule exactly.
            if dest.within(*p, self.tol.abs) {
                staying += 1;
            }
        }
        if staying > 1 {
            violations.push(format!(
                "round {round}: wait-freeness violated: {staying} locations told to stay in {config}"
            ));
        }
    }

    /// Nothing may ever transition *into* the bivalent class (Lemmas 5.6
    /// C1, 5.7) unless the execution started there. `post` is the
    /// post-move configuration of the round being audited.
    fn audit_never_bivalent(
        &mut self,
        round: u64,
        post: &Configuration,
        violations: &mut Vec<String>,
    ) {
        if self.started_bivalent {
            return;
        }
        // With the shared pipeline this analysis is memoized and becomes
        // the next round's start-of-round cache hit, so the audit costs no
        // extra steady-state classification.
        let class = if self.shared_analysis {
            self.analyse_shared(post).analysis.class
        } else {
            classify(post, self.tol).class
        };
        if class == Class::Bivalent {
            violations.push(format!(
                "round {round}: execution entered the bivalent class"
            ));
        }
    }
}

/// Result of running an engine until gathering or a round limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RunOutcome {
    /// All live robots reached a single point that the algorithm does not
    /// instruct to move (the paper's `GATHERED` predicate, Definition 9).
    Gathered {
        /// Round at which gathering was first observed.
        round: u64,
        /// The gathering location.
        point: Point,
    },
    /// The round limit was reached without gathering.
    RoundLimit {
        /// Number of rounds executed.
        rounds: u64,
    },
}

impl RunOutcome {
    /// Did the run end gathered?
    pub fn gathered(&self) -> bool {
        matches!(self, RunOutcome::Gathered { .. })
    }

    /// The round count of the outcome (gather round or the limit).
    pub fn rounds(&self) -> u64 {
        match self {
            RunOutcome::Gathered { round, .. } => *round,
            RunOutcome::RoundLimit { rounds } => *rounds,
        }
    }
}

/// Builder for [`Engine`] (see [`Engine::builder`]).
pub struct EngineBuilder {
    initial: Vec<Point>,
    algorithm: Option<Box<dyn Algorithm>>,
    byzantine: Vec<(usize, Box<dyn ByzantinePolicy>)>,
    scheduler: Box<dyn Scheduler>,
    crash_plan: Box<dyn CrashPlan>,
    motion: Box<dyn MotionAdversary>,
    frames: FramePolicy,
    tol: Tol,
    delta: f64,
    look_delay: u64,
    record_positions: bool,
    check_invariants: bool,
    shared_analysis: bool,
    warm_start: bool,
    incremental: bool,
    reuse_buffers: bool,
    trace_capacity: Option<usize>,
    position_log_capacity: Option<usize>,
    recycled: Option<EngineParts>,
    obs: Option<EngineObs>,
}

impl EngineBuilder {
    /// Sets the algorithm every robot runs. **Required.**
    pub fn algorithm(mut self, algorithm: impl Algorithm + 'static) -> Self {
        self.algorithm = Some(Box::new(algorithm));
        self
    }

    /// Makes robot `robot` byzantine: its destinations come from `policy`
    /// instead of the algorithm. Byzantine robots stay visible and obey
    /// the same movement physics; they count as faulty, so the `GATHERED`
    /// predicate ignores them.
    ///
    /// # Panics
    ///
    /// `build` panics if `robot` is out of range.
    pub fn byzantine(mut self, robot: usize, policy: impl ByzantinePolicy + 'static) -> Self {
        self.byzantine.push((robot, Box::new(policy)));
        self
    }

    /// Sets the activation scheduler (default: [`EveryRobot`]).
    pub fn scheduler(mut self, scheduler: impl Scheduler + 'static) -> Self {
        self.scheduler = Box::new(scheduler);
        self
    }

    /// Sets the crash plan (default: [`NoCrashes`]).
    pub fn crash_plan(mut self, plan: impl CrashPlan + 'static) -> Self {
        self.crash_plan = Box::new(plan);
        self
    }

    /// Sets the motion adversary (default: [`FullMotion`]).
    pub fn motion(mut self, motion: impl MotionAdversary + 'static) -> Self {
        self.motion = Box::new(motion);
        self
    }

    /// Sets the local-frame policy (default: random frame per activation).
    pub fn frames(mut self, frames: FramePolicy) -> Self {
        self.frames = frames;
        self
    }

    /// Sets the tolerance policy (default: [`Tol::default`]).
    pub fn tol(mut self, tol: Tol) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the minimum movement step `δ` (default: `0.01`).
    ///
    /// # Panics
    ///
    /// Panics if `delta <= 0` — the model requires a strictly positive
    /// minimum step.
    pub fn delta(mut self, delta: f64) -> Self {
        assert!(delta > 0.0, "minimum step delta must be positive");
        self.delta = delta;
        self
    }

    /// Enables or disables the per-round invariant audit (default: on).
    pub fn check_invariants(mut self, on: bool) -> Self {
        self.check_invariants = on;
        self
    }

    /// Enables or disables the shared per-round analysis (default: on).
    ///
    /// When on, the engine classifies the start-of-round configuration
    /// **once**, memoizes it across unchanged rounds, and attaches the
    /// result (target frame-transformed) to every activated robot's
    /// snapshot; algorithms and audits consume the shared result instead of
    /// re-running `classify` per robot. Sound in the ATOM model because all
    /// activated robots LOOK at the same configuration and the analysis is
    /// a pure function of it. Off reproduces the naive per-robot
    /// classification — kept for the B1 ablation that quantifies the
    /// speedup.
    pub fn shared_analysis(mut self, on: bool) -> Self {
        self.shared_analysis = on;
        self
    }

    /// Enables or disables warm-starting the Weiszfeld iteration inside the
    /// shared analysis from the previous round's Weber point (default: on).
    /// Lemma 3.2 keeps the Weber point invariant while robots move toward
    /// it, so the previous target is a near-perfect initial iterate; the
    /// cold path exists for the B1 ablation quantifying the saving.
    pub fn warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }

    /// Enables or disables incremental dirty-tracked re-analysis
    /// (default: off — the full-recompute reference path).
    ///
    /// When on, the engine tracks which robots moved each round (a bitwise
    /// positional diff) and patches the previous round's work instead of
    /// rebuilding it: canonicalisation only re-clusters dirty robots when
    /// the previous output was snap-separated, the distinct multiset
    /// `U(C)` is maintained by per-index edits inside the analysis cache,
    /// rounds where no robot moved skip classification entirely, and the
    /// Weiszfeld solve keeps its warm start. Crashed robots stop moving
    /// and so drop out of the dirty set on their own — no special casing.
    /// Bit-identical to the reference path by construction; the
    /// `incremental_analysis` property suite and `b11_largen` enforce it.
    /// See DESIGN.md §15 for the cacheability invariants.
    pub fn incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// Enables or disables round-loop scratch-buffer reuse (default: on).
    /// When off, every round starts from fresh buffers — the allocation
    /// behaviour of the pre-scratch engine, kept for the B1 ablation
    /// (clone vs scratch).
    pub fn reuse_buffers(mut self, on: bool) -> Self {
        self.reuse_buffers = on;
        self
    }

    /// Bounds how many per-round records the trace retains (a ring buffer;
    /// default: unbounded). Aggregate statistics keep covering the whole
    /// run; only the per-round records of evicted rounds are lost. Long
    /// f1/f5-style runs use this to keep memory flat in the round count.
    ///
    /// # Panics
    ///
    /// `build` panics if `capacity == 0`.
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Bounds how many per-round position snapshots the position log keeps
    /// (a ring buffer over the most recent rounds; default: unbounded).
    /// Only meaningful together with [`EngineBuilder::record_positions`].
    ///
    /// # Panics
    ///
    /// `build` panics if `capacity == 0`.
    pub fn position_log_capacity(mut self, capacity: usize) -> Self {
        self.position_log_capacity = Some(capacity);
        self
    }

    /// Records the full position log (one snapshot per round) for
    /// visualisation and post-hoc analysis (default: off — memory grows
    /// linearly with rounds × robots unless a capacity bound is set).
    pub fn record_positions(mut self, on: bool) -> Self {
        self.record_positions = on;
        self
    }

    /// Seeds the engine with the buffers of a previous engine (from
    /// [`Engine::into_parts`]) instead of fresh allocations. The analysis
    /// cache is fully reset and every buffer is cleared before use, so the
    /// run's results are bit-identical to a fresh engine's — only the heap
    /// capacity survives. Sweep workers use this to stay allocation-free
    /// across run boundaries.
    pub fn recycle(mut self, parts: EngineParts) -> Self {
        self.recycled = Some(parts);
        self
    }

    /// Attaches an observability handle (default: none). With an enabled
    /// [`EngineObs`] every round is timed phase by phase
    /// (snapshot / classify / weiszfeld / move / invariants — see
    /// [`Phase`]); totals surface through [`Engine::phase_nanos`] and the
    /// per-round spans through [`Engine::observability`]. A handle built
    /// with [`EngineObs::disabled`] is carried but never read the clock —
    /// the state the ≤2% overhead budget of `b9_obs` is measured against.
    /// Timings are wall-clock and therefore non-deterministic; they live
    /// beside, never inside, the deterministic trace.
    pub fn observe(mut self, obs: EngineObs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Makes every LOOK observe the configuration from `delay` rounds ago
    /// (default `0` — the paper's atomic ATOM semantics).
    ///
    /// A positive delay approximates the ASYNC model's central hazard:
    /// robots move based on **stale** observations. The paper's proofs do
    /// not cover this regime; experiment F6 charts it.
    ///
    /// **Deprecation note:** this knob predates the event-heap
    /// [`crate::async_engine::AsyncEngine`], which models staleness
    /// properly — a robot computes on the exact configuration it looked
    /// at, with the gap between LOOK and MOVE emerging from per-robot
    /// phase timing rather than a fixed round lag (see DESIGN.md §17's
    /// model table). `look_delay` keeps working for F6 reproducibility,
    /// but new staleness experiments should use `AsyncEngine` with
    /// [`crate::async_engine::Timing::Phased`].
    pub fn look_delay(mut self, delay: u64) -> Self {
        self.look_delay = delay;
        self
    }

    /// Builds the engine.
    ///
    /// # Panics
    ///
    /// Panics if no algorithm was set or the initial configuration is
    /// empty.
    pub fn build(self) -> Engine {
        let algorithm = self
            .algorithm
            .expect("EngineBuilder: algorithm is required");
        assert!(
            !self.initial.is_empty(),
            "EngineBuilder: initial configuration must be non-empty"
        );
        let positions = Configuration::canonical(self.initial, self.tol)
            .points()
            .to_vec();
        let n = positions.len();
        let positions_clone = positions.clone();
        let EngineParts {
            mut scratch,
            mut analysis_cache,
        } = self.recycled.unwrap_or_default();
        // A recycled cache must behave exactly like a fresh one (stale memos
        // or warm-start hints would leak one run's state into the next);
        // reset keeps only the heap capacity.
        analysis_cache.reset();
        analysis_cache.set_warm_start(self.warm_start);
        scratch.config.copy_from_slice(&positions);
        // The bivalent pre-check goes through the cache when the shared
        // pipeline is on: round 1 analyses the same configuration and hits
        // the memo instead of classifying a throwaway copy cold. The
        // ablation mode keeps the cache untouched (its contract is that
        // per-robot runs never consult it) and classifies directly.
        let started_bivalent = if self.shared_analysis {
            analysis_cache
                .analyse(&scratch.config, self.tol)
                .analysis
                .class
                == Class::Bivalent
        } else {
            classify(&scratch.config, self.tol).class == Class::Bivalent
        };
        let mut byzantine: Vec<Option<Box<dyn ByzantinePolicy>>> = (0..n).map(|_| None).collect();
        for (robot, policy) in self.byzantine {
            assert!(robot < n, "byzantine robot index {robot} out of range");
            byzantine[robot] = Some(policy);
        }
        let mut trace = Trace::new();
        trace.set_capacity(self.trace_capacity);
        if let Some(cap) = self.position_log_capacity {
            assert!(cap > 0, "position-log capacity must be positive");
        }
        Engine {
            positions,
            alive: vec![true; n],
            byzantine,
            round: 0,
            core: StepCore {
                algorithm,
                scheduler: self.scheduler,
                crash_plan: self.crash_plan,
                motion: self.motion,
                frame_source: FrameSource::new(self.frames),
                tol: self.tol,
                delta: self.delta,
                shared_analysis: self.shared_analysis,
                check_invariants: self.check_invariants,
                started_bivalent,
                incremental: self.incremental,
                pending_dirty: Vec::new(),
                sep_ok: false,
                analysis_cache,
            },
            look_delay: self.look_delay,
            history: std::collections::VecDeque::new(),
            position_log: if self.record_positions {
                vec![positions_clone]
            } else {
                Vec::new()
            },
            record_positions: self.record_positions,
            position_log_capacity: self.position_log_capacity,
            trace,
            violations: Vec::new(),
            reuse_buffers: self.reuse_buffers,
            scratch,
            last_record: RoundRecord::default(),
            obs: self.obs,
        }
    }
}

/// The ATOM-model simulation engine.
///
/// # Example
///
/// ```
/// use gather_sim::prelude::*;
/// use gather_geom::{Point, Tol};
///
/// struct Stay;
/// impl Algorithm for Stay {
///     fn name(&self) -> &'static str { "stay" }
///     fn destination(&self, snap: &Snapshot) -> Point { snap.me() }
/// }
///
/// let mut engine = Engine::builder(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)])
///     .algorithm(Stay)
///     .build();
/// let outcome = engine.run(10);
/// assert!(!outcome.gathered()); // nobody moves, nobody gathers
/// assert_eq!(engine.round(), 10);
/// ```
pub struct Engine {
    positions: Vec<Point>,
    alive: Vec<bool>,
    byzantine: Vec<Option<Box<dyn ByzantinePolicy>>>,
    round: u64,
    core: StepCore,
    look_delay: u64,
    history: std::collections::VecDeque<Configuration>,
    position_log: Vec<Vec<Point>>,
    record_positions: bool,
    position_log_capacity: Option<usize>,
    trace: Trace,
    violations: Vec<String>,
    reuse_buffers: bool,
    scratch: Scratch,
    last_record: RoundRecord,
    obs: Option<EngineObs>,
}

impl Engine {
    /// Starts building an engine over the given initial robot positions.
    pub fn builder(initial: Vec<Point>) -> EngineBuilder {
        EngineBuilder {
            initial,
            algorithm: None,
            byzantine: Vec::new(),
            scheduler: Box::new(EveryRobot),
            crash_plan: Box::new(NoCrashes),
            motion: Box::new(FullMotion),
            frames: FramePolicy::default(),
            tol: Tol::default(),
            delta: 0.01,
            look_delay: 0,
            record_positions: false,
            check_invariants: true,
            shared_analysis: true,
            warm_start: true,
            incremental: false,
            reuse_buffers: true,
            trace_capacity: None,
            position_log_capacity: None,
            recycled: None,
            obs: None,
        }
    }

    /// Retires the engine and hands back its reusable buffers for the next
    /// engine to [`EngineBuilder::recycle`].
    pub fn into_parts(self) -> EngineParts {
        EngineParts {
            scratch: self.scratch,
            analysis_cache: self.core.analysis_cache,
        }
    }

    /// Current round index (number of completed rounds).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Current (canonical) robot positions, indexed by robot.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Liveness flags, indexed by robot.
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// Number of live robots (crashed excluded; byzantine robots count as
    /// live here — they do keep acting).
    pub fn live_count(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// Is robot `i` correct (neither crashed nor byzantine)?
    pub fn is_correct(&self, i: usize) -> bool {
        self.alive[i] && self.byzantine[i].is_none()
    }

    /// Number of correct robots.
    pub fn correct_count(&self) -> usize {
        (0..self.alive.len())
            .filter(|i| self.is_correct(*i))
            .count()
    }

    /// The current configuration (all robots, crashed included).
    pub fn configuration(&self) -> Configuration {
        Configuration::new(self.positions.clone())
    }

    /// The execution trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Invariant violations detected so far (empty in a correct run).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// The recorded per-round positions (initial positions first), when
    /// built with `record_positions(true)`; empty otherwise.
    pub fn position_log(&self) -> &[Vec<Point>] {
        &self.position_log
    }

    /// Is the `GATHERED` predicate (Definition 9) true right now?
    ///
    /// All live robots occupy one location *and* the algorithm, applied to
    /// the full configuration (crashed robots included), does not instruct
    /// that location to move.
    pub fn is_gathered(&mut self) -> bool {
        let tol = self.core.tol;
        let Some(first) = (0..self.positions.len())
            .find(|i| self.is_correct(*i))
            .map(|i| self.positions[i])
        else {
            return false; // no live robots: vacuous, treated as failure
        };
        let all_together = (0..self.positions.len())
            .filter(|i| self.is_correct(*i))
            .all(|i| self.positions[i].within(first, tol.snap));
        if !all_together {
            return false;
        }
        let dest = self
            .core
            .destination_at(&self.positions, first, &mut self.scratch);
        dest.within(first, tol.snap)
    }

    /// Cumulative analysis-cache counters `(computed, hits, dirty_skips)`.
    /// `dirty_skips` counts the hits served by an empty dirty set on the
    /// incremental path (a subset of `hits`; always `0` on the reference
    /// path).
    pub fn analysis_cache_stats(&self) -> (u64, u64, u64) {
        (
            self.core.analysis_cache.computed(),
            self.core.analysis_cache.hits(),
            self.core.analysis_cache.dirty_skips(),
        )
    }

    /// The attached observability handle, when one was set with
    /// [`EngineBuilder::observe`] — totals, per-round span ring and JSONL
    /// export live there.
    pub fn observability(&self) -> Option<&EngineObs> {
        self.obs.as_ref()
    }

    /// Accumulated per-phase nanoseconds across all executed rounds, when
    /// an *enabled* observability handle is attached; `None` otherwise
    /// (absent or disabled instrumentation), so metrics built from an
    /// untimed run serialize without phase columns and stay byte-identical
    /// to the pre-observability format.
    pub fn phase_nanos(&self) -> Option<PhaseNanos> {
        self.obs
            .as_ref()
            .filter(|o| o.is_enabled())
            .map(|o| o.totals())
    }

    /// Detaches and returns the observability handle, so callers can keep
    /// the collected spans after the engine (or its recycled parts) moves
    /// on. Subsequent rounds run uninstrumented.
    pub fn take_observability(&mut self) -> Option<EngineObs> {
        self.obs.take()
    }

    /// Executes one round and returns its record (borrowed from the
    /// engine; also appended to the [`Trace`]).
    pub fn step(&mut self) -> &RoundRecord {
        let classify_before = classify_invocations();
        let weiszfeld_before = weiszfeld_iterations();
        let hits_before = self.core.analysis_cache.hits();
        // Phase attribution. With instrumentation absent or disabled the
        // timer holds no `Instant` and every lap below is one branch — the
        // whole disabled cost of the round, keeping the ≤2% overhead
        // budget and the zero-allocation audit intact (laps neither
        // allocate nor format).
        let timing = self.obs.as_ref().is_some_and(|o| o.is_enabled());
        let mut timer = PhaseTimer::start(timing);
        let solver_nanos_before = if timing { weiszfeld_nanos() } else { 0 };
        // The working buffers live outside `self` for the duration of the
        // round so they can be lent to snapshots while the engine's trait
        // objects run. `reuse_buffers(false)` is the ablation reproducing
        // the pre-scratch allocation behaviour: every round starts cold.
        let mut scratch = if self.reuse_buffers {
            std::mem::take(&mut self.scratch)
        } else {
            Scratch::default()
        };
        scratch.config.copy_from_slice(&self.positions);
        timer.lap(Phase::Snapshot);
        // The single shared analysis of the start-of-round configuration —
        // every activated robot LOOKs at exactly this configuration (ATOM),
        // so one classification serves them all.
        let (shared, class) = self.core.stage_classify(&scratch);
        timer.lap(Phase::Classify);
        self.core.stage_distinct(&mut scratch);

        // Stale-view support: robots observe the configuration from
        // `look_delay` rounds ago (the front of the bounded history). With
        // the default atomic LOOK the observed configuration *is* the
        // start-of-round one, so no history is kept at all.
        if self.look_delay > 0 {
            if self.history.len() > self.look_delay as usize {
                // Recycle the evicted entry's buffer instead of allocating.
                let mut front = self.history.pop_front().expect("non-empty history");
                front.copy_from(&scratch.config);
                self.history.push_back(front);
            } else {
                self.history.push_back(scratch.config.clone());
            }
        }
        timer.lap(Phase::Snapshot);

        // 1. Crashes.
        self.core
            .stage_crashes(self.round, &mut self.alive, &mut scratch);

        // 2. Activation.
        self.core
            .stage_activate(self.round, &self.alive, &mut scratch);

        // 3. Look–Compute–Move for every activated robot, from the same
        //    start-of-round configuration (ATOM atomicity).
        let travel = self.core.stage_moves(
            self.round,
            &self.positions,
            &mut self.byzantine,
            self.history.front(),
            shared.as_ref(),
            self.look_delay == 0,
            &mut scratch,
        );

        // 4. Simultaneous application + canonicalisation (into the scratch
        //    output buffer, then swapped with the engine's position vector —
        //    last round's positions become next round's buffer).
        self.core.stage_apply(&self.positions, &mut scratch);
        std::mem::swap(&mut self.positions, &mut scratch.canon_out);

        if self.record_positions {
            match self.position_log_capacity {
                Some(cap) if self.position_log.len() >= cap => {
                    self.position_log.rotate_left(1);
                    self.position_log
                        .last_mut()
                        .expect("capacity > 0")
                        .clone_from(&self.positions);
                }
                _ => self.position_log.push(self.positions.clone()),
            }
        }
        timer.lap(Phase::Move);

        // 5. Invariant audit.
        if self.core.check_invariants {
            self.core.stage_audits(
                self.round,
                &self.positions,
                shared.as_ref(),
                &mut scratch,
                &mut self.violations,
            );
        }
        timer.lap(Phase::Invariants);

        let record = &mut self.last_record;
        record.round = self.round;
        record.class = class;
        record.distinct = scratch.distinct.len();
        record.max_mult = scratch.distinct.iter().map(|(_, m)| *m).max().unwrap_or(0);
        record.activated.clone_from(&scratch.activated);
        record.crashed.clone_from(&scratch.crashed_now);
        record.travel = travel;
        record.classifications = classify_invocations() - classify_before;
        record.cache_hits = self.core.analysis_cache.hits() - hits_before;
        record.weiszfeld_iters = weiszfeld_iterations() - weiszfeld_before;
        self.trace.push_cloned(&self.last_record);
        if timing {
            // Carve the solver's own wall time (thread-local counter in
            // gather-geom) out of the classification lap it ran inside;
            // `transfer` clamps, so solver time spent in the audits phase
            // can never drive classify negative. Then bank the round.
            timer.transfer(
                Phase::Classify,
                Phase::Weiszfeld,
                weiszfeld_nanos() - solver_nanos_before,
            );
            let nanos = timer.finish();
            if let Some(obs) = self.obs.as_mut() {
                obs.record_round(self.round, nanos);
            }
        }
        self.round += 1;
        if self.reuse_buffers {
            self.scratch = scratch;
        }
        &self.last_record
    }

    /// Runs until the `GATHERED` predicate holds or `max_rounds` rounds
    /// have executed.
    pub fn run(&mut self, max_rounds: u64) -> RunOutcome {
        loop {
            if self.is_gathered() {
                let point = (0..self.positions.len())
                    .find(|i| self.is_correct(*i))
                    .map(|i| self.positions[i])
                    .expect("gathered implies a correct robot");
                return RunOutcome::Gathered {
                    round: self.round,
                    point,
                };
            }
            if self.round >= max_rounds {
                return RunOutcome::RoundLimit { rounds: self.round };
            }
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::CrashAtRounds;
    use crate::motion::AlwaysDelta;
    use crate::scheduler::SequentialSingle;

    /// Moves to the centroid of the observed configuration. Equivariant,
    /// oblivious — a convergence (not gathering) rule, fine for engine
    /// mechanics tests.
    struct GoToCentroid;
    impl Algorithm for GoToCentroid {
        fn name(&self) -> &'static str {
            "centroid"
        }
        fn destination(&self, snap: &Snapshot) -> Point {
            gather_geom::centroid(snap.config().points())
        }
    }

    struct Stay;
    impl Algorithm for Stay {
        fn name(&self) -> &'static str {
            "stay"
        }
        fn destination(&self, snap: &Snapshot) -> Point {
            snap.me()
        }
    }

    fn triangle() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 2.0),
        ]
    }

    #[test]
    fn centroid_rule_converges_under_full_sync() {
        let mut e = Engine::builder(triangle())
            .algorithm(GoToCentroid)
            .check_invariants(false)
            .build();
        let outcome = e.run(500);
        assert!(outcome.gathered(), "outcome: {outcome:?}");
    }

    #[test]
    fn stay_rule_never_gathers_but_runs_to_limit() {
        let mut e = Engine::builder(triangle()).algorithm(Stay).build();
        let outcome = e.run(25);
        assert_eq!(outcome, RunOutcome::RoundLimit { rounds: 25 });
        assert_eq!(e.trace().len(), 25);
    }

    #[test]
    fn already_gathered_start_detects_immediately() {
        let mut e = Engine::builder(vec![Point::new(1.0, 1.0); 4])
            .algorithm(Stay)
            .build();
        let outcome = e.run(10);
        assert!(matches!(outcome, RunOutcome::Gathered { round: 0, .. }));
    }

    #[test]
    fn crashed_robots_do_not_move_but_stay_visible() {
        let mut e = Engine::builder(triangle())
            .algorithm(GoToCentroid)
            .crash_plan(CrashAtRounds::at_start([0]))
            .check_invariants(false)
            .build();
        let before = e.positions()[0];
        let outcome = e.run(800);
        assert_eq!(e.positions()[0], before, "crashed robot moved");
        assert_eq!(e.live_count(), 2);
        // Live robots gathered even though the crashed one is elsewhere?
        // The centroid keeps shifting as live robots approach it; they end
        // up within snap of each other eventually… not guaranteed exactly:
        // accept either outcome but require *live* agreement if gathered.
        if let RunOutcome::Gathered { point, .. } = outcome {
            for (p, a) in e.positions().iter().zip(e.alive()) {
                if *a {
                    assert!(p.within(point, 1e-5));
                }
            }
        }
    }

    #[test]
    fn delta_floor_guarantees_progress_under_stingy_adversary() {
        let mut e = Engine::builder(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
        ])
        .algorithm(GoToCentroid)
        .motion(AlwaysDelta)
        .delta(0.5)
        .check_invariants(false)
        .build();
        let r = e.step();
        assert!(r.travel > 0.0, "no progress under AlwaysDelta");
    }

    #[test]
    fn sequential_scheduler_still_converges() {
        let mut e = Engine::builder(triangle())
            .algorithm(GoToCentroid)
            .scheduler(SequentialSingle::new())
            .check_invariants(false)
            .build();
        let outcome = e.run(5_000);
        assert!(outcome.gathered(), "outcome: {outcome:?}");
    }

    #[test]
    fn trace_records_classes_and_activations() {
        let mut e = Engine::builder(triangle())
            .algorithm(Stay)
            .check_invariants(false)
            .build();
        e.step();
        let rec = &e.trace().records()[0];
        assert_eq!(rec.round, 0);
        assert_eq!(rec.activated, vec![0, 1, 2]);
        assert!(rec.crashed.is_empty());
        assert_eq!(rec.distinct, 3);
    }

    #[test]
    fn stay_everywhere_violates_wait_freeness_audit() {
        let mut e = Engine::builder(triangle()).algorithm(Stay).build();
        e.step();
        assert!(
            !e.violations().is_empty(),
            "Stay tells every location to stay; the audit must fire"
        );
    }

    #[test]
    fn centroid_passes_wait_freeness_audit() {
        // Until robots coincide, the centroid differs from every corner…
        let mut e = Engine::builder(triangle()).algorithm(GoToCentroid).build();
        e.step();
        assert!(e.violations().is_empty(), "{:?}", e.violations());
    }

    #[test]
    #[should_panic(expected = "algorithm is required")]
    fn builder_requires_algorithm() {
        let _ = Engine::builder(triangle()).build();
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn builder_rejects_empty_configuration() {
        let _ = Engine::builder(vec![]).algorithm(Stay).build();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn builder_rejects_nonpositive_delta() {
        let _ = Engine::builder(triangle()).algorithm(Stay).delta(0.0);
    }

    #[test]
    fn outcome_accessors() {
        let g = RunOutcome::Gathered {
            round: 7,
            point: Point::ORIGIN,
        };
        assert!(g.gathered());
        assert_eq!(g.rounds(), 7);
        let l = RunOutcome::RoundLimit { rounds: 100 };
        assert!(!l.gathered());
        assert_eq!(l.rounds(), 100);
    }

    /// Consumes the snapshot's attached analysis when present, classifying
    /// for itself otherwise — the same contract as the real algorithm.
    struct ClassTarget;
    impl Algorithm for ClassTarget {
        fn name(&self) -> &'static str {
            "class-target"
        }
        fn destination(&self, snap: &Snapshot) -> Point {
            let analysis = match snap.analysis() {
                Some(a) => *a,
                None => classify(snap.config(), Tol::default()),
            };
            analysis.target.unwrap_or(snap.me())
        }
    }

    /// A 32-robot scatter (deterministic spiral, far from collinear).
    fn spiral(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let th = 0.7 * i as f64;
                let r = 1.0 + 0.3 * i as f64;
                Point::new(r * th.cos(), r * th.sin())
            })
            .collect()
    }

    #[test]
    fn shared_analysis_classifies_at_most_twice_per_round() {
        // The acceptance bound of the shared pipeline: one classification
        // for the round's shared analysis + at most one for the post-move
        // audit, independent of the robot count.
        let mut e = Engine::builder(spiral(32)).algorithm(ClassTarget).build();
        for _ in 0..20 {
            let rec = e.step();
            assert!(
                rec.classifications <= 2,
                "round {} used {} classifications (n = 32)",
                rec.round,
                rec.classifications
            );
        }
        let (computed, hits, dirty_skips) = e.analysis_cache_stats();
        assert!(computed > 0);
        assert!(hits > 0, "audit-then-step reuse never hit the cache");
        assert_eq!(dirty_skips, 0, "reference path never dirty-skips");
    }

    #[test]
    fn ablation_mode_classifies_per_robot() {
        // With the shared pipeline off every activated robot classifies for
        // itself (plus the record and the audits) — the O(n) redundancy the
        // refactor removes.
        let mut e = Engine::builder(spiral(32))
            .algorithm(ClassTarget)
            .shared_analysis(false)
            .build();
        let rec = e.step();
        assert!(
            rec.classifications > 32,
            "expected per-robot classification, saw {}",
            rec.classifications
        );
        assert_eq!(e.analysis_cache_stats(), (0, 0, 0));
    }

    #[test]
    fn shared_analysis_does_not_change_the_run() {
        // Same seeds, shared analysis on vs off: identical traces of
        // positions (the analysis is a pure function of the snapshot, so
        // sharing it must be observationally equivalent).
        let run = |shared: bool| {
            let mut e = Engine::builder(spiral(12))
                .algorithm(ClassTarget)
                .frames(FramePolicy::GlobalFrame)
                .shared_analysis(shared)
                .check_invariants(false)
                .build();
            for _ in 0..40 {
                e.step();
            }
            e.positions().to_vec()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn recycled_engine_is_bit_identical_to_fresh() {
        let build = |parts: Option<EngineParts>| {
            let mut b = Engine::builder(spiral(10))
                .algorithm(ClassTarget)
                .frames(FramePolicy::GlobalFrame);
            if let Some(p) = parts {
                b = b.recycle(p);
            }
            b.build()
        };
        let run = |mut e: Engine| {
            let outcome = e.run(60);
            let metrics = crate::metrics::summarize(outcome, e.trace());
            let positions = e.positions().to_vec();
            (metrics, positions, e.into_parts())
        };

        let (fresh_metrics, fresh_pos, parts) = run(build(None));
        // Pollute the recycled state with a different run before reuse.
        let mut other = Engine::builder(triangle())
            .algorithm(GoToCentroid)
            .check_invariants(false)
            .recycle(parts)
            .build();
        other.run(50);
        let (recycled_metrics, recycled_pos, _) = run(build(Some(other.into_parts())));
        assert_eq!(fresh_metrics, recycled_metrics);
        assert_eq!(fresh_pos, recycled_pos);
    }

    #[test]
    fn observability_attributes_phase_time_per_round() {
        let mut e = Engine::builder(spiral(16))
            .algorithm(ClassTarget)
            .observe(EngineObs::new(8))
            .build();
        for _ in 0..12 {
            e.step();
        }
        let totals = e.phase_nanos().expect("enabled obs yields totals");
        assert!(totals.total() > 0, "rounds took time");
        assert!(
            totals.get(Phase::Classify) + totals.get(Phase::Weiszfeld) > 0,
            "classification is on the timed path"
        );
        let obs = e.observability().expect("handle attached");
        assert_eq!(obs.rounds().len(), 8, "ring capped at capacity");
        assert_eq!(obs.rounds().dropped(), 4);
        let rounds: Vec<u64> = obs.rounds().iter().map(|r| r.round).collect();
        assert_eq!(rounds, (4..12).collect::<Vec<u64>>());
    }

    #[test]
    fn disabled_observability_times_nothing() {
        let mut e = Engine::builder(spiral(8))
            .algorithm(ClassTarget)
            .observe(EngineObs::disabled())
            .build();
        e.step();
        assert!(e.phase_nanos().is_none(), "disabled handle reports None");
        let obs = e.observability().expect("handle still attached");
        assert_eq!(obs.totals(), PhaseNanos::default());
        assert!(obs.rounds().is_empty());
        // And an untimed engine has no handle at all.
        let mut plain = Engine::builder(spiral(8)).algorithm(ClassTarget).build();
        plain.step();
        assert!(plain.observability().is_none());
        assert!(plain.phase_nanos().is_none());
    }

    #[test]
    fn observability_does_not_change_the_run() {
        let run = |obs: Option<EngineObs>| {
            let mut b = Engine::builder(spiral(12))
                .algorithm(ClassTarget)
                .frames(FramePolicy::GlobalFrame);
            if let Some(obs) = obs {
                b = b.observe(obs);
            }
            let mut e = b.build();
            for _ in 0..40 {
                e.step();
            }
            (
                e.positions().to_vec(),
                crate::metrics::summarize(RunOutcome::RoundLimit { rounds: 40 }, e.trace()),
            )
        };
        assert_eq!(run(None), run(Some(EngineObs::new(64))));
        assert_eq!(run(None), run(Some(EngineObs::disabled())));
    }

    #[test]
    fn incremental_path_is_bit_identical_to_reference() {
        // Same run, incremental dirty tracking on vs off: identical
        // position trajectories, traces and violations. Crashes freeze
        // robots (exercising the dirty set shrinking), the sequential
        // scheduler keeps most robots static every round (exercising the
        // patch path), and audits exercise the post-move analyse.
        let run = |incremental: bool| {
            let mut e = Engine::builder(spiral(14))
                .algorithm(ClassTarget)
                .frames(FramePolicy::GlobalFrame)
                .scheduler(SequentialSingle::new())
                .crash_plan(CrashAtRounds::at_start([2, 9]))
                .incremental(incremental)
                .build();
            let mut log = Vec::new();
            for _ in 0..80 {
                let rec = e.step().clone();
                log.push((e.positions().to_vec(), rec));
            }
            (log, e.violations().to_vec())
        };
        let (reference, ref_viol) = run(false);
        let (incremental, inc_viol) = run(true);
        for (r, i) in reference.iter().zip(&incremental) {
            assert_eq!(r.1.round, i.1.round);
            assert_eq!(r.0, i.0, "positions diverged at round {}", r.1.round);
            assert_eq!(r.1, i.1, "record diverged at round {}", r.1.round);
        }
        assert_eq!(ref_viol, inc_viol);
    }

    #[test]
    fn incremental_static_rounds_skip_classification() {
        // Nobody ever moves under Stay, so after the first round every
        // shared analysis is served by the empty dirty set.
        let mut e = Engine::builder(spiral(16))
            .algorithm(Stay)
            .check_invariants(false)
            .incremental(true)
            .build();
        for _ in 0..10 {
            e.step();
        }
        let (computed, _, dirty_skips) = e.analysis_cache_stats();
        assert_eq!(computed, 1, "only the builder pre-check computes");
        assert!(dirty_skips >= 9, "static rounds must dirty-skip");
    }

    #[test]
    fn frames_do_not_change_centroid_behaviour() {
        // Same run under global frames and random frames: same outcome
        // (the centroid rule is equivariant).
        let run = |frames: FramePolicy| {
            let mut e = Engine::builder(triangle())
                .algorithm(GoToCentroid)
                .frames(frames)
                .check_invariants(false)
                .build();
            e.run(500)
        };
        let a = run(FramePolicy::GlobalFrame);
        let b = run(FramePolicy::RandomPerActivation { seed: 3 });
        assert_eq!(a.gathered(), b.gathered());
    }
}
