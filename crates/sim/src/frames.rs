//! Per-robot local coordinate frames (disorientation with chirality).
//!
//! The robots of the paper do not share a coordinate system: each LOOK
//! delivers the configuration in the observing robot's own frame — its own
//! position at the origin, an arbitrary rotation, and an arbitrary unit
//! distance. They *do* share chirality, so frames never reflect. A correct
//! algorithm must behave identically whichever frame it is given; running
//! the simulator with [`FramePolicy::RandomPerActivation`] exercises
//! exactly this.

use gather_geom::{Point, Similarity};
use gather_prng::Rng;
use std::f64::consts::TAU;

/// How the engine chooses each robot's observation frame.
#[derive(Debug, Clone)]
pub enum FramePolicy {
    /// All snapshots are delivered in global coordinates (the robot still
    /// sees itself at its global position). Useful for debugging and for
    /// isolating frame-invariance effects.
    GlobalFrame,
    /// Each activation gets a fresh frame: the robot at the origin, a
    /// rotation uniform in `[0, 2π)`, and a unit distance (scale) uniform
    /// in `[0.5, 2]`. Deterministic per seed.
    RandomPerActivation {
        /// RNG seed for frame generation.
        seed: u64,
    },
}

impl Default for FramePolicy {
    fn default() -> Self {
        FramePolicy::RandomPerActivation { seed: 0 }
    }
}

/// Stateful frame generator owned by the engine.
#[derive(Debug)]
pub(crate) struct FrameSource {
    policy: FramePolicy,
    rng: Rng,
}

impl FrameSource {
    pub(crate) fn new(policy: FramePolicy) -> Self {
        let seed = match policy {
            FramePolicy::GlobalFrame => 0,
            FramePolicy::RandomPerActivation { seed } => seed,
        };
        FrameSource {
            policy,
            rng: Rng::seed_from_u64(seed),
        }
    }

    /// The transform from global coordinates into the observing robot's
    /// local frame for one activation.
    pub(crate) fn frame_for(&mut self, observer: Point) -> Similarity {
        match self.policy {
            FramePolicy::GlobalFrame => Similarity::identity(),
            FramePolicy::RandomPerActivation { .. } => {
                let theta = self.rng.random_range(0.0..TAU);
                let unit = self.rng.random_range(0.5..2.0);
                Similarity::into_local_frame(observer, theta, unit)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_frame_is_identity() {
        let mut src = FrameSource::new(FramePolicy::GlobalFrame);
        let f = src.frame_for(Point::new(3.0, 4.0));
        assert_eq!(f, Similarity::identity());
    }

    #[test]
    fn random_frames_put_observer_at_origin() {
        let mut src = FrameSource::new(FramePolicy::RandomPerActivation { seed: 5 });
        for i in 0..10 {
            let obs = Point::new(i as f64, -2.0 * i as f64);
            let f = src.frame_for(obs);
            assert!(f.apply(obs).dist(Point::ORIGIN) < 1e-9);
        }
    }

    #[test]
    fn random_frames_preserve_orientation_and_shape() {
        use gather_geom::predicates::{orient2d, Orientation};
        let mut src = FrameSource::new(FramePolicy::RandomPerActivation { seed: 6 });
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let c = Point::new(0.0, 1.0);
        for _ in 0..20 {
            let f = src.frame_for(a);
            let (fa, fb, fc) = (f.apply(a), f.apply(b), f.apply(c));
            // Chirality: CCW triples stay CCW.
            assert_eq!(orient2d(fa, fb, fc), Orientation::CounterClockwise);
            // Similarity: distance ratios preserved.
            let ratio = fa.dist(fb) / a.dist(b);
            assert!((fa.dist(fc) / a.dist(c) - ratio).abs() < 1e-9);
        }
    }

    #[test]
    fn frames_are_deterministic_per_seed() {
        let collect = |seed| {
            let mut src = FrameSource::new(FramePolicy::RandomPerActivation { seed });
            (0..5)
                .map(|i| {
                    src.frame_for(Point::new(i as f64, 0.0))
                        .apply(Point::ORIGIN)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(9), collect(9));
    }

    #[test]
    fn frame_scale_is_within_documented_range() {
        let mut src = FrameSource::new(FramePolicy::RandomPerActivation { seed: 1 });
        for _ in 0..50 {
            let f = src.frame_for(Point::ORIGIN);
            // into_local_frame uses scale = 1/unit with unit ∈ [0.5, 2).
            assert!(f.scale() > 0.5 - 1e-12 && f.scale() <= 2.0 + 1e-12);
        }
    }
}
