//! Byzantine robots: adversary-controlled participants.
//!
//! The paper's fault model is *crash* faults; its introduction contrasts
//! them with **byzantine** faults, citing Agmon & Peleg's impossibility:
//! a single byzantine robot prevents gathering of `n = 3` robots. A
//! byzantine robot looks exactly like a correct robot (anonymous,
//! visible, physically identical — it still moves continuously and is
//! subject to the same activation scheduler), but its destinations are
//! chosen by an adversarial policy instead of the algorithm.
//!
//! This module extends the simulator beyond the paper's positive result so
//! experiment T7 can chart where crash-tolerance ends and byzantine
//! vulnerability begins.

use gather_config::Configuration;
use gather_geom::{centroid, Point};
use gather_prng::Rng;

/// Chooses destinations for a byzantine robot.
///
/// The policy sees the true global configuration (the byzantine adversary
/// is omniscient) and its robot's current position; the returned
/// destination is executed under the same physics as everyone else's
/// (straight-line motion, the δ rule, the motion adversary).
pub trait ByzantinePolicy {
    /// Destination for byzantine `robot` at `me` in `round`.
    fn destination(&mut self, round: u64, robot: usize, config: &Configuration, me: Point)
        -> Point;

    /// Short identifier used in experiment tables.
    fn name(&self) -> &'static str {
        "byzantine"
    }
}

impl<B: ByzantinePolicy + ?Sized> ByzantinePolicy for Box<B> {
    fn destination(
        &mut self,
        round: u64,
        robot: usize,
        config: &Configuration,
        me: Point,
    ) -> Point {
        (**self).destination(round, robot, config, me)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Never moves — behaviourally identical to a crashed robot. The baseline
/// that byzantine tolerance must at least match crash tolerance against.
#[derive(Debug, Clone, Copy, Default)]
pub struct Statue;

impl ByzantinePolicy for Statue {
    fn destination(
        &mut self,
        _round: u64,
        _robot: usize,
        _config: &Configuration,
        me: Point,
    ) -> Point {
        me
    }
    fn name(&self) -> &'static str {
        "statue"
    }
}

/// Moves to uniformly random points within a box around the configuration:
/// maximal noise injection.
#[derive(Debug, Clone)]
pub struct Wanderer {
    rng: Rng,
    /// Half-side of the wandering box, centred on the configuration
    /// centroid.
    extent: f64,
}

impl Wanderer {
    /// A wanderer confined to a `2·extent` box around the centroid.
    pub fn new(extent: f64, seed: u64) -> Self {
        Wanderer {
            rng: Rng::seed_from_u64(seed),
            extent,
        }
    }
}

impl ByzantinePolicy for Wanderer {
    fn destination(
        &mut self,
        _round: u64,
        _robot: usize,
        config: &Configuration,
        _me: Point,
    ) -> Point {
        let c = centroid(config.points());
        Point::new(
            c.x + self.rng.random_range(-self.extent..self.extent),
            c.y + self.rng.random_range(-self.extent..self.extent),
        )
    }
    fn name(&self) -> &'static str {
        "wanderer"
    }
}

/// Runs away from the crowd: always moves directly away from the point of
/// maximum multiplicity (or the centroid when multiplicities are flat),
/// trying to stretch the configuration and postpone any rally.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fugitive;

impl ByzantinePolicy for Fugitive {
    fn destination(
        &mut self,
        _round: u64,
        _robot: usize,
        config: &Configuration,
        me: Point,
    ) -> Point {
        let (_, maxima) = config.max_multiplicity();
        let anchor = maxima
            .first()
            .copied()
            .unwrap_or_else(|| centroid(config.points()));
        let away = me - anchor;
        match away.try_normalized(1e-12) {
            Some(dir) => me + dir * 2.0,
            None => me + gather_geom::Vec2::new(2.0, 0.0),
        }
    }
    fn name(&self) -> &'static str {
        "fugitive"
    }
}

/// The anti-gathering specialist: stalks the stack. It joins the location
/// of maximum multiplicity and, once there, leaps away — forever toggling
/// the configuration's structure and relocating whatever target the
/// algorithm elects.
#[derive(Debug, Clone, Copy, Default)]
pub struct StackStalker;

impl ByzantinePolicy for StackStalker {
    fn destination(
        &mut self,
        round: u64,
        _robot: usize,
        config: &Configuration,
        me: Point,
    ) -> Point {
        let (_, maxima) = config.max_multiplicity();
        let target = maxima
            .first()
            .copied()
            .unwrap_or_else(|| centroid(config.points()));
        if me.within(target, 1e-6) {
            // Leap off the stack, direction varying by round.
            let theta = (round as f64) * 2.399963229728653; // golden angle
            me + gather_geom::Vec2::from_angle(theta) * 3.0
        } else {
            target
        }
    }
    fn name(&self) -> &'static str {
        "stack-stalker"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Configuration {
        Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 4.0),
        ])
    }

    #[test]
    fn statue_never_moves() {
        let mut s = Statue;
        let me = Point::new(4.0, 0.0);
        assert_eq!(s.destination(0, 2, &cfg(), me), me);
        assert_eq!(s.destination(99, 2, &cfg(), me), me);
    }

    #[test]
    fn wanderer_stays_in_box_and_is_seeded() {
        let run = |seed| {
            let mut w = Wanderer::new(5.0, seed);
            (0..20)
                .map(|r| w.destination(r, 0, &cfg(), Point::ORIGIN))
                .collect::<Vec<_>>()
        };
        let a = run(3);
        assert_eq!(a, run(3));
        let c = centroid(cfg().points());
        for p in a {
            assert!((p.x - c.x).abs() <= 5.0 && (p.y - c.y).abs() <= 5.0);
        }
    }

    #[test]
    fn fugitive_moves_away_from_the_stack() {
        let mut f = Fugitive;
        let me = Point::new(4.0, 0.0);
        let d = f.destination(0, 2, &cfg(), me);
        // The stack is at the origin; the fugitive runs along +x.
        assert!(d.x > me.x);
        assert!((d.y - me.y).abs() < 1e-12);
    }

    #[test]
    fn fugitive_handles_standing_on_the_stack() {
        let mut f = Fugitive;
        let me = Point::new(0.0, 0.0);
        let d = f.destination(0, 0, &cfg(), me);
        assert!(d.dist(me) > 1.0); // still produces a move
    }

    #[test]
    fn stalker_alternates_join_and_leap() {
        let mut s = StackStalker;
        let stack = Point::new(0.0, 0.0);
        // Away from the stack: join it.
        assert_eq!(s.destination(0, 1, &cfg(), Point::new(4.0, 0.0)), stack);
        // On the stack: leap off.
        let leap = s.destination(1, 1, &cfg(), stack);
        assert!(leap.dist(stack) > 1.0);
        // Different rounds leap in different directions.
        let leap2 = s.destination(2, 1, &cfg(), stack);
        assert!(leap.dist(leap2) > 1e-6);
    }
}
