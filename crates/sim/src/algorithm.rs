//! The robot algorithm interface (the COMPUTE phase).

use crate::snapshot::Snapshot;
use gather_geom::Point;

/// A deterministic, oblivious robot algorithm.
///
/// All robots run the *same* algorithm (they are anonymous), and the
/// computed destination may depend only on the current snapshot (they are
/// oblivious): the trait takes `&self` and implementations must not carry
/// interior mutability — the engine may invoke a fresh instance at any
/// activation and behaviour must be identical.
///
/// Returning the observer's own position ([`Snapshot::me`]) means "do not
/// move".
///
/// Because snapshots arrive in an arbitrary per-activation frame (rotation,
/// uniform scale, translation — never reflection), a correct algorithm must
/// be *equivariant*: transforming the snapshot by a similarity `T` must
/// transform the destination by `T` as well. The test suites verify this
/// property for every algorithm in the workspace.
///
/// # Example
///
/// ```
/// use gather_sim::prelude::{Algorithm, Snapshot};
/// use gather_geom::Point;
///
/// /// Always stay put.
/// struct Stay;
/// impl Algorithm for Stay {
///     fn name(&self) -> &'static str { "stay" }
///     fn destination(&self, snap: &Snapshot) -> Point { snap.me() }
/// }
/// ```
pub trait Algorithm {
    /// Short identifier used in traces and experiment tables.
    fn name(&self) -> &'static str;

    /// Computes the destination for the robot observing `snap`, in the
    /// snapshot's own coordinate frame.
    fn destination(&self, snap: &Snapshot) -> Point;
}

impl<A: Algorithm + ?Sized> Algorithm for &A {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn destination(&self, snap: &Snapshot) -> Point {
        (**self).destination(snap)
    }
}

impl<A: Algorithm + ?Sized> Algorithm for Box<A> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn destination(&self, snap: &Snapshot) -> Point {
        (**self).destination(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gather_config::Configuration;

    struct Stay;
    impl Algorithm for Stay {
        fn name(&self) -> &'static str {
            "stay"
        }
        fn destination(&self, snap: &Snapshot) -> Point {
            snap.me()
        }
    }

    #[test]
    fn trait_objects_and_references_delegate() {
        let snap = Snapshot::new(
            Configuration::new(vec![Point::new(1.0, 2.0)]),
            Point::new(1.0, 2.0),
        );
        let by_ref: &dyn Algorithm = &Stay;
        assert_eq!(by_ref.name(), "stay");
        assert_eq!(by_ref.destination(&snap), Point::new(1.0, 2.0));
        let boxed: Box<dyn Algorithm> = Box::new(Stay);
        assert_eq!(boxed.name(), "stay");
        assert_eq!(boxed.destination(&snap), Point::new(1.0, 2.0));
    }
}
