//! The ASYNC engine's event heap: per-robot Look/Compute/Move completions
//! ordered by simulated time.
//!
//! A binary min-heap keyed by `(time, seq)`: `time` is the simulated
//! timestamp (compared with `f64::total_cmp`, so the ordering is total and
//! deterministic even for pathological floats) and `seq` is a monotonically
//! increasing insertion counter that breaks ties. Equal-time events
//! therefore pop in exactly the order they were scheduled — the property
//! the [`AsyncEngine`](crate::async_engine::AsyncEngine) leans on for
//! reproducible executions and for the FSYNC degeneracy identity (all
//! robots Looking at the same instant form one deterministic batch).
//!
//! [`EventHeap::pop_batch`] drains *every* event sharing the minimum
//! timestamp in one call; the engine treats such a batch as one tick, so
//! simultaneous events see the same pre-tick configuration.

/// What a scheduled event makes a robot do when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The robot takes an instantaneous snapshot of the configuration and
    /// begins computing (or, under atomic timing, performs a whole
    /// Look–Compute–Move cycle at once).
    Look,
    /// The robot finishes computing on the snapshot it Looked at and
    /// starts moving. `gen` is the robot's generation counter at schedule
    /// time; a crash (or any other cancellation) bumps the counter, which
    /// tombstones the event without heap surgery.
    ComputeDone {
        /// Generation guard (see [`EventKind::ComputeDone`]).
        gen: u64,
    },
    /// The robot arrives at its destination. Generation-guarded like
    /// `ComputeDone`: a non-rigid interruption or a crash invalidates the
    /// pending arrival.
    MoveDone {
        /// Generation guard.
        gen: u64,
    },
}

/// One scheduled event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Simulated firing time.
    pub time: f64,
    /// Insertion sequence number; the deterministic tie-break.
    pub seq: u64,
    /// The robot the event belongs to.
    pub robot: usize,
    /// What happens.
    pub kind: EventKind,
}

impl Event {
    /// Heap ordering key: earliest time first, then insertion order.
    fn before(&self, other: &Event) -> bool {
        match self.time.total_cmp(&other.time) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => self.seq < other.seq,
        }
    }
}

/// A binary min-heap of [`Event`]s with deterministic total order.
///
/// `std::collections::BinaryHeap` is not used because its ordering
/// contract needs `Ord` (awkward for `f64` times) and because the batch
/// pop below wants cheap peeking; a hand-rolled sift-up/sift-down over a
/// `Vec` is ~30 lines and keeps the comparison in one place.
#[derive(Debug, Default)]
pub struct EventHeap {
    items: Vec<Event>,
    next_seq: u64,
}

impl EventHeap {
    /// An empty heap.
    pub fn new() -> Self {
        EventHeap::default()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the heap empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Schedules `kind` for `robot` at simulated `time`, assigning the next
    /// sequence number (so equal-time events fire in schedule order).
    pub fn push(&mut self, time: f64, robot: usize, kind: EventKind) {
        debug_assert!(!time.is_nan(), "event time must not be NaN");
        let event = Event {
            time,
            seq: self.next_seq,
            robot,
            kind,
        };
        self.next_seq += 1;
        self.items.push(event);
        self.sift_up(self.items.len() - 1);
    }

    /// The earliest pending event, if any.
    pub fn peek(&self) -> Option<&Event> {
        self.items.first()
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        if self.items.is_empty() {
            return None;
        }
        let last = self.items.len() - 1;
        self.items.swap(0, last);
        let event = self.items.pop();
        if !self.items.is_empty() {
            self.sift_down(0);
        }
        event
    }

    /// Drains every event sharing the minimum timestamp into `batch`
    /// (cleared first), in sequence order, and returns that timestamp.
    /// Returns `None` when the heap is empty.
    ///
    /// Events scheduled *during* the processing of a batch at the very same
    /// timestamp are not part of it — they form the next batch (at the same
    /// time value), preserving the rule that a batch observes one coherent
    /// pre-batch state.
    pub fn pop_batch(&mut self, batch: &mut Vec<Event>) -> Option<f64> {
        batch.clear();
        let time = self.peek()?.time;
        while let Some(head) = self.peek() {
            if head.time.total_cmp(&time) != std::cmp::Ordering::Equal {
                break;
            }
            batch.push(self.pop().expect("peeked event"));
        }
        // The pops above surface equal-time events in heap order, which for
        // equal keys is not insertion order; one sort restores the
        // deterministic schedule order. Batches are tiny (usually 1..=n).
        batch.sort_unstable_by_key(|e| e.seq);
        Some(time)
    }

    /// Removes all pending events (sequence numbering continues).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.items[i].before(&self.items[parent]) {
                self.items.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.items.len();
        loop {
            let left = 2 * i + 1;
            let right = left + 1;
            let mut smallest = i;
            if left < len && self.items[left].before(&self.items[smallest]) {
                smallest = left;
            }
            if right < len && self.items[right].before(&self.items[smallest]) {
                smallest = right;
            }
            if smallest == i {
                break;
            }
            self.items.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut h = EventHeap::new();
        h.push(3.0, 0, EventKind::Look);
        h.push(1.0, 1, EventKind::Look);
        h.push(2.0, 2, EventKind::Look);
        let times: Vec<f64> = std::iter::from_fn(|| h.pop()).map(|e| e.time).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
        assert!(h.is_empty());
    }

    #[test]
    fn equal_times_pop_in_schedule_order() {
        let mut h = EventHeap::new();
        for robot in 0..16 {
            h.push(1.0, robot, EventKind::Look);
        }
        h.push(0.5, 99, EventKind::MoveDone { gen: 0 });
        let mut batch = Vec::new();
        assert_eq!(h.pop_batch(&mut batch), Some(0.5));
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].robot, 99);
        assert_eq!(h.pop_batch(&mut batch), Some(1.0));
        let robots: Vec<usize> = batch.iter().map(|e| e.robot).collect();
        assert_eq!(robots, (0..16).collect::<Vec<_>>());
        assert_eq!(h.pop_batch(&mut batch), None);
        assert!(batch.is_empty());
    }

    #[test]
    fn batch_excludes_events_scheduled_mid_batch() {
        let mut h = EventHeap::new();
        h.push(1.0, 0, EventKind::Look);
        let mut batch = Vec::new();
        h.pop_batch(&mut batch);
        assert_eq!(batch.len(), 1);
        // Scheduling at the same instant during processing starts a NEW
        // batch at the same time value.
        h.push(1.0, 0, EventKind::ComputeDone { gen: 0 });
        assert_eq!(h.pop_batch(&mut batch), Some(1.0));
        assert_eq!(batch[0].kind, EventKind::ComputeDone { gen: 0 });
    }

    #[test]
    fn interleaved_pushes_and_pops_stay_sorted() {
        let mut h = EventHeap::new();
        let mut rng = gather_prng::Rng::seed_from_u64(7);
        let mut popped = Vec::new();
        for round in 0..200u64 {
            h.push(rng.next_f64() * 10.0, round as usize, EventKind::Look);
            if round % 3 == 0 {
                if let Some(e) = h.pop() {
                    popped.push(e);
                }
            }
        }
        while let Some(e) = h.pop() {
            popped.push(e);
        }
        assert_eq!(popped.len(), 200);
        // Within each drain segment times are non-decreasing; the full
        // sequence re-sorted must equal itself sorted stably by (time, seq).
        let mut sorted = popped.clone();
        sorted.sort_by(|a, b| a.time.total_cmp(&b.time).then(a.seq.cmp(&b.seq)));
        let mut resorted = popped.clone();
        resorted.sort_by(|a, b| a.time.total_cmp(&b.time).then(a.seq.cmp(&b.seq)));
        assert_eq!(sorted, resorted);
        // And a pure drain is globally sorted.
        let mut h2 = EventHeap::new();
        for (i, e) in popped.iter().enumerate() {
            h2.push(e.time, i, EventKind::Look);
        }
        let mut last = f64::NEG_INFINITY;
        while let Some(e) = h2.pop() {
            assert!(e.time >= last);
            last = e.time;
        }
    }

    #[test]
    fn clear_empties_but_keeps_sequencing_monotonic() {
        let mut h = EventHeap::new();
        h.push(1.0, 0, EventKind::Look);
        let seq_before = h.peek().expect("pushed").seq;
        h.clear();
        assert!(h.is_empty());
        h.push(1.0, 1, EventKind::Look);
        assert!(h.peek().expect("pushed").seq > seq_before);
    }
}
