//! The movement adversary and the minimum step `δ`.
//!
//! In the paper's model a robot moving toward its computed destination may
//! be stopped by the adversary before arriving, subject to one guarantee:
//! there is a constant `δ > 0` such that a robot reaches any destination
//! closer than `δ`, and otherwise advances at least `δ` along the segment.
//! The engine enforces the `δ` floor; a [`MotionAdversary`] chooses where
//! past the floor the robot actually stops.

use gather_geom::Point;
use gather_prng::Rng;

/// Chooses how far along `[from, to]` an activated robot travels.
///
/// Implementations return the desired *fraction* of the segment in
/// `(0, 1]`; the engine clamps the realised travel so the `δ` guarantee
/// holds regardless of what the adversary returns.
pub trait MotionAdversary {
    /// Desired stop fraction for `robot` moving from `from` to `to` in
    /// `round`, in `(0, 1]` (`1` = reach the destination).
    fn stop_fraction(&mut self, round: u64, robot: usize, from: Point, to: Point) -> f64;

    /// Short identifier used in experiment tables.
    fn name(&self) -> &'static str {
        "motion"
    }
}

impl<M: MotionAdversary + ?Sized> MotionAdversary for Box<M> {
    fn stop_fraction(&mut self, round: u64, robot: usize, from: Point, to: Point) -> f64 {
        (**self).stop_fraction(round, robot, from, to)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Every move completes: robots always reach their destinations.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullMotion;

impl MotionAdversary for FullMotion {
    fn stop_fraction(&mut self, _round: u64, _robot: usize, _from: Point, _to: Point) -> f64 {
        1.0
    }
    fn name(&self) -> &'static str {
        "full"
    }
}

/// The stingiest adversary: every move is cut to the minimum step `δ`
/// (or completes, when the destination is closer than `δ`).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysDelta;

impl MotionAdversary for AlwaysDelta {
    fn stop_fraction(&mut self, _round: u64, _robot: usize, _from: Point, _to: Point) -> f64 {
        // Fraction 0 requests "as little as allowed"; the engine's δ floor
        // turns this into exactly δ (or full arrival under δ).
        f64::MIN_POSITIVE
    }
    fn name(&self) -> &'static str {
        "delta"
    }
}

/// Stops every robot at a uniformly random fraction of its segment.
#[derive(Debug, Clone)]
pub struct RandomStops {
    rng: Rng,
    /// Probability that a move is allowed to complete outright.
    p_complete: f64,
}

impl RandomStops {
    /// A random motion adversary: with probability `p_complete` the move
    /// finishes; otherwise it stops at a uniform fraction.
    ///
    /// # Panics
    ///
    /// Panics if `p_complete` is not within `[0, 1]`.
    pub fn new(p_complete: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_complete),
            "completion probability must be in [0, 1]"
        );
        RandomStops {
            rng: Rng::seed_from_u64(seed),
            p_complete,
        }
    }
}

impl MotionAdversary for RandomStops {
    fn stop_fraction(&mut self, _round: u64, _robot: usize, _from: Point, _to: Point) -> f64 {
        if self.rng.random_bool(self.p_complete) {
            1.0
        } else {
            self.rng.random_range(0.0_f64..1.0).max(f64::MIN_POSITIVE)
        }
    }
    fn name(&self) -> &'static str {
        "random"
    }
}

/// A symmetry-preserving motion adversary: every robot is stopped at
/// exactly half of its segment. Co-located robots moving to a common
/// destination stay co-located, and symmetric configurations stay
/// symmetric — until destinations come within the minimum step `δ`, at
/// which point the model forces exact arrival. (For the bivalent
/// impossibility demonstration of Lemma 5.2 this is therefore *not*
/// sufficient on its own; the adversary there must also serialise the
/// activation of the two groups — see experiment T3.)
#[derive(Debug, Clone, Copy, Default)]
pub struct SymmetricHalfStops;

impl MotionAdversary for SymmetricHalfStops {
    fn stop_fraction(&mut self, _round: u64, _robot: usize, _from: Point, _to: Point) -> f64 {
        0.5
    }
    fn name(&self) -> &'static str {
        "half"
    }
}

/// Realises the model's movement rule: travelling from `from` toward `to`
/// with desired fraction `fraction` and minimum step `delta`, returns the
/// point actually reached.
///
/// * if `|from, to| <= delta`, the robot reaches `to` exactly;
/// * otherwise it travels `max(delta, fraction · |from, to|)` along the
///   segment, and arrives exactly at `to` if that meets or exceeds the
///   distance.
pub fn apply_motion(from: Point, to: Point, fraction: f64, delta: f64) -> Point {
    let dist = from.dist(to);
    if dist <= delta {
        return to;
    }
    let travel = (fraction.clamp(0.0, 1.0) * dist).max(delta);
    if travel >= dist {
        to
    } else {
        from.lerp(to, travel / dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_moves_always_complete() {
        let from = Point::new(0.0, 0.0);
        let to = Point::new(0.05, 0.0);
        // Even a zero-fraction request reaches a destination within δ.
        let p = apply_motion(from, to, 0.0, 0.1);
        assert_eq!(p, to);
    }

    #[test]
    fn delta_floor_is_enforced() {
        let from = Point::new(0.0, 0.0);
        let to = Point::new(10.0, 0.0);
        let p = apply_motion(from, to, 1e-9, 0.5);
        assert!((p.x - 0.5).abs() < 1e-12, "moved {p}");
    }

    #[test]
    fn full_fraction_reaches_destination_exactly() {
        let from = Point::new(1.0, 2.0);
        let to = Point::new(-3.0, 7.0);
        let p = apply_motion(from, to, 1.0, 0.01);
        assert_eq!(p, to); // bitwise: arrivals must be exact for multiplicity
    }

    #[test]
    fn near_full_fraction_snaps_to_destination() {
        let from = Point::new(0.0, 0.0);
        let to = Point::new(1.0, 0.0);
        // travel = 0.999999, less than dist: stops short (no snapping here;
        // the engine's canonicalisation handles clustering).
        let p = apply_motion(from, to, 0.999999, 0.01);
        assert!(p.x < 1.0);
        // fraction > 1 is clamped and still lands exactly on `to`.
        let q = apply_motion(from, to, 7.5, 0.01);
        assert_eq!(q, to);
    }

    #[test]
    fn fraction_between_delta_and_one_is_respected() {
        let from = Point::new(0.0, 0.0);
        let to = Point::new(10.0, 0.0);
        let p = apply_motion(from, to, 0.3, 0.1);
        assert!((p.x - 3.0).abs() < 1e-12);
    }

    #[test]
    fn adversary_implementations_return_valid_fractions() {
        let from = Point::new(0.0, 0.0);
        let to = Point::new(5.0, 5.0);
        let mut full = FullMotion;
        assert_eq!(full.stop_fraction(0, 0, from, to), 1.0);
        let mut min = AlwaysDelta;
        let f = min.stop_fraction(0, 0, from, to);
        assert!(f > 0.0 && f <= 1.0);
        let mut half = SymmetricHalfStops;
        assert_eq!(half.stop_fraction(0, 0, from, to), 0.5);
        let mut rnd = RandomStops::new(0.5, 11);
        for r in 0..50 {
            let f = rnd.stop_fraction(r, 0, from, to);
            assert!(f > 0.0 && f <= 1.0, "round {r}: fraction {f}");
        }
    }

    #[test]
    fn random_stops_deterministic_per_seed() {
        let sample = |seed| {
            let mut m = RandomStops::new(0.3, seed);
            (0..20)
                .map(|r| m.stop_fraction(r, 0, Point::ORIGIN, Point::new(1.0, 0.0)))
                .collect::<Vec<_>>()
        };
        assert_eq!(sample(3), sample(3));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn random_stops_validates_input() {
        let _ = RandomStops::new(1.5, 0);
    }
}
