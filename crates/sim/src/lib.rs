//! ATOM (SSYNC) mobile-robot simulator.
//!
//! This crate is the execution substrate for the reproduction of
//! *"Gathering of Mobile Robots Tolerating Multiple Crash Faults"*
//! (Bouzid, Das, Tixeuil; ICDCS 2013). It implements the paper's model
//! (Section II) faithfully:
//!
//! * time is divided into rounds; in each round an adversarially chosen
//!   subset of robots is active ([`scheduler`]), and each active robot
//!   performs one atomic Look–Compute–Move cycle;
//! * robots are anonymous, oblivious, and disoriented: each observation is
//!   delivered in a per-robot local coordinate frame (rotation + uniform
//!   scale + translation, **no reflection** — the robots share chirality)
//!   chosen fresh at every activation ([`frames`]);
//! * robots have strong multiplicity detection: snapshots are canonicalised
//!   so co-located robots have identical coordinates ([`snapshot`]);
//! * a move toward the computed destination may be stopped by the adversary
//!   anywhere past the minimum step `δ` ([`motion`]);
//! * robots crash permanently at adversarially chosen times ([`crash`]); a
//!   crashed robot stops acting but remains visible.
//!
//! The [`engine`] wires these together, records per-round traces, and runs
//! invariant monitors (wait-freeness per Lemma 5.1, never-entering the
//! bivalent class, scheduler fairness).
//!
//! # Example
//!
//! ```
//! use gather_sim::prelude::*;
//! use gather_geom::{Point, Tol};
//!
//! /// Toy algorithm: move to the centroid of the observed configuration.
//! struct GoToCentroid;
//! impl Algorithm for GoToCentroid {
//!     fn name(&self) -> &'static str { "centroid" }
//!     fn destination(&self, snap: &Snapshot) -> Point {
//!         gather_geom::centroid(snap.config().points())
//!     }
//! }
//!
//! let mut engine = Engine::builder(vec![
//!         Point::new(0.0, 0.0), Point::new(2.0, 0.0), Point::new(1.0, 2.0),
//!     ])
//!     .algorithm(GoToCentroid)
//!     .build();
//! let outcome = engine.run(1_000);
//! // The centroid rule converges (robots end within snap distance).
//! assert!(outcome.gathered());
//! ```

pub mod algorithm;
pub mod byzantine;
pub mod crash;
pub mod engine;
pub mod frames;
pub mod metrics;
pub mod motion;
pub mod scheduler;
pub mod snapshot;
pub mod trace;

pub use algorithm::Algorithm;
pub use byzantine::{ByzantinePolicy, Fugitive, StackStalker, Statue, Wanderer};
pub use crash::{CrashAtRounds, CrashPlan, NoCrashes, RandomCrashes, TargetedCrashes};
pub use engine::{Engine, EngineBuilder, EngineParts, RunOutcome};
pub use frames::FramePolicy;
pub use motion::{AlwaysDelta, FullMotion, MotionAdversary, RandomStops, SymmetricHalfStops};
pub use scheduler::{
    EveryRobot, FnScheduler, RandomSubsets, RoundRobin, Scheduler, SequentialSingle,
};
pub use snapshot::Snapshot;
pub use trace::{RoundRecord, Trace};

/// Convenient glob import for simulator users.
pub mod prelude {
    pub use crate::algorithm::Algorithm;
    pub use crate::byzantine::{ByzantinePolicy, Fugitive, StackStalker, Statue, Wanderer};
    pub use crate::crash::{CrashAtRounds, CrashPlan, NoCrashes, RandomCrashes, TargetedCrashes};
    pub use crate::engine::{Engine, EngineBuilder, EngineParts, RunOutcome};
    pub use crate::frames::FramePolicy;
    pub use crate::motion::{
        AlwaysDelta, FullMotion, MotionAdversary, RandomStops, SymmetricHalfStops,
    };
    pub use crate::scheduler::{
        EveryRobot, FnScheduler, RandomSubsets, RoundRobin, Scheduler, SequentialSingle,
    };
    pub use crate::snapshot::Snapshot;
    pub use crate::trace::{RoundRecord, Trace};
}
