//! ATOM (SSYNC) mobile-robot simulator.
//!
//! This crate is the execution substrate for the reproduction of
//! *"Gathering of Mobile Robots Tolerating Multiple Crash Faults"*
//! (Bouzid, Das, Tixeuil; ICDCS 2013). It implements the paper's model
//! (Section II) faithfully:
//!
//! * time is divided into rounds; in each round an adversarially chosen
//!   subset of robots is active ([`scheduler`]), and each active robot
//!   performs one atomic Look–Compute–Move cycle;
//! * robots are anonymous, oblivious, and disoriented: each observation is
//!   delivered in a per-robot local coordinate frame (rotation + uniform
//!   scale + translation, **no reflection** — the robots share chirality)
//!   chosen fresh at every activation ([`frames`]);
//! * robots have strong multiplicity detection: snapshots are canonicalised
//!   so co-located robots have identical coordinates ([`snapshot`]);
//! * a move toward the computed destination may be stopped by the adversary
//!   anywhere past the minimum step `δ` ([`motion`]);
//! * robots crash permanently at adversarially chosen times ([`crash`]); a
//!   crashed robot stops acting but remains visible.
//!
//! The [`engine`] wires these together, records per-round traces, and runs
//! invariant monitors (wait-freeness per Lemma 5.1, never-entering the
//! bivalent class, scheduler fairness).
//!
//! Beyond the paper's model, [`async_engine`] provides a true event-driven
//! ASYNC/LCM executor over the same `StepCore` stages: per-robot
//! Look/Compute/Move events on a binary heap ([`events`]), exponential
//! inter-activation pacing, per-robot speeds, non-rigid interruptible
//! moves, and stale-snapshot Computes — degenerating bit-identically to
//! the round engine under atomic/lockstep settings.
//!
//! # Example
//!
//! ```
//! use gather_sim::prelude::*;
//! use gather_geom::{Point, Tol};
//!
//! /// Toy algorithm: move to the centroid of the observed configuration.
//! struct GoToCentroid;
//! impl Algorithm for GoToCentroid {
//!     fn name(&self) -> &'static str { "centroid" }
//!     fn destination(&self, snap: &Snapshot) -> Point {
//!         gather_geom::centroid(snap.config().points())
//!     }
//! }
//!
//! let mut engine = Engine::builder(vec![
//!         Point::new(0.0, 0.0), Point::new(2.0, 0.0), Point::new(1.0, 2.0),
//!     ])
//!     .algorithm(GoToCentroid)
//!     .build();
//! let outcome = engine.run(1_000);
//! // The centroid rule converges (robots end within snap distance).
//! assert!(outcome.gathered());
//! ```

pub mod algorithm;
pub mod async_engine;
pub mod batch;
pub mod byzantine;
pub mod crash;
pub mod engine;
pub mod events;
pub mod frames;
pub mod metrics;
pub mod motion;
pub mod scheduler;
pub mod snapshot;
pub mod trace;

// Deprecated top-level re-exports. The one-stop import surface is
// [`prelude`]; these duplicates survive for source compatibility but new
// code should spell `use gather_sim::prelude::…` (or the defining module).
// Doc-comments rather than `#[deprecated]` attributes: a pub-use chain
// would propagate the warning to the prelude itself.

/// Deprecated duplicate re-export — import from [`prelude`] instead.
pub use algorithm::Algorithm;
/// Deprecated duplicate re-export — import from [`prelude`] instead.
pub use byzantine::{ByzantinePolicy, Fugitive, StackStalker, Statue, Wanderer};
/// Deprecated duplicate re-export — import from [`prelude`] instead.
pub use crash::{CrashAtRounds, CrashPlan, NoCrashes, RandomCrashes, TargetedCrashes};
/// Deprecated duplicate re-export — import from [`prelude`] instead.
pub use engine::{Engine, EngineBuilder, EngineParts, RunOutcome};
/// Deprecated duplicate re-export — import from [`prelude`] instead.
pub use frames::FramePolicy;
/// Deprecated duplicate re-export — import from [`prelude`] instead.
pub use motion::{AlwaysDelta, FullMotion, MotionAdversary, RandomStops, SymmetricHalfStops};
/// Deprecated duplicate re-export — import from [`prelude`] instead.
pub use scheduler::{
    EveryRobot, FnScheduler, RandomSubsets, RoundRobin, Scheduler, SequentialSingle,
};
/// Deprecated duplicate re-export — import from [`prelude`] instead.
pub use snapshot::Snapshot;
/// Deprecated duplicate re-export — import from [`prelude`] instead.
pub use trace::{RoundRecord, Trace};

/// The one-stop import surface for simulator users: algorithms, the
/// engine (with its recyclable [`EngineParts`]), every adversary knob
/// ([`CrashPlan`], [`Scheduler`], [`MotionAdversary`], [`ByzantinePolicy`],
/// [`FramePolicy`]), traces/metrics, and the observability handles
/// re-exported from `gather-obs`.
///
/// [`EngineParts`]: crate::engine::EngineParts
/// [`CrashPlan`]: crate::crash::CrashPlan
/// [`Scheduler`]: crate::scheduler::Scheduler
/// [`MotionAdversary`]: crate::motion::MotionAdversary
/// [`ByzantinePolicy`]: crate::byzantine::ByzantinePolicy
/// [`FramePolicy`]: crate::frames::FramePolicy
pub mod prelude {
    pub use crate::algorithm::Algorithm;
    pub use crate::async_engine::{AsyncEngine, AsyncEngineBuilder, Pacing, Rigidity, Timing};
    pub use crate::batch::{BatchEngine, LaneResult, LaneSpec};
    pub use crate::byzantine::{ByzantinePolicy, Fugitive, StackStalker, Statue, Wanderer};
    pub use crate::crash::{CrashAtRounds, CrashPlan, NoCrashes, RandomCrashes, TargetedCrashes};
    pub use crate::engine::{Engine, EngineBuilder, EngineParts, RunOutcome};
    pub use crate::events::{Event, EventHeap, EventKind};
    pub use crate::frames::FramePolicy;
    pub use crate::metrics::{summarize, CacheStats, RunMetrics};
    pub use crate::motion::{
        AlwaysDelta, FullMotion, MotionAdversary, RandomStops, SymmetricHalfStops,
    };
    pub use crate::scheduler::{
        EveryRobot, FnScheduler, RandomSubsets, RoundRobin, Scheduler, SequentialSingle,
    };
    pub use crate::snapshot::Snapshot;
    pub use crate::trace::{RoundRecord, Trace};
    // Observability handles, so instrumented callers need no direct
    // gather-obs dependency for the common cases.
    pub use gather_obs::{EngineObs, Phase, PhaseNanos, RoundSpans, SpanSink};
}
