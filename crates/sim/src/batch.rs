//! Lockstep batch execution: many scenarios advanced round by round over
//! scenario-major columnar state.
//!
//! A parameter-space sweep runs thousands of *short* simulations — the T1
//! grid gathers in a handful of rounds — so the one-`Engine`-per-scenario
//! worker pool pays its per-scenario fixed costs (engine construction,
//! canonical clone, cold first classification, unbounded trace growth,
//! per-item pool handoff) once per grid cell, and those costs rival the
//! simulated rounds themselves. [`BatchEngine`] amortises them: one
//! scratch arena per worker (recycled through the existing
//! [`EngineParts`] contract) serves every lane, positions and liveness
//! flags live packed across scenarios in structure-of-arrays columns
//! (fueling the batched [`gather_geom::soa`] kernels, here the exact
//! gathered-detection prefilter [`masked_max_dist2`]), analysis caches and
//! traces recycle across lane generations, and an admission memo shares
//! the cold initial classification across grid cells that start from the
//! same configuration.
//!
//! The hard contract is **bit-identity**: every lane produces exactly the
//! [`RunMetrics`], violations and final positions of a sequential
//! [`Engine`] run of the same spec. This holds by construction, not by
//! re-implementation — lanes execute the *same* [`StepCore`] stage code
//! the engine's round loop is built from, in the same order, with the
//! same per-round counter windows; the columnar layer only stores state
//! between rounds and pre-filters the gathered check with an
//! arithmetically identical kernel.
//!
//! [`Engine`]: crate::engine::Engine
//! [`StepCore`]: crate::engine::StepCore

use crate::algorithm::Algorithm;
use crate::crash::{CrashPlan, NoCrashes};
use crate::engine::{EngineParts, RunOutcome, Scratch, StepCore};
use crate::frames::{FramePolicy, FrameSource};
use crate::metrics::{summarize, CacheStats, RunMetrics};
use crate::motion::{FullMotion, MotionAdversary};
use crate::scheduler::{EveryRobot, Scheduler};
use crate::trace::{RoundRecord, Trace};
use gather_config::{
    classify, classify_invocations, AnalysisCache, Class, Configuration, RoundAnalysis,
};
use gather_geom::soa::masked_max_dist2;
use gather_geom::{weiszfeld_iterations, Point, Tol};

/// One scenario for lockstep execution: the subset of the
/// [`EngineBuilder`](crate::engine::EngineBuilder) surface that batch
/// lanes support, as plain data. Defaults mirror the builder's exactly.
///
/// Deliberately absent: byzantine robots, stale looks (`look_delay`),
/// position logs and observability handles — the sweep workloads that
/// justify lockstep execution use none of them, and each would smuggle
/// per-lane state into the shared arena. Scenarios needing those run on
/// the sequential engine.
pub struct LaneSpec {
    /// Initial robot positions (canonicalised on admission, exactly as the
    /// builder does).
    pub initial: Vec<Point>,
    /// The algorithm every robot runs.
    pub algorithm: Box<dyn Algorithm>,
    /// Activation scheduler (default [`EveryRobot`]).
    pub scheduler: Box<dyn Scheduler>,
    /// Crash plan (default [`NoCrashes`]).
    pub crash_plan: Box<dyn CrashPlan>,
    /// Motion adversary (default [`FullMotion`]).
    pub motion: Box<dyn MotionAdversary>,
    /// Local-frame policy (default random frame per activation).
    pub frames: FramePolicy,
    /// Tolerance policy.
    pub tol: Tol,
    /// Minimum movement step `δ` (must be positive).
    pub delta: f64,
    /// Run the per-round invariant audits (default on).
    pub check_invariants: bool,
    /// Share the per-round analysis across robots (default on).
    pub shared_analysis: bool,
    /// Warm-start Weiszfeld from the previous Weber point (default on).
    pub warm_start: bool,
    /// Incremental dirty-tracked re-analysis (default off — the
    /// full-recompute reference path), matching
    /// [`EngineBuilder::incremental`](crate::engine::EngineBuilder::incremental).
    pub incremental: bool,
    /// Round limit: the lane retires `RoundLimit` when it steps this many
    /// rounds without gathering (default 10 000).
    pub max_rounds: u64,
    /// Retain the full per-round trace and return it as NDJSON on the
    /// lane's [`LaneResult::trace_jsonl`] (default off: aggregates only,
    /// capacity-1 ring). Tracing never perturbs the simulation — a traced
    /// lane's metrics, outcome and positions are bit-identical to its
    /// untraced twin's.
    pub traced: bool,
}

impl LaneSpec {
    /// A spec with the engine builder's defaults: every robot activated,
    /// no crashes, full motion, random frames, default tolerances,
    /// `δ = 0.01`, audits and the shared-analysis pipeline on.
    pub fn new(initial: Vec<Point>, algorithm: Box<dyn Algorithm>) -> Self {
        LaneSpec {
            initial,
            algorithm,
            scheduler: Box::new(EveryRobot),
            crash_plan: Box::new(NoCrashes),
            motion: Box::new(FullMotion),
            frames: FramePolicy::default(),
            tol: Tol::default(),
            delta: 0.01,
            check_invariants: true,
            shared_analysis: true,
            warm_start: true,
            incremental: false,
            max_rounds: 10_000,
            traced: false,
        }
    }
}

/// What one lane produced: bit-identical to what
/// [`crate::engine::Engine::run`] plus [`summarize`] on the same spec
/// yields.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneResult {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// The summarised metrics (aggregates cover every round).
    pub metrics: RunMetrics,
    /// Invariant-audit violations (empty in a correct run).
    pub violations: Vec<String>,
    /// Final canonical positions, indexed by robot.
    pub positions: Vec<Point>,
    /// The full per-round NDJSON trace ([`Trace::to_jsonl`]) when the
    /// spec asked for it ([`LaneSpec::traced`]); `None` otherwise.
    pub trace_jsonl: Option<String>,
}

/// A live lane: one scenario's stepping core plus its per-scenario state.
/// Positions and liveness live in the batch's columns, not here.
struct Lane {
    core: StepCore,
    /// Column slot ×`stride` = base offset of this lane's robots.
    slot: usize,
    /// Robot count (fixed for the lane's lifetime — canonicalisation
    /// merges coordinates, never entries).
    n: usize,
    /// Position of this lane's spec in the input order.
    index: usize,
    round: u64,
    max_rounds: u64,
    /// Capacity-1 ring by default (aggregates — all [`RunMetrics`] reads
    /// — cover every round; per-round records are not retained), or
    /// unbounded for a [`LaneSpec::traced`] lane.
    trace: Trace,
    /// Serialise the retained records into [`LaneResult::trace_jsonl`] on
    /// retirement.
    traced: bool,
    violations: Vec<String>,
    record: RoundRecord,
}

/// Advances a batch of scenarios in lockstep over scenario-major SoA
/// state; see the module docs for the design and the bit-identity
/// contract.
///
/// # Example
///
/// ```
/// use gather_sim::prelude::*;
/// use gather_geom::Point;
///
/// struct GoToCentroid;
/// impl Algorithm for GoToCentroid {
///     fn name(&self) -> &'static str { "centroid" }
///     fn destination(&self, snap: &Snapshot) -> Point {
///         gather_geom::centroid(snap.config().points())
///     }
/// }
///
/// let spec = |dx: f64| {
///     let mut s = LaneSpec::new(
///         vec![Point::new(dx, 0.0), Point::new(dx + 2.0, 0.0), Point::new(dx + 1.0, 2.0)],
///         Box::new(GoToCentroid),
///     );
///     s.check_invariants = false;
///     s
/// };
/// let mut batch = BatchEngine::new(2, EngineParts::default());
/// let results = batch.run(vec![spec(0.0), spec(5.0), spec(10.0)]);
/// assert_eq!(results.len(), 3);
/// assert!(results.iter().all(|r| r.outcome.gathered()));
/// ```
pub struct BatchEngine {
    width: usize,
    /// The one scratch arena every lane's stages borrow.
    scratch: Scratch,
    /// Retired lanes' analysis caches, reset-recycled into new lanes.
    spare_caches: Vec<AnalysisCache>,
    /// Retired lanes' traces, reset-recycled into new lanes.
    spare_traces: Vec<Trace>,
    /// Array-of-structs staging buffer: a lane's positions are gathered
    /// here from the columns for the stepping stages, then scattered back.
    aos: Vec<Point>,
    /// Scenario-major position columns: lane slot `s` robot `j` lives at
    /// `s * stride + j`.
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Liveness column, same layout.
    alive: Vec<bool>,
    stride: usize,
    free_slots: Vec<usize>,
    lanes: Vec<Lane>,
    /// Admission memo `(points, tol, analysis)`: consecutive specs that
    /// start from the same canonical configuration (a sweep crossing
    /// schedulers × δ × faults over one workload) share the cold initial
    /// classification. Seeding the lane's cache with the memoized analysis
    /// is indistinguishable from the cache computing it itself.
    memo: Option<(Vec<Point>, Tol, RoundAnalysis)>,
}

impl BatchEngine {
    /// A batch engine advancing up to `width` scenarios in lockstep,
    /// working out of the recycled `parts` (the per-worker arena
    /// contract: pass [`EngineParts::default`] for a cold start, or a
    /// retired engine's parts to keep its warm buffers).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: usize, parts: EngineParts) -> Self {
        assert!(width > 0, "BatchEngine width must be positive");
        BatchEngine {
            width,
            scratch: parts.scratch,
            spare_caches: vec![parts.analysis_cache],
            spare_traces: Vec::new(),
            aos: Vec::new(),
            xs: Vec::new(),
            ys: Vec::new(),
            alive: Vec::new(),
            stride: 0,
            free_slots: Vec::new(),
            lanes: Vec::new(),
            memo: None,
        }
    }

    /// The batch width (maximum number of concurrently live lanes).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Retires the batch engine and hands back a reusable arena for the
    /// next engine (sequential or batch) to recycle.
    pub fn into_parts(mut self) -> EngineParts {
        EngineParts {
            scratch: self.scratch,
            analysis_cache: self.spare_caches.pop().unwrap_or_default(),
        }
    }

    /// Runs every spec to completion and returns their results in input
    /// order. Lanes are admitted up to the batch width, advanced in
    /// lockstep (one round per pass), and retired-and-replaced as they
    /// finish so the batch stays dense.
    ///
    /// # Panics
    ///
    /// Panics if a spec has an empty initial configuration or a
    /// non-positive `delta` (the builder's contract).
    pub fn run(&mut self, specs: Vec<LaneSpec>) -> Vec<LaneResult> {
        let total = specs.len();
        if total == 0 {
            return Vec::new();
        }
        let stride = specs
            .iter()
            .map(|s| s.initial.len())
            .max()
            .expect("non-empty specs");
        self.stride = stride;
        self.xs.clear();
        self.xs.resize(self.width * stride, 0.0);
        self.ys.clear();
        self.ys.resize(self.width * stride, 0.0);
        self.alive.clear();
        self.alive.resize(self.width * stride, false);
        self.free_slots = (0..self.width).rev().collect();

        let mut results: Vec<Option<LaneResult>> = Vec::with_capacity(total);
        results.resize_with(total, || None);
        let mut pending = specs.into_iter().enumerate();
        while self.lanes.len() < self.width {
            let Some((index, spec)) = pending.next() else {
                break;
            };
            self.admit(index, spec);
        }
        while !self.lanes.is_empty() {
            let mut i = 0;
            while i < self.lanes.len() {
                match self.tick_lane(i) {
                    Some((index, result)) => {
                        results[index] = Some(result);
                        if let Some((index, spec)) = pending.next() {
                            self.admit(index, spec);
                        }
                        // Do not advance: swap_remove moved another lane
                        // into `i` (and a freshly admitted lane sits at the
                        // end); both get their round this pass.
                    }
                    None => i += 1,
                }
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every admitted lane retires"))
            .collect()
    }

    /// Admits one spec into a free column slot, replicating
    /// `EngineBuilder::build` exactly: canonicalise, reset-and-seed the
    /// recycled analysis cache, pre-classify for the bivalent flag.
    fn admit(&mut self, index: usize, spec: LaneSpec) {
        assert!(
            !spec.initial.is_empty(),
            "BatchEngine: initial configuration must be non-empty"
        );
        assert!(spec.delta > 0.0, "minimum step delta must be positive");
        let positions = Configuration::canonical(spec.initial, spec.tol)
            .points()
            .to_vec();
        let n = positions.len();
        let mut cache = self.spare_caches.pop().unwrap_or_default();
        cache.reset();
        cache.set_warm_start(spec.warm_start);
        self.scratch.config.copy_from_slice(&positions);
        // The builder's bivalent pre-check: through the cache when the
        // shared pipeline is on (so round 0 hits the memo), by direct
        // classification in the ablation mode. The admission memo
        // substitutes for the cache's own fresh-miss computation — a fresh
        // cache computes with no warm-start hint, so the memoized analysis
        // is the exact value it would have produced.
        let started_bivalent = if spec.shared_analysis {
            let analysis = match &self.memo {
                Some((pts, tol, ra)) if *tol == spec.tol && *pts == positions => *ra,
                _ => {
                    let ra = RoundAnalysis::compute(&self.scratch.config, spec.tol);
                    self.memo = Some((positions.clone(), spec.tol, ra));
                    ra
                }
            };
            cache.seed(&positions, analysis);
            analysis.analysis.class == Class::Bivalent
        } else {
            classify(&self.scratch.config, spec.tol).class == Class::Bivalent
        };
        let slot = self.free_slots.pop().expect("admit with no free slot");
        let base = slot * self.stride;
        for (j, p) in positions.iter().enumerate() {
            self.xs[base + j] = p.x;
            self.ys[base + j] = p.y;
            self.alive[base + j] = true;
        }
        // Trace recycling across lane generations: `reset` first (clears
        // records, aggregates and the dropped counter while keeping the
        // buffers), *then* re-bound the capacity for this lane. The order
        // matters — `set_capacity` evicts and counts over-capacity records,
        // so binding before resetting would let a retired traced lane's
        // rounds bleed into the next lane's `dropped()` accounting. A
        // recycled trace is thereafter indistinguishable from a fresh one
        // (pinned by `Trace::reset`'s tests and the interleaving
        // regression test below); the async engine sidesteps the question
        // by building a fresh `Trace` per engine.
        let mut trace = self.spare_traces.pop().unwrap_or_default();
        trace.reset();
        trace.set_capacity(if spec.traced { None } else { Some(1) });
        self.lanes.push(Lane {
            core: StepCore {
                algorithm: spec.algorithm,
                scheduler: spec.scheduler,
                crash_plan: spec.crash_plan,
                motion: spec.motion,
                frame_source: FrameSource::new(spec.frames),
                tol: spec.tol,
                delta: spec.delta,
                shared_analysis: spec.shared_analysis,
                check_invariants: spec.check_invariants,
                started_bivalent,
                incremental: spec.incremental,
                pending_dirty: Vec::new(),
                sep_ok: false,
                analysis_cache: cache,
            },
            slot,
            n,
            index,
            round: 0,
            max_rounds: spec.max_rounds,
            trace,
            traced: spec.traced,
            violations: Vec::new(),
            record: RoundRecord::default(),
        });
    }

    /// Gives lane `i` its round: the engine run loop's termination checks
    /// (gathered, round limit), then one step. Returns the input index and
    /// result when the lane retires, freeing its slot.
    fn tick_lane(&mut self, i: usize) -> Option<(usize, LaneResult)> {
        let lane = &mut self.lanes[i];
        let base = lane.slot * self.stride;
        let n = lane.n;
        let snap = lane.core.tol.snap;

        // Termination check, mirroring `Engine::run`. The columnar
        // prefilter is exact: `masked_max_dist2 <= snap²` is the same
        // comparison the engine's all-within-snap scan performs, so the
        // (costlier) staged check — which consults the analysis cache,
        // exactly like `Engine::is_gathered` — runs for precisely the
        // lanes where the engine's would.
        let xs = &self.xs[base..base + n];
        let ys = &self.ys[base..base + n];
        let alive = &self.alive[base..base + n];
        let anchor = alive
            .iter()
            .position(|a| *a)
            .map(|j| Point::new(xs[j], ys[j]));
        let gathered = match anchor {
            Some(at) if masked_max_dist2(xs, ys, alive, at) <= snap * snap => {
                self.aos.clear();
                self.aos
                    .extend(xs.iter().zip(ys).map(|(&x, &y)| Point::new(x, y)));
                lane.core
                    .gathered_point(&self.aos, alive, &mut self.scratch)
            }
            _ => None,
        };
        let outcome = if let Some(point) = gathered {
            Some(RunOutcome::Gathered {
                round: lane.round,
                point,
            })
        } else if lane.round >= lane.max_rounds {
            Some(RunOutcome::RoundLimit { rounds: lane.round })
        } else {
            None
        };
        if let Some(outcome) = outcome {
            // Retire: summarise, free the slot, recycle the slabs.
            self.aos.clear();
            self.aos
                .extend(xs.iter().zip(ys).map(|(&x, &y)| Point::new(x, y)));
            let mut metrics = summarize(outcome, &lane.trace);
            metrics.analysis_cache = Some(CacheStats {
                computed: lane.core.analysis_cache.computed(),
                hits: lane.core.analysis_cache.hits(),
                dirty_skips: lane.core.analysis_cache.dirty_skips(),
            });
            let result = LaneResult {
                outcome,
                metrics,
                violations: std::mem::take(&mut lane.violations),
                positions: self.aos.clone(),
                trace_jsonl: lane.traced.then(|| lane.trace.to_jsonl()),
            };
            let index = lane.index;
            self.free_slots.push(lane.slot);
            let lane = self.lanes.swap_remove(i);
            self.spare_traces.push(lane.trace);
            self.spare_caches.push(lane.core.analysis_cache);
            return Some((index, result));
        }

        // One step: the engine's stage sequence verbatim, over the shared
        // arena, with the columns as position storage on both ends. The
        // counter windows match `Engine::step` — everything between the
        // reads below runs contiguously on this thread for this lane.
        let classify_before = classify_invocations();
        let weiszfeld_before = weiszfeld_iterations();
        let hits_before = lane.core.analysis_cache.hits();
        self.aos.clear();
        self.aos
            .extend(xs.iter().zip(ys).map(|(&x, &y)| Point::new(x, y)));
        self.scratch.config.copy_from_slice(&self.aos);
        let (shared, class) = lane.core.stage_classify(&self.scratch);
        lane.core.stage_distinct(&mut self.scratch);
        let alive = &mut self.alive[base..base + n];
        lane.core
            .stage_crashes(lane.round, alive, &mut self.scratch);
        lane.core
            .stage_activate(lane.round, alive, &mut self.scratch);
        let travel = lane.core.stage_moves(
            lane.round,
            &self.aos,
            &mut [],
            None,
            shared.as_ref(),
            true,
            &mut self.scratch,
        );
        lane.core.stage_apply(&self.aos, &mut self.scratch);
        // Scatter the canonicalised positions back into the columns (the
        // sequential engine swaps vectors instead; same values).
        self.aos.clear();
        self.aos.extend_from_slice(&self.scratch.canon_out);
        for (j, p) in self.aos.iter().enumerate() {
            self.xs[base + j] = p.x;
            self.ys[base + j] = p.y;
        }
        if lane.core.check_invariants {
            lane.core.stage_audits(
                lane.round,
                &self.aos,
                shared.as_ref(),
                &mut self.scratch,
                &mut lane.violations,
            );
        }
        let record = &mut lane.record;
        record.round = lane.round;
        record.class = class;
        record.distinct = self.scratch.distinct.len();
        record.max_mult = self
            .scratch
            .distinct
            .iter()
            .map(|(_, m)| *m)
            .max()
            .unwrap_or(0);
        record.activated.clone_from(&self.scratch.activated);
        record.crashed.clone_from(&self.scratch.crashed_now);
        record.travel = travel;
        record.classifications = classify_invocations() - classify_before;
        record.cache_hits = lane.core.analysis_cache.hits() - hits_before;
        record.weiszfeld_iters = weiszfeld_iterations() - weiszfeld_before;
        lane.trace.push_cloned(&lane.record);
        lane.round += 1;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::scheduler::RoundRobin;
    use crate::snapshot::Snapshot;

    struct GoToCentroid;
    impl Algorithm for GoToCentroid {
        fn name(&self) -> &'static str {
            "centroid"
        }
        fn destination(&self, snap: &Snapshot) -> Point {
            gather_geom::centroid(snap.config().points())
        }
    }

    fn spiral(n: usize, phase: f64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let th = 0.7 * i as f64 + phase;
                let r = 1.0 + 0.3 * i as f64;
                Point::new(r * th.cos(), r * th.sin())
            })
            .collect()
    }

    fn spec(n: usize, phase: f64, max_rounds: u64) -> LaneSpec {
        let mut s = LaneSpec::new(spiral(n, phase), Box::new(GoToCentroid));
        s.frames = FramePolicy::GlobalFrame;
        s.check_invariants = false;
        s.max_rounds = max_rounds;
        s
    }

    fn sequential_with_trace(s: LaneSpec) -> (LaneResult, String) {
        let mut e = Engine::builder(s.initial)
            .algorithm(s.algorithm)
            .scheduler(s.scheduler)
            .crash_plan(s.crash_plan)
            .motion(s.motion)
            .frames(s.frames)
            .tol(s.tol)
            .delta(s.delta)
            .check_invariants(s.check_invariants)
            .shared_analysis(s.shared_analysis)
            .warm_start(s.warm_start)
            .incremental(s.incremental)
            .build();
        let outcome = e.run(s.max_rounds);
        let mut metrics = summarize(outcome, e.trace());
        let (computed, hits, dirty_skips) = e.analysis_cache_stats();
        metrics.analysis_cache = Some(CacheStats {
            computed,
            hits,
            dirty_skips,
        });
        let result = LaneResult {
            outcome,
            metrics,
            violations: e.violations().to_vec(),
            positions: e.positions().to_vec(),
            trace_jsonl: None,
        };
        (result, e.trace().to_jsonl())
    }

    fn sequential(s: LaneSpec) -> LaneResult {
        sequential_with_trace(s).0
    }

    #[test]
    fn batch_matches_sequential_engines() {
        let specs = || {
            vec![
                spec(6, 0.0, 200),
                spec(9, 1.3, 200),
                spec(4, 2.1, 200),
                spec(12, 0.4, 3), // retires at the round limit
                spec(7, 5.5, 200),
            ]
        };
        let expect: Vec<LaneResult> = specs().into_iter().map(sequential).collect();
        for width in [1, 2, 8] {
            let mut batch = BatchEngine::new(width, EngineParts::default());
            let got = batch.run(specs());
            assert_eq!(got, expect, "width {width} diverged");
        }
    }

    #[test]
    fn batch_recycles_across_runs_without_contamination() {
        let mut batch = BatchEngine::new(3, EngineParts::default());
        let first = batch.run(vec![spec(5, 0.2, 100), spec(8, 4.0, 100)]);
        // A second, different run over the same (now warm) engine.
        let second = batch.run(vec![spec(8, 4.0, 100), spec(5, 0.2, 100)]);
        assert_eq!(first[0], second[1]);
        assert_eq!(first[1], second[0]);
        let parts = batch.into_parts();
        // And the parts still seed a sequential engine.
        let mut e = Engine::builder(spiral(5, 0.2))
            .algorithm(GoToCentroid)
            .frames(FramePolicy::GlobalFrame)
            .check_invariants(false)
            .recycle(parts)
            .build();
        assert!(e.run(100).gathered());
    }

    #[test]
    fn audits_and_schedulers_flow_through() {
        let mk = || {
            let mut s = spec(8, 0.9, 400);
            s.scheduler = Box::new(RoundRobin::new(3));
            s.check_invariants = true;
            s
        };
        let expect = sequential(mk());
        let got = BatchEngine::new(4, EngineParts::default()).run(vec![mk()]);
        assert_eq!(got[0], expect);
    }

    #[test]
    fn incremental_lanes_match_sequential_and_reference() {
        let mk = |incremental: bool, audits: bool| {
            let mut s = spec(9, 1.7, 300);
            s.scheduler = Box::new(RoundRobin::new(2));
            s.check_invariants = audits;
            s.incremental = incremental;
            s
        };
        for audits in [false, true] {
            let reference = sequential(mk(false, audits));
            let mut seq_inc = sequential(mk(true, audits));
            let got = BatchEngine::new(2, EngineParts::default())
                .run(vec![mk(true, audits), mk(false, audits)]);
            // Batch lanes ≡ their sequential twins, exactly.
            assert_eq!(
                got[0], seq_inc,
                "audits={audits}: incremental lane diverged"
            );
            assert_eq!(
                got[1], reference,
                "audits={audits}: reference lane diverged"
            );
            // Incremental ≡ reference up to the dirty-skip counter, which
            // only the incremental path reports (a subset of its hits).
            let inc_stats = seq_inc.metrics.analysis_cache.expect("stats attached");
            let ref_stats = reference.metrics.analysis_cache.expect("stats attached");
            assert_eq!(inc_stats.computed, ref_stats.computed);
            assert_eq!(inc_stats.hits, ref_stats.hits);
            assert_eq!(ref_stats.dirty_skips, 0, "reference never dirty-skips");
            seq_inc.metrics.analysis_cache = reference.metrics.analysis_cache;
            assert_eq!(seq_inc, reference, "audits={audits}: sequential diverged");
        }
    }

    /// The trace-recycling regression pinned by the `admit` audit:
    /// interleave traced (unbounded) and untraced (capacity-1) lanes on
    /// one engine so every second-run lane inherits a retired trace of
    /// the *other* kind, and require (a) no rounds leak across scenarios,
    /// (b) tracing itself never perturbs the simulation.
    #[test]
    fn traced_and_untraced_lanes_interleave_without_leaking_rounds() {
        let traced = |n: usize, phase: f64, on: bool| {
            let mut s = spec(n, phase, 100);
            s.traced = on;
            s
        };
        let (seq_a, jsonl_a) = sequential_with_trace(spec(5, 0.2, 100));
        let (seq_b, jsonl_b) = sequential_with_trace(spec(8, 4.0, 100));

        // Width 1 serialises the lanes, so the second run's lanes must
        // recycle the first run's retired traces with the roles swapped.
        let mut batch = BatchEngine::new(1, EngineParts::default());
        let first = batch.run(vec![traced(5, 0.2, true), traced(8, 4.0, false)]);
        let second = batch.run(vec![traced(5, 0.2, false), traced(8, 4.0, true)]);

        assert_eq!(first[0].trace_jsonl.as_deref(), Some(jsonl_a.as_str()));
        assert_eq!(second[1].trace_jsonl.as_deref(), Some(jsonl_b.as_str()));
        assert!(first[1].trace_jsonl.is_none(), "untraced lanes stay lean");
        assert!(second[0].trace_jsonl.is_none());

        // Modulo the trace column, every lane equals its sequential twin
        // — covering aggregates (travel, histogram) that a leaked record
        // would have shifted.
        let strip = |r: &LaneResult| LaneResult {
            trace_jsonl: None,
            ..r.clone()
        };
        assert_eq!(strip(&first[0]), seq_a);
        assert_eq!(strip(&second[0]), seq_a, "recycled traced->untraced");
        assert_eq!(strip(&first[1]), seq_b);
        assert_eq!(strip(&second[1]), seq_b, "recycled untraced->traced");

        // The traced stream covers exactly the simulated rounds, from 0.
        let lines: Vec<&str> = jsonl_a.lines().collect();
        assert_eq!(lines.len() as u64, seq_a.metrics.rounds);
        assert!(lines[0].starts_with("{\"round\":0,"));
    }

    #[test]
    fn empty_spec_list_is_fine() {
        assert!(BatchEngine::new(2, EngineParts::default())
            .run(Vec::new())
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_is_rejected() {
        let _ = BatchEngine::new(0, EngineParts::default());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_initial_is_rejected() {
        let s = LaneSpec::new(Vec::new(), Box::new(GoToCentroid));
        let _ = BatchEngine::new(1, EngineParts::default()).run(vec![s]);
    }
}
