//! The event-driven ASYNC execution engine.
//!
//! Where [`Engine`](crate::engine::Engine) divides time into rounds, this
//! engine divides it into *events* drawn from a binary heap
//! ([`crate::events`]): each robot's Look, Compute-completion and
//! Move-arrival are scheduled at real-valued simulated times, with seeded
//! exponential inter-activation gaps, per-robot speed multipliers and
//! configurable rigidity. The result is the full ASYNC/LCM model of the
//! related literature:
//!
//! * **stale snapshots** — a robot Computes on the configuration it Looked
//!   at, not the configuration at compute time; other robots (and crashes)
//!   may have moved in between;
//! * **non-atomic moves** — under [`Timing::Phased`] a robot's trajectory
//!   is materialised incrementally as other events fire, so observers see
//!   robots mid-flight;
//! * **rigidity control** — [`Rigidity::NonRigid`] lets the adversary stop
//!   any in-flight robot at the next event, subject to the model's minimum
//!   progress `δ`;
//! * **crash interleaving** — a robot can crash between its Look and its
//!   Move; its pending events are tombstoned by a generation counter.
//!
//! The Compute phase reuses [`StepCore`]'s shared-analysis machinery, so
//! the `AnalysisCache` memo and the warm-started Weiszfeld solver carry
//! over from the round-based engine unchanged: when the configuration has
//! not changed since a robot's Look, its snapshot gets the shared analysis
//! (carried into its frame); when it *is* stale, the robot honestly
//! re-classifies its stale view.
//!
//! **Degeneracy contract**: with [`Timing::Atomic`], [`Pacing::Lockstep`]
//! and a rigid adversary, every tick pops one batch of all-robot Looks and
//! routes it through the same `StepCore` stages, in the same order and
//! with the same RNG consumption, as [`Engine::step`] — executions are
//! bit-identical to the FSYNC engine (traces, positions, counters). The
//! `async_identity` test suite in `gather-bench` enforces this across all
//! six configuration classes.
//!
//! [`Engine::step`]: crate::engine::Engine::step

use crate::algorithm::Algorithm;
use crate::crash::{CrashPlan, NoCrashes};
use crate::engine::{EngineParts, RunOutcome, Scratch, StepCore};
use crate::events::{EventHeap, EventKind};
use crate::frames::{FramePolicy, FrameSource};
use crate::motion::{apply_motion, FullMotion, MotionAdversary};
use crate::scheduler::EveryRobot;
use crate::snapshot::Snapshot;
use crate::trace::{RoundRecord, Trace};
use gather_config::{classify, classify_invocations, Class, Configuration};
use gather_geom::{weiszfeld_iterations, Point, Similarity, Tol};
use gather_prng::Rng;

/// How long the Compute and Move phases take.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Timing {
    /// The whole Look–Compute–Move cycle is atomic at the Look event
    /// (zero-duration Compute and Move) — the ATOM semantics, driven by
    /// the event heap instead of the round counter. With
    /// [`Pacing::Lockstep`] this degenerates to the FSYNC engine exactly;
    /// with [`Pacing::Exponential`] activations interleave one robot at a
    /// time (a sequential/SSYNC-style adversary). The configured motion
    /// adversary applies to each atomic move.
    Atomic,
    /// True ASYNC phases: Compute takes `compute_time` simulated seconds
    /// and the robot then travels at `speed` units/second (scaled by its
    /// per-robot multiplier, see [`AsyncEngineBuilder::speed_skew`]).
    /// Trajectories are materialised event by event, so other robots
    /// observe positions mid-flight; the rigidity setting governs whether
    /// the adversary may interrupt them.
    Phased {
        /// Simulated seconds between a Look and the start of the move.
        compute_time: f64,
        /// Base travel speed in units per simulated second.
        speed: f64,
    },
}

/// How the gap to a robot's next Look is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pacing {
    /// Every robot Looks again exactly 1.0 simulated seconds after going
    /// idle. All robots start at time 0, so under [`Timing::Atomic`] every
    /// tick is one synchronized all-robot batch (the FSYNC degeneracy).
    Lockstep,
    /// Exponential (Poisson-process) inter-activation gaps with the given
    /// rate, one shared seeded stream: `-ln(1 - u) / rate`. Robots start
    /// at independently drawn offsets, so activations interleave from the
    /// first instant.
    Exponential {
        /// Events per simulated second (must be positive).
        rate: f64,
        /// Seed of the pacing stream.
        seed: u64,
    },
}

/// Whether in-flight moves can be interrupted ([`Timing::Phased`] only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Rigidity {
    /// Moves always reach their destination.
    Rigid,
    /// At every event batch the adversary flips a coin per in-flight robot
    /// and may stop it where it currently is — but never before `δ`
    /// progress (the model's minimum-step guarantee; a robot whose whole
    /// segment is shorter than `δ` always arrives).
    NonRigid {
        /// Per-batch stop probability for each in-flight robot.
        stop_prob: f64,
        /// Seed of the interruption stream.
        seed: u64,
    },
}

/// Per-robot execution phase between events.
#[derive(Debug, Clone, Copy)]
enum RobotPhase {
    /// Waiting for its next Look.
    Idle,
    /// Between Look and ComputeDone (holds a stored snapshot).
    Computing,
    /// In flight from `from` to `dest`, departed at `start`, due at
    /// `arrive`; `progressed` is the last materialised point on the raw
    /// segment (travel accounting and interruption both continue from it).
    Moving {
        from: Point,
        dest: Point,
        arrive: f64,
        progressed: Point,
    },
}

/// A robot's stored Look: its local view, its own position in that view,
/// the frame that produced it, and the configuration version observed —
/// the stale-snapshot state the Compute phase consumes.
#[derive(Debug)]
struct LookView {
    local: Configuration,
    me_local: Point,
    frame: Similarity,
    version: u64,
}

impl Default for LookView {
    fn default() -> Self {
        LookView {
            local: Configuration::default(),
            me_local: Point::ORIGIN,
            frame: Similarity::identity(),
            version: u64::MAX,
        }
    }
}

/// Builder for [`AsyncEngine`] (see [`AsyncEngine::builder`]).
pub struct AsyncEngineBuilder {
    initial: Vec<Point>,
    algorithm: Option<Box<dyn Algorithm>>,
    crash_plan: Box<dyn CrashPlan>,
    motion: Box<dyn MotionAdversary>,
    frames: FramePolicy,
    tol: Tol,
    delta: f64,
    timing: Timing,
    pacing: Pacing,
    rigidity: Rigidity,
    speed_skew: f64,
    speed_seed: u64,
    check_invariants: bool,
    shared_analysis: bool,
    warm_start: bool,
    trace_capacity: Option<usize>,
    recycled: Option<EngineParts>,
}

impl AsyncEngineBuilder {
    /// Sets the algorithm every robot runs. **Required.**
    pub fn algorithm(mut self, algorithm: impl Algorithm + 'static) -> Self {
        self.algorithm = Some(Box::new(algorithm));
        self
    }

    /// Sets the crash plan (default: [`NoCrashes`]). The plan is consulted
    /// once per tick with the tick index as its round number.
    pub fn crash_plan(mut self, plan: impl CrashPlan + 'static) -> Self {
        self.crash_plan = Box::new(plan);
        self
    }

    /// Sets the motion adversary applied to [`Timing::Atomic`] moves
    /// (default: [`FullMotion`]). Ignored under [`Timing::Phased`], where
    /// the [`Rigidity`] setting plays that role.
    pub fn motion(mut self, motion: impl MotionAdversary + 'static) -> Self {
        self.motion = Box::new(motion);
        self
    }

    /// Sets the local-frame policy (default: random frame per activation).
    pub fn frames(mut self, frames: FramePolicy) -> Self {
        self.frames = frames;
        self
    }

    /// Sets the tolerance policy (default: [`Tol::default`]).
    pub fn tol(mut self, tol: Tol) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the minimum movement step `δ` (default: `0.01`).
    ///
    /// # Panics
    ///
    /// Panics if `delta <= 0`.
    pub fn delta(mut self, delta: f64) -> Self {
        assert!(delta > 0.0, "minimum step delta must be positive");
        self.delta = delta;
        self
    }

    /// Sets the phase timing model (default: [`Timing::Atomic`]).
    ///
    /// # Panics
    ///
    /// Panics on a negative `compute_time` or a non-positive `speed`.
    pub fn timing(mut self, timing: Timing) -> Self {
        if let Timing::Phased {
            compute_time,
            speed,
        } = timing
        {
            assert!(compute_time >= 0.0, "compute_time must be non-negative");
            assert!(speed > 0.0, "speed must be positive");
        }
        self.timing = timing;
        self
    }

    /// Sets the activation pacing (default: [`Pacing::Lockstep`]).
    ///
    /// # Panics
    ///
    /// Panics on a non-positive exponential rate.
    pub fn pacing(mut self, pacing: Pacing) -> Self {
        if let Pacing::Exponential { rate, .. } = pacing {
            assert!(rate > 0.0, "exponential pacing rate must be positive");
        }
        self.pacing = pacing;
        self
    }

    /// Sets the rigidity of in-flight moves (default: [`Rigidity::Rigid`]).
    ///
    /// # Panics
    ///
    /// Panics if `stop_prob` is outside `[0, 1]`.
    pub fn rigidity(mut self, rigidity: Rigidity) -> Self {
        if let Rigidity::NonRigid { stop_prob, .. } = rigidity {
            assert!(
                (0.0..=1.0).contains(&stop_prob),
                "stop_prob must be in [0, 1]"
            );
        }
        self.rigidity = rigidity;
        self
    }

    /// Gives each robot a speed multiplier drawn uniformly from
    /// `[1, 1 + skew)` (default skew `0`: all robots equally fast). Only
    /// meaningful under [`Timing::Phased`]; a skewed swarm has chronically
    /// slow robots whose moves stay in flight across many other events.
    ///
    /// # Panics
    ///
    /// Panics on a negative skew.
    pub fn speed_skew(mut self, skew: f64, seed: u64) -> Self {
        assert!(skew >= 0.0, "speed skew must be non-negative");
        self.speed_skew = skew;
        self.speed_seed = seed;
        self
    }

    /// Enables or disables the per-tick invariant audit (default: on).
    /// Note the wait-freeness audit evaluates the paper's Lemma 5.1 on
    /// *mid-flight* configurations too — outside the ATOM model a reported
    /// violation is a boundary finding, not necessarily a bug.
    pub fn check_invariants(mut self, on: bool) -> Self {
        self.check_invariants = on;
        self
    }

    /// Enables or disables the shared per-tick analysis (default: on).
    /// See [`crate::engine::EngineBuilder::shared_analysis`]; here the
    /// shared result additionally serves Compute events whose stored Look
    /// is still fresh (configuration unchanged since the Look).
    pub fn shared_analysis(mut self, on: bool) -> Self {
        self.shared_analysis = on;
        self
    }

    /// Enables or disables Weiszfeld warm-starting (default: on).
    pub fn warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }

    /// Bounds how many per-tick records the trace retains (default:
    /// unbounded). Aggregates keep covering the whole run.
    ///
    /// # Panics
    ///
    /// `build` panics if `capacity == 0`.
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Seeds the engine with recycled buffers from a retired engine
    /// (either kind — [`AsyncEngine::into_parts`] and
    /// [`crate::engine::Engine::into_parts`] hand back the same
    /// [`EngineParts`]). Observationally invisible, exactly as for the
    /// round-based engine.
    pub fn recycle(mut self, parts: EngineParts) -> Self {
        self.recycled = Some(parts);
        self
    }

    /// Builds the engine and schedules every robot's first Look.
    ///
    /// # Panics
    ///
    /// Panics if no algorithm was set or the initial configuration is
    /// empty.
    pub fn build(self) -> AsyncEngine {
        let algorithm = self
            .algorithm
            .expect("AsyncEngineBuilder: algorithm is required");
        assert!(
            !self.initial.is_empty(),
            "AsyncEngineBuilder: initial configuration must be non-empty"
        );
        let positions = Configuration::canonical(self.initial, self.tol)
            .points()
            .to_vec();
        let n = positions.len();
        let EngineParts {
            mut scratch,
            mut analysis_cache,
        } = self.recycled.unwrap_or_default();
        // Identical reset-to-fresh contract as the round-based engine.
        analysis_cache.reset();
        analysis_cache.set_warm_start(self.warm_start);
        scratch.config.copy_from_slice(&positions);
        let started_bivalent = if self.shared_analysis {
            analysis_cache
                .analyse(&scratch.config, self.tol)
                .analysis
                .class
                == Class::Bivalent
        } else {
            classify(&scratch.config, self.tol).class == Class::Bivalent
        };
        let mut speeds = vec![1.0; n];
        if self.speed_skew > 0.0 {
            let mut rng = Rng::seed_from_u64(self.speed_seed);
            for s in speeds.iter_mut() {
                *s = 1.0 + self.speed_skew * rng.next_f64();
            }
        }
        let pacing_rng = match self.pacing {
            Pacing::Lockstep => None,
            Pacing::Exponential { seed, .. } => Some(Rng::seed_from_u64(seed)),
        };
        let rigidity_rng = match self.rigidity {
            Rigidity::Rigid => None,
            Rigidity::NonRigid { seed, .. } => Some(Rng::seed_from_u64(seed)),
        };
        // Always a fresh `Trace` — recycled `EngineParts` carry scratch
        // and analysis cache only, so (unlike batch lanes, which recycle
        // retired traces via reset-then-rebound) there is no path for a
        // previous scenario's rounds to leak into this engine's trace.
        let mut trace = Trace::new();
        trace.set_capacity(self.trace_capacity);
        let mut engine = AsyncEngine {
            positions,
            alive: vec![true; n],
            tick: 0,
            core: StepCore {
                algorithm,
                // Activation is driven by the event heap; the scheduler
                // slot is a placeholder the async engine never consults.
                scheduler: Box::new(EveryRobot),
                crash_plan: self.crash_plan,
                motion: self.motion,
                frame_source: FrameSource::new(self.frames),
                tol: self.tol,
                delta: self.delta,
                shared_analysis: self.shared_analysis,
                check_invariants: self.check_invariants,
                started_bivalent,
                incremental: false,
                pending_dirty: Vec::new(),
                sep_ok: false,
                analysis_cache,
            },
            timing: self.timing,
            pacing: self.pacing,
            rigidity: self.rigidity,
            pacing_rng,
            rigidity_rng,
            speeds,
            phase: vec![RobotPhase::Idle; n],
            gen: vec![0; n],
            views: (0..n).map(|_| LookView::default()).collect(),
            config_version: 0,
            heap: EventHeap::new(),
            batch: Vec::new(),
            events_processed: 0,
            trace,
            violations: Vec::new(),
            scratch,
            last_record: RoundRecord::default(),
        };
        // First Looks: lockstep robots all start at time 0 (the FSYNC
        // degeneracy needs one synchronized batch); exponential pacing
        // staggers them with independently drawn offsets, ascending robot
        // order, so the execution is asynchronous from the first instant.
        for robot in 0..n {
            let t0 = match engine.pacing {
                Pacing::Lockstep => 0.0,
                Pacing::Exponential { .. } => engine.next_wait(),
            };
            engine.heap.push(t0, robot, EventKind::Look);
        }
        engine
    }
}

/// The event-heap ASYNC simulation engine.
///
/// # Example
///
/// ```
/// use gather_sim::async_engine::{AsyncEngine, Pacing, Timing};
/// use gather_sim::prelude::*;
/// use gather_geom::Point;
///
/// struct GoToCentroid;
/// impl Algorithm for GoToCentroid {
///     fn name(&self) -> &'static str { "centroid" }
///     fn destination(&self, snap: &Snapshot) -> Point {
///         gather_geom::centroid(snap.config().points())
///     }
/// }
///
/// let mut engine = AsyncEngine::builder(vec![
///         Point::new(0.0, 0.0), Point::new(2.0, 0.0), Point::new(1.0, 2.0),
///     ])
///     .algorithm(GoToCentroid)
///     .timing(Timing::Phased { compute_time: 0.2, speed: 1.0 })
///     .pacing(Pacing::Exponential { rate: 1.0, seed: 7 })
///     .check_invariants(false)
///     .build();
/// assert!(engine.run(50_000).gathered());
/// ```
pub struct AsyncEngine {
    positions: Vec<Point>,
    alive: Vec<bool>,
    /// Completed ticks (event batches that did work) — the async analogue
    /// of the round counter: crash plans, traces and run budgets all see
    /// it as `round`.
    tick: u64,
    core: StepCore,
    timing: Timing,
    pacing: Pacing,
    rigidity: Rigidity,
    pacing_rng: Option<Rng>,
    rigidity_rng: Option<Rng>,
    speeds: Vec<f64>,
    phase: Vec<RobotPhase>,
    /// Per-robot generation counters; bumping one tombstones every pending
    /// `ComputeDone`/`MoveDone` the robot has in the heap.
    gen: Vec<u64>,
    views: Vec<LookView>,
    /// Bumped whenever canonical positions change; a stored Look whose
    /// version still matches is provably fresh.
    config_version: u64,
    heap: EventHeap,
    batch: Vec<crate::events::Event>,
    events_processed: u64,
    trace: Trace,
    violations: Vec<String>,
    scratch: Scratch,
    last_record: RoundRecord,
}

impl AsyncEngine {
    /// Starts building an async engine over the given initial positions.
    pub fn builder(initial: Vec<Point>) -> AsyncEngineBuilder {
        AsyncEngineBuilder {
            initial,
            algorithm: None,
            crash_plan: Box::new(NoCrashes),
            motion: Box::new(FullMotion),
            frames: FramePolicy::default(),
            tol: Tol::default(),
            delta: 0.01,
            timing: Timing::Atomic,
            pacing: Pacing::Lockstep,
            rigidity: Rigidity::Rigid,
            speed_skew: 0.0,
            speed_seed: 0,
            check_invariants: true,
            shared_analysis: true,
            warm_start: true,
            trace_capacity: None,
            recycled: None,
        }
    }

    /// Retires the engine and hands back its reusable buffers.
    pub fn into_parts(self) -> EngineParts {
        EngineParts {
            scratch: self.scratch,
            analysis_cache: self.core.analysis_cache,
        }
    }

    /// Completed tick count (the async `round()`).
    pub fn round(&self) -> u64 {
        self.tick
    }

    /// Total heap events popped so far (stale tombstones included — they
    /// were real scheduling work).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Current (canonical) robot positions, indexed by robot.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Liveness flags, indexed by robot.
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// Is robot `i` currently at rest (idle, computing, or crashed) rather
    /// than mid-flight? Scenario-family invariant checkers (the grid
    /// family's ℤ² audit) use this to audit only settled positions:
    /// a robot mid-edge is legitimate continuous motion, a *resting*
    /// off-lattice robot is a model violation.
    pub fn at_rest(&self, i: usize) -> bool {
        !matches!(self.phase[i], RobotPhase::Moving { .. })
    }

    /// The execution trace so far (one record per tick).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Invariant violations detected so far.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Cumulative analysis-cache counters `(computed, hits, dirty_skips)`.
    pub fn analysis_cache_stats(&self) -> (u64, u64, u64) {
        (
            self.core.analysis_cache.computed(),
            self.core.analysis_cache.hits(),
            self.core.analysis_cache.dirty_skips(),
        )
    }

    /// Draws the gap to a robot's next Look.
    fn next_wait(&mut self) -> f64 {
        match self.pacing {
            Pacing::Lockstep => 1.0,
            Pacing::Exponential { rate, .. } => {
                let u = self
                    .pacing_rng
                    .as_mut()
                    .expect("exponential pacing carries an RNG")
                    .next_f64();
                // u ∈ [0, 1) ⇒ 1 − u ∈ (0, 1] ⇒ the sample is finite, ≥ 0.
                -(1.0 - u).ln() / rate
            }
        }
    }

    /// The `GATHERED` predicate in the ASYNC model: all live robots at one
    /// location, nobody in flight, no pending Compute on a stale snapshot
    /// (a stale compute could still order a move away), and the algorithm
    /// instructs that location to stay.
    pub fn is_gathered(&mut self) -> bool {
        let tol = self.core.tol;
        let Some(first) = (0..self.positions.len())
            .find(|i| self.alive[*i])
            .map(|i| self.positions[i])
        else {
            return false;
        };
        let all_together = (0..self.positions.len())
            .filter(|i| self.alive[*i])
            .all(|i| self.positions[i].within(first, tol.snap));
        if !all_together {
            return false;
        }
        for i in 0..self.positions.len() {
            if !self.alive[i] {
                continue;
            }
            match self.phase[i] {
                RobotPhase::Moving { .. } => return false,
                RobotPhase::Computing => {
                    if self.views[i].version != self.config_version {
                        return false;
                    }
                }
                RobotPhase::Idle => {}
            }
        }
        let dest = self
            .core
            .destination_at(&self.positions, first, &mut self.scratch);
        dest.within(first, tol.snap)
    }

    /// Executes one tick — the next event batch that does real work —
    /// and returns its record. Returns `None` when the heap is empty
    /// (every robot crashed and no events remain).
    pub fn step(&mut self) -> Option<&RoundRecord> {
        loop {
            let mut batch = std::mem::take(&mut self.batch);
            let Some(now) = self.heap.pop_batch(&mut batch) else {
                self.batch = batch;
                return None;
            };
            self.events_processed += batch.len() as u64;
            // Drop events tombstoned in *earlier* ticks (generation bumps
            // and deaths). Same-tick cancellations are handled in the
            // phases below, after this tick's crashes are known.
            batch.retain(|e| {
                self.alive[e.robot]
                    && match e.kind {
                        EventKind::Look => true,
                        EventKind::ComputeDone { gen } | EventKind::MoveDone { gen } => {
                            gen == self.gen[e.robot]
                        }
                    }
            });
            if batch.is_empty() {
                // An all-stale batch is pure bookkeeping, not a tick.
                self.batch = batch;
                continue;
            }
            let record_ready = self.process_batch(now, &batch);
            self.batch = batch;
            if record_ready {
                return Some(&self.last_record);
            }
        }
    }

    /// Processes one non-empty batch at time `now`. Always completes a
    /// tick (returns `true`); split out of [`AsyncEngine::step`] so the
    /// batch buffer can be lent immutably while `self` stays mutable.
    fn process_batch(&mut self, now: f64, batch: &[crate::events::Event]) -> bool {
        let classify_before = classify_invocations();
        let weiszfeld_before = weiszfeld_iterations();
        let hits_before = self.core.analysis_cache.hits();
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut travel = 0.0;

        // Phase A — materialise in-flight motion up to `now`: arrivals in
        // this batch land exactly on their destinations, everyone else
        // advances along their raw segment, and (under a non-rigid
        // adversary) still-flying robots may be stopped, never before δ
        // progress. Only `Timing::Phased` ever has robots in flight.
        let mut any_moved = false;
        if matches!(self.timing, Timing::Phased { .. }) {
            scratch.new_positions.clear();
            scratch.new_positions.extend_from_slice(&self.positions);
            for i in 0..self.phase.len() {
                let RobotPhase::Moving {
                    from,
                    dest,
                    arrive,
                    progressed,
                } = self.phase[i]
                else {
                    continue;
                };
                let total = from.dist(dest);
                let frac = if arrive <= now {
                    1.0
                } else {
                    // arrive > now ⇒ still flying; progress is elapsed
                    // flight time over total duration (both positive).
                    let duration = total / self.speed_of(i);
                    ((duration - (arrive - now)) / duration).clamp(0.0, 1.0)
                };
                let here = from.lerp(dest, frac);
                let mut stop_here = arrive <= now;
                if !stop_here {
                    if let Rigidity::NonRigid { stop_prob, .. } = self.rigidity {
                        let coin = self
                            .rigidity_rng
                            .as_mut()
                            .expect("non-rigid carries an RNG")
                            .random_bool(stop_prob);
                        if coin {
                            stop_here = true;
                        }
                    }
                }
                let (next_point, landed) = if arrive <= now {
                    (dest, true)
                } else if stop_here {
                    // δ floor: the adversary stops the robot where it is,
                    // but never short of δ progress (a segment shorter
                    // than δ completes outright) — apply_motion encodes
                    // exactly that rule.
                    let stopped =
                        apply_motion(from, dest, frac.max(f64::MIN_POSITIVE), self.core.delta);
                    (stopped, true)
                } else {
                    (here, false)
                };
                if next_point != progressed {
                    travel += progressed.dist(next_point);
                    scratch.new_positions[i] = next_point;
                    any_moved = true;
                }
                if landed {
                    self.gen[i] += 1; // tombstone the pending MoveDone (no-op for arrivals)
                    self.phase[i] = RobotPhase::Idle;
                    let wait = self.next_wait();
                    self.heap.push(now + wait, i, EventKind::Look);
                } else {
                    self.phase[i] = RobotPhase::Moving {
                        from,
                        dest,
                        arrive,
                        progressed: next_point,
                    };
                }
            }
            if any_moved {
                self.core.stage_apply(&self.positions, &mut scratch);
                std::mem::swap(&mut self.positions, &mut scratch.canon_out);
                self.config_version += 1;
            }
        }

        // Phase B — one shared look at the (possibly just-advanced)
        // configuration: classification, distinct locations, crashes.
        // Crashing tombstones a robot's pending events; a crashed flyer is
        // frozen where phase A just put it, a crashed computer never moves
        // — "crashed between Look and Move".
        scratch.config.copy_from_slice(&self.positions);
        let (shared, class) = self.core.stage_classify(&scratch);
        self.core.stage_distinct(&mut scratch);
        self.core
            .stage_crashes(self.tick, &mut self.alive, &mut scratch);
        for k in 0..scratch.crashed_now.len() {
            let victim = scratch.crashed_now[k];
            self.gen[victim] += 1;
            self.phase[victim] = RobotPhase::Idle;
        }

        // Phase C — Compute completions: each robot computes on the
        // snapshot it Looked at. A still-fresh view (configuration version
        // unchanged) rides the shared analysis carried into the robot's
        // frame; a stale view is honestly re-classified by the algorithm.
        for event in batch {
            let EventKind::ComputeDone { gen } = event.kind else {
                continue;
            };
            let i = event.robot;
            if !self.alive[i] || gen != self.gen[i] {
                continue; // crashed this tick (or stale)
            }
            let me = self.positions[i];
            let view = &self.views[i];
            let local_dest = {
                let snap = match &shared {
                    Some(ra) if view.version == self.config_version => {
                        Snapshot::with_analysis_borrowed(
                            &view.local,
                            view.me_local,
                            ra.map_target(|t| view.frame.apply(t)).analysis,
                        )
                    }
                    _ => Snapshot::borrowed(&view.local, view.me_local),
                };
                self.core.algorithm.destination(&snap)
            };
            let dest = view.frame.inverse().apply(local_dest);
            // Footnote 2: destination == current position ⇒ do not move.
            if dest.within(me, self.core.tol.abs) {
                self.phase[i] = RobotPhase::Idle;
                let wait = self.next_wait();
                self.heap.push(now + wait, i, EventKind::Look);
                continue;
            }
            let Timing::Phased { speed, .. } = self.timing else {
                unreachable!("ComputeDone events exist only under phased timing");
            };
            let duration = me.dist(dest) / (speed * self.speeds[i]);
            let arrive = now + duration;
            self.phase[i] = RobotPhase::Moving {
                from: me,
                dest,
                arrive,
                progressed: me,
            };
            self.heap
                .push(arrive, i, EventKind::MoveDone { gen: self.gen[i] });
        }

        // Phase D — Looks. Atomic timing runs whole LCM cycles through the
        // very same StepCore stages as the round engine (the degeneracy
        // contract); phased timing stores each looker's snapshot and
        // schedules its ComputeDone.
        scratch.activated.clear();
        for event in batch {
            if event.kind == EventKind::Look && self.alive[event.robot] {
                scratch.activated.push(event.robot);
            }
        }
        scratch.activated.sort_unstable();
        scratch.activated.dedup();
        match self.timing {
            Timing::Atomic => {
                if !scratch.activated.is_empty() {
                    travel += self.core.stage_moves(
                        self.tick,
                        &self.positions,
                        &mut [],
                        None,
                        shared.as_ref(),
                        true,
                        &mut scratch,
                    );
                    self.core.stage_apply(&self.positions, &mut scratch);
                    std::mem::swap(&mut self.positions, &mut scratch.canon_out);
                    self.config_version += 1;
                    for k in 0..scratch.activated.len() {
                        let i = scratch.activated[k];
                        let wait = self.next_wait();
                        self.heap.push(now + wait, i, EventKind::Look);
                    }
                }
            }
            Timing::Phased { compute_time, .. } => {
                for k in 0..scratch.activated.len() {
                    let i = scratch.activated[k];
                    let me = self.positions[i];
                    let frame = self.core.frame_source.frame_for(me);
                    let view = &mut self.views[i];
                    view.local.copy_from(&scratch.config);
                    view.local.set_point(i, me);
                    view.local.map_in_place(|p| frame.apply(p));
                    view.me_local = frame.apply(me);
                    view.frame = frame;
                    view.version = self.config_version;
                    self.phase[i] = RobotPhase::Computing;
                    self.heap.push(
                        now + compute_time,
                        i,
                        EventKind::ComputeDone { gen: self.gen[i] },
                    );
                }
            }
        }

        // Phase E — invariant audits (identical stage to the round engine).
        if self.core.check_invariants {
            self.core.stage_audits(
                self.tick,
                &self.positions,
                shared.as_ref(),
                &mut scratch,
                &mut self.violations,
            );
        }

        // Phase F — the tick's trace record, field-compatible with the
        // round engine's (tick index as `round`, lookers as `activated`).
        let record = &mut self.last_record;
        record.round = self.tick;
        record.class = class;
        record.distinct = scratch.distinct.len();
        record.max_mult = scratch.distinct.iter().map(|(_, m)| *m).max().unwrap_or(0);
        record.activated.clone_from(&scratch.activated);
        record.crashed.clone_from(&scratch.crashed_now);
        record.travel = travel;
        record.classifications = classify_invocations() - classify_before;
        record.cache_hits = self.core.analysis_cache.hits() - hits_before;
        record.weiszfeld_iters = weiszfeld_iterations() - weiszfeld_before;
        self.trace.push_cloned(&self.last_record);
        self.tick += 1;
        self.scratch = scratch;
        true
    }

    /// Per-robot travel speed (base × multiplier).
    fn speed_of(&self, i: usize) -> f64 {
        match self.timing {
            Timing::Phased { speed, .. } => speed * self.speeds[i],
            Timing::Atomic => f64::INFINITY,
        }
    }

    /// Runs until the `GATHERED` predicate holds, `max_ticks` ticks have
    /// executed, or the event heap drains (all robots crashed).
    pub fn run(&mut self, max_ticks: u64) -> RunOutcome {
        loop {
            if self.is_gathered() {
                let point = (0..self.positions.len())
                    .find(|i| self.alive[*i])
                    .map(|i| self.positions[i])
                    .expect("gathered implies a live robot");
                return RunOutcome::Gathered {
                    round: self.tick,
                    point,
                };
            }
            if self.tick >= max_ticks {
                return RunOutcome::RoundLimit { rounds: self.tick };
            }
            if self.step().is_none() {
                return RunOutcome::RoundLimit { rounds: self.tick };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::CrashAtRounds;
    use crate::engine::Engine;

    struct GoToCentroid;
    impl Algorithm for GoToCentroid {
        fn name(&self) -> &'static str {
            "centroid"
        }
        fn destination(&self, snap: &Snapshot) -> Point {
            gather_geom::centroid(snap.config().points())
        }
    }

    fn square() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ]
    }

    #[test]
    fn degenerate_mode_is_bit_identical_to_the_round_engine() {
        let mut sync = Engine::builder(square())
            .algorithm(GoToCentroid)
            .check_invariants(false)
            .build();
        let mut async_eng = AsyncEngine::builder(square())
            .algorithm(GoToCentroid)
            .check_invariants(false)
            .build();
        let a = sync.run(300);
        let b = async_eng.run(300);
        assert_eq!(a, b);
        assert_eq!(sync.positions(), async_eng.positions());
        assert_eq!(sync.trace().to_jsonl(), async_eng.trace().to_jsonl());
        assert_eq!(
            sync.analysis_cache_stats(),
            async_eng.analysis_cache_stats()
        );
    }

    #[test]
    fn degenerate_mode_matches_under_crashes() {
        let mut sync = Engine::builder(square())
            .algorithm(GoToCentroid)
            .crash_plan(CrashAtRounds::at_start([1]))
            .check_invariants(false)
            .build();
        let mut async_eng = AsyncEngine::builder(square())
            .algorithm(GoToCentroid)
            .crash_plan(CrashAtRounds::at_start([1]))
            .check_invariants(false)
            .build();
        assert_eq!(sync.run(300), async_eng.run(300));
        assert_eq!(sync.trace().to_jsonl(), async_eng.trace().to_jsonl());
        assert_eq!(sync.alive(), async_eng.alive());
    }

    #[test]
    fn phased_execution_gathers_and_counts_events() {
        let mut e = AsyncEngine::builder(square())
            .algorithm(GoToCentroid)
            .timing(Timing::Phased {
                compute_time: 0.25,
                speed: 1.0,
            })
            .pacing(Pacing::Exponential { rate: 1.0, seed: 3 })
            .check_invariants(false)
            .build();
        let outcome = e.run(100_000);
        assert!(outcome.gathered(), "outcome: {outcome:?}");
        // A full LCM cycle is 3 events per robot; a gathered run must have
        // processed at least one cycle per robot.
        assert!(e.events_processed() >= 12);
        assert_eq!(e.trace().len() as u64, e.round());
    }

    #[test]
    fn phased_execution_is_deterministic_per_seed() {
        let run = || {
            let mut e = AsyncEngine::builder(square())
                .algorithm(GoToCentroid)
                .timing(Timing::Phased {
                    compute_time: 0.1,
                    speed: 2.0,
                })
                .pacing(Pacing::Exponential { rate: 1.5, seed: 9 })
                .rigidity(Rigidity::NonRigid {
                    stop_prob: 0.3,
                    seed: 11,
                })
                .speed_skew(1.0, 13)
                .check_invariants(false)
                .build();
            let outcome = e.run(100_000);
            (outcome, e.trace().to_jsonl(), e.events_processed())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn non_rigid_stops_respect_delta_progress() {
        // One robot far from the centroid, huge stop probability, large δ:
        // every materialised stop must land at least δ from the departure
        // point (or at the destination).
        let mut e = AsyncEngine::builder(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 10.0),
        ])
        .algorithm(GoToCentroid)
        .timing(Timing::Phased {
            compute_time: 0.1,
            speed: 0.5,
        })
        .pacing(Pacing::Exponential { rate: 4.0, seed: 1 })
        .rigidity(Rigidity::NonRigid {
            stop_prob: 0.9,
            seed: 2,
        })
        .delta(0.5)
        .check_invariants(false)
        .build();
        // Track per-tick travel: any tick's travel by a single stopping
        // robot is bounded below by δ only at the stop itself; instead we
        // assert the run still converges (δ progress forbids livelock).
        let outcome = e.run(100_000);
        assert!(outcome.gathered(), "outcome: {outcome:?}");
    }

    #[test]
    fn crashed_between_look_and_move_never_moves() {
        // Robot 0 Looks at tick 0 (Computing), crashes at tick 1 before
        // its ComputeDone fires: it must stay at its initial position
        // forever while the others still gather around somewhere.
        let initial = vec![
            Point::new(0.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(3.0, 5.0),
        ];
        let mut e = AsyncEngine::builder(initial.clone())
            .algorithm(GoToCentroid)
            .timing(Timing::Phased {
                compute_time: 10.0, // long compute: the crash lands inside it
                speed: 1.0,
            })
            .crash_plan(CrashAtRounds::at_start([0]))
            .check_invariants(false)
            .build();
        let _ = e.run(50_000);
        assert!(!e.alive()[0]);
        assert_eq!(e.positions()[0], initial[0]);
    }

    #[test]
    fn empty_heap_ends_the_run() {
        // Everyone crashes at tick 0; pending Looks are consumed and
        // nothing is rescheduled, so the heap drains.
        let mut e = AsyncEngine::builder(square())
            .algorithm(GoToCentroid)
            .crash_plan(CrashAtRounds::at_start([0, 1, 2, 3]))
            .check_invariants(false)
            .build();
        let outcome = e.run(1_000);
        assert!(!outcome.gathered());
        assert!(outcome.rounds() < 1_000);
    }

    #[test]
    fn at_rest_tracks_flight_state() {
        let mut e = AsyncEngine::builder(square())
            .algorithm(GoToCentroid)
            .timing(Timing::Phased {
                compute_time: 0.0,
                speed: 0.01, // very slow: robots stay in flight a long time
            })
            // A global frame keeps the four symmetric flights bit-equal in
            // duration, so all arrivals share one batch.
            .frames(FramePolicy::GlobalFrame)
            .check_invariants(false)
            .build();
        assert!((0..4).all(|i| e.at_rest(i)));
        // Tick 0: all Look (Computing is at-rest). Tick 1: ComputeDone —
        // everyone departs toward the centroid and stays in flight until
        // the far-future MoveDone batch.
        let _ = e.step();
        assert!((0..4).all(|i| e.at_rest(i)));
        let _ = e.step();
        assert!((0..4).all(|i| !e.at_rest(i)), "everyone should be flying");
        // The next batch is the arrivals: all at rest again.
        let _ = e.step();
        assert!((0..4).all(|i| e.at_rest(i)));
    }

    #[test]
    fn recycled_parts_do_not_change_results() {
        let reference = {
            let mut e = AsyncEngine::builder(square())
                .algorithm(GoToCentroid)
                .pacing(Pacing::Exponential { rate: 1.0, seed: 5 })
                .check_invariants(false)
                .build();
            let outcome = e.run(5_000);
            (outcome, e.trace().to_jsonl())
        };
        // Warm the parts on an unrelated run, then recycle.
        let parts = {
            let mut e = AsyncEngine::builder(vec![Point::new(1.0, 1.0), Point::new(2.0, 5.0)])
                .algorithm(GoToCentroid)
                .check_invariants(false)
                .build();
            let _ = e.run(50);
            e.into_parts()
        };
        let mut e = AsyncEngine::builder(square())
            .algorithm(GoToCentroid)
            .pacing(Pacing::Exponential { rate: 1.0, seed: 5 })
            .check_invariants(false)
            .recycle(parts)
            .build();
        let outcome = e.run(5_000);
        assert_eq!((outcome, e.trace().to_jsonl()), reference);
    }
}
