//! Snapshots: what a robot sees during its LOOK phase.

use gather_config::Configuration;
use gather_geom::Point;

/// The complete observation a robot obtains in its LOOK phase: the
/// positions of all robots (with strong multiplicity — co-located robots
/// have identical coordinates) expressed in the observing robot's own
/// coordinate frame, plus the observer's own position in that frame.
///
/// Snapshots carry no identities, no velocities, no history and no global
/// orientation: exactly the information the paper's model grants. The
/// observer cannot tell which robots are crashed.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    config: Configuration,
    me: Point,
}

impl Snapshot {
    /// Creates a snapshot from an observed configuration and the observer's
    /// own position within it.
    ///
    /// # Panics
    ///
    /// Panics if no robot of `config` is located at `me` — the observer
    /// always sees itself.
    pub fn new(config: Configuration, me: Point) -> Self {
        assert!(
            config.points().iter().any(|p| *p == me),
            "observer position {me} not present in the observed configuration"
        );
        Snapshot { config, me }
    }

    /// The observed configuration (in the observer's frame).
    pub fn config(&self) -> &Configuration {
        &self.config
    }

    /// The observer's own position (in the observer's frame).
    pub fn me(&self) -> Point {
        self.me
    }

    /// Total number of robots `n`.
    pub fn n(&self) -> usize {
        self.config.len()
    }
}

impl std::fmt::Display for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Snapshot {{ me: {}, {} }}", self.me, self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_exposes_config_and_self() {
        let c = Configuration::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
        let s = Snapshot::new(c.clone(), Point::new(1.0, 0.0));
        assert_eq!(s.n(), 2);
        assert_eq!(s.me(), Point::new(1.0, 0.0));
        assert_eq!(s.config(), &c);
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn observer_must_be_in_configuration() {
        let c = Configuration::new(vec![Point::new(0.0, 0.0)]);
        let _ = Snapshot::new(c, Point::new(5.0, 5.0));
    }
}
