//! Snapshots: what a robot sees during its LOOK phase.

use gather_config::{Analysis, Configuration};
use gather_geom::Point;
use std::borrow::Cow;

/// The complete observation a robot obtains in its LOOK phase: the
/// positions of all robots (with strong multiplicity — co-located robots
/// have identical coordinates) expressed in the observing robot's own
/// coordinate frame, plus the observer's own position in that frame.
///
/// Snapshots carry no identities, no velocities, no history and no global
/// orientation: exactly the information the paper's model grants. The
/// observer cannot tell which robots are crashed.
///
/// The configuration is held copy-on-write: the engine's round loop lends
/// its scratch buffers out as borrowed snapshots (no deep clone per robot
/// per round), while hand-built snapshots own their configuration as
/// before. Algorithms only ever read through [`Snapshot::config`], so the
/// two are indistinguishable to them.
///
/// A snapshot may additionally carry the configuration's [`Analysis`]
/// (class, `n`, movement target), already expressed in the snapshot's
/// frame. This is a pure *performance* channel: the analysis is a function
/// of the observed configuration, so carrying it grants the algorithm no
/// information it could not compute itself — it only spares recomputing an
/// identical classification once per robot per round (the engine computes
/// it once and frame-transforms the target; see `gather_config::analysis`).
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot<'a> {
    config: Cow<'a, Configuration>,
    me: Point,
    analysis: Option<Analysis>,
}

impl<'a> Snapshot<'a> {
    /// Creates a snapshot from an observed configuration and the observer's
    /// own position within it.
    ///
    /// # Panics
    ///
    /// Panics if no robot of `config` is located at `me` — the observer
    /// always sees itself.
    pub fn new(config: Configuration, me: Point) -> Snapshot<'static> {
        assert!(
            config.points().contains(&me),
            "observer position {me} not present in the observed configuration"
        );
        Snapshot {
            config: Cow::Owned(config),
            me,
            analysis: None,
        }
    }

    /// Creates a snapshot *borrowing* the observed configuration — the
    /// engine's allocation-free path. Same contract as [`Snapshot::new`].
    ///
    /// # Panics
    ///
    /// Panics if no robot of `config` is located at `me`.
    pub fn borrowed(config: &'a Configuration, me: Point) -> Snapshot<'a> {
        assert!(
            config.points().contains(&me),
            "observer position {me} not present in the observed configuration"
        );
        Snapshot {
            config: Cow::Borrowed(config),
            me,
            analysis: None,
        }
    }

    /// Creates a snapshot that carries a precomputed analysis of `config`,
    /// expressed in the snapshot's own frame.
    ///
    /// # Panics
    ///
    /// Panics if the observer is not in `config`, or if `analysis.n`
    /// disagrees with the configuration size (the analysis must describe
    /// *this* configuration).
    pub fn with_analysis(
        config: Configuration,
        me: Point,
        analysis: Analysis,
    ) -> Snapshot<'static> {
        assert!(
            analysis.n == config.len(),
            "attached analysis describes {} robots, configuration has {}",
            analysis.n,
            config.len()
        );
        let mut snap = Snapshot::new(config, me);
        snap.analysis = Some(analysis);
        snap
    }

    /// [`Snapshot::with_analysis`] over a *borrowed* configuration — the
    /// engine's allocation-free path. Same panics.
    pub fn with_analysis_borrowed(
        config: &'a Configuration,
        me: Point,
        analysis: Analysis,
    ) -> Snapshot<'a> {
        assert!(
            analysis.n == config.len(),
            "attached analysis describes {} robots, configuration has {}",
            analysis.n,
            config.len()
        );
        let mut snap = Snapshot::borrowed(config, me);
        snap.analysis = Some(analysis);
        snap
    }

    /// The observed configuration (in the observer's frame).
    pub fn config(&self) -> &Configuration {
        &self.config
    }

    /// The observer's own position (in the observer's frame).
    pub fn me(&self) -> Point {
        self.me
    }

    /// Total number of robots `n`.
    pub fn n(&self) -> usize {
        self.config.len()
    }

    /// The precomputed analysis of the observed configuration (in the
    /// snapshot's frame), when the snapshot's producer attached one.
    /// Algorithms fall back to classifying [`Self::config`] themselves when
    /// absent — hand-built snapshots behave exactly as before.
    pub fn analysis(&self) -> Option<&Analysis> {
        self.analysis.as_ref()
    }
}

impl std::fmt::Display for Snapshot<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Snapshot {{ me: {}, {} }}", self.me, self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gather_config::classify;
    use gather_geom::Tol;

    #[test]
    fn snapshot_exposes_config_and_self() {
        let c = Configuration::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
        let s = Snapshot::new(c.clone(), Point::new(1.0, 0.0));
        assert_eq!(s.n(), 2);
        assert_eq!(s.me(), Point::new(1.0, 0.0));
        assert_eq!(s.config(), &c);
        assert!(s.analysis().is_none());
    }

    #[test]
    fn borrowed_snapshot_matches_owned() {
        let c = Configuration::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
        let owned = Snapshot::new(c.clone(), Point::new(0.0, 0.0));
        let borrowed = Snapshot::borrowed(&c, Point::new(0.0, 0.0));
        assert_eq!(owned, borrowed);
        assert_eq!(borrowed.config(), &c);
        assert_eq!(borrowed.n(), 2);
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn observer_must_be_in_configuration() {
        let c = Configuration::new(vec![Point::new(0.0, 0.0)]);
        let _ = Snapshot::new(c, Point::new(5.0, 5.0));
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn borrowed_observer_must_be_in_configuration() {
        let c = Configuration::new(vec![Point::new(0.0, 0.0)]);
        let _ = Snapshot::borrowed(&c, Point::new(5.0, 5.0));
    }

    #[test]
    fn with_analysis_carries_the_analysis() {
        let c = Configuration::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
        let a = classify(&c, Tol::default());
        let s = Snapshot::with_analysis(c.clone(), Point::new(0.0, 0.0), a);
        assert_eq!(s.analysis(), Some(&a));
        let b = Snapshot::with_analysis_borrowed(&c, Point::new(0.0, 0.0), a);
        assert_eq!(b.analysis(), Some(&a));
    }

    #[test]
    #[should_panic(expected = "attached analysis")]
    fn with_analysis_rejects_mismatched_size() {
        let c = Configuration::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
        let a = classify(&c, Tol::default());
        let bigger = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ]);
        let _ = Snapshot::with_analysis(bigger, Point::new(0.0, 0.0), a);
    }
}
