//! Run summaries for experiment tables.

use crate::engine::RunOutcome;
use crate::trace::Trace;
use gather_config::Class;
use std::collections::BTreeMap;

/// Aggregated metrics of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Did the run gather?
    pub gathered: bool,
    /// Rounds until gathering, or rounds executed if it did not gather.
    pub rounds: u64,
    /// Total distance travelled by all robots.
    pub total_travel: f64,
    /// Rounds spent per configuration class.
    pub class_rounds: BTreeMap<Class, u64>,
    /// Distinct classes visited, in first-visit order.
    pub class_sequence: Vec<Class>,
    /// Class transitions observed (self-loops excluded).
    pub transitions: BTreeMap<(Class, Class), u64>,
    /// Total `classify()` invocations over the run (shared-analysis
    /// computes, algorithm fallbacks and audits combined).
    pub classifications: u64,
    /// Total analysis-cache hits over the run.
    pub cache_hits: u64,
    /// Total Weiszfeld solver iterations over the run.
    pub weiszfeld_iters: u64,
}

/// Summarises an outcome and its trace into one metrics record.
///
/// # Example
///
/// ```
/// use gather_sim::metrics::summarize;
/// use gather_sim::{RunOutcome, Trace};
/// use gather_geom::Point;
///
/// let m = summarize(
///     RunOutcome::Gathered { round: 3, point: Point::ORIGIN },
///     &Trace::new(),
/// );
/// assert!(m.gathered);
/// assert_eq!(m.rounds, 3);
/// ```
pub fn summarize(outcome: RunOutcome, trace: &Trace) -> RunMetrics {
    RunMetrics {
        gathered: outcome.gathered(),
        rounds: outcome.rounds(),
        total_travel: trace.total_travel(),
        class_rounds: trace.class_histogram(),
        class_sequence: trace.class_sequence(),
        transitions: trace.class_transitions(),
        classifications: trace.total_classifications(),
        cache_hits: trace.total_cache_hits(),
        weiszfeld_iters: trace.total_weiszfeld_iters(),
    }
}

impl RunMetrics {
    /// Mean Weiszfeld solver iterations per executed round — the
    /// convergence-cost curve the F4/F6 runners plot (0 for a run with no
    /// rounds). Per-round values live in the trace's [`RoundRecord`]s.
    ///
    /// [`RoundRecord`]: crate::trace::RoundRecord
    pub fn weiszfeld_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.weiszfeld_iters as f64 / self.rounds as f64
        }
    }
}

impl std::fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} in {} rounds, travel {:.3}, classes ",
            if self.gathered {
                "gathered"
            } else {
                "NOT gathered"
            },
            self.rounds,
            self.total_travel,
        )?;
        for (i, c) in self.class_sequence.iter().enumerate() {
            if i > 0 {
                write!(f, "→")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::RoundRecord;
    use gather_geom::Point;

    #[test]
    fn summary_aggregates_trace() {
        let mut t = Trace::new();
        for (i, c) in [Class::Asymmetric, Class::Multiple].iter().enumerate() {
            t.push(RoundRecord {
                round: i as u64,
                class: *c,
                distinct: 2,
                max_mult: 2,
                activated: vec![0, 1],
                crashed: vec![],
                travel: 2.5,
                classifications: 2,
                cache_hits: 1,
                weiszfeld_iters: 7,
            });
        }
        let m = summarize(
            RunOutcome::Gathered {
                round: 2,
                point: Point::ORIGIN,
            },
            &t,
        );
        assert!(m.gathered);
        assert_eq!(m.rounds, 2);
        assert_eq!(m.total_travel, 5.0);
        assert_eq!(m.class_sequence, vec![Class::Asymmetric, Class::Multiple]);
        assert_eq!(m.transitions[&(Class::Asymmetric, Class::Multiple)], 1);
        assert_eq!(m.classifications, 4);
        assert_eq!(m.cache_hits, 2);
        assert_eq!(m.weiszfeld_iters, 14);
        assert_eq!(m.weiszfeld_per_round(), 7.0);
        let shown = format!("{m}");
        assert!(shown.contains("gathered"));
        assert!(shown.contains("A→M"));
    }

    #[test]
    fn round_limit_summary() {
        let m = summarize(RunOutcome::RoundLimit { rounds: 50 }, &Trace::new());
        assert!(!m.gathered);
        assert_eq!(m.rounds, 50);
        assert!(format!("{m}").contains("NOT gathered"));
    }
}
