//! Run summaries for experiment tables.

use crate::engine::RunOutcome;
use crate::trace::Trace;
use gather_config::Class;
use gather_obs::{Phase, PhaseNanos};
use std::collections::BTreeMap;

/// Cumulative analysis-cache counters of one run's engine: full
/// computations, memo hits, and the subset of hits served by an empty
/// dirty set on the incremental path (`dirty_skips <= hits`; always `0`
/// on the full-recompute reference path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Analyses computed from scratch or by patching.
    pub computed: u64,
    /// Analyses served from the memo.
    pub hits: u64,
    /// Memo hits proven valid by an empty dirty set (no robot moved).
    pub dirty_skips: u64,
}

/// Aggregated metrics of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Did the run gather?
    pub gathered: bool,
    /// Rounds until gathering, or rounds executed if it did not gather.
    pub rounds: u64,
    /// Total distance travelled by all robots.
    pub total_travel: f64,
    /// Rounds spent per configuration class.
    pub class_rounds: BTreeMap<Class, u64>,
    /// Distinct classes visited, in first-visit order.
    pub class_sequence: Vec<Class>,
    /// Class transitions observed (self-loops excluded).
    pub transitions: BTreeMap<(Class, Class), u64>,
    /// Total `classify()` invocations over the run (shared-analysis
    /// computes, algorithm fallbacks and audits combined).
    pub classifications: u64,
    /// Total analysis-cache hits over the run.
    pub cache_hits: u64,
    /// Total Weiszfeld solver iterations over the run.
    pub weiszfeld_iters: u64,
    /// End-of-run analysis-cache counters, when the producer attached them
    /// (the runner and the batch lanes do; a bare [`summarize`] leaves
    /// `None`). Like `phase_ns`, the column is serialized only when
    /// present, so pre-existing rows keep their exact byte format.
    pub analysis_cache: Option<CacheStats>,
    /// Total heap events processed, when the run executed on the
    /// event-driven [`AsyncEngine`] (stale tombstones included — the
    /// ASYNC analogue of "scheduler work done"); `None` for round-based
    /// runs, and serialized only when present like the other optional
    /// trailing columns.
    ///
    /// [`AsyncEngine`]: crate::async_engine::AsyncEngine
    pub async_events: Option<u64>,
    /// Accumulated per-phase wall-clock nanoseconds, when the run's engine
    /// carried an *enabled* observability handle (`Engine::phase_nanos`);
    /// `None` for untimed runs. Serialized only when present, so untimed
    /// metrics keep the exact pre-observability byte format — the serving
    /// layer's bit-identity contract is unaffected by this column.
    pub phase_ns: Option<PhaseNanos>,
}

/// Summarises an outcome and its trace into one metrics record.
///
/// # Example
///
/// ```
/// use gather_sim::metrics::summarize;
/// use gather_sim::prelude::{RunOutcome, Trace};
/// use gather_geom::Point;
///
/// let m = summarize(
///     RunOutcome::Gathered { round: 3, point: Point::ORIGIN },
///     &Trace::new(),
/// );
/// assert!(m.gathered);
/// assert_eq!(m.rounds, 3);
/// ```
pub fn summarize(outcome: RunOutcome, trace: &Trace) -> RunMetrics {
    RunMetrics {
        gathered: outcome.gathered(),
        rounds: outcome.rounds(),
        total_travel: trace.total_travel(),
        class_rounds: trace.class_histogram(),
        class_sequence: trace.class_sequence(),
        transitions: trace.class_transitions(),
        classifications: trace.total_classifications(),
        cache_hits: trace.total_cache_hits(),
        weiszfeld_iters: trace.total_weiszfeld_iters(),
        analysis_cache: None,
        async_events: None,
        phase_ns: None,
    }
}

/// Fixed-order cursor over a JSONL line; the grammar is exactly the output
/// of [`RunMetrics::to_jsonl`], so parsing needs no generic JSON machinery.
struct Cursor<'a> {
    s: &'a str,
    i: usize,
}

impl<'a> Cursor<'a> {
    fn eat(&mut self, tok: &str) -> Result<(), String> {
        if self.s[self.i..].starts_with(tok) {
            self.i += tok.len();
            Ok(())
        } else {
            Err(format!(
                "expected {tok:?} at byte {} of {:?}",
                self.i, self.s
            ))
        }
    }

    fn peek(&self) -> Option<char> {
        self.s[self.i..].chars().next()
    }

    fn take_while(&mut self, pred: impl Fn(char) -> bool) -> &'a str {
        let rest = &self.s[self.i..];
        let end = rest.find(|c| !pred(c)).unwrap_or(rest.len());
        self.i += end;
        &rest[..end]
    }

    fn bool(&mut self) -> Result<bool, String> {
        if self.eat("true").is_ok() {
            Ok(true)
        } else if self.eat("false").is_ok() {
            Ok(false)
        } else {
            Err(format!("expected a bool at byte {}", self.i))
        }
    }

    fn u64(&mut self) -> Result<u64, String> {
        let digits = self.take_while(|c| c.is_ascii_digit());
        digits
            .parse()
            .map_err(|e| format!("bad integer {digits:?}: {e}"))
    }

    fn f64(&mut self) -> Result<f64, String> {
        let num = self.take_while(|c| c.is_ascii_digit() || "+-.eE".contains(c));
        num.parse().map_err(|e| format!("bad number {num:?}: {e}"))
    }

    fn class(&mut self) -> Result<Class, String> {
        self.eat("\"")?;
        let name = self.take_while(|c| c != '"');
        let class =
            Class::from_short_name(name).ok_or_else(|| format!("unknown class {name:?}"))?;
        self.eat("\"")?;
        Ok(class)
    }
}

impl RunMetrics {
    /// Serialises the record as one JSON line (no interior newline) — the
    /// JSONL row format shared by the experiment tooling and the serving
    /// layer's response/metrics endpoints.
    ///
    /// The encoding is **deterministic and byte-exact**: map entries are
    /// emitted in `BTreeMap` (class-priority) order and floats use Rust's
    /// shortest round-trip formatting, so equal metrics always produce
    /// identical bytes and [`RunMetrics::from_jsonl`] recovers the value
    /// bit-for-bit. The serving layer's bit-identical-response contract
    /// (DESIGN.md §11) rests on this.
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write;
        let mut s = String::with_capacity(256);
        write!(
            s,
            "{{\"gathered\":{},\"rounds\":{},\"total_travel\":{:?}",
            self.gathered, self.rounds, self.total_travel
        )
        .expect("write to String");
        s.push_str(",\"class_rounds\":{");
        for (i, (class, rounds)) in self.class_rounds.iter().enumerate() {
            write!(
                s,
                "{}\"{}\":{}",
                if i > 0 { "," } else { "" },
                class.short_name(),
                rounds
            )
            .expect("write to String");
        }
        s.push_str("},\"class_sequence\":[");
        for (i, class) in self.class_sequence.iter().enumerate() {
            write!(
                s,
                "{}\"{}\"",
                if i > 0 { "," } else { "" },
                class.short_name()
            )
            .expect("write to String");
        }
        s.push_str("],\"transitions\":[");
        for (i, ((from, to), count)) in self.transitions.iter().enumerate() {
            write!(
                s,
                "{}[\"{}\",\"{}\",{}]",
                if i > 0 { "," } else { "" },
                from.short_name(),
                to.short_name(),
                count
            )
            .expect("write to String");
        }
        write!(
            s,
            "],\"classifications\":{},\"cache_hits\":{},\"weiszfeld_iters\":{}",
            self.classifications, self.cache_hits, self.weiszfeld_iters
        )
        .expect("write to String");
        // Optional cache-counter column: present only when the producer
        // attached end-of-run cache stats.
        if let Some(cs) = &self.analysis_cache {
            write!(
                s,
                ",\"analysis_cache\":{{\"computed\":{},\"hits\":{},\"dirty_skips\":{}}}",
                cs.computed, cs.hits, cs.dirty_skips
            )
            .expect("write to String");
        }
        // Optional ASYNC-engine column: present only when the run executed
        // on the event heap.
        if let Some(events) = self.async_events {
            write!(s, ",\"async_events\":{events}").expect("write to String");
        }
        // Optional phase-timing column: present only for instrumented runs
        // (non-deterministic wall-clock data never enters the byte-exact
        // default format).
        if let Some(phase_ns) = &self.phase_ns {
            s.push_str(",\"phase_ns\":");
            phase_ns.write_json(&mut s);
        }
        s.push('}');
        s
    }

    /// Parses a line produced by [`RunMetrics::to_jsonl`] (trailing
    /// whitespace tolerated).
    ///
    /// # Errors
    ///
    /// Returns a description of the first deviation from the JSONL grammar.
    pub fn from_jsonl(line: &str) -> Result<RunMetrics, String> {
        let mut c = Cursor { s: line, i: 0 };
        c.eat("{\"gathered\":")?;
        let gathered = c.bool()?;
        c.eat(",\"rounds\":")?;
        let rounds = c.u64()?;
        c.eat(",\"total_travel\":")?;
        let total_travel = c.f64()?;
        c.eat(",\"class_rounds\":{")?;
        let mut class_rounds = BTreeMap::new();
        while c.peek() != Some('}') {
            if !class_rounds.is_empty() {
                c.eat(",")?;
            }
            let class = c.class()?;
            c.eat(":")?;
            class_rounds.insert(class, c.u64()?);
        }
        c.eat("},\"class_sequence\":[")?;
        let mut class_sequence = Vec::new();
        while c.peek() != Some(']') {
            if !class_sequence.is_empty() {
                c.eat(",")?;
            }
            class_sequence.push(c.class()?);
        }
        c.eat("],\"transitions\":[")?;
        let mut transitions = BTreeMap::new();
        while c.peek() != Some(']') {
            if !transitions.is_empty() {
                c.eat(",")?;
            }
            c.eat("[")?;
            let from = c.class()?;
            c.eat(",")?;
            let to = c.class()?;
            c.eat(",")?;
            let count = c.u64()?;
            c.eat("]")?;
            transitions.insert((from, to), count);
        }
        c.eat("],\"classifications\":")?;
        let classifications = c.u64()?;
        c.eat(",\"cache_hits\":")?;
        let cache_hits = c.u64()?;
        c.eat(",\"weiszfeld_iters\":")?;
        let weiszfeld_iters = c.u64()?;
        // The optional trailing columns are keyed, in fixed order; a comma
        // alone no longer identifies which one follows.
        let analysis_cache = if c.s[c.i..].starts_with(",\"analysis_cache\":") {
            c.eat(",\"analysis_cache\":{\"computed\":")?;
            let computed = c.u64()?;
            c.eat(",\"hits\":")?;
            let hits = c.u64()?;
            c.eat(",\"dirty_skips\":")?;
            let dirty_skips = c.u64()?;
            c.eat("}")?;
            Some(CacheStats {
                computed,
                hits,
                dirty_skips,
            })
        } else {
            None
        };
        let async_events = if c.s[c.i..].starts_with(",\"async_events\":") {
            c.eat(",\"async_events\":")?;
            Some(c.u64()?)
        } else {
            None
        };
        let phase_ns = if c.peek() == Some(',') {
            c.eat(",\"phase_ns\":{")?;
            let mut nanos = PhaseNanos::default();
            for (i, phase) in Phase::all().iter().enumerate() {
                if i > 0 {
                    c.eat(",")?;
                }
                c.eat(&format!("\"{}\":", phase.name()))?;
                nanos.add(*phase, c.u64()?);
            }
            c.eat("}")?;
            Some(nanos)
        } else {
            None
        };
        c.eat("}")?;
        if !c.s[c.i..].trim().is_empty() {
            return Err(format!("trailing content after record: {:?}", &c.s[c.i..]));
        }
        Ok(RunMetrics {
            gathered,
            rounds,
            total_travel,
            class_rounds,
            class_sequence,
            transitions,
            classifications,
            cache_hits,
            weiszfeld_iters,
            analysis_cache,
            async_events,
            phase_ns,
        })
    }

    /// Mean Weiszfeld solver iterations per executed round — the
    /// convergence-cost curve the F4/F6 runners plot (0 for a run with no
    /// rounds). Per-round values live in the trace's [`RoundRecord`]s.
    ///
    /// [`RoundRecord`]: crate::trace::RoundRecord
    pub fn weiszfeld_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.weiszfeld_iters as f64 / self.rounds as f64
        }
    }
}

impl std::fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} in {} rounds, travel {:.3}, classes ",
            if self.gathered {
                "gathered"
            } else {
                "NOT gathered"
            },
            self.rounds,
            self.total_travel,
        )?;
        for (i, c) in self.class_sequence.iter().enumerate() {
            if i > 0 {
                write!(f, "→")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::RoundRecord;
    use gather_geom::Point;

    #[test]
    fn summary_aggregates_trace() {
        let mut t = Trace::new();
        for (i, c) in [Class::Asymmetric, Class::Multiple].iter().enumerate() {
            t.push(RoundRecord {
                round: i as u64,
                class: *c,
                distinct: 2,
                max_mult: 2,
                activated: vec![0, 1],
                crashed: vec![],
                travel: 2.5,
                classifications: 2,
                cache_hits: 1,
                weiszfeld_iters: 7,
            });
        }
        let m = summarize(
            RunOutcome::Gathered {
                round: 2,
                point: Point::ORIGIN,
            },
            &t,
        );
        assert!(m.gathered);
        assert_eq!(m.rounds, 2);
        assert_eq!(m.total_travel, 5.0);
        assert_eq!(m.class_sequence, vec![Class::Asymmetric, Class::Multiple]);
        assert_eq!(m.transitions[&(Class::Asymmetric, Class::Multiple)], 1);
        assert_eq!(m.classifications, 4);
        assert_eq!(m.cache_hits, 2);
        assert_eq!(m.weiszfeld_iters, 14);
        assert_eq!(m.weiszfeld_per_round(), 7.0);
        let shown = format!("{m}");
        assert!(shown.contains("gathered"));
        assert!(shown.contains("A→M"));
    }

    #[test]
    fn round_limit_summary() {
        let m = summarize(RunOutcome::RoundLimit { rounds: 50 }, &Trace::new());
        assert!(!m.gathered);
        assert_eq!(m.rounds, 50);
        assert!(format!("{m}").contains("NOT gathered"));
    }

    fn sample_metrics() -> RunMetrics {
        let mut class_rounds = BTreeMap::new();
        class_rounds.insert(Class::Asymmetric, 5);
        class_rounds.insert(Class::Multiple, 7);
        let mut transitions = BTreeMap::new();
        transitions.insert((Class::Asymmetric, Class::Multiple), 1);
        transitions.insert((Class::Multiple, Class::QuasiRegular), 2);
        RunMetrics {
            gathered: true,
            rounds: 12,
            // An awkward float: 0.1 + 0.2 has no short decimal form, so it
            // exercises the shortest-round-trip serialisation for real.
            total_travel: 0.1 + 0.2,
            class_rounds,
            class_sequence: vec![Class::Asymmetric, Class::Multiple, Class::QuasiRegular],
            transitions,
            classifications: 24,
            cache_hits: 10,
            weiszfeld_iters: 33,
            analysis_cache: None,
            async_events: None,
            phase_ns: None,
        }
    }

    #[test]
    fn jsonl_round_trips_bit_exactly() {
        let m = sample_metrics();
        let line = m.to_jsonl();
        assert!(!line.contains('\n'), "JSONL rows must be single lines");
        let back = RunMetrics::from_jsonl(&line).expect("parse own output");
        assert_eq!(back, m);
        assert_eq!(back.total_travel.to_bits(), m.total_travel.to_bits());
        // Byte-determinism: re-serialising the parsed value is identical.
        assert_eq!(back.to_jsonl(), line);
    }

    #[test]
    fn jsonl_round_trips_empty_aggregates() {
        let m = summarize(RunOutcome::RoundLimit { rounds: 0 }, &Trace::new());
        let line = m.to_jsonl();
        assert_eq!(RunMetrics::from_jsonl(&line).expect("parse"), m);
        assert_eq!(
            line,
            "{\"gathered\":false,\"rounds\":0,\"total_travel\":0.0,\
             \"class_rounds\":{},\"class_sequence\":[],\"transitions\":[],\
             \"classifications\":0,\"cache_hits\":0,\"weiszfeld_iters\":0}"
        );
    }

    #[test]
    fn jsonl_round_trips_phase_timings_when_present() {
        let mut m = sample_metrics();
        let mut nanos = PhaseNanos::default();
        for (i, phase) in Phase::all().iter().enumerate() {
            nanos.add(*phase, (i as u64 + 1) * 1000);
        }
        m.phase_ns = Some(nanos);
        let line = m.to_jsonl();
        assert!(
            line.ends_with(
                ",\"phase_ns\":{\"snapshot\":1000,\"classify\":2000,\
                 \"weiszfeld\":3000,\"move\":4000,\"invariants\":5000}}"
            ),
            "{line}"
        );
        let back = RunMetrics::from_jsonl(&line).expect("parse timed row");
        assert_eq!(back, m);
        assert_eq!(back.to_jsonl(), line);
        // And the untimed serialisation of the same metrics is a strict
        // prefix: the column is purely additive.
        m.phase_ns = None;
        let untimed = m.to_jsonl();
        assert!(line.starts_with(&untimed[..untimed.len() - 1]));
    }

    #[test]
    fn jsonl_round_trips_cache_stats_when_present() {
        let mut m = sample_metrics();
        m.analysis_cache = Some(CacheStats {
            computed: 4,
            hits: 20,
            dirty_skips: 17,
        });
        let line = m.to_jsonl();
        assert!(
            line.ends_with(",\"analysis_cache\":{\"computed\":4,\"hits\":20,\"dirty_skips\":17}}"),
            "{line}"
        );
        let back = RunMetrics::from_jsonl(&line).expect("parse cache row");
        assert_eq!(back, m);
        assert_eq!(back.to_jsonl(), line);
        // Both optional columns together, in fixed order.
        let mut nanos = PhaseNanos::default();
        nanos.add(Phase::Classify, 42);
        m.phase_ns = Some(nanos);
        let both = m.to_jsonl();
        assert!(both.contains("\"analysis_cache\":{"));
        assert!(both.contains("\"phase_ns\":{"));
        assert!(
            both.find("\"analysis_cache\"").unwrap() < both.find("\"phase_ns\"").unwrap(),
            "cache column must precede the phase column: {both}"
        );
        let back = RunMetrics::from_jsonl(&both).expect("parse combined row");
        assert_eq!(back, m);
        assert_eq!(back.to_jsonl(), both);
    }

    #[test]
    fn jsonl_round_trips_async_events_when_present() {
        let mut m = sample_metrics();
        m.async_events = Some(4242);
        let line = m.to_jsonl();
        assert!(line.ends_with(",\"async_events\":4242}"), "{line}");
        let back = RunMetrics::from_jsonl(&line).expect("parse async row");
        assert_eq!(back, m);
        assert_eq!(back.to_jsonl(), line);
        // All three optional columns together, in fixed order:
        // analysis_cache, async_events, phase_ns.
        m.analysis_cache = Some(CacheStats {
            computed: 1,
            hits: 2,
            dirty_skips: 0,
        });
        let mut nanos = PhaseNanos::default();
        nanos.add(Phase::Classify, 7);
        m.phase_ns = Some(nanos);
        let all = m.to_jsonl();
        let cache_at = all.find("\"analysis_cache\"").unwrap();
        let async_at = all.find("\"async_events\"").unwrap();
        let phase_at = all.find("\"phase_ns\"").unwrap();
        assert!(cache_at < async_at && async_at < phase_at, "{all}");
        let back = RunMetrics::from_jsonl(&all).expect("parse full row");
        assert_eq!(back, m);
        assert_eq!(back.to_jsonl(), all);
    }

    #[test]
    fn jsonl_rejects_malformed_lines() {
        assert!(RunMetrics::from_jsonl("").is_err());
        assert!(RunMetrics::from_jsonl("{}").is_err());
        assert!(RunMetrics::from_jsonl("{\"gathered\":maybe").is_err());
        let good = sample_metrics().to_jsonl();
        assert!(RunMetrics::from_jsonl(&good[..good.len() - 1]).is_err());
        assert!(RunMetrics::from_jsonl(&format!("{good}x")).is_err());
        let bad_class = good.replace("\"QR\"", "\"ZZ\"");
        assert!(RunMetrics::from_jsonl(&bad_class).is_err());
        // Trailing whitespace (a newline from a JSONL file) is tolerated.
        assert!(RunMetrics::from_jsonl(&format!("{good}\n")).is_ok());
    }
}
