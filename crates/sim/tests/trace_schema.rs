//! Golden pin of the per-round NDJSON trace schema.
//!
//! The trace line format is an external contract: it is what
//! `GET /v1/trace` streams to clients and what `b9_obs` audits, so its
//! key set, key order and encoding must not drift silently. A change
//! here is an API change — update the consumers (service docs, b9_obs'
//! `TRACE_SCHEMA`) in the same commit, never casually.

use gather_config::Class;
use gather_sim::prelude::*;
use gather_sim::trace::{v2_header, RoundRecord, TRACE_SCHEMA_V2};

/// The pinned depth-1 key sequence of one trace line.
const TRACE_SCHEMA: [&str; 10] = [
    "round",
    "class",
    "distinct",
    "max_mult",
    "activated",
    "crashed",
    "travel",
    "classifications",
    "cache_hits",
    "weiszfeld_iters",
];

/// Depth-1 object keys of a JSON line, in order (string-aware scanner —
/// keys inside nested arrays/objects are skipped).
fn json_keys(line: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let mut depth = 0usize;
    let mut chars = line.char_indices().peekable();
    while let Some((at, c)) = chars.next() {
        match c {
            '{' | '[' => depth += 1,
            '}' | ']' => depth = depth.saturating_sub(1),
            '"' => {
                let start = at + 1;
                let mut end = start;
                for (j, cj) in chars.by_ref() {
                    if cj == '"' {
                        end = j;
                        break;
                    }
                }
                if depth == 1 && matches!(chars.peek(), Some((_, ':'))) {
                    keys.push(line[start..end].to_string());
                }
            }
            _ => {}
        }
    }
    keys
}

#[test]
fn golden_line_is_byte_exact() {
    let record = RoundRecord {
        round: 3,
        class: Class::QuasiRegular,
        distinct: 5,
        max_mult: 2,
        activated: vec![0, 2, 4],
        crashed: vec![1],
        travel: 0.25,
        classifications: 7,
        cache_hits: 4,
        weiszfeld_iters: 11,
    };
    assert_eq!(
        record.to_jsonl(),
        "{\"round\":3,\"class\":\"QR\",\"distinct\":5,\"max_mult\":2,\
         \"activated\":[0,2,4],\"crashed\":[1],\"travel\":0.25,\
         \"classifications\":7,\"cache_hits\":4,\"weiszfeld_iters\":11}"
    );
}

/// The pinned depth-1 key sequence of the trace/v2 header line.
const HEADER_SCHEMA: [&str; 4] = ["schema", "spec", "seed", "engine"];

/// Golden pin of the trace/v2 document header. A v2 document is this
/// header followed by unchanged v1 round lines, so only the header is
/// new surface — its key set, key order and encoding are an external
/// contract exactly like the round lines above (`POST /v1/trace` and the
/// `gather-trace` corpus parser both rely on these bytes).
#[test]
fn golden_v2_header_is_byte_exact() {
    assert_eq!(TRACE_SCHEMA_V2, "trace/v2");
    let header = v2_header("{\"workload\":\"class\",\"n\":8}", 7, "sync");
    assert_eq!(
        header,
        "{\"schema\":\"trace/v2\",\"spec\":{\"workload\":\"class\",\"n\":8},\
         \"seed\":7,\"engine\":\"sync\"}"
    );
    assert_eq!(json_keys(&header), HEADER_SCHEMA.to_vec());
    // Nested spec keys stay invisible at depth 1 — a v2-aware consumer
    // can dispatch on the first key alone.
    assert!(header.starts_with("{\"schema\":\"trace/v2\""));
    let async_header = v2_header("{}", 0, "async");
    assert!(async_header.ends_with("\"engine\":\"async\"}"));
    assert_eq!(json_keys(&async_header), HEADER_SCHEMA.to_vec());
}

struct GoToCentroid;
impl Algorithm for GoToCentroid {
    fn name(&self) -> &'static str {
        "centroid"
    }
    fn destination(&self, snap: &Snapshot) -> gather_geom::Point {
        gather_geom::centroid(snap.config().points())
    }
}

#[test]
fn every_streamed_line_matches_the_pinned_schema() {
    let initial = gather_workloads::of_class(Class::Asymmetric, 8, 5);
    let mut engine = Engine::builder(initial)
        .algorithm(GoToCentroid)
        .scheduler(RandomSubsets::new(0.5, 20, 5))
        .crash_plan(RandomCrashes::new(1, 0.05, 7))
        .check_invariants(false)
        .build();
    let outcome = engine.run(500);
    assert!(outcome.rounds() > 0);
    let jsonl = engine.trace().to_jsonl();
    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        assert_eq!(
            json_keys(line),
            TRACE_SCHEMA.to_vec(),
            "trace schema drift in {line:?}"
        );
    }
}
