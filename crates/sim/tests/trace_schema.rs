//! Golden pin of the per-round NDJSON trace schema.
//!
//! The trace line format is an external contract: it is what
//! `GET /v1/trace` streams to clients and what `b9_obs` audits, so its
//! key set, key order and encoding must not drift silently. A change
//! here is an API change — update the consumers (service docs, b9_obs'
//! `TRACE_SCHEMA`) in the same commit, never casually.

use gather_config::Class;
use gather_sim::prelude::*;
use gather_sim::trace::RoundRecord;

/// The pinned depth-1 key sequence of one trace line.
const TRACE_SCHEMA: [&str; 10] = [
    "round",
    "class",
    "distinct",
    "max_mult",
    "activated",
    "crashed",
    "travel",
    "classifications",
    "cache_hits",
    "weiszfeld_iters",
];

/// Depth-1 object keys of a JSON line, in order (string-aware scanner —
/// keys inside nested arrays/objects are skipped).
fn json_keys(line: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let mut depth = 0usize;
    let mut chars = line.char_indices().peekable();
    while let Some((at, c)) = chars.next() {
        match c {
            '{' | '[' => depth += 1,
            '}' | ']' => depth = depth.saturating_sub(1),
            '"' => {
                let start = at + 1;
                let mut end = start;
                for (j, cj) in chars.by_ref() {
                    if cj == '"' {
                        end = j;
                        break;
                    }
                }
                if depth == 1 && matches!(chars.peek(), Some((_, ':'))) {
                    keys.push(line[start..end].to_string());
                }
            }
            _ => {}
        }
    }
    keys
}

#[test]
fn golden_line_is_byte_exact() {
    let record = RoundRecord {
        round: 3,
        class: Class::QuasiRegular,
        distinct: 5,
        max_mult: 2,
        activated: vec![0, 2, 4],
        crashed: vec![1],
        travel: 0.25,
        classifications: 7,
        cache_hits: 4,
        weiszfeld_iters: 11,
    };
    assert_eq!(
        record.to_jsonl(),
        "{\"round\":3,\"class\":\"QR\",\"distinct\":5,\"max_mult\":2,\
         \"activated\":[0,2,4],\"crashed\":[1],\"travel\":0.25,\
         \"classifications\":7,\"cache_hits\":4,\"weiszfeld_iters\":11}"
    );
}

struct GoToCentroid;
impl Algorithm for GoToCentroid {
    fn name(&self) -> &'static str {
        "centroid"
    }
    fn destination(&self, snap: &Snapshot) -> gather_geom::Point {
        gather_geom::centroid(snap.config().points())
    }
}

#[test]
fn every_streamed_line_matches_the_pinned_schema() {
    let initial = gather_workloads::of_class(Class::Asymmetric, 8, 5);
    let mut engine = Engine::builder(initial)
        .algorithm(GoToCentroid)
        .scheduler(RandomSubsets::new(0.5, 20, 5))
        .crash_plan(RandomCrashes::new(1, 0.05, 7))
        .check_invariants(false)
        .build();
    let outcome = engine.run(500);
    assert!(outcome.rounds() > 0);
    let jsonl = engine.trace().to_jsonl();
    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        assert_eq!(
            json_keys(line),
            TRACE_SCHEMA.to_vec(),
            "trace schema drift in {line:?}"
        );
    }
}
