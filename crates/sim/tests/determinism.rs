//! The whole simulation stack is deterministic in its seeds: identical
//! builders produce identical traces, positions and outcomes.

use gather_geom::Point;
use gather_sim::prelude::*;

struct GoToCentroid;
impl Algorithm for GoToCentroid {
    fn name(&self) -> &'static str {
        "centroid"
    }
    fn destination(&self, snap: &Snapshot) -> Point {
        gather_geom::centroid(snap.config().points())
    }
}

fn build(seed: u64) -> Engine {
    let pts = vec![
        Point::new(0.0, 0.0),
        Point::new(5.0, 1.0),
        Point::new(2.0, 4.0),
        Point::new(-3.0, 2.0),
        Point::new(1.0, -3.0),
    ];
    Engine::builder(pts)
        .algorithm(GoToCentroid)
        .scheduler(RandomSubsets::new(0.5, 20, seed))
        .motion(RandomStops::new(0.4, seed + 1))
        .crash_plan(RandomCrashes::new(2, 0.05, seed + 2))
        .frames(FramePolicy::RandomPerActivation { seed: seed + 3 })
        .record_positions(true)
        .check_invariants(false)
        .build()
}

#[test]
fn identical_seeds_produce_identical_runs() {
    let mut e1 = build(7);
    let mut e2 = build(7);
    let o1 = e1.run(500);
    let o2 = e2.run(500);
    assert_eq!(o1, o2);
    assert_eq!(e1.positions(), e2.positions());
    assert_eq!(e1.alive(), e2.alive());
    assert_eq!(e1.trace().records(), e2.trace().records());
    assert_eq!(e1.position_log(), e2.position_log());
}

#[test]
fn different_seeds_diverge() {
    let mut e1 = build(7);
    let mut e2 = build(8);
    e1.run(50);
    e2.run(50);
    assert_ne!(
        e1.trace().records(),
        e2.trace().records(),
        "seeded components appear to ignore their seeds"
    );
}

#[test]
fn random_subsets_activation_sequences_reproduce_from_the_seed() {
    // The scheduler alone, outside any engine: two instances with the same
    // seed must emit the same activation sets round for round, and the
    // sequence must be non-trivial (different rounds activate different
    // subsets — a constant sequence would satisfy equality vacuously).
    let alive = vec![true; 12];
    let mut s1 = RandomSubsets::new(0.5, 20, 99);
    let mut s2 = RandomSubsets::new(0.5, 20, 99);
    let seq1: Vec<Vec<usize>> = (0..200).map(|r| s1.select(r, &alive)).collect();
    let seq2: Vec<Vec<usize>> = (0..200).map(|r| s2.select(r, &alive)).collect();
    assert_eq!(seq1, seq2);
    assert!(
        seq1.windows(2).any(|w| w[0] != w[1]),
        "activation sequence is constant — scheduler ignores its PRNG"
    );
    // A different seed gives a different sequence.
    let mut s3 = RandomSubsets::new(0.5, 20, 100);
    let seq3: Vec<Vec<usize>> = (0..200).map(|r| s3.select(r, &alive)).collect();
    assert_ne!(seq1, seq3);
}

#[test]
fn seeded_workloads_reproduce_their_configurations() {
    // Seeded workload generators are pure functions of (shape, seed).
    for seed in [0u64, 1, 42, 0xDEAD] {
        assert_eq!(
            gather_workloads::random_scatter(17, 10.0, seed),
            gather_workloads::random_scatter(17, 10.0, seed)
        );
        assert_eq!(
            gather_workloads::asymmetric(9, seed),
            gather_workloads::asymmetric(9, seed)
        );
        assert_eq!(
            gather_workloads::quasi_regular(5, 3, seed),
            gather_workloads::quasi_regular(5, 3, seed)
        );
        assert_eq!(
            gather_workloads::multiple(11, 4, seed),
            gather_workloads::multiple(11, 4, seed)
        );
    }
    // …and actually respond to the seed.
    assert_ne!(
        gather_workloads::random_scatter(17, 10.0, 1),
        gather_workloads::random_scatter(17, 10.0, 2)
    );
}

#[test]
fn position_log_has_one_row_per_round_plus_initial() {
    let mut e = build(3);
    for _ in 0..10 {
        e.step();
    }
    assert_eq!(e.position_log().len(), 11);
    assert_eq!(e.position_log()[0].len(), 5);
}
