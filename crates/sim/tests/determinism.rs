//! The whole simulation stack is deterministic in its seeds: identical
//! builders produce identical traces, positions and outcomes.

use gather_geom::Point;
use gather_sim::prelude::*;

struct GoToCentroid;
impl Algorithm for GoToCentroid {
    fn name(&self) -> &'static str {
        "centroid"
    }
    fn destination(&self, snap: &Snapshot) -> Point {
        gather_geom::centroid(snap.config().points())
    }
}

fn build(seed: u64) -> Engine {
    let pts = vec![
        Point::new(0.0, 0.0),
        Point::new(5.0, 1.0),
        Point::new(2.0, 4.0),
        Point::new(-3.0, 2.0),
        Point::new(1.0, -3.0),
    ];
    Engine::builder(pts)
        .algorithm(GoToCentroid)
        .scheduler(RandomSubsets::new(0.5, 20, seed))
        .motion(RandomStops::new(0.4, seed + 1))
        .crash_plan(RandomCrashes::new(2, 0.05, seed + 2))
        .frames(FramePolicy::RandomPerActivation { seed: seed + 3 })
        .record_positions(true)
        .check_invariants(false)
        .build()
}

#[test]
fn identical_seeds_produce_identical_runs() {
    let mut e1 = build(7);
    let mut e2 = build(7);
    let o1 = e1.run(500);
    let o2 = e2.run(500);
    assert_eq!(o1, o2);
    assert_eq!(e1.positions(), e2.positions());
    assert_eq!(e1.alive(), e2.alive());
    assert_eq!(e1.trace().records(), e2.trace().records());
    assert_eq!(e1.position_log(), e2.position_log());
}

#[test]
fn different_seeds_diverge() {
    let mut e1 = build(7);
    let mut e2 = build(8);
    e1.run(50);
    e2.run(50);
    assert_ne!(
        e1.trace().records(),
        e2.trace().records(),
        "seeded components appear to ignore their seeds"
    );
}

#[test]
fn position_log_has_one_row_per_round_plus_initial() {
    let mut e = build(3);
    for _ in 0..10 {
        e.step();
    }
    assert_eq!(e.position_log().len(), 11);
    assert_eq!(e.position_log()[0].len(), 5);
}
