//! Phase attribution for engine rounds: monotonic lap timers, per-round
//! span records and the fixed-capacity sink the engine streams them into.

use std::time::Instant;

/// Number of engine phases tracked per round.
pub const NUM_PHASES: usize = 5;

/// The phases of one simulated round, in execution order.
///
/// `Weiszfeld` is a *sub-span* of `Classify`: the Weber-point solver runs
/// inside classification, and its nanoseconds are carved out of the
/// classify lap (see `PhaseTimer::transfer`), so the five phases stay
/// additive — they sum to the round's instrumented wall time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Copying positions into scratch, distinct-point extraction, history.
    Snapshot,
    /// Shared round analysis (class, symmetry, election) minus Weiszfeld.
    Classify,
    /// Weber-point iterations inside classification.
    Weiszfeld,
    /// Look–Compute–Move over activated robots plus canonicalisation.
    Move,
    /// Wait-freeness / never-bivalent invariant audits.
    Invariants,
}

impl Phase {
    /// All phases, in execution (and serialization) order.
    pub const fn all() -> [Phase; NUM_PHASES] {
        [
            Phase::Snapshot,
            Phase::Classify,
            Phase::Weiszfeld,
            Phase::Move,
            Phase::Invariants,
        ]
    }

    /// Stable lowercase name used in every JSON export.
    pub const fn name(self) -> &'static str {
        match self {
            Phase::Snapshot => "snapshot",
            Phase::Classify => "classify",
            Phase::Weiszfeld => "weiszfeld",
            Phase::Move => "move",
            Phase::Invariants => "invariants",
        }
    }

    #[inline]
    const fn index(self) -> usize {
        match self {
            Phase::Snapshot => 0,
            Phase::Classify => 1,
            Phase::Weiszfeld => 2,
            Phase::Move => 3,
            Phase::Invariants => 4,
        }
    }
}

/// Nanoseconds attributed to each [`Phase`] — per round, or accumulated
/// over a run. Plain `Copy` data; safe to store in metrics rows.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseNanos(pub [u64; NUM_PHASES]);

impl PhaseNanos {
    /// Nanoseconds attributed to `phase`.
    #[inline]
    pub fn get(&self, phase: Phase) -> u64 {
        self.0[phase.index()]
    }

    /// Adds `nanos` to `phase` (saturating).
    #[inline]
    pub fn add(&mut self, phase: Phase, nanos: u64) {
        let slot = &mut self.0[phase.index()];
        *slot = slot.saturating_add(nanos);
    }

    /// Folds another record into this one, phase-wise.
    #[inline]
    pub fn accumulate(&mut self, other: PhaseNanos) {
        for (mine, theirs) in self.0.iter_mut().zip(other.0) {
            *mine = mine.saturating_add(theirs);
        }
    }

    /// Total nanoseconds across all phases.
    pub fn total(&self) -> u64 {
        self.0.iter().fold(0u64, |a, b| a.saturating_add(*b))
    }

    /// Appends the stable JSON object form —
    /// `{"snapshot":N,"classify":N,"weiszfeld":N,"move":N,"invariants":N}`
    /// — to `out`. Shared by `RunMetrics::to_jsonl` and the sink export
    /// so the schema cannot drift between them.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write;
        out.push('{');
        for (i, phase) in Phase::all().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", phase.name(), self.get(*phase));
        }
        out.push('}');
    }
}

/// A monotonic lap timer attributing wall time to phases.
///
/// Construct once per round with [`PhaseTimer::start`]; each
/// [`lap`](PhaseTimer::lap) charges the time since the previous lap (or
/// start) to a phase. A timer started with `enabled = false` never calls
/// [`Instant::now`] — the disabled hot path costs one branch per lap.
#[derive(Debug)]
pub struct PhaseTimer {
    last: Option<Instant>,
    nanos: PhaseNanos,
}

impl PhaseTimer {
    /// Starts the timer; reads the clock only when `enabled`.
    #[inline]
    pub fn start(enabled: bool) -> Self {
        PhaseTimer {
            last: enabled.then(Instant::now),
            nanos: PhaseNanos::default(),
        }
    }

    /// Is this timer live (i.e. was it started enabled)?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.last.is_some()
    }

    /// Charges the time since the last lap to `phase` and restarts the
    /// lap clock. No-op when disabled.
    #[inline]
    pub fn lap(&mut self, phase: Phase) {
        if let Some(last) = self.last.as_mut() {
            let now = Instant::now();
            self.nanos
                .add(phase, now.duration_since(*last).as_nanos() as u64);
            *last = now;
        }
    }

    /// Moves up to `nanos` already charged to `from` over to `to` —
    /// used to carve an externally measured sub-span (Weiszfeld's
    /// thread-local counter) out of its enclosing lap while keeping the
    /// phase totals additive.
    #[inline]
    pub fn transfer(&mut self, from: Phase, to: Phase, nanos: u64) {
        if self.last.is_none() {
            return;
        }
        let moved = nanos.min(self.nanos.get(from));
        self.nanos.0[from.index()] -= moved;
        self.nanos.add(to, moved);
    }

    /// Consumes the timer, returning the accumulated attribution.
    #[inline]
    pub fn finish(self) -> PhaseNanos {
        self.nanos
    }
}

/// One round's phase attribution, as stored in a [`SpanSink`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundSpans {
    /// Round index (0-based, as in `RoundRecord`).
    pub round: u64,
    /// Per-phase nanoseconds for this round.
    pub nanos: PhaseNanos,
}

/// A fixed-capacity ring of [`RoundSpans`].
///
/// All storage is allocated at construction; [`push`](SpanSink::push)
/// overwrites the oldest record once full (counting the overwrite in
/// [`dropped`](SpanSink::dropped)) and never touches the heap, so a sink
/// can ride the zero-allocation round loop. Export to JSONL happens off
/// the hot path, formatting on demand.
#[derive(Debug, Default)]
pub struct SpanSink {
    records: Vec<RoundSpans>,
    capacity: usize,
    head: usize,
    dropped: u64,
}

impl SpanSink {
    /// A sink holding at most `capacity` records (0 = keep nothing,
    /// count everything as dropped).
    pub fn new(capacity: usize) -> Self {
        SpanSink {
            records: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Appends a record, overwriting the oldest when full. Never
    /// (re)allocates.
    #[inline]
    pub fn push(&mut self, record: RoundSpans) {
        if self.capacity == 0 {
            self.dropped += 1;
        } else if self.records.len() < self.capacity {
            self.records.push(record);
        } else {
            self.records[self.head] = record;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the sink empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted (or refused, for a zero-capacity sink) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Held records in chronological order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &RoundSpans> {
        let (tail, holder) = self.records.split_at(self.head);
        holder.iter().chain(tail.iter())
    }

    /// Exports the held records as JSONL, one
    /// `{"round":N,"snapshot":...,"invariants":N}` object per line.
    /// Allocates (it formats) — call it after the run, not during.
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for record in self.iter() {
            let _ = write!(out, "{{\"round\":{}", record.round);
            for phase in Phase::all() {
                let _ = write!(out, ",\"{}\":{}", phase.name(), record.nanos.get(phase));
            }
            out.push_str("}\n");
        }
        out
    }
}

/// The observability handle an engine carries: a per-engine (and hence
/// per-thread — engines are single-threaded) span sink plus running
/// phase totals.
///
/// `enabled` is runtime data so one binary can compare the *absent*,
/// *disabled* and *enabled* states. A disabled handle costs the engine
/// one branch per round and zero clock reads.
#[derive(Debug)]
pub struct EngineObs {
    enabled: bool,
    totals: PhaseNanos,
    rounds: SpanSink,
}

impl EngineObs {
    /// An enabled handle keeping the most recent `capacity` rounds.
    pub fn new(capacity: usize) -> Self {
        EngineObs {
            enabled: true,
            totals: PhaseNanos::default(),
            rounds: SpanSink::new(capacity),
        }
    }

    /// An attached-but-disabled handle: the engine carries it, checks
    /// its flag, and does no timing work. This is the state the ≤2%
    /// overhead budget is measured against.
    pub fn disabled() -> Self {
        EngineObs {
            enabled: false,
            totals: PhaseNanos::default(),
            rounds: SpanSink::new(0),
        }
    }

    /// Does this handle want timing?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Absorbs one round's attribution into the totals and the sink.
    #[inline]
    pub fn record_round(&mut self, round: u64, nanos: PhaseNanos) {
        self.totals.accumulate(nanos);
        self.rounds.push(RoundSpans { round, nanos });
    }

    /// Phase totals accumulated across every recorded round.
    pub fn totals(&self) -> PhaseNanos {
        self.totals
    }

    /// The per-round span ring.
    pub fn rounds(&self) -> &SpanSink {
        &self.rounds
    }

    /// JSONL export of the held per-round spans (see
    /// [`SpanSink::to_jsonl`]).
    pub fn to_jsonl(&self) -> String {
        self.rounds.to_jsonl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timer_attributes_nothing() {
        let mut t = PhaseTimer::start(false);
        assert!(!t.enabled());
        t.lap(Phase::Snapshot);
        t.transfer(Phase::Classify, Phase::Weiszfeld, 100);
        assert_eq!(t.finish(), PhaseNanos::default());
    }

    #[test]
    fn laps_accumulate_into_phases() {
        let mut t = PhaseTimer::start(true);
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.lap(Phase::Classify);
        std::thread::sleep(std::time::Duration::from_millis(1));
        t.lap(Phase::Move);
        let nanos = t.finish();
        assert!(nanos.get(Phase::Classify) >= 1_000_000);
        assert!(nanos.get(Phase::Move) >= 500_000);
        assert_eq!(nanos.get(Phase::Snapshot), 0);
        assert_eq!(nanos.total(), nanos.0.iter().sum::<u64>());
    }

    #[test]
    fn transfer_carves_a_sub_span_and_stays_additive() {
        let mut t = PhaseTimer::start(true);
        std::thread::sleep(std::time::Duration::from_millis(1));
        t.lap(Phase::Classify);
        let before = t.nanos.total();
        t.transfer(Phase::Classify, Phase::Weiszfeld, 200_000);
        let after = t.nanos;
        assert_eq!(after.total(), before, "transfer must conserve total");
        assert!(after.get(Phase::Weiszfeld) > 0);
        // Transfers larger than the source lap are clamped, never wrap.
        t.transfer(Phase::Classify, Phase::Weiszfeld, u64::MAX);
        assert_eq!(t.nanos.get(Phase::Classify), 0);
        assert_eq!(t.nanos.total(), before);
    }

    #[test]
    fn sink_ring_overwrites_oldest_and_counts_drops() {
        let mut sink = SpanSink::new(3);
        for round in 0..5u64 {
            let mut nanos = PhaseNanos::default();
            nanos.add(Phase::Move, round);
            sink.push(RoundSpans { round, nanos });
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let rounds: Vec<u64> = sink.iter().map(|r| r.round).collect();
        assert_eq!(rounds, vec![2, 3, 4], "oldest first");
    }

    #[test]
    fn zero_capacity_sink_never_holds_records() {
        let mut sink = SpanSink::new(0);
        sink.push(RoundSpans::default());
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 1);
        assert_eq!(sink.to_jsonl(), "");
    }

    #[test]
    fn jsonl_export_is_schema_stable() {
        let mut sink = SpanSink::new(4);
        let mut nanos = PhaseNanos::default();
        nanos.add(Phase::Snapshot, 1);
        nanos.add(Phase::Classify, 2);
        nanos.add(Phase::Weiszfeld, 3);
        nanos.add(Phase::Move, 4);
        nanos.add(Phase::Invariants, 5);
        sink.push(RoundSpans { round: 7, nanos });
        assert_eq!(
            sink.to_jsonl(),
            "{\"round\":7,\"snapshot\":1,\"classify\":2,\"weiszfeld\":3,\
             \"move\":4,\"invariants\":5}\n"
        );
        let mut obj = String::new();
        nanos.write_json(&mut obj);
        assert_eq!(
            obj,
            "{\"snapshot\":1,\"classify\":2,\"weiszfeld\":3,\"move\":4,\"invariants\":5}"
        );
    }

    #[test]
    fn engine_obs_accumulates_totals() {
        let mut obs = EngineObs::new(2);
        assert!(obs.is_enabled());
        for round in 0..4u64 {
            let mut nanos = PhaseNanos::default();
            nanos.add(Phase::Move, 10);
            obs.record_round(round, nanos);
        }
        assert_eq!(obs.totals().get(Phase::Move), 40);
        assert_eq!(obs.rounds().len(), 2);
        assert!(!EngineObs::disabled().is_enabled());
    }
}
