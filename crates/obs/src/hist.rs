//! Log-bucketed concurrent histogram (HDR-style) over `u64` samples.
//!
//! Values below [`SUB_BUCKETS`] are counted exactly; every larger value
//! lands in one of [`SUB_BUCKETS`] sub-buckets of its power-of-two
//! octave, so the bucket lower bound under-estimates a recorded value by
//! at most one sub-bucket width — a relative error of `1/SUB_BUCKETS`
//! (6.25%). That resolution over the full `u64` range costs a fixed
//! [`BUCKETS`] (= 976) atomic counters, allocated once at construction;
//! recording is a few relaxed atomic RMWs and never allocates, so a
//! histogram can sit on the serving or worker-pool hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the sub-bucket count per octave.
pub const SUB_BITS: u32 = 4;
/// Sub-buckets per power-of-two octave (and the exact-count threshold).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Octave groups: values `< SUB_BUCKETS` plus one group per leading-bit
/// position from `SUB_BITS` to 63 inclusive.
pub const OCTAVES: usize = 64 - SUB_BITS as usize + 1;
/// Total bucket count.
pub const BUCKETS: usize = SUB_BUCKETS * OCTAVES;

/// Bucket index of a value. Exact below [`SUB_BUCKETS`]; logarithmic
/// with [`SUB_BUCKETS`] linear sub-buckets per octave above.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros(); // >= SUB_BITS
    let octave = (msb - SUB_BITS) as usize;
    let sub = ((value >> (msb - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    (octave + 1) * SUB_BUCKETS + sub
}

/// Smallest value mapping to bucket `index` — the inverse of
/// [`bucket_index`] on bucket lower bounds.
#[inline]
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let octave = index / SUB_BUCKETS - 1;
    let sub = (index % SUB_BUCKETS) as u64;
    (SUB_BUCKETS as u64 + sub) << octave
}

/// A concurrent log-bucketed histogram.
///
/// All methods take `&self`; ordering is relaxed throughout, so reads
/// concurrent with writes see *some* recent state, which is all a
/// metrics exposition needs.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram. The only allocation this type ever performs.
    pub fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the boxed array from a vec.
        let buckets: Box<[AtomicU64]> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets = buckets.try_into().expect("BUCKETS-sized allocation");
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free and allocation-free.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wrapping beyond `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        let v = self.min.load(Ordering::Relaxed);
        if v == u64::MAX && self.count() == 0 {
            0
        } else {
            v
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a bucket lower bound clamped
    /// to the recorded `[min, max]`, so the 6.25% bucket error never
    /// reports a value outside the observed range. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_lower_bound(i).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Adds every sample of `other` into `self` (bucket-wise; min/max
    /// and sum/count folded in).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        let n = other.count.load(Ordering::Relaxed);
        if n > 0 {
            self.count.fetch_add(n, Ordering::Relaxed);
            self.sum
                .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
            self.min
                .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
            self.max
                .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("min", &self.min())
            .field("max", &self.max())
            .field("mean", &self.mean())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(bucket_index(v)), v);
        }
    }

    #[test]
    fn lower_bound_inverts_index_on_bucket_boundaries() {
        for i in 0..BUCKETS {
            let lb = bucket_lower_bound(i);
            assert_eq!(bucket_index(lb), i, "bucket {i} lower bound {lb}");
        }
    }

    #[test]
    fn index_is_monotone_and_bounded() {
        let mut prev = 0usize;
        let mut v = 1u64;
        while v < u64::MAX / 2 {
            let i = bucket_index(v);
            assert!(i >= prev, "index not monotone at {v}");
            assert!(i < BUCKETS);
            prev = i;
            v = v.saturating_mul(3) / 2 + 1;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut v = SUB_BUCKETS as u64;
        while v < u64::MAX / 3 {
            let lb = bucket_lower_bound(bucket_index(v));
            assert!(lb <= v);
            let err = (v - lb) as f64 / v as f64;
            assert!(err <= 1.0 / SUB_BUCKETS as f64 + 1e-12, "err {err} at {v}");
            v = v.saturating_mul(7) / 3 + 13;
        }
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((450..=500).contains(&p50), "p50 {p50}");
        assert!((920..=990).contains(&p99), "p99 {p99}");
        assert!(h.quantile(1.0) <= 1000);
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        a.record(100);
        b.record(1);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 1_000_000);
        assert_eq!(a.sum(), 1_000_106);
        // Merging an empty histogram is a no-op.
        a.merge(&Histogram::new());
        assert_eq!(a.count(), 4);
        assert_eq!(a.min(), 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.min(), 0);
        assert!(h.max() >= 30_000);
    }
}
