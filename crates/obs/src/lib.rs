//! gather-obs: pure-std observability for the gathering workspace.
//!
//! Three primitives, shared by the simulator (`gather-sim`), the batch
//! engine (`gather-bench`) and the scenario service (`gather-serve`):
//!
//! * [`Histogram`] — a log-bucketed (HDR-style) concurrent histogram of
//!   `u64` samples. Recording is a handful of relaxed atomic increments
//!   (lock-free, allocation-free, safe from any thread); quantiles are
//!   read back with a bounded relative error of 1/16 (6.25%).
//! * [`PhaseTimer`] — a monotonic lap timer that attributes wall-clock
//!   time to the phases of one engine round ([`Phase`]); laps accumulate
//!   into a [`PhaseNanos`] array. A disabled timer never reads the clock.
//! * [`SpanSink`] — a fixed-capacity ring of per-round [`RoundSpans`]
//!   records. Pushing never allocates after construction (the ring
//!   overwrites its oldest entry and counts the drop); the JSONL export
//!   formats *at export time only*, keeping the hot path free of
//!   formatting and heap traffic.
//!
//! [`EngineObs`] bundles a sink plus running phase totals into the
//! handle `gather_sim::EngineBuilder::observe` accepts. The `enabled`
//! flag is runtime data, not a cargo feature, so a single binary can
//! measure all three states — instrumentation absent, attached-but-
//! disabled, and enabled — which is exactly what the `b9_obs` bench's
//! ≤2% disabled-overhead gate needs.
//!
//! Everything here is dependency-free `std` (hermetic-build policy,
//! DESIGN.md §8).

pub mod hist;
pub mod span;

pub use hist::Histogram;
pub use span::{EngineObs, Phase, PhaseNanos, PhaseTimer, RoundSpans, SpanSink, NUM_PHASES};
