//! Multi-panel heatmap sheets for parameter-space cartography.
//!
//! The mega-sweep driver (`gather-bench`'s `sweep` binary) produces a
//! dense grid of per-cell aggregates over *five* axes (class × scheduler ×
//! `n` × `f` × `δ`); a heatmap sheet projects that onto a lattice of
//! small panels — one panel per (row-group, column-group) pair, each panel
//! an x × y grid of colour-mapped cells — which is the standard way to
//! read a phase diagram at a glance.

use crate::svg::SvgDoc;

/// One panel of a [`render_heatmap_sheet`] call: a `y_ticks.len()` ×
/// `x_ticks.len()` grid of optional values (`None` renders as a hatch-grey
/// "no data" cell).
#[derive(Debug, Clone)]
pub struct HeatmapPanel {
    /// Panel title, drawn above the cell grid.
    pub title: String,
    /// `cells[y][x]`; row 0 is drawn at the *top* of the panel.
    pub cells: Vec<Vec<Option<f64>>>,
}

/// Layout and colour-scale knobs for a heatmap sheet.
#[derive(Debug, Clone)]
pub struct HeatmapStyle {
    /// Pixel size of one cell.
    pub cell: f64,
    /// Panels per sheet row.
    pub columns: usize,
    /// Explicit value range for the colour scale; `None` = min/max over
    /// every finite cell of every panel (one shared scale for the sheet).
    pub range: Option<(f64, f64)>,
    /// Legend label for the colour scale.
    pub scale_label: String,
}

impl Default for HeatmapStyle {
    fn default() -> Self {
        HeatmapStyle {
            cell: 16.0,
            columns: 4,
            range: None,
            scale_label: String::new(),
        }
    }
}

/// Linear white→blue ramp (low → high), matching the repo palette's
/// primary hue; `t` is clamped to `[0, 1]`.
fn ramp(t: f64) -> String {
    let t = t.clamp(0.0, 1.0);
    // #f7fbff (near-white) → #08306b (deep blue)
    let lerp = |a: f64, b: f64| a + (b - a) * t;
    format!(
        "#{:02x}{:02x}{:02x}",
        lerp(0xf7 as f64, 0x08 as f64) as u8,
        lerp(0xfb as f64, 0x30 as f64) as u8,
        lerp(0xff as f64, 0x6b as f64) as u8
    )
}

/// Renders panels as a sheet: a lattice of heatmap panels sharing one
/// colour scale, x tick labels under the bottom row of panels, y tick
/// labels beside the leftmost column, and a horizontal colour legend at
/// the bottom.
///
/// Every panel must have `y_ticks.len()` rows of `x_ticks.len()` cells.
///
/// # Panics
///
/// Panics if `panels` is empty, `style.columns` is zero, or a panel's
/// cell grid does not match the tick dimensions.
pub fn render_heatmap_sheet(
    panels: &[HeatmapPanel],
    x_ticks: &[String],
    y_ticks: &[String],
    style: &HeatmapStyle,
) -> String {
    assert!(!panels.is_empty(), "heatmap sheet needs at least one panel");
    assert!(style.columns > 0, "heatmap sheet needs at least one column");
    for p in panels {
        assert_eq!(p.cells.len(), y_ticks.len(), "panel {}: row count", p.title);
        for row in &p.cells {
            assert_eq!(row.len(), x_ticks.len(), "panel {}: column count", p.title);
        }
    }

    let (lo, hi) = style.range.unwrap_or_else(|| {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for v in panels
            .iter()
            .flat_map(|p| p.cells.iter().flatten().flatten())
        {
            if v.is_finite() {
                lo = lo.min(*v);
                hi = hi.max(*v);
            }
        }
        if lo > hi {
            (0.0, 1.0)
        } else if hi - lo < 1e-12 {
            (lo, lo + 1.0)
        } else {
            (lo, hi)
        }
    });

    let cell = style.cell;
    let title_h = 14.0;
    let left = 64.0; // y tick labels
    let top = 8.0;
    let panel_w = x_ticks.len() as f64 * cell;
    let panel_h = y_ticks.len() as f64 * cell + title_h;
    let gap = 14.0;
    let cols = style.columns.min(panels.len());
    let rows = panels.len().div_ceil(cols);
    let x_tick_h = 30.0;
    let legend_h = 42.0;
    let width = left + cols as f64 * (panel_w + gap) + gap;
    let height = top + rows as f64 * (panel_h + gap) + x_tick_h + legend_h;

    let mut doc = SvgDoc::new_wh(width, height);
    doc.rect_background("#ffffff");

    for (i, panel) in panels.iter().enumerate() {
        let px = left + (i % cols) as f64 * (panel_w + gap) + gap;
        let py = top + (i / cols) as f64 * (panel_h + gap);
        doc.text(px, py + 10.0, 10.0, &panel.title, "#333333");
        let grid_y = py + title_h;
        for (yi, row) in panel.cells.iter().enumerate() {
            for (xi, value) in row.iter().enumerate() {
                let fill = match value {
                    Some(v) if v.is_finite() => ramp((v - lo) / (hi - lo)),
                    _ => "#dddddd".to_string(),
                };
                doc.rect(
                    px + xi as f64 * cell,
                    grid_y + yi as f64 * cell,
                    cell - 0.5,
                    cell - 0.5,
                    &fill,
                );
            }
        }
        // y tick labels beside the leftmost panel column only.
        if i % cols == 0 {
            for (yi, tick) in y_ticks.iter().enumerate() {
                doc.text(
                    4.0,
                    grid_y + yi as f64 * cell + cell * 0.7,
                    8.0,
                    tick,
                    "#555555",
                );
            }
        }
        // x tick labels under the bottom row of panels.
        if i / cols == rows - 1 || i + cols >= panels.len() {
            for (xi, tick) in x_ticks.iter().enumerate() {
                doc.text(
                    px + xi as f64 * cell + 1.0,
                    top + rows as f64 * (panel_h + gap) + 10.0,
                    8.0,
                    tick,
                    "#555555",
                );
            }
        }
    }

    // Horizontal colour legend: a ramp strip with min/max labels.
    let ly = height - legend_h + 10.0;
    let steps = 48usize;
    let strip_w = 192.0;
    for i in 0..steps {
        let t = i as f64 / (steps - 1) as f64;
        doc.rect(
            left + gap + t * (strip_w - strip_w / steps as f64),
            ly,
            strip_w / steps as f64 + 0.5,
            10.0,
            &ramp(t),
        );
    }
    doc.text(left + gap, ly + 22.0, 9.0, &format!("{lo:.3}"), "#333333");
    doc.text(
        left + gap + strip_w - 24.0,
        ly + 22.0,
        9.0,
        &format!("{hi:.3}"),
        "#333333",
    );
    if !style.scale_label.is_empty() {
        doc.text(
            left + gap + strip_w + 16.0,
            ly + 9.0,
            10.0,
            &style.scale_label,
            "#333333",
        );
    }
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ticks(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn sheet_renders_every_cell_and_a_legend() {
        let panels = vec![
            HeatmapPanel {
                title: "QR / full".into(),
                cells: vec![vec![Some(1.0), Some(2.0)], vec![None, Some(4.0)]],
            },
            HeatmapPanel {
                title: "A / single".into(),
                cells: vec![vec![Some(0.5), None], vec![Some(3.0), Some(1.5)]],
            },
        ];
        let svg = render_heatmap_sheet(
            &panels,
            &ticks(&["0", "1"]),
            &ticks(&["0.01", "0.5"]),
            &HeatmapStyle::default(),
        );
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
        assert!(svg.contains("QR / full") && svg.contains("A / single"));
        // 8 value cells (2 hatched) + background + 48 legend steps.
        assert_eq!(svg.matches("<rect").count(), 1 + 8 + 48);
        assert!(svg.contains("#dddddd"), "no-data cells hatch grey");
    }

    #[test]
    fn shared_scale_spans_all_panels() {
        let panels = vec![
            HeatmapPanel {
                title: "lo".into(),
                cells: vec![vec![Some(0.0)]],
            },
            HeatmapPanel {
                title: "hi".into(),
                cells: vec![vec![Some(10.0)]],
            },
        ];
        let svg = render_heatmap_sheet(
            &panels,
            &ticks(&["x"]),
            &ticks(&["y"]),
            &HeatmapStyle::default(),
        );
        assert!(svg.contains("0.000") && svg.contains("10.000"));
    }

    #[test]
    fn ramp_is_monotone_and_clamped() {
        assert_eq!(ramp(-1.0), ramp(0.0));
        assert_eq!(ramp(2.0), ramp(1.0));
        assert_eq!(ramp(0.0), "#f7fbff");
        assert_eq!(ramp(1.0), "#08306b");
    }

    #[test]
    #[should_panic(expected = "row count")]
    fn mismatched_panel_dimensions_are_rejected() {
        let panels = vec![HeatmapPanel {
            title: "bad".into(),
            cells: vec![vec![Some(1.0)]],
        }];
        render_heatmap_sheet(
            &panels,
            &ticks(&["x"]),
            &ticks(&["y", "z"]),
            &HeatmapStyle::default(),
        );
    }
}
