//! Execution trajectory rendering.

use crate::color;
use crate::svg::{SvgDoc, Viewport};
use gather_geom::Point;

/// Style options for [`render_trajectories`].
#[derive(Debug, Clone, Copy)]
pub struct TrajectoryStyle {
    /// Pixel size of the (square) image.
    pub size: f64,
    /// Polyline opacity.
    pub opacity: f64,
    /// Draw round markers along each trajectory.
    pub waypoints: bool,
}

impl Default for TrajectoryStyle {
    fn default() -> Self {
        TrajectoryStyle {
            size: 640.0,
            opacity: 0.85,
            waypoints: false,
        }
    }
}

/// Renders an execution's position log as SVG.
///
/// * `log[r][i]` is robot `i`'s position after round `r` (`log[0]` is the
///   initial configuration) — exactly the engine's `position_log()`;
/// * `crashed[k] = (robot, round)` draws a crash cross where robot
///   `robot` stood when it crashed.
///
/// Start positions are hollow circles, final positions filled; each robot
/// keeps one palette colour throughout.
///
/// # Panics
///
/// Panics if the log rows have inconsistent robot counts.
pub fn render_trajectories(
    log: &[Vec<Point>],
    crashed: &[(usize, u64)],
    style: TrajectoryStyle,
) -> String {
    let n = log.first().map(|row| row.len()).unwrap_or(0);
    for row in log {
        assert_eq!(row.len(), n, "inconsistent robot count in position log");
    }
    let vp = Viewport::fit(log.iter().flatten().copied(), style.size, 30.0);
    let mut doc = SvgDoc::new(style.size);
    doc.rect_background("#ffffff");

    for robot in 0..n {
        let pts: Vec<(f64, f64)> = log.iter().map(|row| vp.map(row[robot])).collect();
        doc.polyline(&pts, color(robot), 1.6, style.opacity);
        if style.waypoints {
            for &(x, y) in &pts {
                doc.circle(x, y, 1.2, color(robot), "none");
            }
        }
        if let Some(&(sx, sy)) = pts.first() {
            doc.circle(sx, sy, 4.0, "#ffffff", color(robot));
        }
        if let Some(&(ex, ey)) = pts.last() {
            doc.circle(ex, ey, 3.0, color(robot), "none");
        }
    }

    for &(robot, round) in crashed {
        if robot < n {
            let row = (round as usize).min(log.len().saturating_sub(1));
            let (x, y) = vp.map(log[row][robot]);
            doc.cross(x, y, 6.0, "#d62728");
        }
    }

    doc.text(
        8.0,
        style.size - 8.0,
        11.0,
        &format!("{} robots, {} rounds", n, log.len().saturating_sub(1)),
        "#666666",
    );
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_log() -> Vec<Vec<Point>> {
        vec![
            vec![
                Point::new(0.0, 0.0),
                Point::new(4.0, 0.0),
                Point::new(2.0, 3.0),
            ],
            vec![
                Point::new(1.0, 0.5),
                Point::new(3.0, 0.5),
                Point::new(2.0, 2.0),
            ],
            vec![
                Point::new(2.0, 1.0),
                Point::new(2.0, 1.0),
                Point::new(2.0, 1.0),
            ],
        ]
    }

    #[test]
    fn renders_one_polyline_per_robot() {
        let svg = render_trajectories(&demo_log(), &[], TrajectoryStyle::default());
        assert_eq!(svg.matches("<polyline").count(), 3);
        assert!(svg.contains("3 robots, 2 rounds"));
    }

    #[test]
    fn crash_markers_are_drawn() {
        let svg = render_trajectories(&demo_log(), &[(1, 1)], TrajectoryStyle::default());
        assert!(svg.contains("<path"), "crash cross missing");
    }

    #[test]
    fn waypoints_add_circles() {
        let plain = render_trajectories(&demo_log(), &[], TrajectoryStyle::default());
        let with = TrajectoryStyle {
            waypoints: true,
            ..Default::default()
        };
        let dotted = render_trajectories(&demo_log(), &[], with);
        assert!(dotted.matches("<circle").count() > plain.matches("<circle").count());
    }

    #[test]
    fn empty_log_renders_without_panic() {
        let svg = render_trajectories(&[], &[], TrajectoryStyle::default());
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn inconsistent_rows_panic() {
        let log = vec![vec![Point::ORIGIN], vec![Point::ORIGIN, Point::ORIGIN]];
        let _ = render_trajectories(&log, &[], TrajectoryStyle::default());
    }
}
