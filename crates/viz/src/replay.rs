//! Terminal replay of an execution: fixed-frame Unicode rendering.
//!
//! A replay is a sequence of frames, one per position-log row, each
//! rendered into the *same* character viewport so robots move across a
//! stable coordinate system instead of the camera chasing them. The
//! frame contract (relied on by `trace-tool replay` and documented in
//! DESIGN.md §18):
//!
//! * the viewport is fitted once over **every** log row plus the target,
//!   so frame `r` and frame `r+1` map world coordinates identically;
//! * frame `r` shows `log[r]` (`log[0]` is the initial configuration)
//!   under a banner naming the round, the configuration class observed
//!   at the *start* of that round (`classes[r]`), and the live count;
//! * a robot that crashed during round `c` renders as a tombstone `†`
//!   from frame `c + 1` onward, frozen at its final position;
//! * cell precedence is live multiplicity (`●` for 1, digits `2`–`9`,
//!   `#` beyond) over tombstone over the Weber/gathering target `+`.

use gather_geom::Point;

/// Style options for [`render_replay`].
#[derive(Debug, Clone, Copy)]
pub struct ReplayStyle {
    /// Interior grid width in character cells (border excluded).
    pub cols: usize,
    /// Interior grid height in character cells (border excluded).
    pub rows: usize,
}

impl Default for ReplayStyle {
    fn default() -> Self {
        ReplayStyle { cols: 60, rows: 20 }
    }
}

/// The fixed character-grid camera shared by every frame of a replay.
struct CharViewport {
    min_x: f64,
    min_y: f64,
    span_x: f64,
    span_y: f64,
    cols: usize,
    rows: usize,
}

impl CharViewport {
    /// Fits the viewport over `points` with a small margin; degenerate
    /// extents (a single point, a vertical line) are widened to a unit
    /// span so the mapping stays well-defined.
    fn fit(points: impl Iterator<Item = Point>, cols: usize, rows: usize) -> CharViewport {
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in points {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        if !min_x.is_finite() {
            (min_x, min_y, max_x, max_y) = (0.0, 0.0, 1.0, 1.0);
        }
        let pad_x = ((max_x - min_x) * 0.05).max(0.5);
        let pad_y = ((max_y - min_y) * 0.05).max(0.5);
        min_x -= pad_x;
        min_y -= pad_y;
        CharViewport {
            min_x,
            min_y,
            span_x: max_x + pad_x - min_x,
            span_y: max_y + pad_y - min_y,
            cols,
            rows,
        }
    }

    /// Maps a world point to a `(col, row)` cell; row 0 is the top.
    fn map(&self, p: Point) -> (usize, usize) {
        let fx = (p.x - self.min_x) / self.span_x;
        let fy = (p.y - self.min_y) / self.span_y;
        let col = (fx * (self.cols - 1) as f64).round() as usize;
        let row = ((1.0 - fy) * (self.rows - 1) as f64).round() as usize;
        (col.min(self.cols - 1), row.min(self.rows - 1))
    }
}

/// The character for a live-robot cell holding `count` robots.
fn multiplicity_char(count: usize) -> char {
    match count {
        1 => '●',
        2..=9 => (b'0' + count as u8) as char,
        _ => '#',
    }
}

/// Renders an execution into terminal frames (one `String` per log row).
///
/// * `log[r][i]` is robot `i`'s position after round `r` — the engine's
///   `position_log()` (see `Scenario::run_traced_positions`);
/// * `crashed[k] = (robot, round)` marks robot `robot` as crashed during
///   round `round`;
/// * `classes[r]` is the class banner for frame `r` (typically the trace
///   record for round `r`); the final frame, which has no started round,
///   is labelled `final`;
/// * `target`, when present, draws the gathering/Weber point as `+`.
///
/// Every frame has identical dimensions: one banner line plus a
/// `rows + 2` by `cols + 2` box — downstream pagers can seek by a fixed
/// stride and diffing two replays aligns line-for-line.
///
/// # Panics
///
/// Panics if the log rows have inconsistent robot counts.
pub fn render_replay(
    log: &[Vec<Point>],
    crashed: &[(usize, u64)],
    classes: &[&str],
    target: Option<Point>,
    style: ReplayStyle,
) -> Vec<String> {
    let n = log.first().map(|row| row.len()).unwrap_or(0);
    for row in log {
        assert_eq!(row.len(), n, "inconsistent robot count in position log");
    }
    let cols = style.cols.max(8);
    let rows = style.rows.max(4);
    let vp = CharViewport::fit(log.iter().flatten().copied().chain(target), cols, rows);
    let last = log.len().saturating_sub(1);

    log.iter()
        .enumerate()
        .map(|(r, positions)| {
            // A robot crashed during round c is live through frame c (its
            // last own move landed there) and a tombstone from c + 1 on.
            let dead = |robot: usize| {
                crashed
                    .iter()
                    .any(|&(who, when)| who == robot && (when as usize) < r)
            };
            let mut live = vec![0usize; cols * rows];
            let mut tombs = vec![false; cols * rows];
            for (robot, &p) in positions.iter().enumerate() {
                let (c, w) = vp.map(p);
                if dead(robot) {
                    tombs[w * cols + c] = true;
                } else {
                    live[w * cols + c] += 1;
                }
            }
            let target_cell = target.map(|t| vp.map(t));

            let alive = (0..n).filter(|&i| !dead(i)).count();
            let banner = if r < classes.len() {
                format!(
                    "round {r}/{last} · class {} · alive {alive}/{n}",
                    classes[r]
                )
            } else {
                format!("round {r}/{last} · final · alive {alive}/{n}")
            };

            let mut frame = String::with_capacity((cols + 3) * (rows + 3) + banner.len());
            frame.push_str(&banner);
            frame.push('\n');
            frame.push('┌');
            frame.extend(std::iter::repeat_n('─', cols));
            frame.push_str("┐\n");
            for w in 0..rows {
                frame.push('│');
                for c in 0..cols {
                    let count = live[w * cols + c];
                    frame.push(if count > 0 {
                        multiplicity_char(count)
                    } else if tombs[w * cols + c] {
                        '†'
                    } else if target_cell == Some((c, w)) {
                        '+'
                    } else {
                        ' '
                    });
                }
                frame.push_str("│\n");
            }
            frame.push('└');
            frame.extend(std::iter::repeat_n('─', cols));
            frame.push('┘');
            frame
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_log() -> Vec<Vec<Point>> {
        vec![
            vec![
                Point::new(0.0, 0.0),
                Point::new(4.0, 0.0),
                Point::new(2.0, 3.0),
            ],
            vec![
                Point::new(1.0, 0.5),
                Point::new(4.0, 0.0),
                Point::new(2.0, 2.0),
            ],
            vec![
                Point::new(2.0, 1.0),
                Point::new(4.0, 0.0),
                Point::new(2.0, 1.0),
            ],
        ]
    }

    #[test]
    fn one_frame_per_log_row_with_fixed_dimensions() {
        let style = ReplayStyle { cols: 32, rows: 10 };
        let frames = render_replay(&demo_log(), &[], &["A", "QR"], None, style);
        assert_eq!(frames.len(), 3);
        for frame in &frames {
            let lines: Vec<&str> = frame.lines().collect();
            assert_eq!(lines.len(), 1 + 10 + 2, "banner + box rows");
            for line in &lines[1..] {
                assert_eq!(line.chars().count(), 32 + 2, "fixed width: {line}");
            }
        }
        assert!(frames[0].starts_with("round 0/2 · class A · alive 3/3"));
        assert!(frames[1].starts_with("round 1/2 · class QR · alive 3/3"));
        assert!(frames[2].starts_with("round 2/2 · final · alive 3/3"));
    }

    #[test]
    fn tombstone_appears_the_frame_after_the_crash_round() {
        // Robot 1 crashes during round 0: live in frame 0, † from frame 1.
        let frames = render_replay(
            &demo_log(),
            &[(1, 0)],
            &["A", "A"],
            None,
            ReplayStyle::default(),
        );
        assert!(!frames[0].contains('†'));
        assert!(frames[1].contains('†'));
        assert!(frames[2].contains('†'));
        assert!(frames[1].starts_with("round 1/2 · class A · alive 2/3"));
    }

    #[test]
    fn multiplicities_render_as_digits_and_the_target_as_a_plus() {
        let frames = render_replay(
            &demo_log(),
            &[],
            &[],
            Some(Point::new(0.0, 3.0)),
            ReplayStyle::default(),
        );
        // Robots 0 and 2 coincide at (2, 1) in the final frame.
        assert!(frames[2].contains('2'), "multiplicity digit: {}", frames[2]);
        for frame in &frames {
            assert!(frame.contains('+'), "target marker in every frame");
        }
    }

    #[test]
    fn live_robots_cover_tombstones_and_the_target() {
        // Crashed robot 0 and live robot 1 share a cell; the live robot
        // wins. The target under robot 1 is hidden too.
        let log = vec![
            vec![Point::new(0.0, 0.0), Point::new(0.0, 0.0)],
            vec![Point::new(0.0, 0.0), Point::new(0.0, 0.0)],
        ];
        let frames = render_replay(
            &log,
            &[(0, 0)],
            &["M"],
            Some(Point::new(0.0, 0.0)),
            ReplayStyle::default(),
        );
        assert!(!frames[1].contains('†'));
        assert!(!frames[1].contains('+'));
        assert!(frames[1].contains('●'));
    }

    #[test]
    fn frames_share_one_viewport_across_the_whole_log() {
        // A stationary robot must occupy the same cell in every frame even
        // though the other robot's travel dominates the extent.
        let log = vec![
            vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)],
            vec![Point::new(0.0, 0.0), Point::new(50.0, 0.0)],
            vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)],
        ];
        let style = ReplayStyle { cols: 40, rows: 8 };
        let frames = render_replay(&log, &[], &[], None, style);
        let stationary_cell = |frame: &str| {
            frame
                .lines()
                .skip(2)
                .position(|l| l.contains('●') || l.contains('2'))
        };
        let first = stationary_cell(&frames[0]);
        assert!(first.is_some());
        assert_eq!(first, stationary_cell(&frames[1]));
        assert_eq!(first, stationary_cell(&frames[2]));
    }

    #[test]
    fn empty_log_renders_no_frames() {
        let frames = render_replay(&[], &[], &[], None, ReplayStyle::default());
        assert!(frames.is_empty());
    }

    #[test]
    fn degenerate_single_point_log_does_not_panic() {
        let log = vec![vec![Point::new(3.0, 3.0)]];
        let frames = render_replay(&log, &[], &[], None, ReplayStyle::default());
        assert_eq!(frames.len(), 1);
        assert!(frames[0].contains('●'));
    }
}
