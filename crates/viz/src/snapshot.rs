//! Single-configuration rendering with classification artefacts.

use crate::svg::{SvgDoc, Viewport};
use gather_config::{classify, Configuration};
use gather_geom::Tol;

/// Style options for [`render_configuration`].
#[derive(Debug, Clone, Copy)]
pub struct SnapshotStyle {
    /// Pixel size of the (square) image.
    pub size: f64,
    /// Draw the smallest enclosing circle.
    pub sec: bool,
    /// Annotate the class and target.
    pub annotate: bool,
}

impl Default for SnapshotStyle {
    fn default() -> Self {
        SnapshotStyle {
            size: 480.0,
            sec: true,
            annotate: true,
        }
    }
}

/// Renders one configuration as SVG: occupied locations sized and labelled
/// by multiplicity, optionally the smallest enclosing circle, the class
/// name, and the classification target (as a ring marker).
pub fn render_configuration(config: &Configuration, tol: Tol, style: SnapshotStyle) -> String {
    let distinct = config.distinct();
    let sec = config.sec();
    let vp = Viewport::fit(
        distinct
            .iter()
            .map(|(p, _)| *p)
            .chain(std::iter::once(sec.center)),
        style.size,
        40.0,
    );
    let mut doc = SvgDoc::new(style.size);
    doc.rect_background("#ffffff");

    if style.sec && distinct.len() > 1 {
        let (cx, cy) = vp.map(sec.center);
        let (rx, _) = vp.map(gather_geom::Point::new(
            sec.center.x + sec.radius,
            sec.center.y,
        ));
        doc.circle_outline(cx, cy, rx - cx, "#bbbbbb", true);
    }

    let analysis = (!config.is_empty()).then(|| classify(config, tol));

    for (p, mult) in &distinct {
        let (x, y) = vp.map(*p);
        let r = 4.0 + 2.0 * (*mult as f64).sqrt();
        doc.circle(x, y, r, "#4c78a8", "#2a4a6b");
        if *mult > 1 {
            doc.text(x + r + 2.0, y + 4.0, 11.0, &format!("×{mult}"), "#333333");
        }
    }

    if let Some(analysis) = &analysis {
        if let Some(target) = analysis.target {
            let (x, y) = vp.map(target);
            doc.circle_outline(x, y, 9.0, "#e45756", false);
        }
        if style.annotate {
            doc.text(
                8.0,
                16.0,
                13.0,
                &format!(
                    "class {} (n = {}{})",
                    analysis.class.short_name(),
                    config.len(),
                    analysis
                        .qreg
                        .map(|m| format!(", qreg = {m}"))
                        .unwrap_or_default()
                ),
                "#333333",
            );
        }
    }
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gather_geom::Point;

    #[test]
    fn renders_multiplicity_labels_and_class() {
        let config = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 4.0),
        ]);
        let svg = render_configuration(&config, Tol::default(), SnapshotStyle::default());
        assert!(svg.contains("×2"));
        assert!(svg.contains("class M"));
        assert!(svg.contains("stroke-dasharray")); // the SEC
    }

    #[test]
    fn qr_annotation_includes_qreg() {
        let config: Configuration = (0..5)
            .map(|k| {
                let th = std::f64::consts::TAU * k as f64 / 5.0;
                Point::new(th.cos(), th.sin())
            })
            .collect();
        let svg = render_configuration(&config, Tol::default(), SnapshotStyle::default());
        assert!(svg.contains("class QR"));
        assert!(svg.contains("qreg = 5"));
    }

    #[test]
    fn annotation_can_be_disabled() {
        let config = Configuration::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]);
        let style = SnapshotStyle {
            annotate: false,
            sec: false,
            ..Default::default()
        };
        let svg = render_configuration(&config, Tol::default(), style);
        assert!(!svg.contains("class "));
        assert!(!svg.contains("stroke-dasharray"));
    }
}
