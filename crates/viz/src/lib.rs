//! SVG rendering of robot-gathering executions.
//!
//! Two renderers, both dependency-free (hand-written SVG):
//!
//! * [`render_trajectories`] — the whole execution: per-robot polylines
//!   from a position log (as recorded by the engine's
//!   `record_positions(true)`), start/end markers, crash crosses, the
//!   gathering point;
//! * [`render_configuration`] — one configuration snapshot with
//!   multiplicity labels, the smallest enclosing circle, and the
//!   classification target;
//! * [`render_heatmap_sheet`] — multi-panel phase-diagram heatmaps for
//!   the mega-sweep's parameter-space cartography;
//! * [`render_replay`] — terminal (Unicode, fixed-frame) replay of an
//!   execution for `trace-tool replay`, one frame per position-log row.
//!
//! # Example
//!
//! ```
//! use gather_viz::{render_trajectories, TrajectoryStyle};
//! use gather_geom::Point;
//!
//! let log = vec![
//!     vec![Point::new(0.0, 0.0), Point::new(4.0, 0.0)],
//!     vec![Point::new(1.0, 0.0), Point::new(3.0, 0.0)],
//!     vec![Point::new(2.0, 0.0), Point::new(2.0, 0.0)],
//! ];
//! let svg = render_trajectories(&log, &[], TrajectoryStyle::default());
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.contains("polyline"));
//! ```

mod heatmap;
mod replay;
mod snapshot;
mod svg;
mod trajectories;

pub use heatmap::{render_heatmap_sheet, HeatmapPanel, HeatmapStyle};
pub use replay::{render_replay, ReplayStyle};
pub use snapshot::{render_configuration, SnapshotStyle};
pub use trajectories::{render_trajectories, TrajectoryStyle};

/// A categorical colour palette with good contrast on white.
pub(crate) const PALETTE: [&str; 10] = [
    "#4c78a8", "#f58518", "#54a24b", "#e45756", "#72b7b2", "#b279a2", "#ff9da6", "#9d755d",
    "#bab0ac", "#eeca3b",
];

/// Picks a palette colour by index.
pub(crate) fn color(i: usize) -> &'static str {
    PALETTE[i % PALETTE.len()]
}
