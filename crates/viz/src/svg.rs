//! Minimal SVG document builder and world→screen mapping.

use gather_geom::Point;

/// Maps world coordinates into a square SVG viewport with padding,
/// preserving aspect ratio and flipping the y axis (SVG grows downward).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Viewport {
    scale: f64,
    offset_x: f64,
    offset_y: f64,
}

impl Viewport {
    /// A viewport fitting all `points` into `size`×`size` pixels with
    /// `pad` pixels of padding. Falls back to a unit window for empty or
    /// degenerate input.
    pub fn fit(points: impl Iterator<Item = Point>, size: f64, pad: f64) -> Self {
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for p in points {
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
        }
        if !min_x.is_finite() || max_x - min_x < 1e-9 && max_y - min_y < 1e-9 {
            let cx = if min_x.is_finite() { min_x } else { 0.0 };
            let cy = if min_y.is_finite() { min_y } else { 0.0 };
            min_x = cx - 1.0;
            max_x = cx + 1.0;
            min_y = cy - 1.0;
            max_y = cy + 1.0;
        }
        let span = (max_x - min_x).max(max_y - min_y);
        let scale = (size - 2.0 * pad) / span;
        Viewport {
            scale,
            offset_x: pad - min_x * scale + (size - 2.0 * pad - (max_x - min_x) * scale) / 2.0,
            offset_y: pad + max_y * scale + (size - 2.0 * pad - (max_y - min_y) * scale) / 2.0,
        }
    }

    /// World point → pixel coordinates.
    pub fn map(&self, p: Point) -> (f64, f64) {
        (
            self.offset_x + p.x * self.scale,
            self.offset_y - p.y * self.scale,
        )
    }
}

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub(crate) struct SvgDoc {
    body: String,
    width: f64,
    height: f64,
}

impl SvgDoc {
    pub fn new(size: f64) -> Self {
        SvgDoc::new_wh(size, size)
    }

    /// A document with an explicit width × height viewport (heatmap
    /// sheets are rarely square).
    pub fn new_wh(width: f64, height: f64) -> Self {
        SvgDoc {
            body: String::new(),
            width,
            height,
        }
    }

    pub fn rect_background(&mut self, fill: &str) {
        self.body.push_str(&format!(
            r#"<rect width="{w}" height="{h}" fill="{fill}"/>"#,
            w = self.width,
            h = self.height
        ));
    }

    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str) {
        self.body.push_str(&format!(
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{fill}"/>"#
        ));
    }

    pub fn circle(&mut self, x: f64, y: f64, r: f64, fill: &str, stroke: &str) {
        self.body.push_str(&format!(
            r#"<circle cx="{x:.2}" cy="{y:.2}" r="{r:.2}" fill="{fill}" stroke="{stroke}"/>"#
        ));
    }

    pub fn circle_outline(&mut self, x: f64, y: f64, r: f64, stroke: &str, dash: bool) {
        let dash_attr = if dash {
            r#" stroke-dasharray="4 3""#
        } else {
            ""
        };
        self.body.push_str(&format!(
            r#"<circle cx="{x:.2}" cy="{y:.2}" r="{r:.2}" fill="none" stroke="{stroke}"{dash_attr}/>"#
        ));
    }

    pub fn polyline(&mut self, pts: &[(f64, f64)], stroke: &str, width: f64, opacity: f64) {
        if pts.len() < 2 {
            return;
        }
        let coords: Vec<String> = pts.iter().map(|(x, y)| format!("{x:.2},{y:.2}")).collect();
        self.body.push_str(&format!(
            r#"<polyline points="{}" fill="none" stroke="{stroke}" stroke-width="{width}" stroke-opacity="{opacity}" stroke-linejoin="round"/>"#,
            coords.join(" ")
        ));
    }

    pub fn cross(&mut self, x: f64, y: f64, r: f64, stroke: &str) {
        self.body.push_str(&format!(
            r#"<path d="M {x0:.2} {y0:.2} L {x1:.2} {y1:.2} M {x0:.2} {y1:.2} L {x1:.2} {y0:.2}" stroke="{stroke}" stroke-width="2"/>"#,
            x0 = x - r,
            y0 = y - r,
            x1 = x + r,
            y1 = y + r,
        ));
    }

    pub fn text(&mut self, x: f64, y: f64, size: f64, content: &str, fill: &str) {
        self.body.push_str(&format!(
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size}" font-family="sans-serif" fill="{fill}">{}</text>"#,
            xml_escape(content)
        ));
    }

    pub fn finish(self) -> String {
        format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">{}</svg>"#,
            self.body,
            w = self.width,
            h = self.height
        )
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn viewport_maps_corners_inside() {
        let pts = [Point::new(-5.0, -5.0), Point::new(5.0, 5.0)];
        let vp = Viewport::fit(pts.iter().copied(), 400.0, 20.0);
        for p in pts {
            let (x, y) = vp.map(p);
            assert!((0.0..=400.0).contains(&x), "x={x}");
            assert!((0.0..=400.0).contains(&y), "y={y}");
        }
    }

    #[test]
    fn viewport_flips_y() {
        let pts = [Point::new(0.0, 0.0), Point::new(0.0, 10.0)];
        let vp = Viewport::fit(pts.iter().copied(), 400.0, 20.0);
        let (_, y_low) = vp.map(Point::new(0.0, 0.0));
        let (_, y_high) = vp.map(Point::new(0.0, 10.0));
        assert!(y_high < y_low, "higher world y must be higher on screen");
    }

    #[test]
    fn viewport_handles_degenerate_input() {
        let vp = Viewport::fit(std::iter::empty(), 400.0, 20.0);
        let (x, y) = vp.map(Point::ORIGIN);
        assert!(x.is_finite() && y.is_finite());
        let single = Viewport::fit([Point::new(3.0, 3.0)].into_iter(), 400.0, 20.0);
        let (x, y) = single.map(Point::new(3.0, 3.0));
        assert!((0.0..=400.0).contains(&x) && (0.0..=400.0).contains(&y));
    }

    #[test]
    fn document_structure() {
        let mut doc = SvgDoc::new(200.0);
        doc.rect_background("#fff");
        doc.circle(10.0, 10.0, 3.0, "red", "none");
        doc.polyline(&[(0.0, 0.0), (5.0, 5.0)], "blue", 1.5, 0.8);
        doc.cross(20.0, 20.0, 4.0, "black");
        doc.text(5.0, 15.0, 10.0, "a < b", "gray");
        let svg = doc.finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains("&lt;")); // escaped text
    }

    #[test]
    fn short_polylines_are_skipped() {
        let mut doc = SvgDoc::new(100.0);
        doc.polyline(&[(1.0, 1.0)], "red", 1.0, 1.0);
        assert!(!doc.finish().contains("polyline"));
    }
}
