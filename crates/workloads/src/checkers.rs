//! Invariant checkers for the related-work scenario families.
//!
//! Each family pairs a workload generator with a predicate the execution
//! must (or measurably fails to) satisfy:
//!
//! * **Grid-constrained gathering** (Bose et al., arXiv:1709.00877) —
//!   robots live on ℤ² and hop along the axes. The model invariant is
//!   that every *resting* robot sits on a lattice point and every
//!   completed hop is axis-aligned; [`grid_resting_violations`] and
//!   [`axis_aligned`] audit exactly that. A robot mid-edge is legitimate
//!   continuous motion (the engine materialises trajectories), so the
//!   checker only judges robots the caller marks at rest.
//! * **Stand-up indulgent gathering** (Bramas et al., arXiv:2302.03466) —
//!   success is not "all live robots co-located" but "all live robots
//!   co-located *at the crashed robot's position*": the swarm must stand
//!   up where the casualty lies. [`standup_success`] evaluates that
//!   strengthened predicate; the boundary experiments show the paper's
//!   Weber-seeking algorithm gathers *away* from the casualty.

use gather_geom::{Point, Tol};

/// Indices of robots that are **at rest off the lattice** — the grid
/// model's forbidden state. `at_rest[i]` is the caller's verdict on
/// whether robot `i` is between activations (idle/computing/crashed)
/// rather than mid-flight; the async engine's `at_rest` accessor supplies
/// it directly, round-based engines pass all-true. Positions within
/// `tol.snap` of a lattice point count as on it (canonicalisation snaps
/// at that radius).
pub fn grid_resting_violations(positions: &[Point], at_rest: &[bool], tol: Tol) -> Vec<usize> {
    assert_eq!(positions.len(), at_rest.len());
    positions
        .iter()
        .zip(at_rest)
        .enumerate()
        .filter(|(_, (p, rest))| {
            **rest && {
                let cell = Point::new(p.x.round(), p.y.round());
                !p.within(cell, tol.snap)
            }
        })
        .map(|(i, _)| i)
        .collect()
}

/// Is the segment `from → to` axis-aligned (one coordinate unchanged
/// within `tol.snap`)? Zero-length segments are trivially axis-aligned.
pub fn axis_aligned(from: Point, to: Point, tol: Tol) -> bool {
    (from.x - to.x).abs() <= tol.snap || (from.y - to.y).abs() <= tol.snap
}

/// The stand-up indulgent success predicate: every **correct** robot is
/// co-located with the crashed robot's resting position `crash_at`
/// (within `tol.snap`). Plain gathering somewhere else — e.g. at the
/// Weber point of the initial configuration — is a *failure* under this
/// predicate even though the ordinary `GATHERED` check passes.
pub fn standup_success(positions: &[Point], correct: &[bool], crash_at: Point, tol: Tol) -> bool {
    assert_eq!(positions.len(), correct.len());
    positions
        .iter()
        .zip(correct)
        .filter(|(_, ok)| **ok)
        .all(|(p, _)| p.within(crash_at, tol.snap))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resting_off_lattice_is_flagged() {
        let tol = Tol::default();
        let pts = [
            Point::new(1.0, 2.0),  // on lattice, at rest — fine
            Point::new(1.5, 2.0),  // mid-edge but flying — fine
            Point::new(0.25, 0.0), // mid-edge AND at rest — violation
        ];
        let at_rest = [true, false, true];
        assert_eq!(grid_resting_violations(&pts, &at_rest, tol), vec![2]);
    }

    #[test]
    fn snap_radius_tolerates_canonicalisation_jitter() {
        let tol = Tol::default();
        let nearly = Point::new(3.0 + tol.snap * 0.5, -1.0);
        assert!(grid_resting_violations(&[nearly], &[true], tol).is_empty());
    }

    #[test]
    fn axis_alignment() {
        let tol = Tol::default();
        let o = Point::new(2.0, 2.0);
        assert!(axis_aligned(o, Point::new(3.0, 2.0), tol));
        assert!(axis_aligned(o, Point::new(2.0, -5.0), tol));
        assert!(axis_aligned(o, o, tol));
        assert!(!axis_aligned(o, Point::new(3.0, 3.0), tol));
    }

    #[test]
    fn standup_requires_the_crash_site() {
        let tol = Tol::default();
        let crash_at = Point::new(1.0, 1.0);
        let elsewhere = Point::new(4.0, 4.0);
        // All correct robots at the casualty: success (the casualty's own
        // entry is excused via correct=false).
        let pts = [crash_at, crash_at, crash_at];
        assert!(standup_success(&pts, &[false, true, true], crash_at, tol));
        // Gathered, but not at the casualty: failure.
        let pts = [crash_at, elsewhere, elsewhere];
        assert!(!standup_success(&pts, &[false, true, true], crash_at, tol));
        // One straggler: failure.
        let pts = [crash_at, crash_at, elsewhere];
        assert!(!standup_success(&pts, &[false, true, true], crash_at, tol));
    }
}
