//! Seeded workload generators: initial robot configurations of every class.
//!
//! Experiments and tests need reproducible initial configurations of each
//! of the paper's classes (`B`, `M`, `L1W`, `L2W`, `QR`, `A`) plus generic
//! families (random scatter, grids, clusters). All generators are
//! deterministic in their seed; none read ambient randomness.
//!
//! # Example
//!
//! ```
//! use gather_workloads as workloads;
//! use gather_config::{classify, Class, Configuration};
//! use gather_geom::Tol;
//!
//! let pts = workloads::of_class(Class::Asymmetric, 7, 42);
//! let analysis = classify(&Configuration::new(pts), Tol::default());
//! assert_eq!(analysis.class, Class::Asymmetric);
//! ```

use gather_config::{classify, Class, Configuration};
use gather_geom::{Point, Tol};
use gather_prng::Rng;
use std::f64::consts::TAU;

pub mod checkers;

/// A bivalent configuration: `n/2` robots on each of two points.
///
/// # Panics
///
/// Panics if `n` is odd or `n < 2`.
pub fn bivalent(n: usize, separation: f64) -> Vec<Point> {
    assert!(
        n >= 2 && n.is_multiple_of(2),
        "bivalent configurations need even n >= 2"
    );
    let a = Point::new(0.0, 0.0);
    let b = Point::new(separation, 0.0);
    let mut pts = vec![a; n / 2];
    pts.extend(vec![b; n / 2]);
    pts
}

/// A class-`M` configuration: a stack of `stack` robots plus random
/// satellites (stack strictly larger than any accidental satellite stack).
///
/// # Panics
///
/// Panics if `stack < 2` or `stack >= n`.
pub fn multiple(n: usize, stack: usize, seed: u64) -> Vec<Point> {
    assert!(stack >= 2 && stack < n, "need 2 <= stack < n");
    let mut rng = Rng::seed_from_u64(seed);
    let heavy = Point::new(0.0, 0.0);
    let mut pts = vec![heavy; stack];
    while pts.len() < n {
        let p = Point::new(rng.random_range(-10.0..10.0), rng.random_range(-10.0..10.0));
        // Keep satellites clearly distinct so multiplicities stay exact.
        if pts.iter().all(|q| q.dist(p) > 0.5) {
            pts.push(p);
        }
    }
    pts
}

/// A class-`L1W` configuration: `n` collinear robots with a unique median
/// (odd `n`, distinct positions).
///
/// # Panics
///
/// Panics if `n < 3` or `n` is even.
pub fn collinear_1w(n: usize, seed: u64) -> Vec<Point> {
    assert!(n >= 3 && n % 2 == 1, "L1W generator wants odd n >= 3");
    let mut rng = Rng::seed_from_u64(seed);
    let dir = TAU * rng.random_range(0.0..1.0);
    let (s, c) = dir.sin_cos();
    let mut ts = std::collections::BTreeSet::new();
    while ts.len() < n {
        ts.insert((rng.random_range(-10.0_f64..10.0) * 100.0) as i64);
    }
    ts.into_iter()
        .map(|t| {
            let t = t as f64 / 100.0;
            Point::new(t * c, t * s)
        })
        .collect()
}

/// A class-`L2W` configuration: even `n >= 4` distinct collinear positions
/// with two distinct medians.
///
/// # Panics
///
/// Panics if `n < 4` or `n` is odd.
pub fn collinear_2w(n: usize, seed: u64) -> Vec<Point> {
    assert!(
        n >= 4 && n.is_multiple_of(2),
        "L2W generator wants even n >= 4"
    );
    let mut rng = Rng::seed_from_u64(seed);
    let dir = TAU * rng.random_range(0.0..1.0);
    let (s, c) = dir.sin_cos();
    let mut ts = std::collections::BTreeSet::new();
    while ts.len() < n {
        ts.insert((rng.random_range(-10.0_f64..10.0) * 100.0) as i64);
    }
    let pts: Vec<Point> = ts
        .into_iter()
        .map(|t| {
            let t = t as f64 / 100.0;
            Point::new(t * c, t * s)
        })
        .collect();
    pts
}

/// A regular `n`-gon of radius `radius` with phase `phase`, centred at the
/// origin (class `QR`, symmetric).
pub fn regular_polygon(n: usize, radius: f64, phase: f64) -> Vec<Point> {
    (0..n)
        .map(|k| {
            let th = TAU * k as f64 / n as f64 + phase;
            Point::new(radius * th.cos(), radius * th.sin())
        })
        .collect()
}

/// A regular `ring`-gon plus `at_center` robots stacked on the centre
/// (class `QR` with an occupied centre, exercising Lemma 3.4).
pub fn ring_with_center(ring: usize, at_center: usize, radius: f64) -> Vec<Point> {
    let mut pts = regular_polygon(ring, radius, 0.37);
    pts.extend(std::iter::repeat_n(Point::ORIGIN, at_center));
    pts
}

/// A biangular configuration: `2k` robots around the origin with
/// alternating angular gaps `alpha` and `2π/k − alpha` and alternating
/// radii — regular (class `QR`) but not rotationally symmetric.
///
/// # Panics
///
/// Panics if `k < 2` or `alpha` is not within `(0, 2π/k)`.
pub fn biangular(k: usize, alpha: f64, r_even: f64, r_odd: f64) -> Vec<Point> {
    assert!(k >= 2, "biangular configurations need k >= 2");
    let beta = TAU / k as f64 - alpha;
    assert!(alpha > 0.0 && beta > 0.0, "alpha must be in (0, 2π/k)");
    let mut pts = Vec::with_capacity(2 * k);
    let mut theta: f64 = 0.1;
    for i in 0..(2 * k) {
        let r = if i % 2 == 0 { r_even } else { r_odd };
        pts.push(Point::new(r * theta.cos(), r * theta.sin()));
        theta += if i % 2 == 0 { alpha } else { beta };
    }
    pts
}

/// A quasi-regular configuration: a symmetric multi-ring partially
/// converged toward its centre with per-robot radial factors (directions
/// preserved, radii scrambled) — exactly the configurations WAIT-FREE-GATHER
/// produces while driving class `QR` toward the Weber point.
pub fn quasi_regular(m: usize, rings: usize, seed: u64) -> Vec<Point> {
    assert!(m >= 2, "quasi-regular symmetry must be at least 2");
    let mut rng = Rng::seed_from_u64(seed);
    let mut pts = Vec::new();
    for ring in 0..rings.max(1) {
        let base_r = 2.0 + 2.0 * ring as f64;
        let phase = rng.random_range(0.0..TAU);
        for k in 0..m {
            let th = TAU * k as f64 / m as f64 + phase;
            // Independent radial shrink per robot: preserves the direction
            // structure (regularity) but not congruence (symmetry).
            let r = base_r * rng.random_range(0.2..1.0);
            pts.push(Point::new(r * th.cos(), r * th.sin()));
        }
    }
    pts
}

/// `n` robots uniformly scattered in a `2·extent`-sided square; positions
/// are kept pairwise-distinct.
pub fn random_scatter(n: usize, extent: f64, seed: u64) -> Vec<Point> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut pts: Vec<Point> = Vec::with_capacity(n);
    while pts.len() < n {
        let p = Point::new(
            rng.random_range(-extent..extent),
            rng.random_range(-extent..extent),
        );
        if pts.iter().all(|q| q.dist(p) > extent * 1e-3) {
            pts.push(p);
        }
    }
    pts
}

/// `n` robots split into `k` tight stacks at random locations (heavy
/// multiplicities, possibly tied).
pub fn clusters(n: usize, k: usize, seed: u64) -> Vec<Point> {
    assert!(k >= 1 && k <= n, "need 1 <= k <= n");
    let mut rng = Rng::seed_from_u64(seed);
    let centers: Vec<Point> = (0..k)
        .map(|_| Point::new(rng.random_range(-10.0..10.0), rng.random_range(-10.0..10.0)))
        .collect();
    (0..n).map(|i| centers[i % k]).collect()
}

/// `n` robots on *distinct* integer-lattice points within
/// `[-extent, extent]²` — the initial configurations of the
/// grid-constrained gathering family (Bose et al., arXiv:1709.00877),
/// where robots live on ℤ² and move in axis-aligned unit steps. Rejects
/// symmetric accidents no more than the continuous scatter does; the grid
/// family's invariant is the lattice itself, audited by
/// [`checkers::grid_resting_violations`].
///
/// # Panics
///
/// Panics if the requested `n` exceeds the number of lattice points in the
/// square (`(2·extent + 1)²`).
pub fn lattice_scatter(n: usize, extent: i64, seed: u64) -> Vec<Point> {
    let side = 2 * extent + 1;
    assert!(
        (n as i64) <= side * side,
        "lattice_scatter: n = {n} robots cannot fit {side}×{side} cells"
    );
    let mut rng = Rng::seed_from_u64(seed);
    let mut taken = std::collections::BTreeSet::new();
    let mut pts = Vec::with_capacity(n);
    while pts.len() < n {
        let x = rng.bounded_u64(side as u64) as i64 - extent;
        let y = rng.bounded_u64(side as u64) as i64 - extent;
        if taken.insert((x, y)) {
            pts.push(Point::new(x as f64, y as f64));
        }
    }
    pts
}

/// A `w × h` grid of robots with the given spacing (symmetric for square
/// grids, class `QR`; a degenerate 1-row grid is collinear).
pub fn grid(w: usize, h: usize, spacing: f64) -> Vec<Point> {
    let mut pts = Vec::with_capacity(w * h);
    for i in 0..w {
        for j in 0..h {
            pts.push(Point::new(i as f64 * spacing, j as f64 * spacing));
        }
    }
    pts
}

/// An asymmetric (class `A`) configuration of `n >= 4` robots, by rejection
/// sampling random scatters (random configurations of `n ≥ 5` distinct
/// points are asymmetric with overwhelming probability; for `n = 4` the
/// generator plants the Weber point on an occupied position).
///
/// # Panics
///
/// Panics if `n < 4` (3 distinct non-collinear points are always
/// quasi-regular via their Fermat point).
pub fn asymmetric(n: usize, seed: u64) -> Vec<Point> {
    assert!(n >= 4, "class A needs n >= 4");
    for attempt in 0..1000 {
        let pts = if n == 4 {
            // Vertex-Weber construction: three satellites whose unit pull
            // at the origin stays below 1, at non-periodic angles.
            let mut rng = Rng::seed_from_u64(seed.wrapping_add(attempt));
            let jitter = rng.random_range(-5.0..5.0_f64).to_radians();
            let deg = |d: f64| d.to_radians() + jitter;
            vec![
                Point::new(0.0, 0.0),
                Point::new(3.0 * deg(0.0).cos(), 3.0 * deg(0.0).sin()),
                Point::new(2.0 * deg(100.0).cos(), 2.0 * deg(100.0).sin()),
                Point::new(2.5 * deg(200.0).cos(), 2.5 * deg(200.0).sin()),
            ]
        } else {
            random_scatter(n, 10.0, seed.wrapping_add(attempt))
        };
        let analysis = classify(&Configuration::new(pts.clone()), Tol::default());
        if analysis.class == Class::Asymmetric {
            return pts;
        }
    }
    panic!("failed to generate an asymmetric configuration of n = {n}");
}

/// A near-bivalent configuration: two stacks of `n/2` and `n/2 ± 1`
/// robots — one robot away from the forbidden class `B`, classifying as
/// `M`. Useful for probing the classification boundary and the
/// never-enter-`B` invariant.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn near_bivalent(n: usize, separation: f64) -> Vec<Point> {
    assert!(n >= 3, "near-bivalent needs n >= 3");
    let heavy = n / 2 + 1;
    let light = n - heavy;
    let a = Point::new(0.0, 0.0);
    let b = Point::new(separation, 0.0);
    let mut pts = vec![a; heavy];
    pts.extend(vec![b; light]);
    pts
}

/// `n` robots on a common circle at random angles (co-circular but
/// generically irregular). For `n ≥ 5` such configurations are typically
/// class `A` with the whole configuration on its own smallest enclosing
/// circle — a useful stress case for view computation (every position is
/// on the SEC boundary).
pub fn co_circular(n: usize, radius: f64, seed: u64) -> Vec<Point> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut angles: Vec<f64> = Vec::with_capacity(n);
    while angles.len() < n {
        let a = rng.random_range(0.0..TAU);
        if angles.iter().all(|b| {
            let mut d = (a - b).abs();
            if d > TAU / 2.0 {
                d = TAU - d;
            }
            d > 0.05
        }) {
            angles.push(a);
        }
    }
    angles
        .into_iter()
        .map(|a| Point::new(radius * a.cos(), radius * a.sin()))
        .collect()
}

/// An axially (mirror) symmetric configuration: `pairs` mirror pairs
/// across a random axis through the origin plus `on_axis` robots on the
/// axis itself — and no rotational symmetry.
///
/// The paper's Section I observes that configurations which are neither
/// quasi-regular nor linear "are either completely asymmetric or have only
/// axial symmetry", and that **chirality breaks axial symmetry**: mirrored
/// positions see the world with opposite handedness, so their clockwise
/// views differ and the configuration classifies as `A`. The generator
/// rejection-samples until that is the case (tiny `pairs` values can land
/// in `QR` through their Weber point).
///
/// # Panics
///
/// Panics if `pairs < 2` or generation fails repeatedly (does not happen
/// for `pairs >= 2` with the default tolerance).
pub fn axially_symmetric(pairs: usize, on_axis: usize, seed: u64) -> Vec<Point> {
    assert!(pairs >= 2, "need at least two mirror pairs");
    for attempt in 0..1000 {
        let mut rng = Rng::seed_from_u64(seed.wrapping_add(attempt * 7919));
        let axis = rng.random_range(0.0..TAU);
        let (sin, cos) = axis.sin_cos();
        let mut pts = Vec::with_capacity(2 * pairs + on_axis);
        for _ in 0..pairs {
            // A point in axis-aligned coordinates (u along the axis, v off).
            let u = rng.random_range(-8.0_f64..8.0);
            let v = rng.random_range(0.5_f64..8.0);
            pts.push(Point::new(u * cos - v * sin, u * sin + v * cos));
            pts.push(Point::new(u * cos + v * sin, u * sin - v * cos)); // mirror
        }
        for _ in 0..on_axis {
            let u = rng.random_range(-8.0_f64..8.0);
            pts.push(Point::new(u * cos, u * sin));
        }
        let analysis = classify(&Configuration::new(pts.clone()), Tol::default());
        if analysis.class == Class::Asymmetric {
            return pts;
        }
    }
    panic!("failed to generate an axially symmetric class-A configuration");
}

/// A configuration of the requested class, deterministically from the
/// seed. `n` is adjusted minimally when a class constrains it (e.g. `B`
/// needs even `n`); the returned configuration always classifies as
/// requested under [`Tol::default`].
///
/// # Panics
///
/// Panics if `n < 4` (every class is realisable from 4 robots up; `QR`
/// accepts any `n >= 3`).
pub fn of_class(class: Class, n: usize, seed: u64) -> Vec<Point> {
    assert!(n >= 4, "of_class needs n >= 4");
    let pts = match class {
        Class::Bivalent => bivalent(n - n % 2, 6.0),
        Class::Multiple => multiple(n, 2 + (seed as usize % (n - 2).max(1)).min(n - 2), seed),
        Class::Collinear1W => collinear_1w(if n.is_multiple_of(2) { n - 1 } else { n }, seed),
        Class::Collinear2W => collinear_2w(n - n % 2, seed),
        Class::QuasiRegular => {
            if n.is_multiple_of(2) && n >= 6 && seed.is_multiple_of(2) {
                biangular(n / 2, TAU / (n as f64), 2.0, 4.0)
            } else {
                regular_polygon(n, 3.0, (seed as f64) * 0.1)
            }
        }
        Class::Asymmetric => asymmetric(n, seed),
    };
    debug_assert_eq!(
        classify(&Configuration::new(pts.clone()), Tol::default()).class,
        class,
        "generator produced the wrong class for {class} n={n} seed={seed}"
    );
    pts
}

/// Workload family names accepted by [`by_name`], in documentation order.
/// `"class"` additionally needs a [`Class`]; the rest ignore it.
pub const WORKLOAD_NAMES: [&str; 7] = [
    "class",
    "scatter",
    "clusters",
    "co-circular",
    "near-bivalent",
    "axial",
    "lattice",
];

/// Name-indexed workload construction — the spec→configuration mapping
/// used by the serving layer (`gather-serve`) and any other tooling that
/// receives workload choices as data rather than code.
///
/// Unlike the individual generators this never panics on bad input: every
/// constraint (unknown name, missing class, `n` out of range) comes back
/// as an `Err` describing the violation, so a network-facing caller can
/// turn it into a 400 instead of a crashed worker. Like the generators it
/// wraps, the result is a pure function of `(workload, class, n, seed)`.
///
/// # Errors
///
/// Returns a human-readable description of the violated constraint.
pub fn by_name(
    workload: &str,
    class: Option<Class>,
    n: usize,
    seed: u64,
) -> Result<Vec<Point>, String> {
    if n < 4 {
        return Err(format!("workload {workload:?} needs n >= 4, got {n}"));
    }
    match workload {
        "class" => {
            let class = class.ok_or_else(|| {
                "workload \"class\" needs a class (one of B, M, L1W, L2W, QR, A)".to_string()
            })?;
            if class == Class::Bivalent && !n.is_multiple_of(2) {
                // `of_class` would silently shrink to n - 1; a served
                // request should get exactly what it asked for or an error.
                return Err(format!("class B needs even n, got {n}"));
            }
            Ok(of_class(class, n, seed))
        }
        "scatter" => Ok(random_scatter(n, 10.0, seed)),
        "clusters" => Ok(clusters(n, (n / 3).max(2).min(n), seed)),
        "co-circular" => Ok(co_circular(n, 5.0, seed)),
        "near-bivalent" => Ok(near_bivalent(n, 6.0)),
        "axial" => Ok(axially_symmetric(n / 2, n % 2, seed)),
        "lattice" => {
            // Extent scales with n so density stays moderate; 10 matches
            // the continuous scatter's span for the common sizes.
            let extent = 10.max((n as f64).sqrt().ceil() as i64);
            Ok(lattice_scatter(n, extent, seed))
        }
        other => Err(format!(
            "unknown workload {other:?}; known: {}",
            WORKLOAD_NAMES.join(", ")
        )),
    }
}

/// The full class × seed cross product at size `n`: one configuration per
/// pair, in deterministic `(Class::all(), 0..seeds)` order.
///
/// This is the shared input set for the thread-scaling benchmark
/// (`b7_scaling`), the pool determinism test and the SoA kernel property
/// test — they must agree on the exact same configurations, so the cross
/// product lives here rather than being re-derived in each harness.
///
/// # Panics
///
/// Panics if `n < 4` (see [`of_class`]).
pub fn class_sweep(n: usize, seeds: u64) -> Vec<(Class, u64, Vec<Point>)> {
    let mut out = Vec::with_capacity(Class::all().len() * seeds as usize);
    for class in Class::all() {
        for seed in 0..seeds {
            out.push((class, seed, of_class(class, n, seed)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class_of(pts: &[Point]) -> Class {
        classify(&Configuration::new(pts.to_vec()), Tol::default()).class
    }

    #[test]
    fn bivalent_generator() {
        let pts = bivalent(8, 5.0);
        assert_eq!(pts.len(), 8);
        assert_eq!(class_of(&pts), Class::Bivalent);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn bivalent_rejects_odd() {
        let _ = bivalent(5, 5.0);
    }

    #[test]
    fn multiple_generator() {
        for seed in 0..5 {
            let pts = multiple(9, 3, seed);
            assert_eq!(pts.len(), 9);
            assert_eq!(class_of(&pts), Class::Multiple, "seed {seed}");
        }
    }

    #[test]
    fn collinear_generators() {
        for seed in 0..5 {
            assert_eq!(class_of(&collinear_1w(7, seed)), Class::Collinear1W);
            assert_eq!(class_of(&collinear_2w(6, seed)), Class::Collinear2W);
        }
    }

    #[test]
    fn regular_and_biangular_are_qr() {
        assert_eq!(class_of(&regular_polygon(5, 2.0, 0.3)), Class::QuasiRegular);
        // One robot at the centre keeps all multiplicities equal -> QR with
        // an occupied centre.
        assert_eq!(class_of(&ring_with_center(6, 1, 3.0)), Class::QuasiRegular);
        assert_eq!(class_of(&biangular(4, 0.5, 1.5, 3.0)), Class::QuasiRegular);
    }

    #[test]
    fn stacked_center_outranks_quasi_regularity() {
        // Two robots at the centre give a unique max-multiplicity point,
        // and class M takes priority over QR in the partition.
        assert_eq!(class_of(&ring_with_center(6, 2, 3.0)), Class::Multiple);
    }

    #[test]
    fn quasi_regular_generator_is_qr() {
        for seed in 0..5 {
            let pts = quasi_regular(4, 2, seed);
            assert_eq!(pts.len(), 8);
            assert_eq!(class_of(&pts), Class::QuasiRegular, "seed {seed}");
        }
    }

    #[test]
    fn asymmetric_generator() {
        for seed in 0..5 {
            for n in [4usize, 5, 8, 13] {
                let pts = asymmetric(n, seed);
                assert_eq!(pts.len(), n);
                assert_eq!(class_of(&pts), Class::Asymmetric, "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn near_bivalent_is_class_m() {
        for n in [5usize, 8, 9, 12] {
            let pts = near_bivalent(n, 6.0);
            assert_eq!(pts.len(), n);
            assert_eq!(class_of(&pts), Class::Multiple, "n={n}");
        }
    }

    #[test]
    fn co_circular_points_share_the_sec_boundary() {
        let pts = co_circular(7, 4.0, 3);
        let cfg = Configuration::new(pts);
        let sec = cfg.sec();
        for p in cfg.distinct_points() {
            assert!(
                sec.on_boundary(p, Tol::default()),
                "{p} not on the boundary"
            );
        }
    }

    #[test]
    fn axially_symmetric_configurations_are_class_a() {
        // The paper's chirality argument: mirror symmetry does not protect
        // a configuration from leader election, because clockwise views
        // differ across the axis.
        for seed in 0..5 {
            let pts = axially_symmetric(3, 1, seed);
            assert_eq!(pts.len(), 7);
            assert_eq!(class_of(&pts), Class::Asymmetric, "seed {seed}");
        }
    }

    #[test]
    fn axially_symmetric_is_actually_mirror_symmetric() {
        // Sanity on the generator: the multiset of pairwise distances has
        // the duplication structure of a mirror configuration (each
        // off-axis point has a partner at equal distance from every axis
        // point).
        let pts = axially_symmetric(3, 0, 1);
        let cfg = Configuration::new(pts.clone());
        // Mirror pairs are adjacent in the output: (0,1), (2,3), (4,5).
        for k in 0..3 {
            let a = pts[2 * k];
            let b = pts[2 * k + 1];
            assert!(
                (cfg.sum_of_distances(a) - cfg.sum_of_distances(b)).abs() < 1e-9,
                "pair {k} not symmetric"
            );
        }
    }

    #[test]
    fn of_class_produces_every_class() {
        for class in Class::all() {
            for seed in 0..3 {
                let pts = of_class(class, 8, seed);
                assert_eq!(class_of(&pts), class, "{class} seed {seed}");
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_scatter(10, 5.0, 3), random_scatter(10, 5.0, 3));
        assert_eq!(asymmetric(6, 9), asymmetric(6, 9));
        assert_eq!(collinear_1w(9, 2), collinear_1w(9, 2));
    }

    #[test]
    fn scatter_points_are_distinct() {
        let pts = random_scatter(50, 10.0, 7);
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                assert!(pts[i].dist(pts[j]) > 1e-3);
            }
        }
    }

    #[test]
    fn clusters_form_stacks() {
        let pts = clusters(10, 3, 4);
        let cfg = Configuration::new(pts);
        assert_eq!(cfg.distinct().len(), 3);
    }

    #[test]
    fn class_sweep_covers_every_class_deterministically() {
        let sweep = class_sweep(10, 2);
        assert_eq!(sweep.len(), 12);
        for (class, seed, pts) in &sweep {
            assert_eq!(class_of(pts), *class, "class {class} seed {seed}");
        }
        // Deterministic: a second call yields bit-identical configurations.
        let again = class_sweep(10, 2);
        for ((c1, s1, p1), (c2, s2, p2)) in sweep.iter().zip(&again) {
            assert_eq!((c1, s1), (c2, s2));
            assert_eq!(p1, p2);
        }
    }

    #[test]
    fn by_name_covers_every_family_and_class() {
        for name in WORKLOAD_NAMES {
            let class = (name == "class").then_some(Class::QuasiRegular);
            let pts = by_name(name, class, 8, 3).expect(name);
            assert_eq!(pts.len(), 8, "workload {name}");
            // Deterministic in (name, class, n, seed).
            assert_eq!(by_name(name, class, 8, 3).unwrap(), pts);
        }
        for class in Class::all() {
            let pts = by_name("class", Some(class), 8, 1).expect("class workload");
            assert_eq!(class_of(&pts), class);
        }
    }

    #[test]
    fn by_name_rejects_bad_specs_without_panicking() {
        assert!(by_name("warp", None, 8, 0).unwrap_err().contains("unknown"));
        assert!(by_name("class", None, 8, 0).unwrap_err().contains("class"));
        assert!(by_name("scatter", None, 3, 0).unwrap_err().contains(">= 4"));
        assert!(by_name("class", Some(Class::Bivalent), 7, 0)
            .unwrap_err()
            .contains("even"));
    }

    #[test]
    fn lattice_scatter_is_distinct_integer_points() {
        let pts = lattice_scatter(40, 10, 5);
        assert_eq!(pts.len(), 40);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(p.x, p.x.round(), "{p} off-lattice");
            assert_eq!(p.y, p.y.round(), "{p} off-lattice");
            assert!(p.x.abs() <= 10.0 && p.y.abs() <= 10.0, "{p} out of extent");
            for q in &pts[..i] {
                assert!(p.dist(*q) >= 1.0, "duplicate lattice cell");
            }
        }
        assert_eq!(lattice_scatter(40, 10, 5), pts, "deterministic in seed");
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn lattice_scatter_rejects_overfull_grids() {
        let _ = lattice_scatter(10, 1, 0);
    }

    #[test]
    fn grid_shapes() {
        assert_eq!(grid(3, 4, 1.0).len(), 12);
        // A square grid is 4-fold symmetric → QR.
        assert_eq!(class_of(&grid(3, 3, 2.0)), Class::QuasiRegular);
        // A single row is collinear.
        let row = grid(5, 1, 1.0);
        assert!(matches!(
            class_of(&row),
            Class::Collinear1W | Class::Collinear2W
        ));
    }
}
