//! Minimal HTTP/1.1 framing over `std::io` streams and byte buffers.
//!
//! Only what the scenario service needs: request parsing with hard limits
//! (request-line/header size, header count, total header bytes, body
//! size), `Content-Length` bodies, keep-alive semantics, and response
//! writing. No multipart, no TLS — the service speaks plain HTTP/1.1 so
//! any client (curl included) can drive it, while the implementation
//! stays pure std per the hermetic-build policy (DESIGN.md §8).
//!
//! Two request-parsing entry points share one head parser:
//!
//! * [`read_request`] — blocking, over a [`BufRead`] stream; used by the
//!   thread-per-connection fallback server and by tests;
//! * [`try_parse`] — incremental, over a byte buffer that may hold a
//!   partial request (or several pipelined ones); used by the epoll event
//!   loop, which appends readable bytes and re-parses until a complete
//!   request is available.
//!
//! Responses carry either an owned body or an [`Arc`]-shared one
//! ([`Body`]): the deterministic result cache hands out shared payloads,
//! so a cache hit is served without copying the stored bytes.

use std::io::{self, BufRead, Write};
use std::sync::Arc;

/// Hard cap on one request-line or header line, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Hard cap on the number of headers per request.
const MAX_HEADERS: usize = 64;
/// Hard cap on the whole head (request line + headers + separators), in
/// bytes. Exceeding it answers 431 — a slow-loris client dribbling header
/// bytes can hold at most this much buffer per connection.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Transport failure (including read timeouts) — close the connection.
    Io(io::Error),
    /// The bytes were not a well-formed request — answer 400 and close.
    Malformed(String),
    /// A limit was exceeded — answer 413 and close.
    TooLarge(&'static str),
    /// The head exceeded [`MAX_HEAD_BYTES`] — answer 431 and close.
    HeadersTooLarge,
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Raw query string after `?` (empty when absent).
    pub query: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty without `Content-Length`).
    pub body: Vec<u8>,
    /// Should the connection stay open after the response?
    pub keep_alive: bool,
}

impl Request {
    /// First header with the given lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

fn read_line<R: BufRead>(reader: &mut R) -> Result<String, HttpError> {
    let mut buf = Vec::with_capacity(128);
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Err(HttpError::Malformed("connection closed mid-line".into()));
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            buf.extend_from_slice(&chunk[..pos]);
            reader.consume(pos + 1);
            break;
        }
        buf.extend_from_slice(chunk);
        let len = chunk.len();
        reader.consume(len);
        if buf.len() > MAX_LINE {
            return Err(HttpError::TooLarge("header line too long"));
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    if buf.len() > MAX_LINE {
        return Err(HttpError::TooLarge("header line too long"));
    }
    String::from_utf8(buf).map_err(|_| HttpError::Malformed("non-UTF-8 header bytes".into()))
}

/// Builds a bodyless [`Request`] from the head lines (request line first,
/// then header lines, terminator already stripped). Shared by the blocking
/// and the incremental parser so both enforce identical rules.
fn build_head(lines: &[String]) -> Result<Request, HttpError> {
    let request_line = lines
        .first()
        .ok_or_else(|| HttpError::Malformed("empty request head".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line missing target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line missing version".into()))?;
    if parts.next().is_some() || !(version == "HTTP/1.1" || version == "HTTP/1.0") {
        return Err(HttpError::Malformed(format!(
            "unsupported request line {request_line:?}"
        )));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    for line in &lines[1..] {
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without ':': {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
        keep_alive: version == "HTTP/1.1",
    };
    if let Some(conn) = request.header("connection") {
        match conn.to_ascii_lowercase().as_str() {
            "close" => request.keep_alive = false,
            "keep-alive" => request.keep_alive = true,
            _ => {}
        }
    }
    if request.header("transfer-encoding").is_some() {
        return Err(HttpError::Malformed(
            "chunked transfer encoding is not supported".into(),
        ));
    }
    Ok(request)
}

/// Validated `Content-Length` of a parsed head (0 when absent).
fn content_length(request: &Request, max_body: usize) -> Result<usize, HttpError> {
    match request.header("content-length") {
        None => Ok(0),
        Some(len) => {
            let len: usize = len
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {len:?}")))?;
            if len > max_body {
                return Err(HttpError::TooLarge("body exceeds the configured limit"));
            }
            Ok(len)
        }
    }
}

/// Reads one request from the stream.
///
/// Returns `Ok(None)` on a clean EOF *before the first byte* — the normal
/// end of a keep-alive connection. A caller that wants to idle-poll (e.g.
/// to notice shutdown) should `fill_buf` with a read timeout first and
/// call this only once bytes are available.
///
/// # Errors
///
/// [`HttpError::Malformed`] for protocol violations (answer 400),
/// [`HttpError::TooLarge`] for exceeded limits (answer 413),
/// [`HttpError::HeadersTooLarge`] past [`MAX_HEAD_BYTES`] (answer 431),
/// [`HttpError::Io`] for transport failures.
pub fn read_request<R: BufRead>(
    reader: &mut R,
    max_body: usize,
) -> Result<Option<Request>, HttpError> {
    // Clean-EOF detection: peek before committing to a request.
    if reader.fill_buf()?.is_empty() {
        return Ok(None);
    }
    let mut lines = Vec::new();
    let mut head_bytes = 0usize;
    loop {
        let line = read_line(reader)?;
        head_bytes += line.len() + 2;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::HeadersTooLarge);
        }
        if line.is_empty() {
            if lines.is_empty() {
                return Err(HttpError::Malformed("empty request line".into()));
            }
            break;
        }
        lines.push(line);
    }
    let mut request = build_head(&lines)?;
    let len = content_length(&request, max_body)?;
    if len > 0 {
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body)?;
        request.body = body;
    }
    Ok(Some(request))
}

/// One complete request parsed out of a byte buffer.
#[derive(Debug)]
pub struct Parsed {
    /// The request, body included.
    pub request: Request,
    /// Bytes consumed from the front of the buffer (head + body); the
    /// caller drains them, leaving any pipelined follow-up request behind.
    pub consumed: usize,
}

/// Attempts to parse one complete request from the front of `buf`.
///
/// Returns `Ok(None)` when the buffer holds only a partial request — the
/// caller should read more bytes and retry. This is the event loop's
/// parser: connections append whatever was readable and call this until a
/// full request (head and `Content-Length` body) is available. Pipelined
/// requests parse one at a time, each consuming its own prefix.
///
/// # Errors
///
/// Same taxonomy as [`read_request`]; limit violations are detected as
/// early as the partial bytes allow (an over-long head answers 431 before
/// the terminating blank line ever arrives).
pub fn try_parse(buf: &[u8], max_body: usize) -> Result<Option<Parsed>, HttpError> {
    let mut lines = Vec::new();
    let mut pos = 0usize;
    let head_end = loop {
        let Some(rel) = buf[pos..].iter().position(|&b| b == b'\n') else {
            // Incomplete head: bound what a dribbling client can buffer.
            if buf.len() > MAX_HEAD_BYTES {
                return Err(HttpError::HeadersTooLarge);
            }
            if buf.len() - pos > MAX_LINE {
                return Err(HttpError::TooLarge("header line too long"));
            }
            return Ok(None);
        };
        let mut line = &buf[pos..pos + rel];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        if line.len() > MAX_LINE {
            return Err(HttpError::TooLarge("header line too long"));
        }
        let next = pos + rel + 1;
        if next > MAX_HEAD_BYTES {
            return Err(HttpError::HeadersTooLarge);
        }
        if line.is_empty() {
            if lines.is_empty() {
                return Err(HttpError::Malformed("empty request line".into()));
            }
            break next;
        }
        lines.push(
            String::from_utf8(line.to_vec())
                .map_err(|_| HttpError::Malformed("non-UTF-8 header bytes".into()))?,
        );
        pos = next;
    };
    let mut request = build_head(&lines)?;
    let len = content_length(&request, max_body)?;
    if buf.len() < head_end + len {
        return Ok(None); // body still in flight
    }
    request.body = buf[head_end..head_end + len].to_vec();
    Ok(Some(Parsed {
        request,
        consumed: head_end + len,
    }))
}

/// Maximum payload of a single chunk in chunked transfer encoding.
pub(crate) const CHUNK_SIZE: usize = 16 * 1024;

/// A response body: owned bytes, or a shared reference into the result
/// cache (served without copying the stored payload).
#[derive(Debug, Clone)]
pub enum Body {
    /// Bytes owned by this response.
    Owned(Vec<u8>),
    /// Bytes shared with the cache (and possibly other in-flight
    /// responses).
    Shared(Arc<Vec<u8>>),
}

impl Body {
    /// The body bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Body::Owned(v) => v,
            Body::Shared(a) => a,
        }
    }

    /// Body length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Is the body empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u8>> for Body {
    fn from(v: Vec<u8>) -> Body {
        Body::Owned(v)
    }
}

impl From<String> for Body {
    fn from(s: String) -> Body {
        Body::Owned(s.into_bytes())
    }
}

impl From<&str> for Body {
    fn from(s: &str) -> Body {
        Body::Owned(s.as_bytes().to_vec())
    }
}

impl From<Arc<Vec<u8>>> for Body {
    fn from(a: Arc<Vec<u8>>) -> Body {
        Body::Shared(a)
    }
}

/// A response ready to serialise.
#[derive(Debug)]
pub struct Response {
    /// Status code (e.g. 200).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body (owned or cache-shared).
    pub body: Body,
    /// Emit `Retry-After: N` (the 429 backpressure hint).
    pub retry_after: Option<u64>,
    /// Emit `Deprecation: true` (answering on a pre-`/v1` legacy alias).
    pub deprecation: bool,
    /// Emit `x-gather-cache: hit|miss` (result-cache disposition of a
    /// simulation endpoint; `None` for everything else).
    pub cache: Option<&'static str>,
    /// Emit `Age: N` — whole seconds the payload has spent in the result
    /// cache (hits only).
    pub age: Option<u64>,
    /// Serialise the body with chunked transfer encoding instead of
    /// `Content-Length` (streaming endpoints).
    pub chunked: bool,
    /// Emit `Connection: close` and let the caller drop the connection.
    pub close: bool,
}

impl Response {
    /// A response with the given status, content type and body.
    pub fn new(status: u16, content_type: &'static str, body: impl Into<Body>) -> Response {
        Response {
            status,
            content_type,
            body: body.into(),
            retry_after: None,
            deprecation: false,
            cache: None,
            age: None,
            chunked: false,
            close: false,
        }
    }

    /// A structured `{"code","message","retryable"}` JSON error — the one
    /// error shape every endpoint answers with. `retryable` is derived
    /// from the status: timeouts and backpressure (408/429/503/504) are
    /// worth retrying, client and server bugs are not.
    pub fn error(status: u16, code: &str, message: &str) -> Response {
        let retryable = matches!(status, 408 | 429 | 503 | 504);
        Response::new(
            status,
            "application/json",
            format!(
                "{{\"code\":\"{}\",\"message\":\"{}\",\"retryable\":{retryable}}}\n",
                crate::json::escape(code),
                crate::json::escape(message),
            ),
        )
    }

    /// The standard reason phrase for the status code.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Response",
        }
    }

    /// Serialises the status line and headers (terminating blank line
    /// included, body excluded). The event loop queues these bytes ahead
    /// of the (possibly cache-shared) body and writes both with one
    /// vectored write; [`write_to`](Response::write_to) uses the same
    /// bytes, so the two paths frame identically.
    pub fn head_bytes(&self) -> Vec<u8> {
        use std::io::Write as _;
        let mut head = Vec::with_capacity(160);
        let _ = write!(
            head,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
        );
        if self.chunked {
            let _ = write!(head, "transfer-encoding: chunked\r\n");
        } else {
            let _ = write!(head, "content-length: {}\r\n", self.body.len());
        }
        if let Some(secs) = self.retry_after {
            let _ = write!(head, "retry-after: {secs}\r\n");
        }
        if self.deprecation {
            let _ = write!(head, "deprecation: true\r\n");
        }
        if let Some(disposition) = self.cache {
            let _ = write!(head, "x-gather-cache: {disposition}\r\n");
        }
        if let Some(secs) = self.age {
            let _ = write!(head, "age: {secs}\r\n");
        }
        if self.close {
            let _ = write!(head, "connection: close\r\n");
        }
        head.extend_from_slice(b"\r\n");
        head
    }

    /// Serialises status line, headers and body onto `w` (flushes).
    ///
    /// With `chunked` set the body goes out as chunked transfer encoding
    /// (chunks of at most 16 KiB, closed by a `0\r\n\r\n` terminator);
    /// otherwise as a `Content-Length` body. The payload bytes are
    /// identical either way — chunking is pure framing.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(&self.head_bytes())?;
        if self.chunked {
            for chunk in self.body.as_slice().chunks(CHUNK_SIZE) {
                write!(w, "{:x}\r\n", chunk.len())?;
                w.write_all(chunk)?;
                w.write_all(b"\r\n")?;
            }
            w.write_all(b"0\r\n\r\n")?;
        } else {
            w.write_all(self.body.as_slice())?;
        }
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(bytes), 1024)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /run?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/run");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.body, b"body");
        assert!(req.keep_alive);
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        let req = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            &b"GET\r\n\r\n"[..],
            b"GET / HTTP/2\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET / HTTP/1.1\r\nbroken header\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"GET / HTT",
        ] {
            assert!(
                matches!(
                    parse(bad),
                    Err(HttpError::Malformed(_)) | Err(HttpError::Io(_))
                ),
                "{:?} should be rejected",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn enforces_limits() {
        let body_too_big = b"POST / HTTP/1.1\r\nContent-Length: 2048\r\n\r\n";
        assert!(matches!(parse(body_too_big), Err(HttpError::TooLarge(_))));
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(10_000));
        assert!(matches!(
            parse(long_line.as_bytes()),
            Err(HttpError::TooLarge(_))
        ));
        let mut many = String::from("GET / HTTP/1.1\r\n");
        for i in 0..100 {
            many.push_str(&format!("h{i}: v\r\n"));
        }
        many.push_str("\r\n");
        assert!(matches!(
            parse(many.as_bytes()),
            Err(HttpError::TooLarge(_))
        ));
    }

    #[test]
    fn total_header_bytes_are_capped_with_431() {
        // Each header line stays under MAX_LINE, but together they blow
        // the whole-head cap — the slow-loris shape.
        let mut head = String::from("GET / HTTP/1.1\r\n");
        for i in 0..10 {
            head.push_str(&format!("h{i}: {}\r\n", "v".repeat(4 * 1024)));
        }
        head.push_str("\r\n");
        assert!(matches!(
            parse(head.as_bytes()),
            Err(HttpError::HeadersTooLarge)
        ));
        // The incremental parser flags it even before the head terminates.
        let partial = &head.as_bytes()[..MAX_HEAD_BYTES + 10];
        assert!(matches!(
            try_parse(partial, 1024),
            Err(HttpError::HeadersTooLarge)
        ));
    }

    #[test]
    fn try_parse_handles_partial_and_pipelined_requests() {
        let wire = b"POST /run HTTP/1.1\r\nContent-Length: 4\r\n\r\nbodyGET /next HTTP/1.1\r\n\r\n";
        // Byte-at-a-time: no prefix short of the full first request parses.
        let first_len = wire.iter().collect::<Vec<_>>().len() - b"GET /next HTTP/1.1\r\n\r\n".len();
        for cut in 0..first_len {
            assert!(
                try_parse(&wire[..cut], 1024).unwrap().is_none(),
                "cut at {cut} should be incomplete"
            );
        }
        let parsed = try_parse(wire, 1024).unwrap().unwrap();
        assert_eq!(parsed.request.path, "/run");
        assert_eq!(parsed.request.body, b"body");
        assert_eq!(parsed.consumed, first_len);
        // The pipelined follow-up parses from the remaining bytes.
        let rest = try_parse(&wire[parsed.consumed..], 1024).unwrap().unwrap();
        assert_eq!(rest.request.path, "/next");
        assert_eq!(parsed.consumed + rest.consumed, wire.len());
    }

    #[test]
    fn try_parse_rejects_what_read_request_rejects() {
        assert!(matches!(
            try_parse(b"GET / HTTP/2\r\n\r\n", 64),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            try_parse(b"POST / HTTP/1.1\r\nContent-Length: 2048\r\n\r\n", 1024),
            Err(HttpError::TooLarge(_))
        ));
        assert!(matches!(
            try_parse(b"\r\n\r\n", 64),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn response_serialisation() {
        let mut resp = Response::new(200, "text/plain", "hi");
        resp.retry_after = Some(2);
        resp.close = true;
        let mut out = Vec::new();
        resp.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("retry-after: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nhi"));
    }

    #[test]
    fn cache_headers_serialise() {
        let mut resp = Response::new(200, "application/x-ndjson", "line\n");
        resp.cache = Some("hit");
        resp.age = Some(3);
        let mut out = Vec::new();
        resp.write_to(&mut out).unwrap();
        let text = String::from_utf8(out.clone()).unwrap();
        assert!(text.contains("x-gather-cache: hit\r\n"));
        assert!(text.contains("age: 3\r\n"));
        // A shared body serialises to the same bytes as an owned one.
        let shared = Response {
            body: Body::Shared(Arc::new(b"line\n".to_vec())),
            ..Response::new(200, "application/x-ndjson", "")
        };
        let mut out2 = Vec::new();
        let with_headers = Response {
            cache: Some("hit"),
            age: Some(3),
            ..shared
        };
        with_headers.write_to(&mut out2).unwrap();
        assert_eq!(out, out2);
    }

    #[test]
    fn error_bodies_are_structured_json() {
        let resp = Response::error(429, "queue_full", "admission queue is full");
        assert_eq!(resp.status, 429);
        assert_eq!(resp.reason(), "Too Many Requests");
        let body = String::from_utf8(resp.body.as_slice().to_vec()).unwrap();
        assert_eq!(
            body,
            "{\"code\":\"queue_full\",\"message\":\"admission queue is full\",\"retryable\":true}\n"
        );
        let resp = Response::error(400, "bad_spec", "x");
        assert!(String::from_utf8(resp.body.as_slice().to_vec())
            .unwrap()
            .contains("\"retryable\":false"));
        assert_eq!(
            Response::error(431, "headers_too_large", "x").reason(),
            "Request Header Fields Too Large"
        );
        assert_eq!(
            Response::error(408, "read_timeout", "x").reason(),
            "Request Timeout"
        );
    }

    #[test]
    fn chunked_serialisation_frames_the_same_bytes() {
        let payload = vec![b'x'; CHUNK_SIZE + 5];
        let mut resp = Response::new(200, "application/x-ndjson", payload.clone());
        resp.chunked = true;
        resp.deprecation = true;
        let mut out = Vec::new();
        resp.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("transfer-encoding: chunked\r\n"));
        assert!(text.contains("deprecation: true\r\n"));
        assert!(!text.contains("content-length"));
        // One full 16 KiB chunk, one 5-byte chunk, then the terminator.
        let body = text.split_once("\r\n\r\n").unwrap().1;
        assert!(body.starts_with("4000\r\n"));
        assert!(body.ends_with("5\r\nxxxxx\r\n0\r\n\r\n"));
        let decoded: Vec<u8> = body
            .split("\r\n")
            .scan(true, |is_size, part| {
                let take = if *is_size {
                    None
                } else {
                    Some(part.as_bytes())
                };
                *is_size = !*is_size;
                Some(take)
            })
            .flatten()
            .flat_map(|b| b.iter().copied())
            .collect();
        assert_eq!(decoded, payload);
    }

    #[test]
    fn keep_alive_parses_two_requests_from_one_stream() {
        let bytes = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(&bytes[..]);
        let a = read_request(&mut reader, 64).unwrap().unwrap();
        let b = read_request(&mut reader, 64).unwrap().unwrap();
        assert_eq!((a.path.as_str(), b.path.as_str()), ("/a", "/b"));
        assert!(read_request(&mut reader, 64).unwrap().is_none());
    }
}
